"""The CosmoFlow network: per-step kernel sequences.

Assembles the layer stack into the ordered kernel sequence one
training (forward + backward + optimizer) or validation (forward only)
step submits to the GPU — the "large number of varying sized kernels
in quick succession" the paper observes in CosmoFlow's traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...gpusim import KernelSpec
from ...hw import GPUSpec
from .layers import Conv3DBlock, DenseLayer, cosmoflow_layers

__all__ = ["CosmoFlowNet"]


@dataclass(frozen=True)
class CosmoFlowNet:
    """The CosmoFlow CNN as a kernel-sequence generator."""

    batch_size: int = 4

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        convs, denses = cosmoflow_layers()
        object.__setattr__(self, "_convs", convs)
        object.__setattr__(self, "_denses", denses)

    @property
    def convs(self) -> List[Conv3DBlock]:
        """The five Conv3D blocks."""
        return list(self._convs)  # type: ignore[attr-defined]

    @property
    def denses(self) -> List[DenseLayer]:
        """The three dense layers."""
        return list(self._denses)  # type: ignore[attr-defined]

    # -- sequences ----------------------------------------------------------------
    def forward_kernels(self) -> List[KernelSpec]:
        """Ordered kernels of one forward pass."""
        seq: List[KernelSpec] = []
        for conv in self.convs:
            seq.extend(conv.forward_kernels(self.batch_size))
        for dense in self.denses:
            seq.extend(dense.forward_kernels(self.batch_size))
        seq.append(KernelSpec(name="mse_loss", bytes_accessed=1e5))
        return seq

    def backward_kernels(self) -> List[KernelSpec]:
        """Ordered kernels of one backward pass + optimizer update."""
        seq: List[KernelSpec] = [
            KernelSpec(name="loss_grad", bytes_accessed=1e5)
        ]
        for dense in reversed(self.denses):
            seq.extend(dense.backward_kernels(self.batch_size))
        for conv in reversed(self.convs):
            seq.extend(conv.backward_kernels(self.batch_size))
        seq.append(
            KernelSpec(
                name="sgd_apply_gradients",
                bytes_accessed=3.0 * 4.0 * self.parameter_count(),
            )
        )
        return seq

    def training_step_kernels(self) -> List[KernelSpec]:
        """Forward + backward kernel sequence of a training step."""
        return self.forward_kernels() + self.backward_kernels()

    def validation_step_kernels(self) -> List[KernelSpec]:
        """Forward-only sequence of a validation step."""
        return self.forward_kernels()

    # -- sizes ---------------------------------------------------------------------
    def parameter_count(self) -> int:
        """Trainable parameters of the network."""
        count = 0
        for conv in self.convs:
            count += conv.kernel_edge**3 * conv.in_channels * conv.out_channels
            count += conv.out_channels  # bias
        for dense in self.denses:
            count += dense.in_features * dense.out_features + dense.out_features
        return count

    def sample_bytes(self) -> int:
        """Bytes of one input sample (float32 voxels)."""
        from .layers import INPUT_SHAPE

        d, h, w, c = INPUT_SHAPE
        return 4 * d * h * w * c

    def step_gpu_seconds(self, gpu: GPUSpec, training: bool = True) -> float:
        """Total kernel execution time of one step on ``gpu``."""
        kernels = (
            self.training_step_kernels() if training else self.validation_step_kernels()
        )
        return sum(k.execution_time(gpu) for k in kernels)
