"""GPU device-memory allocator.

A first-fit free-list allocator over a fixed-size device memory. It
exists because the paper's proxy bounds are memory-driven: three
square float matrices of size 2^15 occupy 3 x 4 GiB, which fits one
thread on a 40 GiB A100 but not four threads (3 * 4 GiB * 4 > 40 GiB)
— the reason matrix size 2^15 is absent from Figure 3(b,c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["DeviceAllocation", "DeviceMemory", "OutOfMemoryError"]


class OutOfMemoryError(MemoryError):
    """Raised when a device allocation cannot be satisfied."""


@dataclass(frozen=True)
class DeviceAllocation:
    """A live allocation: opaque device pointer plus its extent."""

    ptr: int
    nbytes: int
    tag: str = ""


class DeviceMemory:
    """First-fit allocator over ``capacity`` bytes of device memory.

    Allocations are aligned to ``alignment`` bytes (256 matches CUDA's
    ``cudaMalloc`` guarantee). Freeing coalesces adjacent free blocks.
    """

    def __init__(self, capacity: int, alignment: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError("alignment must be a positive power of two")
        self.capacity = int(capacity)
        self.alignment = alignment
        # Free list as sorted (offset, size) blocks.
        self._free: List[Tuple[int, int]] = [(0, self.capacity)]
        self._live: Dict[int, DeviceAllocation] = {}
        self._peak = 0

    # -- queries -------------------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return sum(a.nbytes for a in self._live.values())

    @property
    def free(self) -> int:
        """Bytes currently free (may be fragmented)."""
        return self.capacity - self.used

    @property
    def peak_used(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    @property
    def allocations(self) -> Tuple[DeviceAllocation, ...]:
        """All live allocations."""
        return tuple(self._live.values())

    def largest_free_block(self) -> int:
        """Size of the largest contiguous free block."""
        return max((size for _, size in self._free), default=0)

    def would_fit(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would currently succeed."""
        rounded = self._round(nbytes)
        return any(size >= rounded for _, size in self._free)

    # -- allocate / free -------------------------------------------------------
    def malloc(self, nbytes: int, tag: str = "") -> DeviceAllocation:
        """Allocate ``nbytes`` (rounded up to the alignment).

        Raises
        ------
        OutOfMemoryError
            If no contiguous free block is large enough.
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        rounded = self._round(nbytes)
        for i, (offset, size) in enumerate(self._free):
            if size >= rounded:
                if size == rounded:
                    self._free.pop(i)
                else:
                    self._free[i] = (offset + rounded, size - rounded)
                alloc = DeviceAllocation(ptr=offset, nbytes=rounded, tag=tag)
                self._live[offset] = alloc
                self._peak = max(self._peak, self.used)
                return alloc
        raise OutOfMemoryError(
            f"cannot allocate {nbytes} bytes: {self.free} free "
            f"(largest contiguous block {self.largest_free_block()})"
        )

    def free_allocation(self, alloc: DeviceAllocation) -> None:
        """Return an allocation's bytes to the free list."""
        if alloc.ptr not in self._live:
            raise ValueError(f"pointer {alloc.ptr:#x} is not a live allocation")
        del self._live[alloc.ptr]
        self._insert_free(alloc.ptr, alloc.nbytes)

    def reset(self) -> None:
        """Free everything (device reset)."""
        self._live.clear()
        self._free = [(0, self.capacity)]

    # -- internals -----------------------------------------------------------
    def _round(self, nbytes: int) -> int:
        a = self.alignment
        return (int(nbytes) + a - 1) // a * a

    def _insert_free(self, offset: int, size: int) -> None:
        # Insert keeping the list sorted, then coalesce neighbours.
        self._free.append((offset, size))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for off, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        self._free = merged
