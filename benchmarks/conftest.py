"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact and prints the same
rows/series the paper reports (run pytest with ``-s`` to see them).
The shared :class:`ExperimentContext` reuses the disk-cached proxy
surface, so the first run of the suite pays the sweep cost once.
"""

import pytest

from repro.experiments import ExperimentContext


def pytest_addoption(parser):
    parser.addoption(
        "--full-repro",
        action="store_true",
        default=False,
        help="use the paper's full run lengths (slow) instead of quick mode",
    )


@pytest.fixture(scope="session")
def ctx(request):
    return ExperimentContext(quick=not request.config.getoption("--full-repro"))


@pytest.fixture(scope="session")
def print_result():
    def _print(result):
        print()
        print(result.render())

    return _print
