"""Fleet-scale CDI simulation: millions of jobs on pool-scale pools.

The generator DES in :mod:`repro.cdi.simulation` spawns one Python
process per job, so a million-job fleet run is tens of millions of
heap events through the interpreter. This module replaces the per-job
generators with an index-based event core over numpy job-state columns
(arrival / duration / cores / gpus / tenant):

* Jobs sorted by ``(arrival, submission index)`` collapse both
  resource FIFOs to *pointers* into one index array — the cores (or
  nodes) queue is the sorted order itself, and the GPU queue is the
  ``gpus > 0`` subsequence of it, admissible once cores are granted.
  That is exactly the order the reference DES enqueues waiters in, so
  head-of-line semantics carry over by construction.
* A binary heap of ``(end_time, job)`` tracks completions; each
  decision point applies every completion at that instant and then
  runs a *batched admission scan*: static integer prefix sums over
  the sorted demand columns turn "admit every satisfiable queued job"
  into two bisections plus a slice, instead of one DES grant cascade
  per job.

The scalar twins :func:`repro.cdi.simulation.simulate_traditional` /
:func:`simulate_cdi` are retained as references, and
:func:`assert_fleet_parity` proves per-job **bit-parity** (wait /
start / end, cores-grant time, trapped core- and GPU-seconds) on any
shared configuration — the repo's parity-before-speedup convention
(see ``benchmarks/bench_fleet.py``).

Beyond raw scheduling the fleet layer adds what a datacenter study
needs: seeded tick-quantized Poisson multi-tenant arrivals (the
determinism discipline of :mod:`repro.apps.inference.arrivals`),
placement policies (pack / spread / locality via
:mod:`repro.cdi.placement`) mapping GPU grants to racks and fabric
slack, penalty distributions through the serving-layer surrogate,
optional :class:`~repro.faults.FaultPlan` link-flap windows that
freeze composition (GPU admission) fleet-wide, job events recorded
into the columnar trace store, and a ``fleet``-kind
:class:`~repro.obs.RunReport`.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..des import TICK_S
from ..faults import FaultPlan
from ..obs import MetricsRegistry, RunReport, get_registry
from ..obs.publish import publish_fleet
from .placement import PLACEMENT_POLICIES, FleetTopology
from .simulation import (
    ClusterSpec,
    SimJob,
    SimulationMetrics,
    simulate_cdi,
    simulate_traditional,
)

__all__ = [
    "TenantSpec",
    "FleetConfig",
    "FleetJobs",
    "TenantStats",
    "FleetResult",
    "generate_fleet_jobs",
    "run_fleet",
    "assert_fleet_parity",
]

_TICKS_PER_S = 1.0 / TICK_S
_INF = float("inf")


def _quantize_array(seconds: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.des.quantize` (same rounding, same bits)."""
    return np.floor(seconds * _TICKS_PER_S + 0.5) * TICK_S


# ---------------------------------------------------------------------------
# Multi-tenant synthetic streams
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's arrival process and workload mix.

    Jobs follow the three paper archetypes of
    :func:`repro.cdi.simulation.synthetic_job_mix`: CPU-heavy
    (LAMMPS-like), GPU-heavy (CosmoFlow-like) and CPU-only, with the
    shares configurable per tenant (the remainder is CPU-only).
    """

    name: str
    rate_per_s: float
    cpu_heavy_share: float = 0.40
    gpu_heavy_share: float = 0.35

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.cpu_heavy_share < 0 or self.gpu_heavy_share < 0:
            raise ValueError("archetype shares must be non-negative")
        if self.cpu_heavy_share + self.gpu_heavy_share > 1.0:
            raise ValueError("archetype shares must sum to <= 1")


@dataclass(frozen=True)
class FleetConfig:
    """A seeded fleet scenario: cluster, tenants, horizon.

    Generation is a pure function of this config —
    :func:`generate_fleet_jobs` draws every tenant from its own
    ``default_rng([seed, tenant_index])`` stream and tick-quantizes
    arrivals, so two calls are bit-identical and tenants can be
    added/removed without perturbing each other's jobs.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    tenants: Tuple[TenantSpec, ...] = (
        TenantSpec(name="batch", rate_per_s=1.0 / 900.0),
        TenantSpec(name="interactive", rate_per_s=1.0 / 1800.0),
    )
    horizon_s: float = 7 * 24 * 3600.0
    seed: int = 2024
    max_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ValueError("at least one tenant required")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.max_jobs is not None and self.max_jobs <= 0:
            raise ValueError("max_jobs must be positive")


@dataclass
class FleetJobs:
    """The columnar job stream: one numpy row per job, input order."""

    arrival_s: np.ndarray
    duration_s: np.ndarray
    cores: np.ndarray
    gpus: np.ndarray
    tenant: np.ndarray
    tenant_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        n = len(self.arrival_s)
        for col in (self.duration_s, self.cores, self.gpus, self.tenant):
            if len(col) != n:
                raise ValueError("job columns must align")
        if n:
            if float(self.arrival_s.min()) < 0:
                raise ValueError("invalid job timing")
            if float(self.duration_s.min()) <= 0:
                raise ValueError("invalid job timing")
            if int(self.cores.min()) <= 0 or int(self.gpus.min()) < 0:
                raise ValueError("invalid job resources")
            if int(self.tenant.min()) < 0 or int(self.tenant.max()) >= len(
                self.tenant_names
            ):
                raise ValueError("tenant index out of range")

    def __len__(self) -> int:
        return len(self.arrival_s)

    @classmethod
    def from_sim_jobs(cls, jobs: Sequence[SimJob]) -> "FleetJobs":
        """Wrap a :class:`SimJob` stream (tenant = name prefix)."""
        names: List[str] = []
        index: Dict[str, int] = {}
        tenant = np.empty(len(jobs), dtype=np.int64)
        for i, job in enumerate(jobs):
            prefix = job.name.rsplit("-", 1)[0]
            t = index.get(prefix)
            if t is None:
                t = index[prefix] = len(names)
                names.append(prefix)
            tenant[i] = t
        return cls(
            arrival_s=np.array([j.arrival_s for j in jobs], dtype=np.float64),
            duration_s=np.array([j.duration_s for j in jobs], dtype=np.float64),
            cores=np.array([j.cores for j in jobs], dtype=np.int64),
            gpus=np.array([j.gpus for j in jobs], dtype=np.int64),
            tenant=tenant,
            tenant_names=tuple(names),
        )

    def to_sim_jobs(self) -> List[SimJob]:
        """Materialize :class:`SimJob` objects for the reference DES."""
        arrival = self.arrival_s.tolist()
        duration = self.duration_s.tolist()
        cores = self.cores.tolist()
        gpus = self.gpus.tolist()
        tenant = self.tenant.tolist()
        return [
            SimJob(
                name=f"{self.tenant_names[tenant[i]]}-{i}",
                arrival_s=arrival[i],
                duration_s=duration[i],
                cores=cores[i],
                gpus=gpus[i],
            )
            for i in range(len(arrival))
        ]


def generate_fleet_jobs(config: FleetConfig) -> FleetJobs:
    """Draw the multi-tenant stream described by ``config``.

    Per tenant: Poisson (exponential-gap) arrivals over the horizon,
    tick-quantized; archetype picked per job from the tenant's shares;
    sizes and log-normal durations as in ``synthetic_job_mix``. The
    merged stream is ordered by ``(arrival, tenant index, intra-tenant
    index)`` — a deterministic total order.
    """
    cluster = config.cluster
    if cluster.total_gpus == 0 and any(
        t.cpu_heavy_share + t.gpu_heavy_share > 0 for t in config.tenants
    ):
        raise ValueError("GPU archetypes need a cluster with GPUs")
    gpu_hi = min(16, cluster.total_gpus)

    arrivals: List[np.ndarray] = []
    durations: List[np.ndarray] = []
    cores_l: List[np.ndarray] = []
    gpus_l: List[np.ndarray] = []
    tenant_l: List[np.ndarray] = []
    for tidx, tenant in enumerate(config.tenants):
        rng = np.random.default_rng([config.seed, tidx])
        mean_gap = 1.0 / tenant.rate_per_s
        gaps = rng.exponential(mean_gap, size=max(
            16, int(config.horizon_s * tenant.rate_per_s * 1.25) + 16
        ))
        t = np.cumsum(gaps)
        while t[-1] <= config.horizon_s:
            more = rng.exponential(mean_gap, size=len(gaps))
            t = np.concatenate([t, t[-1] + np.cumsum(more)])
        t = _quantize_array(t[t <= config.horizon_s])
        n = len(t)
        if n == 0:
            continue
        u = rng.random(n)
        cpu_heavy = u < tenant.cpu_heavy_share
        gpu_heavy = ~cpu_heavy & (
            u < tenant.cpu_heavy_share + tenant.gpu_heavy_share
        )
        # Draw all three archetypes' shapes for every job, then select:
        # the per-job consumption of the rng stream stays fixed, so the
        # shares reshuffle jobs between archetypes without reshuffling
        # the underlying draws.
        ch_cores = rng.integers(2, 5, size=n) * cluster.cores_per_node // 2
        ch_gpus = rng.integers(1, 3, size=n)
        gh_gpus = (
            rng.integers(4, gpu_hi + 1, size=n)
            if gpu_hi >= 4
            else rng.integers(1, max(2, gpu_hi + 1), size=n)
        )
        gh_cores = np.maximum(2, gh_gpus // 2)
        co_cores = rng.integers(1, 3, size=n) * cluster.cores_per_node
        log_mean = np.where(
            cpu_heavy,
            np.log(7200.0),
            np.where(gpu_heavy, np.log(10800.0), np.log(3600.0)),
        )
        dur = rng.lognormal(mean=0.0, sigma=0.4, size=n) * np.exp(log_mean)
        cores = np.where(cpu_heavy, ch_cores, np.where(gpu_heavy, gh_cores, co_cores))
        gpus = np.where(cpu_heavy, ch_gpus, np.where(gpu_heavy, gh_gpus, 0))
        cores = np.minimum(cores, cluster.total_cores).astype(np.int64)
        gpus = np.minimum(gpus, cluster.total_gpus).astype(np.int64)

        arrivals.append(t)
        durations.append(dur)
        cores_l.append(cores)
        gpus_l.append(gpus)
        tenant_l.append(np.full(n, tidx, dtype=np.int64))

    if not arrivals:
        raise ValueError("horizon too short: no jobs generated")
    arrival = np.concatenate(arrivals)
    tenant = np.concatenate(tenant_l)
    intra = np.concatenate([np.arange(len(a)) for a in arrivals])
    order = np.lexsort((intra, tenant, arrival))
    jobs = FleetJobs(
        arrival_s=arrival[order],
        duration_s=np.concatenate(durations)[order],
        cores=np.concatenate(cores_l)[order],
        gpus=np.concatenate(gpus_l)[order],
        tenant=tenant[order],
        tenant_names=tuple(t.name for t in config.tenants),
    )
    if config.max_jobs is not None and len(jobs) > config.max_jobs:
        sl = slice(0, config.max_jobs)
        jobs = FleetJobs(
            arrival_s=jobs.arrival_s[sl],
            duration_s=jobs.duration_s[sl],
            cores=jobs.cores[sl],
            gpus=jobs.gpus[sl],
            tenant=jobs.tenant[sl],
            tenant_names=jobs.tenant_names,
        )
    return jobs


# ---------------------------------------------------------------------------
# The index-based event core
# ---------------------------------------------------------------------------


def _flap_windows(faults: Optional[FaultPlan]) -> List[Tuple[float, float]]:
    if faults is None or faults.is_empty:
        return []
    faults.validate()
    return sorted(
        (e.start_s, e.start_s + e.down_s)
        for e in faults.events
        if e.kind == "flap"
    )


def _fleet_core(
    arr: List[float],
    dur: List[float],
    amt: List[int],
    gamt: List[int],
    cap: int,
    gcap: int,
    freeze: List[Tuple[float, float]],
) -> Tuple[List[float], List[float], List[int]]:
    """Run the pointer-FIFO drain over jobs sorted by arrival.

    Returns ``(grant_s, start_s, gpu_grant_order)`` in sorted order:
    ``grant_s[i]`` is when job ``i``'s primary allocation (cores or
    nodes) was granted, ``start_s[i]`` when it actually started
    (after its GPUs, for two-stage jobs), and ``gpu_grant_order`` the
    GPU-stage admission sequence (for placement replay).

    The drain reproduces the reference DES exactly: completions at a
    timestamp apply before admissions, both queues are head-of-line
    FIFO in ``(arrival, submission)`` order, and every satisfiable
    queued job is admitted per decision point (the DES grant cascade
    is confluent, so batch order does not change the outcome).
    """
    n = len(arr)
    grant = [0.0] * n
    start = [0.0] * n

    # Static integer prefix sums: csum over primary demand, gsum over
    # the GPU subsequence. Exact (ints), so capacity bisections below
    # are exact too.
    amt_arr = np.asarray(amt, dtype=np.int64)
    gamt_arr = np.asarray(gamt, dtype=np.int64)
    csum = np.concatenate(([0], np.cumsum(amt_arr))).tolist()
    gpu_idx_arr = np.flatnonzero(gamt_arr)
    gpu_idx = gpu_idx_arr.tolist()
    m = len(gpu_idx)
    gsum = np.concatenate(([0], np.cumsum(gamt_arr[gpu_idx_arr]))).tolist()

    heap: List[Tuple[float, int]] = []
    for _, w_end in freeze:
        heapq.heappush(heap, (w_end, -1))  # thaw decision points
    push = heapq.heappush
    pop = heapq.heappop
    level = cap
    glevel = gcap
    p = 0  # primary pointer into sorted order
    q = 0  # GPU pointer into gpu_idx
    w = 0  # first freeze window not yet ended
    n_freeze = len(freeze)
    now = 0.0

    while p < n or q < m:
        # -- admission drain at `now` ------------------------------------
        # Scalar fast path first: most decision points free just enough
        # for the queue head, so admit it without the batch machinery,
        # then fall into the bisection scan only when a second job is
        # also admissible (bursts, backlog drains, thaws).
        if p < n and arr[p] <= now and amt[p] <= level:
            level -= amt[p]
            grant[p] = now
            if gamt[p] == 0:
                start[p] = now
                push(heap, (now + dur[p], p))
            p += 1
            if p < n and arr[p] <= now and amt[p] <= level:
                hi = bisect_right(arr, now, p)
                hi_cap = bisect_right(csum, csum[p] + level) - 1
                j = hi if hi < hi_cap else hi_cap
                level -= csum[j] - csum[p]
                for i in range(p, j):
                    grant[i] = now
                    if gamt[i] == 0:
                        start[i] = now
                        push(heap, (now + dur[i], i))
                p = j
        if q < m and gpu_idx[q] < p:
            while w < n_freeze and freeze[w][1] <= now:
                w += 1
            frozen = w < n_freeze and freeze[w][0] <= now
            if not frozen and gamt[gpu_idx[q]] <= glevel:
                i = gpu_idx[q]
                glevel -= gamt[i]
                start[i] = now
                push(heap, (now + dur[i], i))
                q += 1
                if q < m and gpu_idx[q] < p and gamt[gpu_idx[q]] <= glevel:
                    hi = bisect_right(gpu_idx, p - 1, q)
                    hi_cap = bisect_right(gsum, gsum[q] + glevel) - 1
                    k = hi if hi < hi_cap else hi_cap
                    glevel -= gsum[k] - gsum[q]
                    for kk in range(q, k):
                        i = gpu_idx[kk]
                        start[i] = now
                        push(heap, (now + dur[i], i))
                    q = k
        if p == n and q == m:
            break

        # -- advance to the next decision point --------------------------
        if heap:
            t = heap[0][0]
            if p < n:
                ta = arr[p]
                if now < ta < t:
                    t = ta
            now = t
            while heap and heap[0][0] == now:
                i = pop(heap)[1]
                if i >= 0:
                    level += amt[i]
                    glevel += gamt[i]
        else:
            # Empty heap means nothing is running or pending thaw, so
            # the blocked head must simply not have arrived yet.
            now = arr[p]

    return grant, start, gpu_idx


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant fleet outcome (queue waits, usage, penalties)."""

    name: str
    jobs: int
    mean_wait_s: float
    wait_p50_s: float
    wait_p99_s: float
    gpu_busy_s: float
    trapped_core_hours: float
    trapped_gpu_hours: float
    penalty_p50: Optional[float] = None
    penalty_p99: Optional[float] = None


@dataclass
class FleetResult:
    """One fleet run: per-job columns (input order) plus aggregates."""

    mode: str
    cluster: ClusterSpec
    jobs: FleetJobs
    start_s: np.ndarray
    end_s: np.ndarray
    wait_s: np.ndarray
    cores_start_s: np.ndarray
    trapped_core_s: np.ndarray
    trapped_gpu_s: np.ndarray
    makespan_s: float
    core_busy_s: float
    gpu_busy_s: float
    placement: Optional[str] = None
    rack_of_gpus: Optional[List[List[Tuple[int, int]]]] = None
    slack_s: Optional[np.ndarray] = None
    penalty: Optional[np.ndarray] = None
    penalty_refusals: int = 0

    def __len__(self) -> int:
        return len(self.start_s)

    # -- aggregates ---------------------------------------------------------
    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay across jobs."""
        return float(self.wait_s.mean()) if len(self) else 0.0

    @property
    def core_utilization(self) -> float:
        """Time-integrated fraction of cores doing useful work."""
        denom = self.cluster.total_cores * self.makespan_s
        return self.core_busy_s / denom if denom > 0 else 0.0

    @property
    def gpu_utilization(self) -> float:
        """Time-integrated fraction of GPUs doing useful work."""
        denom = self.cluster.total_gpus * self.makespan_s
        return self.gpu_busy_s / denom if denom > 0 else 0.0

    @property
    def trapped_core_hours(self) -> float:
        """Core-hours stranded (whole-node remainders + hold-and-wait)."""
        return float(self.trapped_core_s.sum()) / 3600.0

    @property
    def trapped_gpu_hours(self) -> float:
        """GPU-hours allocated but never used."""
        return float(self.trapped_gpu_s.sum()) / 3600.0

    def tenant_stats(self) -> Dict[str, TenantStats]:
        """Per-tenant queue-wait / usage / penalty distributions."""
        out: Dict[str, TenantStats] = {}
        tenant = self.jobs.tenant
        for tidx, name in enumerate(self.jobs.tenant_names):
            mask = tenant == tidx
            n = int(mask.sum())
            if n == 0:
                continue
            waits = self.wait_s[mask]
            pen_p50 = pen_p99 = None
            if self.penalty is not None:
                pens = self.penalty[mask]
                pens = pens[~np.isnan(pens)]
                if len(pens):
                    pen_p50 = float(np.percentile(pens, 50))
                    pen_p99 = float(np.percentile(pens, 99))
            out[name] = TenantStats(
                name=name,
                jobs=n,
                mean_wait_s=float(waits.mean()),
                wait_p50_s=float(np.percentile(waits, 50)),
                wait_p99_s=float(np.percentile(waits, 99)),
                gpu_busy_s=float(
                    (self.jobs.gpus[mask] * self.jobs.duration_s[mask]).sum()
                ),
                trapped_core_hours=float(self.trapped_core_s[mask].sum())
                / 3600.0,
                trapped_gpu_hours=float(self.trapped_gpu_s[mask].sum())
                / 3600.0,
                penalty_p50=pen_p50,
                penalty_p99=pen_p99,
            )
        return out

    def to_metrics(self) -> SimulationMetrics:
        """Aggregate view matching :class:`SimulationMetrics` (no
        per-job list; aggregates are numpy sums, equal to the scalar
        twins' within float reassociation)."""
        return SimulationMetrics(
            jobs=[],
            makespan_s=self.makespan_s,
            core_busy_s=self.core_busy_s,
            gpu_busy_s=self.gpu_busy_s,
            trapped_core_s=float(self.trapped_core_s.sum()),
            trapped_gpu_s=float(self.trapped_gpu_s.sum()),
            total_cores=self.cluster.total_cores,
            total_gpus=self.cluster.total_gpus,
        )

    def report(
        self,
        meta: Optional[Dict[str, object]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> RunReport:
        """A ``fleet``-kind :class:`RunReport` for this run.

        Publishes into ``registry`` (a fresh one by default, so the
        report is self-contained) and snapshots it.
        """
        reg = registry if registry is not None else MetricsRegistry()
        publish_fleet(self, reg)
        doc_meta: Dict[str, object] = {
            "mode": self.mode,
            "jobs": len(self),
            "tenants": list(self.jobs.tenant_names),
        }
        doc_meta.update(meta or {})
        return RunReport.collect(reg, kind="fleet", meta=doc_meta)


# ---------------------------------------------------------------------------
# The engine entry point
# ---------------------------------------------------------------------------


def _traditional_needs(jobs: FleetJobs, cluster: ClusterSpec) -> np.ndarray:
    cores_need = -(-jobs.cores // cluster.cores_per_node)
    if cluster.gpus_per_node:
        gpu_need = -(-jobs.gpus // cluster.gpus_per_node)
    else:
        gpu_need = np.zeros_like(jobs.gpus)
    need = np.maximum(1, np.maximum(cores_need, gpu_need))
    if len(need) and int(need.max()) > cluster.nodes:
        bad = int(np.argmax(need > cluster.nodes))
        raise ValueError(f"job {bad} larger than the machine")
    return need


def run_fleet(
    jobs: FleetJobs,
    cluster: ClusterSpec = ClusterSpec(),
    mode: str = "cdi",
    *,
    placement: str = "pack",
    topology: Optional[FleetTopology] = None,
    faults: Optional[FaultPlan] = None,
    surrogate: Optional[object] = None,
    penalty_matrix_size: int = 2048,
    penalty_threads: int = 1,
    trace: Optional[object] = None,
    registry: Optional[MetricsRegistry] = None,
) -> FleetResult:
    """Simulate the job stream on the fleet engine.

    ``mode`` selects the scheduling discipline: ``"traditional"``
    (whole heterogeneous nodes, one pool of node slots) or ``"cdi"``
    (exact cores + GPUs from two pools). Per-job timings and trapped
    accounting are bit-identical to the scalar reference twins — see
    :func:`assert_fleet_parity`.

    Optional layers, none of which perturb the schedule:

    * ``topology`` replays GPU grants onto racks under ``placement``
      (``pack`` / ``spread`` / ``locality``), yielding per-job fabric
      slack; with a ``surrogate`` (:class:`repro.serve.SurrogateModel`)
      the slacks become a per-tenant penalty distribution.
    * ``faults``: link-flap windows of a :class:`FaultPlan` freeze GPU
      admission fleet-wide while the fabric is down (composition needs
      the fabric; held cores keep accruing trapped time). This *does*
      change the schedule — parity holds for ``faults=None``.
    * ``trace``: a :class:`repro.trace.ColumnarTrace` that receives
      one KERNEL event per job (name = tenant, thread = tenant index,
      ``nbytes`` = GPU count) via the bulk columnar append.
    * ``registry``: fleet metrics are published under ``fleet.*``
      (defaults to the process registry when metrics are enabled).
    """
    if mode not in ("traditional", "cdi"):
        raise ValueError(f"unknown mode {mode!r}")
    if placement not in PLACEMENT_POLICIES:
        raise ValueError(f"unknown placement policy {placement!r}")
    n = len(jobs)
    if n == 0:
        raise ValueError("empty job stream")
    if topology is not None and topology.total_gpus != cluster.total_gpus:
        raise ValueError(
            f"topology holds {topology.total_gpus} GPUs, "
            f"cluster has {cluster.total_gpus}"
        )

    order = np.argsort(jobs.arrival_s, kind="stable")
    arr = jobs.arrival_s[order].tolist()
    dur = jobs.duration_s[order].tolist()

    if mode == "traditional":
        need = _traditional_needs(jobs, cluster)
        amt = need[order].tolist()
        gamt = [0] * n
        cap, gcap = cluster.nodes, 0
    else:
        if len(jobs) and (
            int(jobs.cores.max()) > cluster.total_cores
            or int(jobs.gpus.max()) > cluster.total_gpus
        ):
            bad = int(
                np.argmax(
                    (jobs.cores > cluster.total_cores)
                    | (jobs.gpus > cluster.total_gpus)
                )
            )
            raise ValueError(f"job {bad} larger than the machine")
        amt = jobs.cores[order].tolist()
        gamt = jobs.gpus[order].tolist()
        cap, gcap = cluster.total_cores, cluster.total_gpus

    grant_sorted, start_sorted, gpu_idx = _fleet_core(
        arr, dur, amt, gamt, cap, gcap, _flap_windows(faults)
    )

    # Scatter back to input order.
    inv = np.empty(n, dtype=np.int64)
    inv[order] = np.arange(n)
    grant = np.asarray(grant_sorted, dtype=np.float64)[inv]
    start = np.asarray(start_sorted, dtype=np.float64)[inv]
    end = start + jobs.duration_s
    wait = start - jobs.arrival_s

    if mode == "traditional":
        trapped_core = (need * cluster.cores_per_node - jobs.cores) * (
            jobs.duration_s
        )
        trapped_gpu = (need * cluster.gpus_per_node - jobs.gpus) * (
            jobs.duration_s
        )
    else:
        # Hold-and-wait: cores granted but blocked on the GPU pool.
        trapped_core = jobs.cores * (start - grant)
        trapped_gpu = np.zeros(n, dtype=np.float64)

    result = FleetResult(
        mode=mode,
        cluster=cluster,
        jobs=jobs,
        start_s=start,
        end_s=end,
        wait_s=wait,
        cores_start_s=grant,
        trapped_core_s=np.asarray(trapped_core, dtype=np.float64),
        trapped_gpu_s=np.asarray(trapped_gpu, dtype=np.float64),
        makespan_s=float(end.max()),
        core_busy_s=float((jobs.cores * jobs.duration_s).sum()),
        gpu_busy_s=float((jobs.gpus * jobs.duration_s).sum()),
    )

    if topology is not None and mode == "cdi":
        _replay_placement(result, order, gpu_idx, topology, placement)
        if surrogate is not None:
            _evaluate_penalties(
                result, surrogate, penalty_matrix_size, penalty_threads
            )

    if trace is not None:
        _record_trace(result, trace)

    reg = registry if registry is not None else get_registry()
    if reg.enabled:
        publish_fleet(result, reg)
    return result


def _replay_placement(
    result: FleetResult,
    order: np.ndarray,
    gpu_idx: List[int],
    topology: FleetTopology,
    placement: str,
) -> None:
    """Replay GPU grants/releases onto racks; fills slack columns.

    Placement never feeds back into admission (the engine schedules
    against total pool capacity, like the reference twins), so this is
    a pure post-pass in grant order.
    """
    policy = PLACEMENT_POLICIES[placement]
    jobs = result.jobs
    n = len(jobs)
    order_l = order.tolist()
    start_sorted = result.start_s[order].tolist()
    end_sorted = result.end_s[order].tolist()
    gpus_sorted = jobs.gpus[order].tolist()

    slack_rank = sorted(
        range(topology.racks), key=lambda r: (topology.rack_slack_s[r], r)
    )
    free = [topology.gpus_per_rack] * topology.racks
    slack = np.full(n, np.nan)
    rack_of: List[List[Tuple[int, int]]] = [[] for _ in range(n)]

    # Grants already come out of the core in chronological FIFO order
    # (gpu_idx is the admission sequence); merge with releases.
    events: List[Tuple[float, int, int]] = []
    for seq, i in enumerate(gpu_idx):
        events.append((start_sorted[i], 1, seq))
        events.append((end_sorted[i], 0, seq))
    events.sort()
    for _, kind, seq in events:
        i = gpu_idx[seq]
        job = order_l[i]
        if kind == 0:
            for rack, cnt in rack_of[job]:
                free[rack] += cnt
        else:
            placed = policy(free, gpus_sorted[i], slack_rank)
            rack_of[job] = placed
            slack[job] = max(topology.rack_slack_s[r] for r, _ in placed)
    result.placement = placement
    result.rack_of_gpus = rack_of
    result.slack_s = slack


def _evaluate_penalties(
    result: FleetResult,
    surrogate: object,
    matrix_size: int,
    threads: int,
) -> None:
    """Per-job penalties via the serving-layer surrogate (PR 7)."""
    assert result.slack_s is not None
    mask = ~np.isnan(result.slack_s)
    idx = np.flatnonzero(mask)
    pen = np.full(len(result.slack_s), np.nan)
    if len(idx):
        slacks = result.slack_s[idx]
        p, _bound, reason = surrogate.evaluate(  # type: ignore[attr-defined]
            np.full(len(idx), matrix_size, dtype=np.int64),
            np.full(len(idx), threads, dtype=np.int64),
            slacks,
        )
        pen[idx] = p
        result.penalty_refusals = int((reason != 0).sum())
    result.penalty = pen


def _record_trace(result: FleetResult, trace: object) -> None:
    """Record one KERNEL event per job into a ColumnarTrace."""
    from ..trace import EventKind

    jobs = result.jobs
    trace.record_batch(  # type: ignore[attr-defined]
        EventKind.KERNEL,
        [f"job:{jobs.tenant_names[t]}" for t in jobs.tenant.tolist()],
        result.start_s,
        result.end_s,
        nbytes=jobs.gpus,
        thread=jobs.tenant,
    )


# ---------------------------------------------------------------------------
# Parity against the scalar reference twins
# ---------------------------------------------------------------------------


def assert_fleet_parity(
    jobs: FleetJobs,
    cluster: ClusterSpec = ClusterSpec(),
    mode: str = "cdi",
) -> Tuple[FleetResult, SimulationMetrics]:
    """Run both engines and assert per-job **bit** parity.

    Compares wait / start / end, the cores-grant time and the trapped
    core/GPU accounting of every job between :func:`run_fleet` and the
    scalar reference twin. Raises ``AssertionError`` on the first
    mismatch; returns ``(fleet_result, reference_metrics)``.
    """
    fleet = run_fleet(jobs, cluster, mode)
    reference = (
        simulate_cdi if mode == "cdi" else simulate_traditional
    )(jobs.to_sim_jobs(), cluster)
    if len(reference.jobs) != len(jobs):
        raise AssertionError(
            f"job count mismatch: {len(reference.jobs)} != {len(jobs)}"
        )
    by_name = {j.name: j for j in reference.jobs}
    names = [
        f"{jobs.tenant_names[t]}-{i}"
        for i, t in enumerate(jobs.tenant.tolist())
    ]
    for i, name in enumerate(names):
        ref = by_name[name]
        for label, got, want in (
            ("wait_s", float(fleet.wait_s[i]), ref.wait_s),
            ("start_s", float(fleet.start_s[i]), ref.start_s),
            ("end_s", float(fleet.end_s[i]), ref.end_s),
            ("cores_start_s", float(fleet.cores_start_s[i]), ref.cores_start_s),
            ("trapped_core_s", float(fleet.trapped_core_s[i]), ref.trapped_core_s),
            ("trapped_gpu_s", float(fleet.trapped_gpu_s[i]), ref.trapped_gpu_s),
        ):
            if got != want:
                raise AssertionError(
                    f"{mode} parity broke at job {name} ({label}): "
                    f"fleet {got!r} != reference {want!r}"
                )
    return fleet, reference
