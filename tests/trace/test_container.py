"""Unit tests for trace events and the Trace container."""

import pytest

from repro.trace import CopyKind, EventKind, Trace, TraceEvent


def kernel(name, start, end, thread=0, stream=0):
    return TraceEvent(EventKind.KERNEL, name, start, end, thread=thread,
                      stream=stream)


def memcpy(nbytes, start, end, kind=CopyKind.H2D):
    return TraceEvent(EventKind.MEMCPY, f"memcpy{kind.value}", start, end,
                      nbytes=nbytes, copy_kind=kind)


class TestTraceEvent:
    def test_duration(self):
        e = kernel("k", 1.0, 3.5)
        assert e.duration == 2.5

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            kernel("k", 5.0, 1.0)

    def test_memcpy_requires_direction(self):
        with pytest.raises(ValueError):
            TraceEvent(EventKind.MEMCPY, "m", 0.0, 1.0, nbytes=10)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(EventKind.KERNEL, "k", 0.0, 1.0, nbytes=-1)

    def test_overlaps(self):
        a = kernel("a", 0.0, 2.0)
        b = kernel("b", 1.0, 3.0)
        c = kernel("c", 2.0, 4.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching, not overlapping

    def test_dict_roundtrip(self):
        e = memcpy(1024, 0.5, 1.5, CopyKind.D2H)
        e2 = TraceEvent.from_dict(e.to_dict())
        assert e2 == e


class TestTrace:
    def _sample(self):
        t = Trace(name="sample")
        t.append(kernel("gemm", 0.0, 1.0))
        t.append(memcpy(100, 1.0, 2.0))
        t.append(kernel("gemm", 2.0, 4.0))
        t.append(memcpy(200, 4.0, 5.0, CopyKind.D2H))
        t.append(kernel("reduce", 5.0, 5.5))
        return t

    def test_len_and_iteration_sorted(self):
        t = Trace()
        t.append(kernel("b", 5.0, 6.0))
        t.append(kernel("a", 0.0, 1.0))
        assert len(t) == 2
        assert [e.name for e in t] == ["a", "b"]
        assert t[0].name == "a"

    def test_kernels_and_memcpys_filters(self):
        t = self._sample()
        assert len(t.kernels()) == 3
        assert len(t.memcpys()) == 2
        assert len(t.memcpys(CopyKind.H2D)) == 1
        assert len(t.memcpys(CopyKind.D2H)) == 1

    def test_by_name_grouping(self):
        t = self._sample()
        groups = t.kernels().by_name()
        assert set(groups) == {"gemm", "reduce"}
        assert len(groups["gemm"]) == 2

    def test_span(self):
        t = self._sample()
        assert t.start == 0.0
        assert t.end == 5.5
        assert t.span == 5.5

    def test_empty_trace(self):
        t = Trace()
        assert t.span == 0.0
        assert t.total_time() == 0.0
        assert t.busy_time() == 0.0
        assert t.max_concurrency() == 0

    def test_durations_and_sizes(self):
        t = self._sample()
        assert t.kernels().durations().sum() == pytest.approx(3.5)
        assert t.memcpys().sizes().sum() == 300

    def test_busy_time_merges_overlap(self):
        t = Trace()
        t.append(kernel("a", 0.0, 2.0))
        t.append(kernel("b", 1.0, 3.0))  # overlaps a
        t.append(kernel("c", 5.0, 6.0))  # gap then isolated
        assert t.total_time() == pytest.approx(5.0)
        assert t.busy_time() == pytest.approx(4.0)

    def test_runtime_fraction(self):
        t = self._sample()
        # kernels busy 3.5 of span 5.5
        assert t.kernels().runtime_fraction(t.span) == pytest.approx(3.5 / 5.5)
        # with an explicit total runtime
        assert t.kernels().runtime_fraction(10.0) == pytest.approx(0.35)
        assert Trace().runtime_fraction(10.0) == 0.0

    def test_top_names_by_total_time(self):
        t = self._sample()
        top = t.kernels().top_names_by_total_time(1)
        assert top == ["gemm"]  # 3.0 s total vs reduce's 0.5 s

    def test_max_concurrency(self):
        t = Trace()
        t.append(kernel("a", 0.0, 4.0, stream=0))
        t.append(kernel("b", 1.0, 3.0, stream=1))
        t.append(kernel("c", 2.0, 5.0, stream=2))
        assert t.max_concurrency() == 3

    def test_max_concurrency_touching_intervals(self):
        t = Trace()
        t.append(kernel("a", 0.0, 1.0))
        t.append(kernel("b", 1.0, 2.0))
        assert t.max_concurrency() == 1

    def test_threads(self):
        t = Trace()
        t.append(kernel("a", 0.0, 1.0, thread=3))
        t.append(kernel("b", 1.0, 2.0, thread=1))
        assert t.threads() == [1, 3]

    def test_filter_predicate(self):
        t = self._sample()
        long_events = t.filter(lambda e: e.duration >= 1.0)
        assert len(long_events) == 4
