"""Shared experiment context: cached proxy surface and app profiles.

The Table IV / validation experiments all need the proxy's slack
response surface and the two application profiles — the expensive
artifacts of the reproduction. :class:`ExperimentContext` builds them
once per configuration and caches the surface on disk (JSON) so
repeated benchmark runs don't re-sweep.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..apps import (
    CosmoFlowProfileConfig,
    LammpsProfileConfig,
    profile_cosmoflow,
    profile_lammps,
)
from ..apps.base import AppProfile
from ..apps.lammps import LJParams
from ..proxy import (
    PAPER_MATRIX_SIZES,
    PAPER_SLACK_VALUES_S,
    PAPER_THREAD_COUNTS,
    SlackResponseSurface,
    run_slack_sweep,
)

__all__ = ["ExperimentContext", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Where cached surfaces live (repo-local, git-ignorable)."""
    return Path(__file__).resolve().parents[3] / ".cache"


@dataclass
class ExperimentContext:
    """Configuration + lazily built shared artifacts.

    ``quick`` trades fidelity for speed: fixed 25-iteration proxy
    runs and shortened application profiling runs. The full mode uses
    the paper's auto-calibrated iteration counts and run lengths.
    """

    quick: bool = True
    cache_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        self._surface: Optional[SlackResponseSurface] = None
        self._profiles: Dict[str, AppProfile] = {}

    # -- proxy surface -----------------------------------------------------------
    @property
    def sweep_iterations(self) -> Optional[int]:
        """Fixed iteration count in quick mode, auto-calibrated in full."""
        return 25 if self.quick else None

    def surface(self) -> SlackResponseSurface:
        """The proxy slack response surface (disk-cached)."""
        if self._surface is not None:
            return self._surface
        cache = self._surface_cache_path()
        if cache is not None and cache.exists():
            self._surface = SlackResponseSurface.from_json(cache)
            return self._surface
        sweep = run_slack_sweep(
            matrix_sizes=PAPER_MATRIX_SIZES,
            slack_values_s=PAPER_SLACK_VALUES_S,
            threads=PAPER_THREAD_COUNTS,
            iterations=self.sweep_iterations,
        )
        self._surface = SlackResponseSurface(sweep)
        if cache is not None:
            cache.parent.mkdir(parents=True, exist_ok=True)
            self._surface.to_json(cache)
        return self._surface

    def _surface_cache_path(self) -> Optional[Path]:
        base = self.cache_dir if self.cache_dir is not None else default_cache_dir()
        key = json.dumps(
            {
                "matrix_sizes": PAPER_MATRIX_SIZES,
                "slacks": PAPER_SLACK_VALUES_S,
                "threads": PAPER_THREAD_COUNTS,
                "iterations": self.sweep_iterations,
                "version": 1,
            },
            sort_keys=True,
        )
        digest = hashlib.sha256(key.encode()).hexdigest()[:16]
        return base / f"surface-{digest}.json"

    # -- application profiles ------------------------------------------------------
    def lammps_config(self) -> LammpsProfileConfig:
        """The LAMMPS profiling configuration (box 120, 8 ranks)."""
        steps = 500 if self.quick else 5000
        return LammpsProfileConfig(params=LJParams(120, steps=steps))

    def cosmoflow_config(self) -> CosmoFlowProfileConfig:
        """The CosmoFlow profiling configuration (mini dataset, batch 4)."""
        if self.quick:
            return CosmoFlowProfileConfig(
                epochs=1, train_samples=256, val_samples=256
            )
        return CosmoFlowProfileConfig()

    def lammps_profile(self) -> AppProfile:
        """Traced LAMMPS profile (memoized)."""
        if "lammps" not in self._profiles:
            self._profiles["lammps"] = profile_lammps(self.lammps_config())
        return self._profiles["lammps"]

    def cosmoflow_profile(self) -> AppProfile:
        """Traced CosmoFlow profile (memoized)."""
        if "cosmoflow" not in self._profiles:
            self._profiles["cosmoflow"] = profile_cosmoflow(
                self.cosmoflow_config()
            )
        return self._profiles["cosmoflow"]

    def profiles(self) -> Tuple[AppProfile, AppProfile]:
        """Both application profiles."""
        return self.lammps_profile(), self.cosmoflow_profile()
