"""Penalty-as-a-service: surrogate serving over cached sweep results.

The sweep/model layers answer "what penalty does this workload pay at
this slack?" by running a discrete-event simulation — seconds per
point. This package answers the same question at production query
rates by serving a fitted surrogate over the points those sweeps
already measured:

* :class:`SurrogateModel` — vectorized bounded-error interpolation
  over cached :class:`~repro.proxy.SweepPoint` data, exact-parity
  with :class:`~repro.proxy.SlackResponseSurface` at measured points,
  with a typed refusing domain (:class:`SurrogateDomainError`).
* :class:`PenaltyService` — asyncio micro-batching front end with a
  bounded queue, single-numpy-call batch evaluation, and an optional
  DES cold path (:class:`ColdPathConfig`) that measures refused
  queries for real and folds them back into the surrogate.
* :func:`predict_penalty` — the one-shot convenience behind
  ``rowscale-cdi predict``.

Constructors here are keyword-only: the serving API is configuration,
and configuration reads better named.
"""

from .service import (
    ColdPathConfig,
    PenaltyService,
    ServiceOverloadedError,
    predict_penalty,
)
from .surrogate import (
    Prediction,
    REFUSAL_REASONS,
    SurrogateDomainError,
    SurrogateModel,
    assert_parity,
)

__all__ = [
    "SurrogateModel",
    "Prediction",
    "SurrogateDomainError",
    "REFUSAL_REASONS",
    "assert_parity",
    "PenaltyService",
    "ColdPathConfig",
    "ServiceOverloadedError",
    "predict_penalty",
]
