"""FaultPlan as a value: spec parsing, validation, serialization.

The plan layer is declarative — everything here runs without a
simulation. The properties pinned down are the ones the cache and the
CLI lean on: plans round-trip through their document form exactly,
the cache token is canonical, scaling behaves like an intensity dial,
and invalid inputs fail loudly at construction time.
"""

import json

import pytest

from repro.faults import (
    CongestionEpisode,
    FaultPlan,
    GpuStall,
    LatencySpike,
    LinkFlap,
    MessageLoss,
    parse_seconds,
)


class TestParseSeconds:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("100us", 100e-6),
            ("1.5ms", 1.5e-3),
            ("2s", 2.0),
            ("0.25", 0.25),
            (3e-3, 3e-3),
            (5, 5.0),
        ],
    )
    def test_values(self, text, expected):
        assert parse_seconds(text) == pytest.approx(expected)

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_seconds("fast")


class TestEventValidation:
    def test_spike_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            LatencySpike(start_s=0.0, duration_s=0.0, extra_s=1e-6)

    def test_spike_rejects_negative_start(self):
        with pytest.raises(ValueError):
            LatencySpike(start_s=-1.0, duration_s=1.0, extra_s=1e-6)

    def test_loss_rejects_rate_out_of_range(self):
        with pytest.raises(ValueError):
            MessageLoss(rate=0.0)
        with pytest.raises(ValueError):
            MessageLoss(rate=1.5)

    def test_loss_rejects_zero_retries(self):
        with pytest.raises(ValueError):
            MessageLoss(rate=0.1, max_retries=0)

    def test_congestion_rejects_saturated_utilization(self):
        with pytest.raises(ValueError):
            CongestionEpisode(start_s=0.0, duration_s=1.0, utilization=1.0)

    def test_flap_rejects_zero_window(self):
        with pytest.raises(ValueError):
            LinkFlap(start_s=0.0, down_s=0.0)

    def test_plan_rejects_overlapping_flaps(self):
        plan = FaultPlan(
            events=(
                LinkFlap(start_s=0.0, down_s=2e-3),
                LinkFlap(start_s=1e-3, down_s=1e-3),
            )
        )
        with pytest.raises(ValueError, match="overlapping link flaps"):
            plan.validate()

    def test_plan_accepts_adjacent_flaps(self):
        plan = FaultPlan(
            events=(
                LinkFlap(start_s=0.0, down_s=1e-3),
                LinkFlap(start_s=1e-3, down_s=1e-3),
            )
        )
        assert plan.validate() is plan


class TestEmptyPlan:
    def test_is_empty_and_compiles_to_none(self):
        from repro.des import Environment

        plan = FaultPlan()
        assert plan.is_empty
        assert plan.compile(Environment()) is None

    def test_with_event_makes_nonempty(self):
        plan = FaultPlan().with_event(MessageLoss(rate=0.01))
        assert not plan.is_empty
        assert len(plan.events) == 1


class TestScaling:
    PLAN = FaultPlan(
        seed=7,
        events=(
            LatencySpike(start_s=0.0, duration_s=1e-2, extra_s=1e-4),
            MessageLoss(rate=0.01),
            LinkFlap(start_s=5e-3, down_s=2e-3),
            GpuStall(start_s=0.0, duration_s=1e-2, extra_s=5e-5),
        ),
    )

    def test_zero_intensity_is_healthy(self):
        scaled = self.PLAN.scaled(0.0)
        assert scaled.is_empty
        assert scaled.seed == self.PLAN.seed

    def test_unit_intensity_is_identity(self):
        assert self.PLAN.scaled(1.0) == self.PLAN

    def test_magnitudes_scale(self):
        scaled = self.PLAN.scaled(2.0)
        spike, loss, flap, stall = scaled.events
        assert spike.extra_s == pytest.approx(2e-4)
        assert loss.rate == pytest.approx(0.02)
        assert flap.down_s == pytest.approx(4e-3)
        assert stall.extra_s == pytest.approx(1e-4)

    def test_loss_rate_caps_at_one(self):
        scaled = FaultPlan(events=(MessageLoss(rate=0.6),)).scaled(3.0)
        assert scaled.events[0].rate == 1.0

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            self.PLAN.scaled(-0.5)


class TestSerialization:
    PLAN = FaultPlan(
        seed=42,
        events=(
            MessageLoss(rate=0.01, backoff_base_s=2e-4, max_retries=4),
            LinkFlap(start_s=5e-3, down_s=2e-3),
            CongestionEpisode(start_s=0.0, duration_s=1e-2, utilization=0.8),
        ),
    )

    def test_doc_roundtrip_is_exact(self):
        assert FaultPlan.from_doc(self.PLAN.to_doc()) == self.PLAN

    def test_doc_is_json_serializable(self):
        text = json.dumps(self.PLAN.to_doc(), sort_keys=True)
        assert FaultPlan.from_doc(json.loads(text)) == self.PLAN

    def test_cache_token_stable_and_discriminating(self):
        assert self.PLAN.cache_token() == self.PLAN.cache_token()
        other = FaultPlan(seed=43, events=self.PLAN.events)
        assert other.cache_token() != self.PLAN.cache_token()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultPlan.from_doc({"seed": 0, "events": [{"kind": "meteor"}]})

    def test_bad_fields_rejected(self):
        with pytest.raises(ValueError, match="bad flap event fields"):
            FaultPlan.from_doc(
                {"seed": 0, "events": [{"kind": "flap", "bogus": 1}]}
            )


class TestSpecDSL:
    SPEC = (
        "seed=42;loss:rate=1%;flap:start=5ms,down=2ms;"
        "spike:start=0,duration=10ms,extra=100us"
    )

    def test_full_spec(self):
        plan = FaultPlan.from_spec(self.SPEC)
        assert plan.seed == 42
        loss, flap, spike = plan.events
        assert isinstance(loss, MessageLoss) and loss.rate == pytest.approx(0.01)
        assert isinstance(flap, LinkFlap)
        assert flap.start_s == pytest.approx(5e-3)
        assert flap.down_s == pytest.approx(2e-3)
        assert isinstance(spike, LatencySpike)
        assert spike.extra_s == pytest.approx(100e-6)

    def test_loss_extras(self):
        plan = FaultPlan.from_spec(
            "loss:rate=0.02,backoff=50us,retries=3,start=1ms,duration=4ms"
        )
        (loss,) = plan.events
        assert loss.rate == pytest.approx(0.02)
        assert loss.backoff_base_s == pytest.approx(50e-6)
        assert loss.max_retries == 3
        assert loss.duration_s == pytest.approx(4e-3)

    def test_congestion_clause(self):
        plan = FaultPlan.from_spec(
            "congestion:start=0,duration=5ms,utilization=80%"
        )
        (episode,) = plan.events
        assert isinstance(episode, CongestionEpisode)
        assert episode.utilization == pytest.approx(0.8)
        assert episode.extra_s > 0

    def test_empty_spec_is_healthy(self):
        assert FaultPlan.from_spec("").is_empty
        assert FaultPlan.from_spec("  ").is_empty

    def test_json_spec(self):
        plan = FaultPlan.from_spec(self.SPEC)
        text = json.dumps(plan.to_doc())
        assert FaultPlan.from_spec(text) == plan

    def test_unknown_clause_rejected(self):
        with pytest.raises(ValueError, match="unknown fault clause"):
            FaultPlan.from_spec("earthquake:magnitude=9")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            FaultPlan.from_spec("flap:start=1ms,wobble=2ms")

    def test_incomplete_clause_rejected(self):
        with pytest.raises(ValueError, match="incomplete"):
            FaultPlan.from_spec("flap:start=1ms")

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError, match="bad seed"):
            FaultPlan.from_spec("seed=lucky")

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError, match="bad fault-plan JSON"):
            FaultPlan.from_spec("{not json")

    def test_describe_mentions_every_event(self):
        text = FaultPlan.from_spec(self.SPEC).describe()
        assert "seed=42" in text
        for word in ("loss", "flap", "spike", "determinism"):
            assert word in text

    def test_describe_empty_plan(self):
        assert "healthy fabric" in FaultPlan().describe()

    def test_describe_prints_dyadic_grid_windows(self):
        from repro.des import TICK_S, quantize

        text = FaultPlan.from_spec(
            "flap:start=5ms,down=2ms;loss:rate=1%"
        ).describe()
        # The printed window is exactly the injector's pre-quantized
        # runtime window: start and duration snapped independently,
        # end = start + duration.
        start = quantize(5e-3)
        end = start + quantize(2e-3)
        assert f"[{int(round(start / TICK_S))}, " \
               f"{int(round(end / TICK_S))}) ticks" in text
        assert f"[{start!r}s, {end!r}s)" in text
        # An unbounded loss window prints an infinite end.
        assert "[0, inf) ticks" in text
