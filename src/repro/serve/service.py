"""Penalty-as-a-service: micro-batched async serving with a DES cold path.

:class:`PenaltyService` turns the :class:`~repro.serve.SurrogateModel`
into a serving component an application scheduler (or a capacity
planner's inner loop) can query at production rates:

* **Bounded intake.** Requests enter a bounded :class:`asyncio.Queue`;
  when it is full the caller gets a typed
  :class:`ServiceOverloadedError` immediately instead of unbounded
  buffering — overload is a signal, not a memory leak.
* **Micro-batching.** One batcher task drains whatever is queued (up
  to ``max_batch``) and answers the whole batch with a *single*
  vectorized :meth:`~repro.serve.SurrogateModel.evaluate` call. The
  per-request Python work is one future resolution; everything else
  is numpy over the packed series arrays. This is what sustains the
  serving benchmark's ≥100k predictions/s warm-path target in one
  process.
* **Cold path.** Queries the surrogate refuses (unknown series, slack
  beyond the grid, too-short series) fall back — when a
  :class:`ColdPathConfig` is given — to a *real* DES measurement
  through :func:`repro.proxy.run_slack_sweep`, which brings the
  per-point cache and :class:`~repro.parallel.SweepExecutor` with it
  (a previously-measured point is a cache hit, not a re-simulation).
  The measurement is :meth:`~repro.serve.SurrogateModel.observe`-d
  back into the surrogate, so the region is warm for every later
  query; concurrent misses on the same quantized point share one
  in-flight measurement. Negative slack is never measured — it is a
  caller error and raises through.

Telemetry follows the repo's snapshot idiom: the hot path counts into
plain ints, :meth:`PenaltyService.publish` folds them into the active
metrics registry under ``serve.*`` (see
:func:`repro.obs.publish_service`), and :meth:`PenaltyService.report`
wraps that into a ``kind="serve"`` :class:`~repro.obs.RunReport`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import RunReport, get_registry
from ..obs.publish import publish_service
from ..proxy.options import SweepOptions
from ..proxy.quantize import slack_bucket
from .surrogate import Prediction, SurrogateDomainError, SurrogateModel

__all__ = [
    "ColdPathConfig",
    "PenaltyService",
    "ServiceOverloadedError",
    "predict_penalty",
]


class ServiceOverloadedError(RuntimeError):
    """The bounded request queue is full; the caller should back off."""


@dataclass(frozen=True, kw_only=True)
class ColdPathConfig:
    """How the service measures a refused query for real.

    ``iterations`` / ``target_compute_s`` size the DES proxy run
    (small defaults: the cold path trades a little measurement noise
    for latency; re-fit from a dense sweep for certified bounds).
    ``options`` carries the executor knobs — in particular
    ``cache=True`` makes repeated cold misses across service restarts
    hit the on-disk :class:`~repro.parallel.PointCache` instead of
    re-simulating. ``max_concurrent`` bounds simultaneous DES
    measurements so a burst of distinct cold queries cannot fork an
    unbounded thread pile.
    """

    iterations: int = 6
    target_compute_s: float = 30.0
    options: SweepOptions = SweepOptions(workers=1, cache=True)
    max_concurrent: int = 2
    #: > 1 offloads each cold measurement to that many shard
    #: subprocesses via :class:`~repro.parallel.ShardCoordinator`: the
    #: serving process never runs the DES itself, the workers share
    #: the service's point cache, and the answer is byte-identical to
    #: the in-process path (the merge contract).
    shard_workers: int = 0


@dataclass
class ServiceStats:
    """Plain-int hot-path counters (see :meth:`PenaltyService.stats`)."""

    requests: int = 0
    answered_warm: int = 0
    refused: int = 0
    overloads: int = 0
    batches: int = 0
    max_batch: int = 0
    queue_high_water: int = 0
    cold_misses: int = 0
    cold_shared: int = 0
    cold_measured_points: int = 0
    cold_wall_s: float = 0.0

    def to_doc(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "answered_warm": self.answered_warm,
            "refused": self.refused,
            "overloads": self.overloads,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "queue_high_water": self.queue_high_water,
            "cold_misses": self.cold_misses,
            "cold_shared": self.cold_shared,
            "cold_measured_points": self.cold_measured_points,
            "cold_wall_s": self.cold_wall_s,
        }


class PenaltyService:
    """Async micro-batching front end over a fitted surrogate.

    Keyword-only construction; use as an async context manager (or
    call :meth:`start` / :meth:`stop` explicitly)::

        model = SurrogateModel.fit(sweep)
        async with PenaltyService(surrogate=model) as svc:
            penalty, bound = await svc.predict(4096, 1e-4, threads=2)

    Without a ``cold_path`` the service is pure warm-path: refusals
    raise :class:`~repro.serve.SurrogateDomainError` to the caller.
    """

    def __init__(
        self,
        *,
        surrogate: SurrogateModel,
        max_queue: int = 4096,
        max_batch: int = 1024,
        cold_path: Optional[ColdPathConfig] = None,
    ) -> None:
        if max_queue < 1 or max_batch < 1:
            raise ValueError("max_queue and max_batch must be >= 1")
        self.surrogate = surrogate
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.cold_path = cold_path
        self.stats_counters = ServiceStats()
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._cold_sem: Optional[asyncio.Semaphore] = None
        self._inflight: Dict[Tuple[int, int, str], asyncio.Task] = {}

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> "PenaltyService":
        """Create the request queue and launch the batcher task."""
        if self._batcher is not None:
            return self
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        if self.cold_path is not None:
            self._cold_sem = asyncio.Semaphore(self.cold_path.max_concurrent)
        self._batcher = asyncio.create_task(
            self._batch_loop(), name="penalty-service-batcher"
        )
        return self

    async def stop(self) -> None:
        """Drain in-flight work and stop the batcher."""
        if self._batcher is None:
            return
        assert self._queue is not None
        await self._queue.put(None)  # sentinel: drain then exit
        await self._batcher
        self._batcher = None
        for task in list(self._inflight.values()):
            try:
                await task
            except Exception:
                pass  # surfaced through the waiter futures already
        self._inflight.clear()

    async def __aenter__(self) -> "PenaltyService":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- request path ---------------------------------------------------------
    async def predict(
        self, matrix_size: int, slack_s: float, threads: int = 1
    ) -> Prediction:
        """One penalty prediction with its error bound.

        Argument order mirrors
        :meth:`~repro.proxy.SlackResponseSurface.penalty`. Raises
        :class:`ServiceOverloadedError` when the bounded queue is
        full, and :class:`~repro.serve.SurrogateDomainError` when the
        query is refused and no cold path can answer it.
        """
        return await self._submit(
            (int(matrix_size), int(threads), float(slack_s))
        )

    async def predict_many(
        self, queries: List[Tuple[int, float, int]]
    ) -> List[Prediction]:
        """Concurrent form: ``(matrix_size, slack_s, threads)`` triples."""
        return list(
            await asyncio.gather(
                *(self.predict(n, s, t) for (n, s, t) in queries)
            )
        )

    async def predict_batch(
        self,
        matrix_sizes: Sequence[int],
        slack_values_s: Sequence[float],
        threads: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Warm-only vectorized batch: arrays in, arrays out.

        The whole batch occupies one queue slot and one future, and is
        answered inside the batcher's single numpy evaluation — no
        per-element Python anywhere, which is what the ≥100k/s serving
        throughput target rides on. Returns ``(penalties, bounds)``
        aligned with the inputs. The batch path never falls back to
        the cold path: any refused element raises the corresponding
        :class:`~repro.serve.SurrogateDomainError` for the first
        refusal (batch consumers are expected to pre-validate against
        :meth:`~repro.serve.SurrogateModel.domain`, or retry the
        refused element through :meth:`predict`).
        """
        n = np.asarray(matrix_sizes, dtype=np.int64)
        s = np.asarray(slack_values_s, dtype=np.float64)
        t = (
            np.ones(len(n), dtype=np.int64)
            if threads is None
            else np.asarray(threads, dtype=np.int64)
        )
        return await self._submit((n, t, s))

    async def _submit(self, work: Tuple[Any, Any, Any]) -> Any:
        if self._queue is None:
            raise RuntimeError(
                "PenaltyService is not running; use 'async with' or start()"
            )
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((*work, fut))
        except asyncio.QueueFull:
            self.stats_counters.overloads += 1
            raise ServiceOverloadedError(
                f"request queue full ({self.max_queue}); back off"
            ) from None
        return await fut

    # -- batcher --------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            batch: List[Tuple[int, int, float, asyncio.Future]] = []
            stop = item is None
            if item is not None:
                batch.append(item)
            while len(batch) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            if batch:
                depth = len(batch) + self._queue.qsize()
                if depth > self.stats_counters.queue_high_water:
                    self.stats_counters.queue_high_water = depth
                self._process(batch)
            if stop:
                return

    def _process(
        self, batch: List[Tuple[Any, Any, Any, asyncio.Future]]
    ) -> None:
        """Answer one drained batch with a single vectorized evaluate.

        Queue items are either scalar requests (``predict``) or whole
        array batches (``predict_batch``); both concatenate into one
        evaluation, then each item reads back its own slice.
        """
        st = self.stats_counters
        st.batches += 1
        # Expand: (start, count) slice of the concatenated arrays per item.
        spans: List[Tuple[int, int]] = []
        sizes: List[Any] = []
        thrs: List[Any] = []
        slacks: List[Any] = []
        cursor = 0
        for size, threads, slack, _fut in batch:
            count = 1 if isinstance(size, int) else len(size)
            spans.append((cursor, count))
            cursor += count
            if count == 1 and isinstance(size, int):
                sizes.append(size)
                thrs.append(threads)
                slacks.append(slack)
            else:
                sizes.extend(size)
                thrs.extend(threads)
                slacks.extend(slack)
        st.requests += cursor
        st.max_batch = max(st.max_batch, cursor)
        pen, bound, reason = self.surrogate.evaluate(sizes, thrs, slacks)
        for (size, threads, slack, fut), (start, count) in zip(batch, spans):
            if fut.cancelled():
                continue
            if isinstance(size, int):
                self._answer_one(
                    size, threads, slack, fut,
                    float(pen[start]), float(bound[start]),
                    int(reason[start]),
                )
                continue
            sl = slice(start, start + count)
            refused = np.flatnonzero(reason[sl])
            if len(refused) == 0:
                st.answered_warm += count
                fut.set_result((pen[sl].copy(), bound[sl].copy()))
            else:
                st.refused += count
                i = int(refused[0])
                name = (
                    self.surrogate.reason_name(int(reason[start + i]))
                    or "unknown"
                )
                query = (int(size[i]), int(threads[i]), float(slack[i]))
                fut.set_exception(
                    SurrogateDomainError(
                        name,
                        f"batch element {i} refused ({name}): "
                        f"matrix_size={query[0]} threads={query[1]} "
                        f"slack_s={query[2]!r}",
                        query,
                    )
                )

    def _answer_one(
        self,
        size: int,
        threads: int,
        slack: float,
        fut: asyncio.Future,
        pen: float,
        bound: float,
        reason: int,
    ) -> None:
        st = self.stats_counters
        if reason == 0:
            st.answered_warm += 1
            fut.set_result(Prediction(pen, bound))
            return
        name = self.surrogate.reason_name(reason) or "unknown"
        if self.cold_path is None or name == "negative-slack":
            st.refused += 1
            fut.set_exception(
                SurrogateDomainError(
                    name,
                    f"surrogate refuses ({name}): matrix_size={size} "
                    f"threads={threads} slack_s={slack!r}",
                    (size, threads, slack),
                )
            )
        else:
            self._schedule_cold(size, threads, slack, fut)

    # -- cold path ------------------------------------------------------------
    def _schedule_cold(
        self, size: int, threads: int, slack: float, fut: asyncio.Future
    ) -> None:
        key = (size, threads, slack_bucket(slack))
        task = self._inflight.get(key)
        if task is None:
            self.stats_counters.cold_misses += 1
            task = asyncio.create_task(
                self._cold_measure(key, size, threads, slack)
            )
            self._inflight[key] = task
        else:
            self.stats_counters.cold_shared += 1
        task.add_done_callback(
            lambda t: self._finish_cold(t, size, threads, slack, fut)
        )

    async def _cold_measure(
        self,
        key: Tuple[int, int, str],
        size: int,
        threads: int,
        slack: float,
    ) -> None:
        assert self.cold_path is not None and self._cold_sem is not None
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            async with self._cold_sem:
                measured = await loop.run_in_executor(
                    None, self._measure_sync, size, threads, slack
                )
        finally:
            self._inflight.pop(key, None)
            self.stats_counters.cold_wall_s += loop.time() - start
        for s, p in measured:
            self.surrogate.observe(size, threads, s, p)
        self.stats_counters.cold_measured_points += len(measured)

    def _measure_sync(
        self, size: int, threads: int, slack: float
    ) -> List[Tuple[float, float]]:
        """Blocking DES measurement (thread pool): the real answer.

        Runs the requested point through ``run_slack_sweep`` — cache,
        executor, calibration and all. When the surrogate's series for
        this key would stay below two points (unknown or degenerate
        series), a companion point at half the slack rides along so
        the refit series becomes viable for interpolation instead of
        refusing everything but the exact point.
        """
        from ..proxy.sweep import run_slack_sweep

        cfg = self.cold_path
        assert cfg is not None
        slacks = [slack]
        if self.surrogate.series_points(size, threads) < 2:
            companion = slack / 2.0
            if companion > 0:
                slacks = [companion, slack]
        if cfg.shard_workers > 1:
            # Offload to shard subprocesses (byte-identical by the
            # merge contract; see ColdPathConfig.shard_workers).
            from ..parallel import GridSpec, ShardCoordinator

            grid = GridSpec(
                matrix_sizes=(size,),
                slack_values_s=tuple(slacks),
                threads=(threads,),
                iterations=cfg.iterations,
                target_compute_s=cfg.target_compute_s,
            )
            result = ShardCoordinator(
                grid,
                min(cfg.shard_workers, grid.task_count),
                options=cfg.options,
            ).run()
        else:
            result = run_slack_sweep(
                matrix_sizes=[size],
                slack_values_s=slacks,
                threads=[threads],
                iterations=cfg.iterations,
                target_compute_s=cfg.target_compute_s,
                options=cfg.options,
            )
        return [
            (s, max(0.0, result.get(size, threads, s).penalty))
            for s in slacks
        ]

    def _finish_cold(
        self,
        task: "asyncio.Task[None]",
        size: int,
        threads: int,
        slack: float,
        fut: asyncio.Future,
    ) -> None:
        if fut.cancelled():
            return
        exc = task.exception() if not task.cancelled() else None
        if task.cancelled():
            fut.cancel()
            return
        if exc is not None:
            fut.set_exception(exc)
            return
        try:
            fut.set_result(
                self.surrogate.predict(size, slack, threads)
            )
        except SurrogateDomainError as err:
            self.stats_counters.refused += 1
            fut.set_exception(err)

    # -- telemetry ------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Hot-path counters plus surrogate refusal/observation state."""
        doc = self.stats_counters.to_doc()
        doc["observed_points"] = float(self.surrogate.observed_points)
        for name, count in self.surrogate.refusals.items():
            doc[f"refusal.{name}"] = float(count)
        return doc

    def publish(self, registry: Any = None) -> None:
        """Fold the service counters into the metrics registry."""
        publish_service(self.stats(), registry)

    def report(self, meta: Optional[Dict[str, Any]] = None) -> RunReport:
        """Publish and snapshot a ``kind="serve"`` run report."""
        self.publish()
        merged = {
            "max_queue": self.max_queue,
            "max_batch": self.max_batch,
            "cold_path": self.cold_path is not None,
            "surrogate_method": self.surrogate.method,
            "series": len(self.surrogate.series_keys),
        }
        merged.update(meta or {})
        return RunReport.collect(get_registry(), kind="serve", meta=merged)


def predict_penalty(
    matrix_size: int,
    slack_s: float,
    threads: int = 1,
    *,
    surrogate: SurrogateModel,
    cold_path: Optional[ColdPathConfig] = None,
) -> Prediction:
    """One-shot synchronous prediction through a short-lived service.

    The convenience form behind ``repro predict``: spins up a
    :class:`PenaltyService` for a single query and tears it down. Use
    a long-lived service for real serving — the one-shot pays the
    event-loop setup on every call.
    """

    async def _run() -> Prediction:
        async with PenaltyService(
            surrogate=surrogate, cold_path=cold_path
        ) as svc:
            return await svc.predict(matrix_size, slack_s, threads)

    return asyncio.run(_run())
