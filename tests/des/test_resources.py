"""Unit tests for DES resources: Resource, Container, Store variants."""

import pytest

from repro.des import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grant_times = []

    def user(env, res, hold):
        with res.request() as req:
            yield req
            grant_times.append(env.now)
            yield env.timeout(hold)

    for _ in range(3):
        env.process(user(env, res, 10.0))
    env.run()
    # Two granted immediately, third waits for first release at t=10.
    assert grant_times == [0.0, 0.0, 10.0]


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    env.process(user(env, res))
    env.process(user(env, res))
    env.run()
    assert res.count == 0
    assert env.now == 2.0


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, name, arrive):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(5.0)

    env.process(user(env, res, "a", 0.0))
    env.process(user(env, res, "b", 1.0))
    env.process(user(env, res, "c", 2.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_resource_release_foreign_request_raises():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    env.process(user(env, res))
    env.run()


def test_resource_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)
    holders = []

    def holder(env, res):
        with res.request() as req:
            yield req
            holders.append("holder")
            yield env.timeout(10.0)

    def impatient(env, res):
        req = res.request()
        result = yield req | env.timeout(1.0)
        if req not in result:
            req.cancel()
            holders.append("gave-up")

    env.process(holder(env, res))
    env.process(impatient(env, res))
    env.run()
    assert holders == ["holder", "gave-up"]
    assert len(res.queue) == 0


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(env, res, name, prio, arrive):
        yield env.timeout(arrive)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(10.0)

    env.process(user(env, res, "first", 5, 0.0))
    env.process(user(env, res, "low", 5, 1.0))
    env.process(user(env, res, "high", 0, 2.0))
    env.run()
    assert order == ["first", "high", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(env, res, name, arrive):
        yield env.timeout(arrive)
        with res.request(priority=1) as req:
            yield req
            order.append(name)
            yield env.timeout(10.0)

    for i, name in enumerate(["a", "b", "c"]):
        env.process(user(env, res, name, float(i)))
    env.run()
    assert order == ["a", "b", "c"]


def test_container_put_get_levels():
    env = Environment()
    box = Container(env, capacity=100.0, init=50.0)

    def proc(env, box):
        yield box.get(30.0)
        assert box.level == 20.0
        yield box.put(60.0)
        assert box.level == 80.0

    env.process(proc(env, box))
    env.run()
    assert box.level == 80.0


def test_container_get_blocks_until_available():
    env = Environment()
    box = Container(env, capacity=100.0, init=0.0)
    times = []

    def consumer(env, box):
        yield box.get(10.0)
        times.append(env.now)

    def producer(env, box):
        yield env.timeout(5.0)
        yield box.put(10.0)

    env.process(consumer(env, box))
    env.process(producer(env, box))
    env.run()
    assert times == [5.0]


def test_container_put_blocks_when_full():
    env = Environment()
    box = Container(env, capacity=10.0, init=10.0)
    times = []

    def producer(env, box):
        yield box.put(5.0)
        times.append(env.now)

    def consumer(env, box):
        yield env.timeout(3.0)
        yield box.get(5.0)

    env.process(producer(env, box))
    env.process(consumer(env, box))
    env.run()
    assert times == [3.0]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    box = Container(env, capacity=10)
    with pytest.raises(ValueError):
        box.put(0)
    with pytest.raises(ValueError):
        box.get(-1)


def test_store_fifo():
    env = Environment()
    store: Store[int] = Store(env)
    got = []

    def producer(env, store):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_on_empty():
    env = Environment()
    store: Store[str] = Store(env)
    times = []

    def consumer(env, store):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env, store):
        yield env.timeout(4.0)
        yield store.put("x")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert times == [(4.0, "x")]


def test_store_put_blocks_when_full():
    env = Environment()
    store: Store[int] = Store(env, capacity=1)
    events = []

    def producer(env, store):
        yield store.put(1)
        events.append(("put1", env.now))
        yield store.put(2)
        events.append(("put2", env.now))

    def consumer(env, store):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert events == [("put1", 0.0), ("put2", 5.0)]


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_filter_store_selects_matching_item():
    env = Environment()
    store: FilterStore[dict] = FilterStore(env)
    got = []

    def producer(env, store):
        yield store.put({"kind": "a", "id": 1})
        yield store.put({"kind": "b", "id": 2})
        yield store.put({"kind": "a", "id": 3})

    def consumer(env, store):
        item = yield store.get(lambda it: it["kind"] == "b")
        got.append(item["id"])

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == [2]
    assert [it["id"] for it in store.items] == [1, 3]


def test_filter_store_waits_for_match():
    env = Environment()
    store: FilterStore[int] = FilterStore(env)
    got = []

    def consumer(env, store):
        item = yield store.get(lambda x: x > 10)
        got.append((env.now, item))

    def producer(env, store):
        yield store.put(1)
        yield env.timeout(2.0)
        yield store.put(99)

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [(2.0, 99)]


class TestPreemptiveResource:
    def test_high_priority_evicts_low(self):
        from repro.des import Interrupt, Preempted, PreemptiveResource

        env = Environment()
        res = PreemptiveResource(env, capacity=1)
        log = []

        def low(env, res):
            with res.request(priority=5) as req:
                yield req
                try:
                    yield env.timeout(100)
                except Interrupt as intr:
                    assert isinstance(intr.cause, Preempted)
                    log.append(("evicted-at", env.now,
                                intr.cause.usage_since))

        def high(env, res):
            yield env.timeout(10)
            with res.request(priority=0) as req:
                yield req
                log.append(("granted-at", env.now))
                yield env.timeout(5)

        env.process(low(env, res))
        env.process(high(env, res))
        env.run()
        assert log == [("evicted-at", 10.0, 0.0), ("granted-at", 10.0)]

    def test_equal_priority_does_not_preempt(self):
        from repro.des import PreemptiveResource

        env = Environment()
        res = PreemptiveResource(env, capacity=1)
        order = []

        def user(env, res, name, arrive):
            yield env.timeout(arrive)
            with res.request(priority=3) as req:
                yield req
                order.append((name, env.now))
                yield env.timeout(10)

        env.process(user(env, res, "first", 0.0))
        env.process(user(env, res, "second", 1.0))
        env.run()
        assert order == [("first", 0.0), ("second", 10.0)]

    def test_preempt_false_waits(self):
        from repro.des import PreemptiveResource

        env = Environment()
        res = PreemptiveResource(env, capacity=1)
        order = []

        def low(env, res):
            with res.request(priority=5) as req:
                yield req
                yield env.timeout(20)
                order.append(("low-done", env.now))

        def polite_high(env, res):
            yield env.timeout(1)
            with res.request(priority=0, preempt=False) as req:
                yield req
                order.append(("high", env.now))

        env.process(low(env, res))
        env.process(polite_high(env, res))
        env.run()
        assert order == [("low-done", 20.0), ("high", 20.0)]

    def test_lower_priority_never_evicts(self):
        from repro.des import PreemptiveResource

        env = Environment()
        res = PreemptiveResource(env, capacity=1)
        finished = []

        def important(env, res):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(50)
                finished.append("important")

        def upstart(env, res):
            yield env.timeout(5)
            with res.request(priority=9) as req:
                yield req
                finished.append("upstart")

        env.process(important(env, res))
        env.process(upstart(env, res))
        env.run()
        assert finished == ["important", "upstart"]
