"""Figure 5: violin distributions of memcpy sizes for both apps."""

from __future__ import annotations

from ..hw import MiB
from ..trace import memcpy_size_profile
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce Figure 5's memcpy-size distributions."""
    ctx = ctx or ExperimentContext()
    result = ExperimentResult(experiment_id="figure5")
    for profile in ctx.profiles():
        dist = memcpy_size_profile(
            profile.trace, title=f"{profile.name} memcpy sizes [MiB]"
        )
        table = Table(
            title=dist.title,
            headers=["direction", "count", "min", "q1", "median", "q3", "max"],
        )
        for v in dist.violins:
            table.add_row(
                v.label, v.count,
                v.minimum / MiB, v.q1 / MiB, v.median / MiB,
                v.q3 / MiB, v.maximum / MiB,
            )
        table.notes.append(
            "memory behaviour consistent with the kernel distributions "
            "(paper Section IV-C)"
        )
        result.tables.append(table)
    return result
