"""Publishing columnar-store accounting into the metrics registry."""

from repro.obs import collecting, get_registry, publish_trace_store
from repro.trace import ColumnarTrace, EventKind, Trace, TraceEvent


def make_trace(n=10):
    trace = ColumnarTrace(name="t")
    for i in range(n):
        trace.record_fast(EventKind.KERNEL, "k", i * 1e-3, i * 1e-3 + 1e-4)
    return trace


def test_counters_accumulate_and_peak_is_high_water():
    small, big = make_trace(4), make_trace(64)
    with collecting() as reg:
        publish_trace_store(big)
        peak_after_big = reg.gauge("trace.store.peak_bytes").value
        publish_trace_store(small)
        assert reg.counter("trace.store.events").value == 68
        assert (
            reg.counter("trace.store.bytes").value
            == small.store.stats()["bytes"] + big.store.stats()["bytes"]
        )
        # The gauge keeps the largest single footprint, not the last.
        assert reg.gauge("trace.store.peak_bytes").value == peak_after_big
        assert peak_after_big == big.store.stats()["bytes"]


def test_scalar_traces_publish_nothing():
    trace = Trace([TraceEvent(EventKind.KERNEL, "k", 0.0, 1.0)])
    with collecting() as reg:
        publish_trace_store(trace)
        assert "trace.store.events" not in reg.names()


def test_noop_when_metrics_disabled():
    # Default state: the null registry — must not raise or record.
    assert not get_registry().enabled
    publish_trace_store(make_trace(3))


def test_explicit_registry_wins():
    with collecting() as outer:
        inner_trace = make_trace(5)
        with collecting() as inner:
            publish_trace_store(inner_trace, registry=inner)
        assert inner.counter("trace.store.events").value == 5
        assert "trace.store.events" not in outer.names()
