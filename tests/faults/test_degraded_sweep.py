"""Degraded-mode sweeps: intensity scaling, telemetry, golden report.

``golden_degraded_runreport.json`` pins the deterministic projection
of a degraded sweep's :class:`~repro.obs.RunReport` — the ``meta``
context, the full ``faults.*`` section, and every sweep point — byte
for byte. Wall-clock sections (``executor.*`` timings, ``des`` heap
stats riding on histograms) are machine-dependent and deliberately
excluded; everything in the golden file is covered by the determinism
contract, so a mismatch means the fault layer's *behavior* changed,
not that the test ran on a slower machine.

Regenerate after an intentional behavior change with::

    PYTHONPATH=src python tests/faults/test_degraded_sweep.py
"""

import json
from pathlib import Path

import pytest

from repro.faults import FaultPlan, run_degraded_sweep
from repro.obs import collecting
from repro.proxy import run_slack_sweep

GOLDEN = Path(__file__).parent / "golden_degraded_runreport.json"

PLAN = FaultPlan.from_spec(
    "seed=42;loss:rate=1%;flap:start=5ms,down=2ms;"
    "spike:start=0,duration=10ms,extra=100us"
)

GRID = dict(
    matrix_sizes=(512,),
    slack_values_s=(1e-4,),
    threads=(1, 2),
    iterations=10,
)


def _degraded_report():
    """One deterministic degraded sweep, metrics on."""
    with collecting():
        sweep = run_slack_sweep(**GRID, workers=1, faults=PLAN)
    return sweep


def _projection(sweep):
    """The deterministic slice of a degraded sweep's RunReport."""
    report = sweep.report
    return {
        "kind": report.kind,
        "meta": report.meta,
        "faults": report.metrics["faults"],
        "points": [
            [
                p.matrix_size,
                p.threads,
                p.slack_s,
                p.loop_runtime_s,
                p.corrected_runtime_s,
                p.baseline_runtime_s,
            ]
            for p in sweep.points
        ],
        "skipped": [list(s) for s in sweep.skipped],
    }


class TestGoldenReport:
    def test_degraded_report_matches_golden_bit_for_bit(self):
        got = json.dumps(
            _projection(_degraded_report()), indent=1, sort_keys=True
        ) + "\n"
        assert GOLDEN.exists(), (
            f"golden file missing — regenerate with: "
            f"PYTHONPATH=src python {Path(__file__).name}"
        )
        assert got == GOLDEN.read_text()

    def test_report_carries_fault_telemetry(self):
        sweep = _degraded_report()
        faults = sweep.report.metrics["faults"]
        assert faults["injected"] > 0
        assert faults["downtime_s"] > 0
        assert faults["extra_delay_s"] >= faults["downtime_s"]
        assert sweep.report.meta["faults"] == PLAN.to_doc()

    def test_healthy_report_has_no_faults_section(self):
        with collecting():
            sweep = run_slack_sweep(**GRID, workers=1)
        assert "faults" not in sweep.report.metrics
        assert sweep.report.meta["faults"] is None


class TestDegradedSweep:
    def _result(self, intensities=(0.0, 1.0)):
        return run_degraded_sweep(
            PLAN, intensities, **GRID, workers=1
        )

    def test_intensity_zero_is_the_healthy_sweep(self):
        result = self._result()
        healthy = run_slack_sweep(**GRID, workers=1)
        assert result.sweep_at(0.0).points == healthy.points

    def test_intensity_one_is_the_plan_as_written(self):
        result = self._result()
        degraded = run_slack_sweep(**GRID, workers=1, faults=PLAN)
        assert result.sweep_at(1.0).points == degraded.points

    def test_repeated_runs_bit_identical(self):
        a, b = self._result(), self._result()
        for x in a.intensities:
            assert a.sweep_at(x).points == b.sweep_at(x).points

    def test_sweep_at_unknown_intensity_raises(self):
        with pytest.raises(KeyError):
            self._result().sweep_at(0.25)

    def test_penalty_surface_shape(self):
        surface = self._result().penalty_surface(512, 2)
        assert set(surface) == {0.0, 1.0}
        for row in surface.values():
            assert set(row) == {1e-4}
            assert all(p >= 0.0 for p in row.values())

    def test_degraded_runtimes_at_least_healthy(self):
        # Downtime, retries and spikes only ever add simulated time.
        # (The *normalized* penalty may move either way — the faults
        # inflate the degraded baseline too — but absolute runtimes
        # are monotone in fault intensity.)
        result = self._result()
        for healthy, degraded in zip(
            result.sweep_at(0.0).points, result.sweep_at(1.0).points
        ):
            assert degraded.loop_runtime_s >= healthy.loop_runtime_s
            assert degraded.baseline_runtime_s >= healthy.baseline_runtime_s

    def test_faults_totals_per_intensity(self):
        with collecting():
            result = self._result()
        totals = result.faults_totals()
        # The healthy baseline publishes no faults section at all; the
        # shared registry means intensity 1.0 sees the section.
        assert totals[0.0] == {}
        assert totals[1.0]["faults.injected"] > 0

    def test_empty_intensities_rejected(self):
        with pytest.raises(ValueError):
            run_degraded_sweep(PLAN, ())

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            run_degraded_sweep(PLAN, (-1.0,))

    def test_invalid_plan_rejected_up_front(self):
        from repro.faults.plan import LinkFlap

        bad = FaultPlan(
            events=(
                LinkFlap(start_s=0.0, down_s=2e-3),
                LinkFlap(start_s=1e-3, down_s=1e-3),
            )
        )
        with pytest.raises(ValueError, match="overlapping"):
            run_degraded_sweep(bad, (1.0,), **GRID)


if __name__ == "__main__":
    GOLDEN.write_text(
        json.dumps(
            _projection(_degraded_report()), indent=1, sort_keys=True
        ) + "\n"
    )
    print(f"wrote {GOLDEN}")
