"""Tests for the CDI package: resources, composer, schedulers, placement."""

import pytest

from repro.cdi import (
    CDIScheduler,
    Composer,
    CompositionError,
    CPUNode,
    GPUChassis,
    JobRequest,
    PlacementResolver,
    ResourcePool,
    TraditionalScheduler,
    compare_schedulers,
    discussion_example,
)
from repro.network import Fabric, FabricSpec


def make_pool(nodes=4, cores=24, chassis=2, gpus=8):
    return ResourcePool(
        nodes=[CPUNode(node_id=f"n{i}") for i in range(nodes)],
        chassis=[
            GPUChassis(chassis_id=f"c{i}", gpu_count=gpus, rack=i)
            for i in range(chassis)
        ],
    )


class TestCPUNode:
    def test_allocate_release(self):
        node = CPUNode(node_id="n0")
        node.allocate(10)
        assert node.free_cores == 14
        node.release(10)
        assert node.free_cores == 24

    def test_over_allocation_rejected(self):
        node = CPUNode(node_id="n0")
        with pytest.raises(ValueError):
            node.allocate(25)
        with pytest.raises(ValueError):
            node.allocate(0)

    def test_over_release_rejected(self):
        node = CPUNode(node_id="n0")
        node.allocate(5)
        with pytest.raises(ValueError):
            node.release(6)


class TestGPUChassis:
    def test_allocate_powers_on(self):
        chassis = GPUChassis(chassis_id="c0", gpu_count=8)
        slots = chassis.allocate(3)
        assert len(slots) == 3
        assert chassis.free_gpus == 5
        assert chassis.powered_on == set(slots)

    def test_release_powers_down(self):
        chassis = GPUChassis(chassis_id="c0", gpu_count=8)
        slots = chassis.allocate(3)
        chassis.release(slots)
        assert chassis.free_gpus == 8
        assert chassis.powered_on == set()
        assert chassis.idle_power_fraction() == 0.0

    def test_over_allocation_rejected(self):
        chassis = GPUChassis(chassis_id="c0", gpu_count=4)
        with pytest.raises(ValueError):
            chassis.allocate(5)

    def test_release_unallocated_rejected(self):
        chassis = GPUChassis(chassis_id="c0")
        with pytest.raises(ValueError):
            chassis.release([0])

    def test_own_pcie_domain(self):
        c0 = GPUChassis(chassis_id="c0")
        c1 = GPUChassis(chassis_id="c1")
        assert c0.domain is not c1.domain


class TestResourcePool:
    def test_aggregates(self):
        pool = make_pool(nodes=4, chassis=2, gpus=8)
        assert pool.total_cores == 96
        assert pool.total_gpus == 16
        assert pool.free_cores == 96
        assert pool.free_gpus == 16

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ResourcePool(nodes=[CPUNode("n0"), CPUNode("n0")])
        pool = make_pool()
        with pytest.raises(ValueError):
            pool.add_node(CPUNode("n0"))
        with pytest.raises(ValueError):
            pool.add_chassis(GPUChassis("c0"))


class TestComposer:
    def test_exact_composition(self):
        pool = make_pool()
        comp = Composer(pool).compose("job", cores=30, gpus=5)
        assert comp.total_cores == 30
        assert comp.total_gpus == 5
        assert comp.cores_per_gpu == 6.0
        assert pool.free_cores == 66
        assert pool.free_gpus == 11

    def test_gpus_packed_into_one_chassis_when_possible(self):
        pool = make_pool(chassis=2, gpus=8)
        comp = Composer(pool).compose("job", cores=4, gpus=6)
        assert len(comp.gpus) == 1

    def test_gpus_span_chassis_when_needed(self):
        pool = make_pool(chassis=2, gpus=8)
        comp = Composer(pool).compose("job", cores=4, gpus=12)
        assert len(comp.gpus) == 2

    def test_cores_span_nodes(self):
        pool = make_pool(nodes=2)
        comp = Composer(pool).compose("job", cores=40)
        assert comp.total_cores == 40
        assert len(comp.cores) == 2

    def test_insufficient_resources_raise(self):
        pool = make_pool(nodes=1, chassis=1, gpus=2)
        composer = Composer(pool)
        with pytest.raises(CompositionError):
            composer.compose("job", cores=1000)
        with pytest.raises(CompositionError):
            composer.compose("job", cores=4, gpus=100)
        # Failed attempts leave the pool intact.
        assert pool.free_cores == 24
        assert pool.free_gpus == 2

    def test_release_restores_pool(self):
        pool = make_pool()
        composer = Composer(pool)
        comp = composer.compose("job", cores=30, gpus=5)
        composer.release(comp)
        assert pool.free_cores == 96
        assert pool.free_gpus == 16
        with pytest.raises(ValueError):
            composer.release(comp)

    def test_validation(self):
        composer = Composer(make_pool())
        with pytest.raises(ValueError):
            composer.compose("job", cores=0)
        with pytest.raises(ValueError):
            composer.compose("job", cores=1, gpus=-1)


class TestTraditionalScheduler:
    def test_whole_nodes_trap_resources(self):
        sched = TraditionalScheduler(node_count=10, cores_per_node=48,
                                     gpus_per_node=4)
        outcome = sched.schedule([JobRequest("job", cores=8, gpus=2)])
        p = outcome.placements[0]
        assert p.granted_cores == 48
        assert p.granted_gpus == 4
        assert p.trapped_cores == 40
        assert p.trapped_gpus == 2

    def test_gpu_request_drives_node_count(self):
        sched = TraditionalScheduler(node_count=10, gpus_per_node=4)
        outcome = sched.schedule([JobRequest("job", cores=8, gpus=9)])
        assert outcome.placements[0].granted_gpus == 12  # 3 nodes

    def test_rejection_when_out_of_nodes(self):
        sched = TraditionalScheduler(node_count=1, gpus_per_node=4)
        outcome = sched.schedule(
            [JobRequest("a", cores=8, gpus=4), JobRequest("b", cores=8, gpus=4)]
        )
        assert len(outcome.placements) == 1
        assert len(outcome.rejected) == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            TraditionalScheduler(node_count=0)


class TestCDIScheduler:
    def test_exact_ratios_no_trapping(self):
        pool = make_pool(nodes=4, chassis=2, gpus=8)
        outcome = CDIScheduler(pool).schedule(
            [JobRequest("a", cores=48, gpus=4), JobRequest("b", cores=4, gpus=8)]
        )
        assert outcome.trapped_cores == 0
        assert outcome.trapped_gpus == 0
        assert outcome.placement("a").cores_per_gpu == 12.0
        assert outcome.placement("b").cores_per_gpu == 0.5

    def test_rejects_only_unsatisfiable(self):
        pool = make_pool(nodes=1, chassis=1, gpus=4)
        outcome = CDIScheduler(pool).schedule(
            [JobRequest("fits", cores=24, gpus=4),
             JobRequest("too-big", cores=24, gpus=4)]
        )
        assert [p.job.name for p in outcome.placements] == ["fits"]
        assert [j.name for j in outcome.rejected] == ["too-big"]

    def test_missing_placement_lookup(self):
        pool = make_pool()
        outcome = CDIScheduler(pool).schedule([JobRequest("a", cores=4)])
        with pytest.raises(KeyError):
            outcome.placement("nope")


class TestDiscussionExample:
    def test_paper_section_v_numbers(self):
        cmp = discussion_example()
        # Traditional: both jobs get 10 nodes = 240 cores + 20 GPUs at
        # the forced 1:2 CPU:GPU ratio (24 cores per 2-GPU node -> 12).
        trad_lammps = cmp.traditional.placement("lammps")
        assert trad_lammps.granted_gpus == 20
        assert trad_lammps.cores_per_gpu == pytest.approx(12.0)
        # CDI: LAMMPS gets 16 CPUs (384 cores) for its 20 GPUs and
        # CosmoFlow 4 CPUs (96 cores) for its tightly-packed 20.
        cdi_lammps = cmp.cdi.placement("lammps")
        cdi_cosmo = cmp.cdi.placement("cosmoflow")
        assert cdi_lammps.granted_cores == 16 * 24
        assert cdi_cosmo.granted_cores == 4 * 24
        assert cdi_lammps.granted_gpus == cdi_cosmo.granted_gpus == 20
        # CDI traps nothing; traditional traps CosmoFlow's unused cores.
        assert cmp.cdi.trapped_cores == 0
        assert cmp.traditional.trapped_cores > 0
        # Both jobs land closer to their requested ratios under CDI.
        assert cmp.ratio_improvement("lammps") > 0
        assert cmp.ratio_improvement("cosmoflow") > 0

    def test_cosmoflow_gpus_in_one_chassis(self):
        cmp = discussion_example()
        # (Verified via the CDI scheduler internals: the composer packs
        # 20 GPUs into a single chassis for tight coupling.)
        assert cmp.cdi.placement("cosmoflow").granted_gpus == 20


class TestPlacementResolver:
    def test_composition_slack(self):
        fabric = Fabric(FabricSpec(chassis_racks=(0, 4)))
        pool = make_pool(chassis=2, gpus=16)
        composer = Composer(pool)
        comp = composer.compose("job", cores=8, gpus=20)  # spans chassis
        resolver = PlacementResolver(fabric)
        slack = resolver.resolve(
            comp, host="host:0:0", chassis_racks={"c0": 0, "c1": 4}
        )
        assert slack.worst_slack_s > slack.best_slack_s
        assert slack.worst_case_model().slack_s == slack.worst_slack_s

    def test_unplaced_chassis_rejected(self):
        fabric = Fabric(FabricSpec())
        pool = make_pool()
        comp = Composer(pool).compose("job", cores=8, gpus=4)
        with pytest.raises(KeyError):
            PlacementResolver(fabric).resolve(comp, "host:0:0", {})

    def test_cpu_only_composition_rejected(self):
        fabric = Fabric(FabricSpec())
        pool = make_pool()
        comp = Composer(pool).compose("job", cores=8, gpus=0)
        with pytest.raises(ValueError):
            PlacementResolver(fabric).resolve(comp, "host:0:0", {})
