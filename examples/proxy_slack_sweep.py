#!/usr/bin/env python
"""Map a slack response surface for your own grid (Figure 3 workflow).

Shows the proxy sweep machinery directly: pick a matrix-size /
slack / thread grid, sweep it, and query the resulting surface —
including the distance interpretation of every slack value. This is
the tool a prospective CDI adopter runs to bound their own workloads.

Run:  python examples/proxy_slack_sweep.py
"""

from repro import (
    SlackResponseSurface,
    fibre_distance_for_latency,
    run_slack_sweep,
)

MATRIX_SIZES = (512, 2048, 8192)
SLACKS = (1e-6, 1e-4, 1e-2)
THREADS = (1, 4)


def main() -> None:
    print("sweeping the proxy (this runs the full simulated loop per "
          "grid point)...")
    sweep = run_slack_sweep(
        matrix_sizes=MATRIX_SIZES,
        slack_values_s=SLACKS,
        threads=THREADS,
        iterations=25,
    )
    print(f"measured {len(sweep.points)} points; "
          f"skipped {len(sweep.skipped)} out-of-memory configs\n")

    surface = SlackResponseSurface(sweep)
    for threads in THREADS:
        print(f"--- {threads} thread(s): corrected runtime normalized to "
              f"zero slack ---")
        header = "matrix".ljust(8) + "".join(
            f"{s * 1e6:>12.0f}us" for s in SLACKS
        )
        print(header)
        for n in surface.matrix_sizes(threads):
            row = f"{n:<8d}"
            for s in SLACKS:
                row += f"{1.0 + surface.penalty(n, s, threads):>14.4f}"
            print(row)
        print()

    print("distance interpretation of the slack grid:")
    for s in SLACKS:
        km = fibre_distance_for_latency(s) / 1e3
        print(f"  {s * 1e6:>8.0f} us  =  {km:>10.1f} km of fibre (one-way)")

    print("\ninterpolated queries off the measured grid:")
    for s in (5e-5, 3e-3):
        p = surface.penalty(2048, s, threads=1)
        print(f"  penalty(2048, {s * 1e6:.0f} us, 1 thread) = {p:.4f}")


if __name__ == "__main__":
    main()
