#!/usr/bin/env python
"""Compose a row-scale CDI system and place jobs on its fabric.

Builds the paper's Section V scenario as an operating system would see
it: a resource pool of CPU nodes and GPU chassis, two jobs with
opposite CPU:GPU shapes, both scheduling disciplines, and the physical
fabric that turns each placement into a concrete slack value — checked
against the 100 us tolerance the proxy methodology established.

Run:  python examples/cluster_composition.py
"""

from repro.cdi import (
    CDIScheduler,
    CPUNode,
    GPUChassis,
    JobRequest,
    PlacementResolver,
    ResourcePool,
    TraditionalScheduler,
)
from repro.network import Fabric, FabricSpec, Scale


def main() -> None:
    # Inventory: 20 single-socket CPU nodes + two 20-GPU chassis in a
    # row of 8 racks (chassis in racks 0 and 4).
    pool = ResourcePool(
        nodes=[CPUNode(node_id=f"cpu{i}") for i in range(20)],
        chassis=[
            GPUChassis(chassis_id="chassis-a", gpu_count=20, rack=0),
            GPUChassis(chassis_id="chassis-b", gpu_count=20, rack=4),
        ],
    )
    jobs_cdi = [
        JobRequest(name="lammps", cores=16 * 24, gpus=20),
        JobRequest(name="cosmoflow", cores=4 * 24, gpus=20),
    ]

    print("=== traditional node scheduling (1 CPU + 2 GPUs per node) ===")
    trad = TraditionalScheduler(node_count=20, cores_per_node=24,
                                gpus_per_node=2).schedule(
        [JobRequest(name=j.name, cores=24, gpus=j.gpus) for j in jobs_cdi]
    )
    for p in trad.placements:
        print(f"  {p.job.name:10s}: {p.granted_cores:4d} cores, "
              f"{p.granted_gpus:2d} GPUs "
              f"({p.cores_per_gpu:.1f} cores/GPU), "
              f"traps {p.trapped_cores} cores")

    print("\n=== CDI composition ===")
    scheduler = CDIScheduler(pool)
    outcome = scheduler.schedule(jobs_cdi)
    for p in outcome.placements:
        comp = scheduler.compositions[p.job.name]
        chassis_used = ", ".join(
            f"{cid}({len(slots)} GPUs)" for cid, slots in comp.gpus.items()
        )
        print(f"  {p.job.name:10s}: {p.granted_cores:4d} cores, "
              f"{p.granted_gpus:2d} GPUs "
              f"({p.cores_per_gpu:.1f} cores/GPU) from {chassis_used}")
    print(f"  trapped resources: {outcome.trapped_cores} cores, "
          f"{outcome.trapped_gpus} GPUs")

    print("\n=== physical placement -> slack ===")
    fabric = Fabric(FabricSpec(scale=Scale.ROW, racks_per_row=8,
                               chassis_racks=(0, 4)))
    resolver = PlacementResolver(fabric)
    chassis_racks = {"chassis-a": 0, "chassis-b": 4}
    for name, host in (("lammps", "host:7:0"), ("cosmoflow", "host:1:0")):
        comp = scheduler.compositions[name]
        slack = resolver.resolve(comp, host, chassis_racks)
        status = "OK" if slack.worst_slack_s < 100e-6 else "OVER BUDGET"
        print(f"  {name:10s} from {host}: worst-path slack "
              f"{slack.worst_slack_s * 1e6:6.3f} us "
              f"[{status} vs the 100 us tolerance]")

    worst = fabric.worst_case_slack()
    print(f"\nrow worst-case slack: {worst * 1e6:.3f} us — three orders of "
          f"magnitude below the applications' 100 us tolerance, which is "
          f"why the paper concludes even cluster-scale CDI is viable.")


if __name__ == "__main__":
    main()
