"""Unit tests for links, fabric topology, and congestion models."""

import numpy as np
import pytest

from repro.des import Environment
from repro.network import (
    CongestionModel,
    Fabric,
    FabricSpec,
    Link,
    LinkSpec,
    NIC,
    NICSpec,
    Scale,
    utilization_for_inflation,
)


class TestLink:
    def test_single_message_time(self):
        env = Environment()
        spec = LinkSpec(latency_s=1e-6, bandwidth_Bps=10e9)
        link = Link(env, spec)

        def proc(env, link):
            t0 = env.now
            yield link.transmit(10_000_000)  # 1 ms serialization
            return env.now - t0

        p = env.process(proc(env, link))
        env.run()
        assert p.value == pytest.approx(1e-6 + 1e-3)
        assert link.messages_carried == 1

    def test_concurrent_messages_serialize_on_wire(self):
        env = Environment()
        spec = LinkSpec(latency_s=0.0, bandwidth_Bps=1e9)
        link = Link(env, spec)
        done = []

        def sender(env, link, name):
            yield link.transmit(1e9)  # 1 s serialization each
            done.append((name, env.now))

        env.process(sender(env, link, "a"))
        env.process(sender(env, link, "b"))
        env.run()
        times = dict(done)
        assert times["a"] == pytest.approx(1.0)
        assert times["b"] == pytest.approx(2.0)

    def test_message_time_unloaded(self):
        spec = LinkSpec(latency_s=2e-6, bandwidth_Bps=1e9)
        assert spec.message_time(1e9) == pytest.approx(1.0 + 2e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(latency_s=-1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_Bps=0)
        with pytest.raises(ValueError):
            LinkSpec().message_time(-5)


class TestNIC:
    def test_injection_time(self):
        env = Environment()
        nic = NIC(env, NICSpec(processing_s=1e-6, injection_rate_Bps=1e9))

        def proc(env, nic):
            t0 = env.now
            yield nic.inject(1_000_000)
            return env.now - t0

        p = env.process(proc(env, nic))
        env.run()
        assert p.value == pytest.approx(1e-6 + 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            NICSpec(processing_s=-1)


class TestFabric:
    def test_row_scale_default_builds(self):
        fabric = Fabric(FabricSpec())
        assert len(fabric.hosts()) == 8 * 4
        assert fabric.chassis() == ["chassis:0"]

    def test_same_rack_path_is_shortest(self):
        fabric = Fabric(FabricSpec(chassis_racks=(0,)))
        same_rack = fabric.path("host:0:0", "chassis:0")
        other_rack = fabric.path("host:7:0", "chassis:0")
        assert same_rack.slack_s < other_rack.slack_s
        assert same_rack.switch_hops == 1  # just the ToR
        assert other_rack.switch_hops == 3  # ToR, row switch, ToR

    def test_slack_increases_with_distance(self):
        fabric = Fabric(FabricSpec(racks_per_row=8, chassis_racks=(0,)))
        slacks = [
            fabric.path(f"host:{r}:0", "chassis:0").slack_s for r in range(1, 8)
        ]
        assert slacks == sorted(slacks)

    def test_nearest_chassis(self):
        fabric = Fabric(FabricSpec(chassis_racks=(0, 7)))
        near = fabric.nearest_chassis("host:7:0")
        assert near.chassis == "chassis:7"

    def test_worst_case_slack_bounded(self):
        # A single-row fabric keeps worst-case slack in the few-us
        # range, far below the 100 us tolerance the paper establishes.
        fabric = Fabric(FabricSpec())
        assert fabric.worst_case_slack() < 10e-6

    def test_multi_row_cluster_scale(self):
        fabric = Fabric(
            FabricSpec(scale=Scale.CLUSTER, rows=4, racks_per_row=8,
                       chassis_racks=(0,))
        )
        cross_row = fabric.path("host:31:0", "chassis:0")
        same_row = fabric.path("host:7:0", "chassis:0")
        assert cross_row.slack_s > same_row.slack_s
        assert cross_row.switch_hops == 5  # tor, row, core, row, tor

    def test_path_slack_model(self):
        fabric = Fabric(FabricSpec())
        info = fabric.path("host:1:0", "chassis:0")
        model = info.slack_model()
        assert model.slack_s == info.slack_s

    def test_unknown_nodes_raise(self):
        fabric = Fabric(FabricSpec())
        with pytest.raises(KeyError):
            fabric.path("host:99:0", "chassis:0")
        with pytest.raises(KeyError):
            fabric.path("host:0:0", "chassis:99")

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            FabricSpec(racks_per_row=0)
        with pytest.raises(ValueError):
            FabricSpec(chassis_racks=(99,))


class TestCongestion:
    def test_idle_fabric_no_inflation(self):
        model = CongestionModel()
        assert model.inflation_at(0.0) == pytest.approx(1.0)
        assert model.extra_slack_at(0.0) == pytest.approx(0.0)

    def test_inflation_grows_with_load(self):
        model = CongestionModel()
        assert model.inflation_at(0.5) == pytest.approx(2.0)
        assert model.inflation_at(0.9) == pytest.approx(10.0)

    def test_unstable_load_rejected(self):
        model = CongestionModel(max_utilization=0.95)
        with pytest.raises(ValueError):
            model.latency_at(0.95)
        with pytest.raises(ValueError):
            model.latency_at(-0.1)

    def test_inverse(self):
        assert utilization_for_inflation(2.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            utilization_for_inflation(0.5)

    def test_sampling(self):
        model = CongestionModel(service_time_s=1e-6)
        rng = np.random.default_rng(7)
        lat = model.sample_latencies(0.5, 10_000, rng)
        assert lat.mean() == pytest.approx(2e-6, rel=0.05)
        with pytest.raises(ValueError):
            model.sample_latencies(0.5, 0, rng)


class TestFabricFailures:
    def test_tor_failure_kills_same_rack_path(self):
        fabric = Fabric(FabricSpec(chassis_racks=(0, 4)))
        assert fabric.path_with_failures("host:7:0", "chassis:0",
                                         ["tor:0"]) is None

    def test_failover_to_another_chassis(self):
        fabric = Fabric(FabricSpec(chassis_racks=(0, 4)))
        # chassis:0's rack switch died; chassis:4 still reachable.
        alt = fabric.path_with_failures("host:7:0", "chassis:4", ["tor:0"])
        assert alt is not None
        assert alt.slack_s < 100e-6  # still far inside tolerance

    def test_row_switch_failure_strands_cross_rack_hosts(self):
        fabric = Fabric(FabricSpec(chassis_racks=(0,)))
        # Cross-rack host loses everything...
        assert fabric.survivable("host:7:0", ["row:0"]) == []
        # ...but the same-rack host still reaches its chassis directly.
        same_rack = fabric.survivable("host:0:0", ["row:0"])
        assert len(same_rack) == 1
        assert same_rack[0].switch_hops == 1

    def test_failed_chassis_is_unreachable(self):
        fabric = Fabric(FabricSpec(chassis_racks=(0,)))
        assert fabric.path_with_failures("host:0:0", "chassis:0",
                                         ["chassis:0"]) is None

    def test_no_failures_matches_normal_path(self):
        fabric = Fabric(FabricSpec(chassis_racks=(0,)))
        normal = fabric.path("host:3:0", "chassis:0")
        degraded = fabric.path_with_failures("host:3:0", "chassis:0", [])
        assert degraded is not None
        assert degraded.slack_s == pytest.approx(normal.slack_s)

    def test_unknown_component_rejected(self):
        fabric = Fabric(FabricSpec())
        with pytest.raises(KeyError):
            fabric.path_with_failures("host:0:0", "chassis:0", ["nope"])
