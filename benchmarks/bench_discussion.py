"""Benchmark: regenerate the Section V scheduling comparison."""

import pytest

from repro.experiments import run_experiment


def test_bench_discussion(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("discussion", ctx), rounds=3, iterations=1
    )
    print_result(result)
    table = result.tables[0]
    cdi = {r[1]: r for r in table.rows if r[0] == "CDI"}
    assert cdi["lammps"][4] == pytest.approx(19.2)
    assert cdi["cosmoflow"][4] == pytest.approx(4.8)
