"""The slack proxy application (paper Section III-C).

A synchronous square-matmul loop: copy A and B to the device, compute
C = A x B, copy C back, synchronize — five CUDA API calls per
iteration, each followed by the injected slack. ``threads`` OpenMP
threads run the loop in parallel (each with its own stream and its
own three matrices), which is the paper's controlled knob for queue
parallelism. Kernel launches are blocking ("synchronous is used to
capture the pessimistic case"), keeping every injected delay on the
critical path so Equation 1's correction is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..des import Barrier, Environment, Event
from ..faults import FaultPlan
from ..gpusim import CudaRuntime, matmul_kernel
from ..hw import A100_SXM4_40GB, GPUSpec, OutOfMemoryError, PCIE_GEN4_X16, PCIeSpec
from ..network import SlackModel
from ..obs import simulation_snapshot
from ..trace import CopyKind, Trace
from .calibration import calibrate_iterations, time_single_kernel
from .fastforward import EpochMonitor, FastForwardInfo, refusal_reason

__all__ = [
    "ProxyConfig",
    "ProxyResult",
    "CUDA_CALLS_PER_ITERATION",
    "run_proxy",
    "FastForwardInfo",
]

#: The paper's count for Equation 1: 3 matrix transfers + 1 kernel
#: launch + 1 host-device synchronization per loop iteration.
CUDA_CALLS_PER_ITERATION = 5


@dataclass(frozen=True)
class ProxyConfig:
    """Parameters of one proxy run.

    ``iterations=None`` triggers the paper's auto-calibration
    (~30 s of GPU compute, clamped to [5, 1000]).
    """

    matrix_size: int = 4096
    threads: int = 1
    iterations: Optional[int] = None
    dtype_bytes: int = 4
    gpu: GPUSpec = field(default_factory=lambda: A100_SXM4_40GB)
    pcie: PCIeSpec = field(default_factory=lambda: PCIE_GEN4_X16)
    target_compute_s: float = 30.0
    phase_barrier: bool = False
    thread_launch_offset_s: float = 0.0
    iteration_spacing_s: float = 0.0

    def __post_init__(self) -> None:
        if self.matrix_size <= 0:
            raise ValueError("matrix_size must be positive")
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.iterations is not None and self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if self.thread_launch_offset_s < 0:
            raise ValueError("thread_launch_offset_s must be non-negative")
        if self.iteration_spacing_s < 0:
            raise ValueError("iteration_spacing_s must be non-negative")

    @property
    def matrix_bytes(self) -> int:
        """Bytes of one matrix."""
        return self.matrix_size * self.matrix_size * self.dtype_bytes

    @property
    def device_bytes_needed(self) -> int:
        """Device memory for all threads' A, B and C matrices."""
        return 3 * self.matrix_bytes * self.threads


@dataclass(frozen=True)
class ProxyResult:
    """Outcome of one proxy run."""

    config: ProxyConfig
    slack_s: float
    iterations: int
    kernel_time_s: float
    loop_runtime_s: float
    injected_slack_s: float
    starvation_cost_s: float
    trace: Trace
    #: Flat simulator telemetry (``des.*``/``gpu.*``/``fabric.*``
    #: dotted names) snapshotted at end of run; see repro.obs.
    sim_metrics: Dict[str, float] = field(default_factory=dict)
    #: How steady-state fast-forward engaged for this run (None only
    #: for results built before the knob existed, e.g. old pickles).
    #: Excluded from comparison: a fast-forwarded result is the same
    #: result, reached cheaper.
    fastforward: Optional[FastForwardInfo] = field(default=None, compare=False)

    @property
    def cuda_calls(self) -> int:
        """Total slack-delayed CUDA calls on one thread's critical path."""
        return CUDA_CALLS_PER_ITERATION * self.iterations

    @property
    def corrected_runtime_s(self) -> float:
        """Equation 1: remove the direct per-call delay from the runtime.

        ``Time_NoSlack = Time - num_CUDA_calls * Slack_call`` with the
        per-thread call count (threads sleep concurrently, so only one
        thread's slack chain sits on the wall-clock critical path).
        """
        return self.loop_runtime_s - self.cuda_calls * self.slack_s


def run_proxy(
    config: ProxyConfig,
    slack: Optional[SlackModel] = None,
    *,
    kernel_time_s: Optional[float] = None,
    fast_forward: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
) -> ProxyResult:
    """Execute the proxy in a fresh simulation and collect its result.

    Parameters
    ----------
    kernel_time_s:
        Pre-computed single-kernel duration (skips the calibration
        mini-simulation; sweeps hoist it so every point of one matrix
        size shares the calibration).
    fast_forward:
        Steady-state fast-forward (default on): once the loop is
        certified bit-exactly periodic, the remaining iterations are
        extrapolated analytically instead of simulated — same result,
        O(warmup) events. Ineligible configurations (phase barriers,
        iteration spacing, launch offsets, jittered slack, active
        fault plans) always run the full simulation;
        ``result.fastforward`` records what happened.
    faults:
        Optional :class:`~repro.faults.FaultPlan` degrading the fabric
        for this run (compiled per simulation, seeded, fully
        deterministic). Fault-induced delay is accounted separately
        from injected slack, so Equation 1's correction stays honest;
        an empty plan is exactly the healthy run. Active plans refuse
        fast-forward (``reason="faults-active"``).

    Raises
    ------
    OutOfMemoryError
        If the matrices of all threads exceed device memory — e.g.
        matrix size 2^15 with 4+ threads on a 40 GiB A100, which is
        why that series is absent from the paper's Figure 3(b, c).
    repro.faults.FabricTimeoutError
        If a fault plan's message loss exhausts its retry budget on
        some call (propagates from the simulated waiting process).
    """
    slack = slack or SlackModel.none()
    env = Environment()
    injector = faults.compile(env) if faults is not None else None
    rt = CudaRuntime(
        env, gpu=config.gpu, pcie=config.pcie, slack=slack, faults=injector
    )

    kernel_time = (
        kernel_time_s
        if kernel_time_s is not None
        else time_single_kernel(
            config.matrix_size, config.gpu, config.pcie, config.dtype_bytes
        )
    )
    iterations = config.iterations or calibrate_iterations(
        kernel_time, target_s=config.target_compute_s
    )

    enabled = True if fast_forward is None else bool(fast_forward)
    reason = "disabled" if not enabled else refusal_reason(
        config, slack, iterations, faults=injector
    )
    monitor = EpochMonitor(env, rt, config.threads, iterations) if (
        enabled and reason is None
    ) else None

    # Allocate every thread's matrices up front (fail fast on OOM,
    # mirroring the proxy's startup allocation).
    if config.device_bytes_needed > rt.memory.capacity:
        raise OutOfMemoryError(
            f"{config.threads} threads x 3 matrices of {config.matrix_bytes} B "
            f"exceed device memory ({rt.memory.capacity} B)"
        )
    for t in range(config.threads):
        for name in "ABC":
            rt.malloc(config.matrix_bytes, tag=f"thread{t}-{name}")

    kernel = matmul_kernel(config.matrix_size, config.dtype_bytes)
    nbytes = config.matrix_bytes

    # Thread semantics. By default the OpenMP threads free-run (the
    # paper's proxy): each thread's slack sleeps overlap the other
    # threads' device work, which is the latency-hiding mechanism that
    # makes parallel submitters slack-tolerant. In this regime the
    # Equation-1 correction can land *below* the baseline (it
    # subtracts slack that was actually hidden); the response surface
    # clamps such negative residuals to zero penalty. With
    # phase_barrier=True the threads instead synchronize after each of
    # the five CUDA calls (worksharing-barrier semantics), exposing
    # exactly CUDA_CALLS_PER_ITERATION delays per iteration — the
    # conservative variant the ablation benchmarks compare against.
    barriers = (
        [Barrier(env, config.threads) for _ in range(CUDA_CALLS_PER_ITERATION)]
        if config.phase_barrier and config.threads > 1
        else None
    )

    def worker(thread_id: int) -> Generator[Event, Any, None]:
        stream = rt.create_stream()
        # The paper's additional control experiments: staggering each
        # thread's start and spacing out loop iterations (both found
        # to have no correlation with the slack penalty; reproduced in
        # tests/proxy/test_proxy.py).
        if config.thread_launch_offset_s and thread_id:
            yield env.timeout(config.thread_launch_offset_s * thread_id)
        # Per-iteration epochs: the monitor (when eligible) observes
        # each cycle boundary and may lower the shared stop_at bound,
        # capping all threads at a uniform epoch count once the steady
        # state is certified.
        iteration = 0
        while iteration < (monitor.stop_at if monitor is not None else iterations):
            if config.iteration_spacing_s and iteration:
                yield env.timeout(config.iteration_spacing_s)
            yield from rt.memcpy(nbytes, CopyKind.H2D, stream, thread_id)
            if barriers:
                yield barriers[0].wait()
            yield from rt.memcpy(nbytes, CopyKind.H2D, stream, thread_id)
            if barriers:
                yield barriers[1].wait()
            yield from rt.launch(kernel, stream, thread_id, blocking=True)
            if barriers:
                yield barriers[2].wait()
            yield from rt.memcpy(nbytes, CopyKind.D2H, stream, thread_id)
            if barriers:
                yield barriers[3].wait()
            yield from rt.synchronize(stream=stream, thread=thread_id)
            if barriers:
                yield barriers[4].wait()
            iteration += 1
            if monitor is not None:
                monitor.epoch_done(thread_id)

    def main() -> Generator[Event, Any, float]:
        t0 = env.now
        workers = [
            env.process(worker(t), name=f"omp-thread-{t}")
            for t in range(config.threads)
        ]
        yield env.all_of(workers)
        return env.now - t0

    main_proc = env.process(main(), name="proxy-main")
    env.run()

    if monitor is not None and monitor.certified:
        ex = monitor.extrapolate(float(main_proc.value))
        return ProxyResult(
            config=config,
            slack_s=slack.slack_s,
            iterations=iterations,
            kernel_time_s=kernel_time,
            loop_runtime_s=ex.loop_runtime_s,
            injected_slack_s=ex.injected_slack_s,
            starvation_cost_s=ex.starvation_cost_s,
            trace=ex.trace,
            sim_metrics=ex.sim_metrics,
            fastforward=ex.info,
        )

    if monitor is not None:
        # Eligible but never certified: the run completed as a full
        # simulation on its own.
        reason = "no-fixed-point"
    return ProxyResult(
        config=config,
        slack_s=slack.slack_s,
        iterations=iterations,
        kernel_time_s=kernel_time,
        loop_runtime_s=float(main_proc.value),
        injected_slack_s=rt.injector.total_injected_s,
        starvation_cost_s=rt.total_starvation_cost(),
        trace=rt.tracer.trace,
        sim_metrics=simulation_snapshot(env, rt),
        fastforward=FastForwardInfo(
            enabled=enabled, certified=False, reason=reason
        ),
    )
