"""Benchmark: regenerate the Section IV-D methodology self-validation."""

from repro.experiments import run_experiment


def test_bench_validation(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("validation", ctx), rounds=1, iterations=1
    )
    print_result(result)
    for row in result.tables[0].rows:
        actual, lower = row[2], row[3]
        assert abs(lower - actual) <= max(0.005, 0.06 * actual)
