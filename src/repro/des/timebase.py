"""Dyadic time quantization: the arithmetic contract of fast-forward.

Steady-state fast-forward (see ``repro.proxy.fastforward``) replaces
millions of identical simulated loop iterations with one analytic
extrapolation, and promises the extrapolated totals are **bit-identical**
to the event-by-event run. Plain float time cannot honour that promise:
``t + d`` rounds differently as ``t`` grows, so even a perfectly
periodic workload shows per-cycle deltas that differ in their last few
ulps, and ``t + n*d`` is not the same float as adding ``d`` n times.

The fix is to snap every simulated delay to the **dyadic grid** of
multiples of :data:`TICK_S` = 2^-40 s (~0.9 picoseconds, far below any
modelled hardware effect). Every event timestamp then stays a dyadic
rational, and IEEE-754 double addition of dyadic values is *exact* as
long as sums stay under 2^53 ticks (~8192 simulated seconds — orders
of magnitude above any proxy run). Exactness buys the two properties
fast-forward is built on:

* sums are order-independent — accumulating a per-call delay call by
  call equals one multiply-and-add, bit for bit;
* a periodic schedule is *exactly* periodic — per-cycle time deltas
  and counter deltas repeat as identical floats, so a fixed point can
  be certified by bit comparison.

Only *delays fed into the simulator* are quantized (kernel times,
transfer times, driver overheads, injected slack); model parameters
and analysis outputs are untouched.
"""

from __future__ import annotations

import math

__all__ = ["TICK_S", "quantize"]

#: The dyadic time grid: one tick is 2^-40 seconds (~0.9 ps).
TICK_S = 2.0**-40

#: Exact reciprocal of the tick (a power of two, so multiplying by it
#: only shifts the exponent — no rounding).
_TICKS_PER_S = 2.0**40


def quantize(seconds: float) -> float:
    """Round ``seconds`` to the nearest multiple of :data:`TICK_S`.

    Non-positive inputs collapse to 0.0 (delays are never negative in
    the simulator; a defensive clamp beats propagating -0.0). The
    result is exactly representable, and sums of results remain exact
    up to 2^53 ticks (~8192 s).

    >>> quantize(0.0)
    0.0
    >>> quantize(quantize(1e-4)) == quantize(1e-4)
    True
    >>> abs(quantize(1e-4) - 1e-4) < TICK_S
    True
    """
    if seconds <= 0.0:
        return 0.0
    # seconds * 2^40 is exact (pure exponent shift); the +0.5/floor
    # round-to-nearest is exact while the scaled value stays below
    # 2^52, i.e. for delays under ~4096 s.
    return math.floor(seconds * _TICKS_PER_S + 0.5) * TICK_S
