"""One frozen options object for every sweep entry point.

:func:`repro.proxy.run_slack_sweep` grew an execution-knob set —
``workers``, ``cache``, ``fast_forward``, ``faults``, ``adaptive``,
``tol`` — that every layer above it (the CLI, the experiment context,
the degraded-mode driver, the serving cold path) re-spelled
keyword-by-keyword. :class:`SweepOptions` is the single canonical
carrier: build one, pass it as ``options=`` to
:func:`~repro.proxy.run_slack_sweep`,
:func:`~repro.model.adaptive.adaptive_slack_sweep`,
:class:`~repro.experiments.ExperimentContext` or
:class:`~repro.parallel.SweepExecutor`, and override individual knobs
per call site with the matching explicit keyword (explicit keywords
always win over the options object).

The dataclass is frozen and keyword-only (the ``repro.api``
constructor contract), hashable, and normalizes nothing: resolution —
``cache=True`` → the repo-local point cache, empty fault plans →
``None`` — happens in :meth:`point_cache` / the consuming sweep, so
an options object always round-trips exactly what it was given.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan
    from ..parallel import PointCache

__all__ = [
    "ShardingUnsupportedError",
    "SweepOptions",
    "UNSET",
    "resolve_options",
]


class ShardingUnsupportedError(ValueError):
    """A sweep was asked to shard in a mode that cannot shard.

    Raised for knob combinations the shard engine explicitly refuses —
    today ``adaptive=True`` with a ``shard`` assignment (adaptive
    refinement is a sequential decision process over the whole grid;
    partitioning it by point hash would change which points get
    measured) — and by entry points that cannot return a partial
    surface (:func:`repro.proxy.run_slack_sweep` with ``shard`` set;
    use :func:`repro.parallel.run_sweep_shard` +
    :func:`repro.parallel.merge_shards` instead).
    """

#: Sentinel distinguishing "knob not passed" from every real value
#: (``None`` is a meaningful setting for most knobs).
UNSET: Any = type("_Unset", (), {"__repr__": lambda self: "UNSET"})()


@dataclass(frozen=True, kw_only=True)
class SweepOptions:
    """Execution knobs of one sweep, as a single frozen value.

    ``workers``
        Process count (``1`` = deterministic inline, ``None`` =
        ``os.cpu_count()``).
    ``cache``
        ``None``/``False`` = no per-point cache, ``True`` = the
        repo-local store under ``.cache/points/``, or a concrete
        :class:`~repro.parallel.PointCache`.
    ``fast_forward``
        Steady-state fast-forward knob (``None`` = proxy default, on).
    ``faults``
        Optional :class:`~repro.faults.FaultPlan` degrading the fabric.
    ``adaptive`` / ``tol``
        Error-bounded adaptive refinement instead of the dense grid;
        ``tol`` is only meaningful with ``adaptive=True``.
    ``shard``
        ``(index, count)`` assigning this execution one shard of the
        grid's deterministic hash partition (see
        :mod:`repro.parallel.shards`). Only the shard entry points
        (``run_sweep_shard``, the ``sweep --shard I/N`` CLI) consume
        it; :func:`~repro.proxy.run_slack_sweep` refuses it because a
        shard is not a full surface.
    """

    workers: Optional[int] = 1
    cache: Union[bool, "PointCache", None] = None
    fast_forward: Optional[bool] = None
    faults: Optional["FaultPlan"] = None
    adaptive: bool = False
    tol: Optional[float] = None
    shard: Optional[Tuple[int, int]] = None

    def validate(self) -> "SweepOptions":
        """Cross-check the knob combination; returns self."""
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for cpu_count)")
        if self.tol is not None and not self.adaptive:
            raise ValueError("tol is only meaningful with adaptive=True")
        if self.shard is not None:
            index, count = self.shard
            if count < 1:
                raise ValueError("shard count must be >= 1")
            if not 0 <= index < count:
                raise ValueError(
                    f"shard index {index} outside 0..{count - 1}"
                )
            if self.adaptive:
                raise ShardingUnsupportedError(
                    "adaptive sweeps cannot be sharded: refinement is a "
                    "sequential decision process over the whole grid "
                    "(run the adaptive sweep on one host, or shard the "
                    "dense grid)"
                )
        return self

    def replace(self, **changes: Any) -> "SweepOptions":
        """A copy with the given knobs replaced."""
        return dataclasses.replace(self, **changes)

    def point_cache(self) -> Optional["PointCache"]:
        """Resolve the ``cache`` knob to a concrete store (or None).

        ``True`` resolves to the repo-local per-point store (honoring
        the ``REPRO_CACHE_DIR`` override); ``False``/``None`` disable
        caching; a :class:`~repro.parallel.PointCache` passes through.
        """
        from ..parallel import PointCache

        if isinstance(self.cache, PointCache):
            return self.cache
        if not self.cache:
            return None
        # Lazy import: experiments imports proxy at module level.
        from ..experiments.context import default_cache_dir

        return PointCache(default_cache_dir() / "points")


def resolve_options(
    options: Optional[SweepOptions], explicit: Mapping[str, Any]
) -> SweepOptions:
    """Merge explicit per-call knobs over an options object.

    ``explicit`` maps knob names to values, with :data:`UNSET` marking
    knobs the caller did not pass — those fall back to ``options``
    (or the defaults when ``options`` is ``None``). The merged result
    is validated.
    """
    base = options if options is not None else SweepOptions()
    overrides = {
        name: value for name, value in explicit.items() if value is not UNSET
    }
    return base.replace(**overrides).validate() if overrides else base.validate()
