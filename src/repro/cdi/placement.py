"""Placement-to-slack mapping: where a composition's GPUs physically
live determines the slack its job experiences.

Joins the :mod:`repro.cdi` composition layer to the
:mod:`repro.network` fabric: each (host rack, chassis rack) pairing
resolves to a path and its slack, so a scheduled job can be handed the
exact :class:`SlackModel` its CUDA calls will see — closing the loop
back to the proxy/prediction machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..network import Fabric, PathInfo, SlackModel
from .resources import Composition

__all__ = [
    "PlacementResolver",
    "CompositionSlack",
    "FleetTopology",
    "place_pack",
    "place_spread",
    "place_locality",
    "PLACEMENT_POLICIES",
]


@dataclass(frozen=True)
class CompositionSlack:
    """The slack characteristics of one placed composition."""

    composition_id: int
    paths: Dict[str, PathInfo]  # chassis_id -> path from the host
    worst_slack_s: float
    best_slack_s: float

    def worst_case_model(self) -> SlackModel:
        """A slack model at the composition's worst path (pessimistic)."""
        return SlackModel(self.worst_slack_s)


class PlacementResolver:
    """Resolves compositions onto a fabric to obtain slack models."""

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def resolve(
        self,
        composition: Composition,
        host: str,
        chassis_racks: Dict[str, int],
    ) -> CompositionSlack:
        """Compute per-chassis paths for a composition from ``host``.

        ``chassis_racks`` maps each chassis id used by the composition
        to the rack its fabric node lives in (``chassis:<rack>``).
        """
        if not composition.gpus:
            raise ValueError("composition has no GPUs to place")
        paths: Dict[str, PathInfo] = {}
        for chassis_id in composition.gpus:
            if chassis_id not in chassis_racks:
                raise KeyError(f"no rack known for chassis {chassis_id!r}")
            rack = chassis_racks[chassis_id]
            paths[chassis_id] = self.fabric.path(host, f"chassis:{rack}")
        slacks = [p.slack_s for p in paths.values()]
        return CompositionSlack(
            composition_id=composition.composition_id,
            paths=paths,
            worst_slack_s=max(slacks),
            best_slack_s=min(slacks),
        )


# ---------------------------------------------------------------------------
# Fleet-scale placement: racks of pooled GPU chassis.
#
# The fleet engine (repro.cdi.fleet) schedules against total pool
# capacity — placement never changes *when* a job runs, only *where*
# its GPUs land and therefore what fabric slack it experiences. The
# policies below are pure functions over per-rack free counts so they
# stay cheap enough to run inline in a million-job simulation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetTopology:
    """Rack-level view of a fleet's GPU pool for placement purposes.

    ``rack_slack_s[r]`` is the one-way fabric slack a host pays to
    reach rack ``r``'s chassis; placement policies use it to order
    racks and the fleet report uses it to drive the serving-layer
    surrogate (penalty distribution per tenant).
    """

    rack_slack_s: Tuple[float, ...]
    gpus_per_rack: int

    def __post_init__(self) -> None:
        if not self.rack_slack_s:
            raise ValueError("topology needs at least one rack")
        if self.gpus_per_rack <= 0:
            raise ValueError("gpus_per_rack must be positive")
        if any(s < 0 for s in self.rack_slack_s):
            raise ValueError("rack slack must be non-negative")

    @property
    def racks(self) -> int:
        """Number of GPU racks."""
        return len(self.rack_slack_s)

    @property
    def total_gpus(self) -> int:
        """All GPUs across the racks."""
        return self.racks * self.gpus_per_rack

    @classmethod
    def uniform(
        cls,
        racks: int,
        gpus_per_rack: int,
        base_slack_s: float = 2.0e-6,
        step_slack_s: float = 0.5e-6,
    ) -> "FleetTopology":
        """A synthetic row: rack ``r`` at ``base + r * step`` slack."""
        if racks <= 0:
            raise ValueError("racks must be positive")
        return cls(
            rack_slack_s=tuple(
                base_slack_s + r * step_slack_s for r in range(racks)
            ),
            gpus_per_rack=gpus_per_rack,
        )

    @classmethod
    def from_fabric(
        cls, fabric: Fabric, host: str, gpus_per_rack: int
    ) -> "FleetTopology":
        """Measure per-rack slack from ``host`` on a real fabric graph."""
        racks = sorted(fabric.spec.chassis_racks)
        if not racks:
            raise ValueError("fabric has no chassis racks")
        slacks = tuple(
            fabric.path(host, f"chassis:{r}").slack_s for r in racks
        )
        return cls(rack_slack_s=slacks, gpus_per_rack=gpus_per_rack)


def place_pack(
    free: List[int], need: int, slack_order: Sequence[int]
) -> List[Tuple[int, int]]:
    """Best-fit packing: the tightest single rack that fits, else span
    the fullest racks — fewest racks touched, least fragmentation.

    ``free`` is mutated in place (GPUs are taken). Returns
    ``[(rack, count), ...]``; raises if the pool cannot satisfy.
    """
    full_fit = [r for r in range(len(free)) if free[r] >= need]
    if full_fit:
        rack = min(full_fit, key=lambda r: (free[r], r))
        free[rack] -= need
        return [(rack, need)]
    placements: List[Tuple[int, int]] = []
    remaining = need
    for rack in sorted(range(len(free)), key=lambda r: (-free[r], r)):
        if remaining == 0:
            break
        take = min(free[rack], remaining)
        if take > 0:
            free[rack] -= take
            placements.append((rack, take))
            remaining -= take
    if remaining > 0:
        raise ValueError(f"pool cannot place {need} GPUs")
    return placements


def place_spread(
    free: List[int], need: int, slack_order: Sequence[int]
) -> List[Tuple[int, int]]:
    """Load balancing: GPUs go one at a time to the emptiest rack."""
    taken = [0] * len(free)
    for _ in range(need):
        rack = max(range(len(free)), key=lambda r: (free[r], -r))
        if free[rack] <= 0:
            raise ValueError(f"pool cannot place {need} GPUs")
        free[rack] -= 1
        taken[rack] += 1
    return [(r, t) for r, t in enumerate(taken) if t > 0]


def place_locality(
    free: List[int], need: int, slack_order: Sequence[int]
) -> List[Tuple[int, int]]:
    """Slack-aware: the nearest rack that fits whole, else fill racks
    in ascending-slack order (``slack_order``)."""
    for rack in slack_order:
        if free[rack] >= need:
            free[rack] -= need
            return [(rack, need)]
    placements: List[Tuple[int, int]] = []
    remaining = need
    for rack in slack_order:
        if remaining == 0:
            break
        take = min(free[rack], remaining)
        if take > 0:
            free[rack] -= take
            placements.append((rack, take))
            remaining -= take
    if remaining > 0:
        raise ValueError(f"pool cannot place {need} GPUs")
    return placements


PLACEMENT_POLICIES = {
    "pack": place_pack,
    "spread": place_spread,
    "locality": place_locality,
}
