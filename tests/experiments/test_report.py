"""Tests for the report primitives: Table, Series, ExperimentResult."""

import pytest

from repro.experiments.report import ExperimentResult, Series, Table, fmt


class TestFmt:
    def test_float_compact(self):
        assert fmt(1.23456789) == "1.235"
        assert fmt(0.0) == "0"
        assert fmt(1e-9) == "1e-09"
        assert fmt(123456.0) == "1.235e+05"

    def test_non_float(self):
        assert fmt(42) == "42"
        assert fmt("abc") == "abc"
        assert fmt(True) == "True"


class TestTable:
    def test_add_row_and_render(self):
        t = Table(title="T", headers=["a", "b"])
        t.add_row(1, 2.5)
        out = t.render()
        assert "T" in out
        assert "a" in out and "b" in out
        assert "2.5" in out

    def test_row_length_checked(self):
        t = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_extraction(self):
        t = Table(title="T", headers=["a", "b"])
        t.add_row(1, 10)
        t.add_row(2, 20)
        assert t.column("b") == [10, 20]
        with pytest.raises(ValueError):
            t.column("c")

    def test_notes_rendered(self):
        t = Table(title="T", headers=["a"], notes=["hello"])
        assert "note: hello" in t.render()

    def test_empty_table_renders(self):
        t = Table(title="T", headers=["a"])
        assert "T" in t.render()


class TestSeries:
    def test_add_line_and_render(self):
        s = Series(title="S", x_label="x", y_label="y", x=[1.0, 2.0])
        s.add_line("l1", [10.0, 20.0])
        out = s.render()
        assert "l1" in out
        assert "10" in out

    def test_length_checked(self):
        s = Series(title="S", x_label="x", y_label="y", x=[1.0, 2.0])
        with pytest.raises(ValueError):
            s.add_line("l1", [10.0])

    def test_none_rendered_as_dash(self):
        s = Series(title="S", x_label="x", y_label="y", x=[1.0, 2.0])
        s.add_line("l1", [10.0, None])
        assert "-" in s.render()


class TestExperimentResult:
    def test_render_combines_artifacts(self):
        t = Table(title="T1", headers=["a"])
        t.add_row(1)
        s = Series(title="S1", x_label="x", y_label="y", x=[1.0])
        s.add_line("l", [2.0])
        r = ExperimentResult(
            experiment_id="exp", tables=[t], series=[s], notes=["n1"]
        )
        out = r.render()
        assert "=== exp ===" in out
        assert "T1" in out and "S1" in out and "NOTE: n1" in out


class TestAsciiChart:
    def _series(self):
        s = Series(title="S", x_label="x", y_label="y",
                   x=[1.0, 2.0, 3.0])
        s.add_line("up", [1.0, 2.0, 3.0])
        s.add_line("down", [3.0, 2.0, 1.0])
        return s

    def test_chart_contains_glyphs_and_legend(self):
        chart = self._series().ascii_chart(height=6)
        assert "a=up" in chart
        assert "b=down" in chart
        assert "a" in chart and "b" in chart

    def test_extremes_on_axis_labels(self):
        chart = self._series().ascii_chart(height=6)
        assert "3" in chart.splitlines()[1]  # top label
        assert "1" in chart

    def test_log_scale(self):
        s = Series(title="S", x_label="x", y_label="y", x=[1.0, 2.0])
        s.add_line("l", [1.0, 1000.0])
        chart = s.ascii_chart(height=5, log_y=True)
        assert "1000" in chart

    def test_none_values_skipped(self):
        s = Series(title="S", x_label="x", y_label="y", x=[1.0, 2.0])
        s.add_line("l", [1.0, None])
        chart = s.ascii_chart(height=5)
        assert "a=l" in chart

    def test_validation(self):
        s = self._series()
        with pytest.raises(ValueError):
            s.ascii_chart(height=2)
        empty = Series(title="S", x_label="x", y_label="y", x=[1.0])
        with pytest.raises(ValueError):
            empty.ascii_chart()
