"""The Trace container: an ordered collection of trace events.

Provides the filtered views the paper's analysis needs (kernels only,
memcpys only, per-kernel-name groups) plus summary quantities such as
total kernel-busy time and the fraction of runtime spent in kernels vs
memory operations — the ``%Runtime`` weights of Equation 2.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from .events import CopyKind, EventKind, TraceEvent

__all__ = ["Trace"]


class Trace:
    """An immutable-ish, time-sorted sequence of :class:`TraceEvent`.

    Events may be appended while tracing; analysis methods sort
    lazily. All durations are simulated seconds, sizes are bytes.
    """

    def __init__(
        self, events: Optional[Iterable[TraceEvent]] = None, name: str = ""
    ) -> None:
        self.name = name
        self._events: List[TraceEvent] = list(events) if events else []
        self._sorted = False

    # -- collection protocol ---------------------------------------------------
    def append(self, event: TraceEvent) -> None:
        """Add an event (invalidates sort order)."""
        self._events.append(event)
        self._sorted = False

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Add many events."""
        self._events.extend(events)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        self._ensure_sorted()
        return iter(self._events)

    def __getitem__(self, idx: int) -> TraceEvent:
        self._ensure_sorted()
        return self._events[idx]

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._events.sort(key=lambda e: (e.start, e.end))
            self._sorted = True

    # -- filtered views ----------------------------------------------------------
    def filter(self, predicate: Callable[[TraceEvent], bool]) -> "Trace":
        """A new Trace containing events satisfying ``predicate``."""
        self._ensure_sorted()
        return Trace((e for e in self._events if predicate(e)), name=self.name)

    def of_kinds(self, *kinds: EventKind) -> "Trace":
        """Only events whose kind is one of ``kinds``."""
        return self.filter(lambda e: e.kind in kinds)

    def count_kind(self, kind: EventKind) -> int:
        """Number of events of ``kind`` (no sorting required)."""
        return sum(1 for e in self._events if e.kind is kind)

    def kernels(self) -> "Trace":
        """Only kernel-execution events."""
        return self.filter(lambda e: e.kind is EventKind.KERNEL)

    def memcpys(self, direction: Optional[CopyKind] = None) -> "Trace":
        """Only memcpy events, optionally a single direction."""
        if direction is None:
            return self.filter(lambda e: e.kind is EventKind.MEMCPY)
        return self.filter(
            lambda e: e.kind is EventKind.MEMCPY and e.copy_kind is direction
        )

    def by_name(self) -> Dict[str, "Trace"]:
        """Group events into one Trace per event name."""
        groups: Dict[str, List[TraceEvent]] = defaultdict(list)
        for e in self:
            groups[e.name].append(e)
        return {name: Trace(evts, name=name) for name, evts in groups.items()}

    def threads(self) -> List[int]:
        """Distinct issuing host threads."""
        return sorted({e.thread for e in self._events})

    def events_in_record_order(self) -> List[TraceEvent]:
        """The events in their current internal (append) order.

        Analysis sorts by time; replay-style consumers (the
        fast-forward extrapolator) need the order events were recorded
        in, because stable-sort tie order downstream depends on it.
        """
        return list(self._events)

    # -- scalar summaries ----------------------------------------------------------
    @property
    def start(self) -> float:
        """Earliest event start (0 for an empty trace)."""
        if not self._events:
            return 0.0
        return min(e.start for e in self._events)

    @property
    def end(self) -> float:
        """Latest event end (0 for an empty trace)."""
        if not self._events:
            return 0.0
        return max(e.end for e in self._events)

    @property
    def span(self) -> float:
        """Wall-clock extent covered by the trace."""
        return self.end - self.start

    def starts(self) -> np.ndarray:
        """Array of event start times, in trace order."""
        self._ensure_sorted()
        return np.asarray([e.start for e in self._events], dtype=float)

    def ends(self) -> np.ndarray:
        """Array of event end times, in trace order."""
        self._ensure_sorted()
        return np.asarray([e.end for e in self._events], dtype=float)

    def durations(self) -> np.ndarray:
        """Array of event durations, in trace order."""
        self._ensure_sorted()
        return np.asarray([e.duration for e in self._events], dtype=float)

    def sizes(self) -> np.ndarray:
        """Array of event byte counts, in trace order."""
        self._ensure_sorted()
        return np.asarray([e.nbytes for e in self._events], dtype=float)

    def total_time(self) -> float:
        """Sum of event durations (double-counts overlap)."""
        return float(self.durations().sum()) if self._events else 0.0

    def busy_time(self) -> float:
        """Union length of the event intervals (no double counting).

        This is the device-busy time the paper's ``%Runtime`` weights
        use: overlapping kernels from parallel threads count once.
        """
        if not self._events:
            return 0.0
        self._ensure_sorted()
        busy = 0.0
        cur_start, cur_end = self._events[0].start, self._events[0].end
        for e in self._events[1:]:
            if e.start > cur_end:
                busy += cur_end - cur_start
                cur_start, cur_end = e.start, e.end
            else:
                cur_end = max(cur_end, e.end)
        busy += cur_end - cur_start
        return busy

    def runtime_fraction(self, total_runtime: Optional[float] = None) -> float:
        """Fraction of the run spent in these events (union time).

        ``total_runtime`` defaults to the trace's own span.
        """
        total = self.span if total_runtime is None else total_runtime
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time() / total)

    def top_names_by_total_time(self, n: int = 5) -> List[str]:
        """The ``n`` event names with the largest summed duration.

        Matches the paper's Figure 4 presentation: CosmoFlow executes
        dozens of kernels; the top five cover ~half the kernel time.
        """
        totals = {
            name: tr.total_time() for name, tr in self.by_name().items()
        }
        return [
            name
            for name, _ in sorted(totals.items(), key=lambda kv: -kv[1])[:n]
        ]

    def max_concurrency(self) -> int:
        """Maximum number of simultaneously-open intervals.

        Used to estimate an application's effective queue parallelism
        (the paper reads ~8 for LAMMPS, ~4 effective for CosmoFlow).
        """
        if not self._events:
            return 0
        points: List[tuple[float, int]] = []
        for e in self._events:
            points.append((e.start, 1))
            points.append((e.end, -1))
        points.sort(key=lambda p: (p[0], p[1]))
        depth = best = 0
        for _, delta in points:
            depth += delta
            best = max(best, depth)
        return best

    def __repr__(self) -> str:
        return f"<Trace {self.name!r}: {len(self)} events, span={self.span:.6g}s>"
