#!/usr/bin/env python
"""CDI-profile a GPU-dominant ML application (CosmoFlow).

The AI/ML counterpart to the LAMMPS example: CosmoFlow needs almost no
CPU (2 cores) but wants as many tightly-coupled GPUs as possible —
the opposite corner of the CPU:GPU ratio space, and exactly the job
shape CDI serves by composing many pooled GPUs behind one thin host.

Run:  python examples/cosmoflow_cdi_profile.py
"""

from repro import (
    CDIProfiler,
    CosmoFlowProfileConfig,
    ExperimentContext,
    profile_cosmoflow,
)
from repro.apps.cosmoflow import (
    COSMOFLOW_REQUIRED_CORES,
    CosmoFlowNet,
    cosmoflow_cpu_runtime,
)
from repro.hw import A100_SXM4_40GB, MiB

SLACKS = (1e-6, 1e-5, 1e-4, 1e-3)


def main() -> None:
    config = CosmoFlowProfileConfig(epochs=1, train_samples=256,
                                    val_samples=256)
    net = CosmoFlowNet(batch_size=config.batch_size)

    print("=== 1. CPU affinity ===")
    base = cosmoflow_cpu_runtime(COSMOFLOW_REQUIRED_CORES, config)
    for cores in (1, 2, 8, 48):
        t = cosmoflow_cpu_runtime(cores, config)
        print(f"  {cores:2d} cores: {t:7.1f} s ({t / base:.3f}x)")
    print(f"  -> needs only {COSMOFLOW_REQUIRED_CORES} cores; a "
          f"traditional 4-GPU node strands 40 of its 48 cores\n")

    print("=== 2. the network and its kernel stream ===")
    print(f"  {net.parameter_count() / 1e6:.1f} M parameters, "
          f"{net.sample_bytes() // MiB} MiB per input sample")
    print(f"  {len(net.training_step_kernels())} kernels per training step, "
          f"{net.step_gpu_seconds(A100_SXM4_40GB) * 1e3:.0f} ms of GPU time")

    profile = profile_cosmoflow(config)
    kernels = profile.trace.kernels()
    top = kernels.top_names_by_total_time(5)
    share = sum(kernels.by_name()[n].total_time() for n in top)
    print(f"  traced: {len(kernels)} kernel executions; top-5 "
          f"({', '.join(top[:3])}, ...) cover "
          f"{100 * share / kernels.total_time():.1f}% of kernel time")
    print(f"  effective queue parallelism: {profile.queue_parallelism} "
          f"(pessimistic reading of the 1/7 launch-phase ratio)\n")

    print("=== 3. predicted slack penalty ===")
    ctx = ExperimentContext(quick=True)
    profiler = CDIProfiler(ctx.surface())
    print(f"  {'slack':>10}  {'lower':>9}  {'upper':>9}")
    for slack in SLACKS:
        p = profiler.predict(profile, slack)
        print(f"  {slack * 1e6:7.0f} us  {p.lower_percent:8.3f}%  "
              f"{p.upper_percent:8.3f}%")
    verdict = profiler.predict(profile, 100e-6)
    print(f"\nverdict: at 100 us CosmoFlow pessimistically loses "
          f"{verdict.upper_percent:.3f}% — its long kernel sequences keep "
          f"the GPU fed across the fabric; penalties only appear at "
          f"millisecond-scale slack.")


if __name__ == "__main__":
    main()
