"""Core of the discrete-event simulation (DES) kernel.

This is a compact, dependency-free process-based DES engine in the
style of SimPy: simulated time is a float, processes are Python
generators that ``yield`` events, and an :class:`Environment` advances
time by popping events off a binary heap.

The GPU runtime (:mod:`repro.gpusim`), network fabric
(:mod:`repro.network`) and application models (:mod:`repro.apps`) are
all built as processes on top of this kernel, which is what lets the
reproduction inject microsecond-scale "slack" into CPU-to-GPU
interactions deterministically and observe the starvation effects the
paper measures on real hardware.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return "done at %g" % env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
'done at 5'
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "PENDING",
    "NORMAL",
    "URGENT",
]


class _Pending:
    """Sentinel for the value of an event that has not yet fired."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Unique sentinel marking an untriggered event's value.
PENDING: Any = _Pending()

#: Default scheduling priority for events.
NORMAL = 1

#: Priority for events that must run before same-time NORMAL events
#: (used for process initialization and interrupts).
URGENT = 0

#: Bit position packing (priority, sequence) into one heap-key integer:
#: same-time events order by priority first, then insertion sequence.
#: 52 bits of sequence (~4.5e15 events) before priorities could collide.
_PRIORITY_SHIFT = 52


class Event:
    """An event that may happen at some point in simulated time.

    Events progress through three states: *untriggered* (just created),
    *triggered* (scheduled, carries a value, waiting in the event
    queue), and *processed* (its callbacks have run).

    An event can either *succeed* with a value or *fail* with an
    exception. Processes waiting on a failed event have the exception
    re-raised at their ``yield`` statement.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event when it is processed. Set
        #: to ``None`` once processed. Lists are recycled through the
        #: environment's free pool: most events carry exactly one
        #: callback, and reusing the list spares one allocation per
        #: event on the dispatch hot path.
        pool = env._cb_pool
        self.callbacks: Optional[list[Callable[["Event"], None]]] = (
            pool.pop() if pool else []
        )
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure has been marked as handled.

        A failed event whose exception nobody handles crashes the
        simulation when processed; waiting on it (or calling
        :meth:`defuse`) marks it handled.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event's exception as handled."""
        self._defused = True

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event as successful with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: chaining ``evt.callbacks.append(other.trigger)``
        propagates success/failure from ``evt`` to ``other``.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition --------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_event, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts dominate simulations, so this constructor is the
        # allocation fast path: initialize the event inline (already
        # triggered, no state transitions to guard) and push the heap
        # entry directly instead of going through Event.__init__ +
        # Environment.schedule.
        self.env = env
        pool = env._cb_pool
        self.callbacks = pool.pop() if pool else []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        heappush(
            env._queue,
            (
                env._now + delay,
                (NORMAL << _PRIORITY_SHIFT) | env._next_eid(),
                self,
            ),
        )

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        assert self.callbacks is not None
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class _InterruptEvent(Event):
    """Internal urgent event delivering an :class:`Interrupt`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        assert self.callbacks is not None
        self.callbacks.append(process._resume_interrupt)
        env.schedule(self, priority=URGENT)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process, wrapping a generator that yields events.

    A process is itself an event: it triggers when the generator
    returns (success, with the return value) or raises (failure).
    Other processes can therefore ``yield`` a process to wait for it.
    """

    __slots__ = ("generator", "_target", "name", "_send", "_throw")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        # Bound once: the resume loop runs these for every yielded
        # event, and the attribute chain lookup is measurable there.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on, if any.
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the wrapped generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process receives the interrupt at its current ``yield``
        statement. Interrupting a dead process is an error.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        _InterruptEvent(self.env, self, cause)

    # -- resumption machinery ---------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        # If the process already terminated between the interrupt being
        # scheduled and delivered, silently drop it (it can no longer
        # be observed by anyone).
        if self._value is not PENDING:
            return
        # Detach from the event the process was waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._loop(event)

    def _loop(self, event: Event) -> None:
        """Advance the generator until it yields an untriggered event."""
        env = self.env
        env._active_proc = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The event failed; re-raise inside the process.
                    event._defused = True
                    exc = event._value
                    next_event = self._throw(exc)
            except StopIteration as exc:
                # Process finished successfully.
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                break
            except BaseException as exc:
                # Process crashed; fail the process event.
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc2 = SimulationError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                try:
                    self.generator.throw(exc2)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    env.schedule(self)
                    break
                except BaseException as raised:
                    self._ok = False
                    self._value = raised
                    env.schedule(self)
                    break
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: park the process on it. The
                # target must stay recorded so an interrupt can detach
                # the process from this event.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                env._active_proc = None
                return
            # Event already processed: loop immediately with its value.
            event = next_event

        # Only reached on termination (StopIteration or crash).
        self._target = None
        env._active_proc = None

    #: Resume entry point registered as an event callback. Aliased to
    #: :meth:`_loop` so dispatching an event into a parked process costs
    #: one Python frame instead of two; bound-method equality keeps
    #: interrupt detachment (``callbacks.remove(self._resume)``) intact.
    _resume = _loop

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


class Condition(Event):
    """An event that fires when a predicate over child events is met.

    Used to implement ``evt1 & evt2`` (:class:`AllOf`) and
    ``evt1 | evt2`` (:class:`AnyOf`). The condition's value is a dict
    mapping each *triggered* child event to its value.
    """

    __slots__ = ("_evaluate", "_events", "_fired")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        #: Events that have actually been *processed* so far, in order.
        self._fired: list[Event] = []

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if self._evaluate(self._events, 0) and not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._fired if e.ok}

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._fired.append(event)
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, len(self._fired)):
            self.succeed(self._collect())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Predicate: every child has triggered."""
        return len(events) == count

    @staticmethod
    def any_event(events: list[Event], count: int) -> bool:
        """Predicate: at least one child has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires once *all* of ``events`` have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once *any* of ``events`` has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_event, events)


class Environment:
    """Execution environment for an event-driven simulation.

    Time starts at ``initial_time`` and only advances through
    :meth:`step`/:meth:`run`. All events and processes are bound to
    exactly one environment.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # Heap entries are (time, packed key, event): priority and the
        # insertion sequence share one integer (see _PRIORITY_SHIFT),
        # which keeps entries at three slots and tie-breaking at a
        # single int comparison.
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = itertools.count()
        self._next_eid = self._eid.__next__
        self._active_proc: Optional[Process] = None
        # Recycled callback lists (see Event.__init__); bounded so a
        # burst of events cannot pin memory forever.
        self._cb_pool: list[list[Callable[[Event], None]]] = []

    # -- introspection ------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_proc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def metrics_snapshot(self) -> dict[str, float]:
        """Pull-style kernel telemetry for :mod:`repro.obs`.

        Deliberately computed from state the hot path already
        maintains — reading it costs nothing per event, which is how
        the metrics layer keeps the dispatch loop untouched. Every
        heap entry consumes one event id, so ids issued minus entries
        still pending is exactly the number of dispatched events.
        """
        # itertools.count exposes its next value through the pickle
        # protocol ((count, (n,)) from __reduce__) without consuming it.
        scheduled = self._eid.__reduce__()[1][0]
        pending = len(self._queue)
        return {
            "events_scheduled": float(scheduled),
            "events_dispatched": float(scheduled - pending),
            "heap_depth": float(pending),
            "cb_pool_free": float(len(self._cb_pool)),
            "sim_time_s": self._now,
        }

    # -- event construction shortcuts ----------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after ``delay``."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition met when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition met when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling / execution ----------------------------------------------
    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` to be processed after ``delay`` time units."""
        heappush(
            self._queue,
            (
                self._now + delay,
                (priority << _PRIORITY_SHIFT) | self._next_eid(),
                event,
            ),
        )

    def step(self) -> None:
        """Process the single next event, advancing time to it."""
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        self._now, _, event = heappop(queue)

        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        if len(callbacks) == 1:
            # The overwhelmingly common case (one process parked on the
            # event): skip the loop machinery.
            callbacks[0](event)
        else:
            for callback in callbacks:
                callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: crash the simulation.
            exc = event._value
            raise exc

        # Recycle the callback list (detached above, so no live
        # references remain) for the next event's construction.
        pool = self._cb_pool
        if len(pool) < 256:
            callbacks.clear()
            pool.append(callbacks)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain; a number — run until
            simulated time reaches it; an :class:`Event` — run until it
            fires and return its value.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event.value
                stop_event.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} must not be before current time {self._now}"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, priority=URGENT, delay=at - self._now)
                stop_event.callbacks.append(_stop_simulation)

        step = self.step
        try:
            while True:
                step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                if isinstance(until, Event):
                    raise SimulationError(
                        "no more events but the until-event was never triggered"
                    ) from None
            return None


def _stop_simulation(event: Event) -> None:
    raise StopSimulation(event._value if event._ok else None)
