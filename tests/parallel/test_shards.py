"""Tests for multi-host sharded sweep execution and merge.

Covers the acceptance contract: any partition of a grid into 1..8
shards, merged in any order, is bit-identical to the dense single-host
sweep (points, skips, surface, report meta); overlapping re-runs merge
idempotently; incompatible or gapped shard sets are refused with a
typed error listing every problem; adaptive sweeps refuse to shard.
"""

import dataclasses
import json
import random

import numpy as np
import pytest

from repro.parallel import (
    GridSpec,
    PointCache,
    ShardCoordinator,
    ShardMergeError,
    SweepShard,
    load_shard,
    merge_shards,
    run_sweep_shard,
    shard_of_task,
    write_shard,
)
from repro.obs import collecting
from repro.proxy import (
    ShardingUnsupportedError,
    SlackResponseSurface,
    SweepOptions,
    run_slack_sweep,
)

#: Compact grid: 2 sizes x 2 thread counts x (1 baseline + 2 slacks)
#: = 12 tasks, cheap enough to re-sweep per partition count.
GRID = GridSpec(
    matrix_sizes=(512, 1024),
    slack_values_s=(1e-5, 1e-3),
    threads=(1, 2),
    iterations=3,
)

OPTS = SweepOptions(workers=1, cache=None)


@pytest.fixture(scope="module")
def dense():
    """The single-host reference every merged result must reproduce."""
    return run_slack_sweep(
        matrix_sizes=GRID.matrix_sizes,
        slack_values_s=GRID.slack_values_s,
        threads=GRID.threads,
        iterations=GRID.iterations,
        options=OPTS,
    )


def run_partition(shard_count, options=OPTS):
    """Every shard of one partition, executed in-process."""
    return [
        run_sweep_shard(GRID, i, shard_count, options=options)
        for i in range(shard_count)
    ]


class TestPartitioner:
    def test_tiles_grid_exactly_once(self):
        tasks = GRID.tasks()
        assert len(tasks) == GRID.task_count == 12
        for count in range(1, 9):
            owners = [shard_of_task(task, count) for task in tasks]
            assert all(0 <= o < count for o in owners)
            # Every task belongs to exactly one shard by construction;
            # together the shards 0..N-1 tile the grid.
            covered = sum(
                owners.count(i) for i in range(count)
            )
            assert covered == len(tasks)

    def test_partition_is_stable(self):
        tasks = GRID.tasks()
        first = [shard_of_task(t, 4) for t in tasks]
        again = [shard_of_task(t, 4) for t in GRID.tasks()]
        assert first == again

    def test_grid_spec_digest_and_roundtrip(self):
        assert GRID.digest() == GridSpec.from_doc(GRID.to_doc()).digest()
        changed = GridSpec.from_doc(
            dict(GRID.to_doc(), iterations=4)
        )
        assert changed.digest() != GRID.digest()

    def test_point_at_covers_every_index(self):
        per_series = 1 + len(GRID.slack_values_s)
        for index in range(GRID.task_count):
            n, t, slack = GRID.point_at(index)
            assert n in GRID.matrix_sizes and t in GRID.threads
            if index % per_series == 0:
                assert slack is None  # series baseline
            else:
                assert slack in GRID.slack_values_s


class TestShardDeterminism:
    """The tentpole property: any partition, any merge order, same bits."""

    @pytest.mark.parametrize("shard_count", [1, 2, 3, 5, 8])
    def test_merge_bit_identical_to_dense(self, dense, shard_count):
        shards = run_partition(shard_count)
        random.Random(shard_count).shuffle(shards)
        merged = merge_shards(shards)
        assert merged.points == dense.points
        assert merged.skipped == dense.skipped
        assert merged.timing.mode == "sharded"
        assert merged.merge.grid_points == GRID.task_count
        assert merged.merge.overlap_points == 0

    def test_surface_bit_identical_to_dense(self, dense):
        merged = merge_shards(run_partition(3))
        ours, theirs = SlackResponseSurface(merged), SlackResponseSurface(dense)
        for t in theirs.thread_counts():
            assert ours.matrix_sizes(t) == theirs.matrix_sizes(t)
            for n in theirs.matrix_sizes(t):
                for s in GRID.slack_values_s:
                    assert ours.penalty(n, s, t) == theirs.penalty(n, s, t)

    def test_report_meta_identical_to_dense(self):
        shards = run_partition(2)
        with collecting():
            merged = merge_shards(shards)
        with collecting():
            dense = run_slack_sweep(
                matrix_sizes=GRID.matrix_sizes,
                slack_values_s=GRID.slack_values_s,
                threads=GRID.threads,
                iterations=GRID.iterations,
                options=OPTS,
            )
        assert merged.report is not None and dense.report is not None
        assert merged.report.kind == dense.report.kind == "sweep"
        # A merged run is the same sweep, only executed elsewhere: the
        # report meta must not leak where the points were measured.
        assert merged.report.meta == dense.report.meta

    def test_shard_from_options_shard_knob(self, dense):
        shards = [
            run_sweep_shard(GRID, options=OPTS.replace(shard=(i, 2)))
            for i in range(2)
        ]
        assert merge_shards(shards).points == dense.points

    def test_shard_assignment_required(self):
        with pytest.raises(TypeError, match="shard_index/shard_count"):
            run_sweep_shard(GRID, options=OPTS)

    def test_shard_index_out_of_range(self):
        with pytest.raises(ValueError, match="shard index"):
            run_sweep_shard(GRID, 3, 2, options=OPTS)


class TestAdaptiveRefusal:
    """Adaptive refinement is sequential: sharding it must be a typed no."""

    def test_options_validate_refuses(self):
        with pytest.raises(ShardingUnsupportedError):
            SweepOptions(adaptive=True, shard=(0, 2)).validate()

    def test_run_sweep_shard_refuses(self):
        with pytest.raises(ShardingUnsupportedError):
            run_sweep_shard(
                GRID, 0, 2, options=OPTS.replace(adaptive=True)
            )

    def test_coordinator_refuses(self):
        with pytest.raises(ShardingUnsupportedError):
            ShardCoordinator(
                GRID, 2, options=OPTS.replace(adaptive=True)
            )

    def test_run_slack_sweep_refuses_shard_knob(self):
        with pytest.raises(ShardingUnsupportedError, match="full surface"):
            run_slack_sweep(
                matrix_sizes=(512,),
                slack_values_s=(1e-4,),
                iterations=3,
                options=OPTS.replace(shard=(0, 2)),
            )


class TestShardArtifact:
    def test_write_load_roundtrip_bit_exact(self, tmp_path, dense):
        shards = run_partition(2)
        loaded = [
            load_shard(write_shard(s, tmp_path / f"s{s.shard_index}.npz"))
            for s in shards
        ]
        for s, l in zip(shards, loaded):
            assert np.array_equal(l.index, s.index)
            for name in s.columns:
                assert np.array_equal(l.columns[name], s.columns[name])
            assert l.errors == s.errors
            assert l.stats == pytest.approx(s.stats)
            assert l.grid == s.grid
            assert l.grid_digest == s.grid_digest
            assert l.options_digest == s.options_digest
            assert l.point_cache_version == s.point_cache_version
        assert merge_shards(loaded).points == dense.points

    def test_write_leaves_no_temp_files(self, tmp_path):
        shard = run_sweep_shard(GRID, 0, 2, options=OPTS)
        write_shard(shard, tmp_path / "s.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["s.npz"]

    def test_rewrite_over_existing_artifact(self, tmp_path):
        shard = run_sweep_shard(GRID, 0, 2, options=OPTS)
        path = tmp_path / "s.npz"
        write_shard(shard, path)
        write_shard(shard, path)  # straggler re-run: same path, no error
        assert load_shard(path).errors == shard.errors

    def test_load_missing_file_rejected(self, tmp_path):
        with pytest.raises(ShardMergeError, match="cannot read"):
            load_shard(tmp_path / "nope.npz")

    def test_load_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(ShardMergeError, match="shard header"):
            load_shard(path)

    def test_load_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        header = np.frombuffer(
            json.dumps({"kind": "other-artifact"}).encode(), dtype=np.uint8
        )
        np.savez(path, header=header)
        with pytest.raises(ShardMergeError, match="not a sweep shard"):
            load_shard(path)

    def test_load_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        header = np.frombuffer(
            json.dumps(
                {"kind": "repro-sweep-shard", "schema": 999}
            ).encode(),
            dtype=np.uint8,
        )
        np.savez(path, header=header)
        with pytest.raises(ShardMergeError, match="schema"):
            load_shard(path)


class TestMergeValidation:
    def test_empty_set_rejected(self):
        with pytest.raises(ShardMergeError, match="no shards"):
            merge_shards([])

    def test_gap_rejected_with_examples(self):
        shards = run_partition(3)
        with pytest.raises(ShardMergeError, match="uncovered"):
            merge_shards(shards[:2])

    def test_idempotent_overlap_tolerated(self, dense):
        shards = run_partition(2)
        rerun = run_sweep_shard(GRID, 0, 2, options=OPTS)
        merged = merge_shards([*shards, rerun])
        assert merged.points == dense.points
        assert merged.merge.overlap_points == len(rerun.index)

    def test_conflicting_overlap_rejected(self):
        shards = run_partition(2)
        tampered = dataclasses.replace(
            shards[0],
            columns={k: v.copy() for k, v in shards[0].columns.items()},
        )
        tampered.columns["loop_runtime_s"][0] += 1.0
        with pytest.raises(ShardMergeError, match="conflicting measurements"):
            merge_shards([*shards, tampered])

    def test_grid_digest_mismatch_rejected(self):
        ours = run_sweep_shard(GRID, 0, 1, options=OPTS)
        other_grid = GridSpec(
            matrix_sizes=GRID.matrix_sizes,
            slack_values_s=GRID.slack_values_s,
            threads=GRID.threads,
            iterations=4,
        )
        theirs = run_sweep_shard(other_grid, 0, 1, options=OPTS)
        with pytest.raises(ShardMergeError, match="different grid"):
            merge_shards([ours, theirs])

    def test_point_cache_version_mismatch_rejected(self):
        shards = run_partition(2)
        stale = dataclasses.replace(
            shards[1], point_cache_version="1999.01-0"
        )
        with pytest.raises(ShardMergeError, match="point-cache version"):
            merge_shards([shards[0], stale])

    def test_options_digest_mismatch_rejected(self):
        ours = run_sweep_shard(GRID, 0, 2, options=OPTS)
        theirs = run_sweep_shard(
            GRID, 1, 2, options=OPTS.replace(fast_forward=False)
        )
        with pytest.raises(ShardMergeError, match="measurement options"):
            merge_shards([ours, theirs])

    def test_out_of_grid_index_rejected(self):
        shard = run_sweep_shard(GRID, 0, 1, options=OPTS)
        broken = dataclasses.replace(
            shard, index=shard.index + GRID.task_count
        )
        with pytest.raises(ShardMergeError, match="outside the grid"):
            merge_shards([broken])

    def test_all_problems_reported_at_once(self):
        """One failed merge lists every incompatibility, not the first."""
        shards = run_partition(2)
        stale = dataclasses.replace(
            shards[1],
            point_cache_version="1999.01-0",
            options_digest="deadbeef",
        )
        with pytest.raises(ShardMergeError) as excinfo:
            merge_shards([shards[0], stale])
        message = str(excinfo.value)
        assert "point-cache version" in message
        assert "measurement options" in message


class TestSharedCache:
    def test_shards_populate_one_coherent_store(self, tmp_path, dense):
        cache = PointCache(tmp_path / "points")
        opts = OPTS.replace(cache=cache)
        first = run_partition(2, options=opts)
        assert sum(s.stats["cache_writes"] for s in first) == GRID.task_count

        # A dense sweep over the same store re-measures nothing...
        warm = run_slack_sweep(
            matrix_sizes=GRID.matrix_sizes,
            slack_values_s=GRID.slack_values_s,
            threads=GRID.threads,
            iterations=GRID.iterations,
            options=opts,
        )
        assert warm.timing.measured == 0
        assert warm.points == dense.points

        # ... and a straggler shard re-run resolves entirely from it.
        rerun = run_sweep_shard(GRID, 0, 2, options=opts)
        assert rerun.stats["cached"] == rerun.stats["tasks"]
        assert merge_shards([rerun, first[1]]).points == dense.points


class TestShardCoordinator:
    def test_command_for_shard_is_the_wire_protocol(self, tmp_path):
        coordinator = ShardCoordinator(GRID, 3, options=OPTS)
        cmd = coordinator.command_for_shard(1, tmp_path / "s.npz")
        assert "repro" in cmd and "sweep" in cmd
        assert cmd[cmd.index("--shard") + 1] == "1/3"
        assert cmd[cmd.index("--shard-out") + 1] == str(tmp_path / "s.npz")
        assert "--no-cache" in cmd  # cache=None must not touch the repo store
        assert "--workers" not in cmd  # workers=1 is the worker default

    def test_worker_env_exports_shared_cache(self, tmp_path):
        cache = PointCache(tmp_path / "points")
        coordinator = ShardCoordinator(
            GRID, 2, options=OPTS.replace(cache=cache)
        )
        env = coordinator.worker_env()
        assert env["REPRO_CACHE_DIR"] == str(tmp_path)
        assert "PYTHONPATH" in env

    def test_worker_env_refuses_unshareable_cache_layout(self, tmp_path):
        cache = PointCache(tmp_path / "elsewhere")
        coordinator = ShardCoordinator(
            GRID, 2, options=OPTS.replace(cache=cache)
        )
        with pytest.raises(ValueError, match="REPRO_CACHE_DIR"):
            coordinator.worker_env()

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ValueError, match="shard_count"):
            ShardCoordinator(GRID, 0, options=OPTS)

    def test_subprocess_run_matches_dense(self, tmp_path, dense):
        """End-to-end: real worker subprocesses, artifacts, merge."""
        coordinator = ShardCoordinator(
            GRID, 2, options=OPTS, shard_dir=tmp_path
        )
        merged = coordinator.run()
        assert merged.points == dense.points
        assert merged.skipped == dense.skipped
        assert sorted(merged.merge.subprocess_wall_s) == [0, 1]
        assert merged.merge.coordinator_wall_s > 0
        assert coordinator.merge_stats is merged.merge
        # Artifacts stay in place for re-merge / post-mortem.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "shard-000-of-2.npz",
            "shard-001-of-2.npz",
        ]
        assert merge_shards(
            sorted(tmp_path.iterdir())
        ).points == dense.points
