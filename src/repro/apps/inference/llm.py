"""The served model: a decoder-only transformer's kernel/byte shapes.

:class:`LLMSpec` reduces an LLM to the handful of numbers the serving
DES needs: parameter count and dtype (weight bytes read per decode
step), layer count and hidden width (KV-cache bytes per resident
token), and a prefill efficiency. Kernel work is described to the
simulator through :class:`~repro.gpusim.KernelSpec` roofline terms, so
the same :class:`~repro.hw.GPUSpec` that times the proxy's matmuls
times inference:

* **prefill** is one large compute-bound kernel per batch —
  ``2 * params * prompt_tokens`` FLOPs at :attr:`prefill_efficiency`;
* **decode** is one small memory-bound kernel per generated token —
  every step streams the full weights plus the batch's resident KV
  cache through HBM for ``2 * params * batch`` FLOPs, which is why
  decode latency is bandwidth- (and slack-) dominated.

The default spec is a ~1.5B-parameter fp16 model: small enough that a
profiled serving run stays cheap, large enough that decode steps
(~2 ms: 3 GB of weights over 1555 GB/s) sit squarely in the regime
where per-call CDI slack is *visible* in per-token latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...gpusim import KernelSpec

__all__ = ["LLMSpec"]


@dataclass(frozen=True)
class LLMSpec:
    """Kernel-level shape of one served decoder-only model."""

    name: str = "llm-1b5"
    n_layers: int = 24
    d_model: int = 2048
    param_count: int = 1_500_000_000
    #: Bytes per weight / activation element (2 = fp16).
    dtype_bytes: int = 2
    #: Fraction of peak FLOP/s the fused prefill kernels achieve.
    prefill_efficiency: float = 0.45
    #: Wire bytes per sampled token id (int32 logits argmax).
    token_id_bytes: int = 4

    def __post_init__(self) -> None:
        if self.n_layers <= 0 or self.d_model <= 0:
            raise ValueError("n_layers and d_model must be positive")
        if self.param_count <= 0:
            raise ValueError("param_count must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if not 0 < self.prefill_efficiency <= 1:
            raise ValueError("prefill_efficiency must be in (0, 1]")
        if self.token_id_bytes <= 0:
            raise ValueError("token_id_bytes must be positive")

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes one resident token occupies (K and V per layer)."""
        return 2 * self.n_layers * self.d_model * self.dtype_bytes

    @property
    def weight_bytes(self) -> int:
        """Resident weight footprint (read in full by every decode step)."""
        return self.param_count * self.dtype_bytes

    def prefill_kernel(self, prompt_tokens: int) -> KernelSpec:
        """The batch's one-shot prompt-processing kernel."""
        if prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        return KernelSpec(
            name="k_prefill",
            flops=2.0 * self.param_count * prompt_tokens,
            bytes_accessed=float(
                self.weight_bytes + prompt_tokens * self.kv_bytes_per_token
            ),
            efficiency=self.prefill_efficiency,
        )

    def decode_kernel(self, active: int, kv_tokens: int) -> KernelSpec:
        """One generation step for ``active`` sequences.

        ``kv_tokens`` is the total number of KV-resident tokens across
        the batch at this step (prompt plus tokens generated so far);
        the step streams weights + KV through memory once.
        """
        if active <= 0:
            raise ValueError("active must be positive")
        if kv_tokens < 0:
            raise ValueError("kv_tokens must be non-negative")
        return KernelSpec(
            name="k_decode",
            flops=2.0 * self.param_count * active,
            bytes_accessed=float(
                self.weight_bytes + kv_tokens * self.kv_bytes_per_token
            ),
        )
