"""Multi-host sharded sweep execution with deterministic merge.

A sweep grid is a bag of independent point tasks, and the per-point
cache already content-addresses each of them — this module turns that
into a scale-out engine:

* :class:`GridSpec` — a self-describing, digestable description of one
  sweep grid (sizes, slacks, threads, iteration policy). Every worker
  plans the *same* canonical task list from it independently
  (:func:`repro.proxy.plan_grid_tasks` is deterministic across hosts).
* :func:`shard_of_task` — the deterministic partitioner: a task
  belongs to shard ``hash(point_key) % shard_count``. Any shard set
  ``0..N-1`` therefore covers the grid exactly once, for every N,
  with no coordination.
* :func:`run_sweep_shard` — execute one shard through the ordinary
  :class:`~repro.parallel.SweepExecutor` (pool, per-point cache,
  fast-forward and fault plumbing all unchanged) and reduce it to a
  :class:`SweepShard`: packed numpy measurement columns plus an
  executor/cache/fast-forward stats roll-up — no per-point Python
  objects on the wire.
* :func:`write_shard` / :func:`load_shard` — the versioned on-disk
  artifact (an ``.npz`` with a JSON header), written via unique-temp +
  atomic rename so concurrent shard workers can share a directory.
* :func:`merge_shards` — validate that a shard set is compatible
  (grid digest, :data:`~repro.parallel.POINT_CACHE_VERSION`, options
  digest) and complete (no gaps, no *conflicting* overlaps — re-run
  straggler shards merge idempotently), then reassemble a
  :class:`~repro.proxy.SweepResult` **byte-identical** to the dense
  single-host run through the shared assembly path.
* :class:`ShardCoordinator` — drive N shard workers as local
  subprocesses (``python -m repro sweep --shard I/N --shard-out ...``)
  and merge their artifacts. The command lines it builds
  (:meth:`~ShardCoordinator.command_for_shard`) are the reference
  protocol for ssh/queue launchers: run them anywhere, ship the
  artifacts back, merge.

Shards pointed at one ``REPRO_CACHE_DIR`` get cache-coherent reuse:
every worker reads and writes the same content-addressed store
(:class:`~repro.parallel.PointCache` writes are race-safe), so a
re-run shard resolves instantly and a grid extension only measures
new points, regardless of which host measured the rest.

Adaptive sweeps (``adaptive=True``) are explicitly unsupported with
sharding — refinement is a sequential decision process over the whole
grid — and raise :class:`~repro.proxy.ShardingUnsupportedError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..faults import FaultPlan
from ..obs import (
    RunReport,
    get_registry,
    publish_shard,
    publish_shard_merge,
)
from ..proxy.options import (
    ShardingUnsupportedError,
    SweepOptions,
)
from ..proxy.sweep import (
    SweepResult,
    SweepTiming,
    assemble_sweep_result,
    grid_series,
    plan_grid_tasks,
)
from .executor import SweepExecutor
from .point import PointMeasurement, PointTask
from .pointcache import POINT_CACHE_VERSION, PointCache, point_key

__all__ = [
    "SHARD_SCHEMA_VERSION",
    "GridSpec",
    "ShardCoordinator",
    "ShardMergeError",
    "ShardMergeStats",
    "SweepShard",
    "faults_digest",
    "load_shard",
    "merge_shards",
    "options_digest",
    "run_sweep_shard",
    "shard_of_task",
    "write_shard",
]

#: Version of the shard artifact schema. Bump on any change to the
#: header layout or column set; loaders refuse unknown versions (a
#: shard from a newer build must not be silently misread).
SHARD_SCHEMA_VERSION = 1

#: Artifact magic, so a stray ``.npz`` is rejected with a clear error.
_SHARD_KIND = "repro-sweep-shard"

#: Measurement columns shipped per point (name, dtype). Together with
#: the sparse error-string table in the header these reconstruct every
#: :class:`~repro.parallel.PointMeasurement` field that participates
#: in result assembly and telemetry roll-up (the per-run ``sim`` dict
#: stays host-local: it feeds metrics inside the worker, not results).
_COLUMNS: Tuple[Tuple[str, Any], ...] = (
    ("ok", np.uint8),
    ("loop_runtime_s", np.float64),
    ("corrected_runtime_s", np.float64),
    ("iterations", np.int64),
    ("kernel_time_s", np.float64),
    ("injected_slack_s", np.float64),
    ("starvation_cost_s", np.float64),
    ("elapsed_s", np.float64),
    ("ff_hit", np.uint8),
    ("ff_events_skipped", np.int64),
)


class ShardMergeError(ValueError):
    """A shard set cannot be merged: incompatible, gapped, or in
    conflict. The message lists every problem found, not just the
    first — a fleet operator fixes them in one pass."""


def faults_digest(faults: Optional[FaultPlan]) -> str:
    """Stable content hash of a fault plan (or of the healthy fabric).

    An empty plan is normalized to ``None`` first, matching the
    point-cache key rule — ``FaultPlan()`` and no-faults produce
    bit-identical measurements, so their shards must merge.
    """
    doc = (
        faults.to_doc()
        if faults is not None and not faults.is_empty
        else None
    )
    payload = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def options_digest(options: SweepOptions) -> str:
    """Stable hash of the measurement-relevant execution knobs.

    Shards of one sweep must agree on everything that could change a
    measurement: the fault plan and the fast-forward switch (included
    defensively — fast-forward is bit-identical by contract, but a
    merge must not paper over a sweep accidentally run in mixed
    modes). Pure scheduling knobs (``workers``, ``cache``, ``shard``)
    are excluded: they cannot change results, and shards *should*
    differ in them.
    """
    doc = {
        "faults": faults_digest(options.faults),
        # None means "the proxy default, on" — normalize so an
        # explicit fast_forward=True merges with the default.
        "fast_forward": options.fast_forward is not False,
    }
    payload = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class GridSpec:
    """Self-describing description of one sweep grid.

    Carries exactly the grid parameters of
    :func:`~repro.proxy.run_slack_sweep` — every shard worker rebuilds
    the identical canonical task list from it, and
    :meth:`digest` is the compatibility key shards are validated
    against at merge time. Values are normalized to plain Python
    scalars so the digest is stable across hosts and numpy builds.
    """

    matrix_sizes: Tuple[int, ...]
    slack_values_s: Tuple[float, ...]
    threads: Tuple[int, ...] = (1,)
    iterations: Optional[int] = None
    target_compute_s: float = 30.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "matrix_sizes", tuple(int(n) for n in self.matrix_sizes)
        )
        object.__setattr__(
            self,
            "slack_values_s",
            tuple(float(s) for s in self.slack_values_s),
        )
        object.__setattr__(
            self, "threads", tuple(int(t) for t in self.threads)
        )
        if self.iterations is not None:
            object.__setattr__(self, "iterations", int(self.iterations))
        object.__setattr__(
            self, "target_compute_s", float(self.target_compute_s)
        )

    def to_doc(self) -> Dict[str, Any]:
        """Plain-dict form (JSON round-trips bit-exactly)."""
        return {
            "matrix_sizes": list(self.matrix_sizes),
            "slack_values_s": list(self.slack_values_s),
            "threads": list(self.threads),
            "iterations": self.iterations,
            "target_compute_s": self.target_compute_s,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "GridSpec":
        return cls(
            matrix_sizes=tuple(doc["matrix_sizes"]),
            slack_values_s=tuple(doc["slack_values_s"]),
            threads=tuple(doc["threads"]),
            iterations=doc.get("iterations"),
            target_compute_s=doc.get("target_compute_s", 30.0),
        )

    def digest(self) -> str:
        """Stable content hash of the grid (the shard-compat key)."""
        payload = json.dumps(self.to_doc(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def task_count(self) -> int:
        """Total tasks in the canonical plan (baselines included)."""
        return len(self.matrix_sizes) * len(self.threads) * (
            1 + len(self.slack_values_s)
        )

    def series(self) -> List[Tuple[int, int]]:
        """``(matrix_size, threads)`` keys in canonical grid order."""
        return grid_series(self.matrix_sizes, self.threads)

    def point_at(self, index: int) -> Tuple[int, int, Optional[float]]:
        """``(matrix_size, threads, slack_s)`` of one global task index
        (``slack_s=None`` for the series baseline) — for diagnostics."""
        per_series = 1 + len(self.slack_values_s)
        n, t = self.series()[index // per_series]
        offset = index % per_series
        slack = None if offset == 0 else self.slack_values_s[offset - 1]
        return (n, t, slack)

    def tasks(
        self,
        *,
        fast_forward: Optional[bool] = None,
        faults: Optional[FaultPlan] = None,
    ) -> List[PointTask]:
        """The canonical task list (see :func:`repro.proxy.plan_grid_tasks`)."""
        return plan_grid_tasks(
            self.matrix_sizes,
            self.slack_values_s,
            self.threads,
            self.iterations,
            self.target_compute_s,
            fast_forward=fast_forward,
            faults=faults,
        )


def shard_of_task(
    task: PointTask,
    shard_count: int,
    version: str = POINT_CACHE_VERSION,
) -> int:
    """Which shard of ``shard_count`` owns one task.

    Derived from the task's content-addressed point key — the same
    hash that keys the :class:`~repro.parallel.PointCache` — so the
    partition is a pure function of the task: every worker computes it
    identically with no coordination, and any shard set ``0..N-1``
    tiles the grid exactly once.
    """
    key = point_key(task.config, task.slack_s, version, faults=task.faults)
    return int(key[:16], 16) % shard_count


@dataclass
class SweepShard:
    """One shard's execution, reduced to packed columns + a roll-up.

    The in-memory form of the shard artifact: global task indices,
    one numpy column per measurement scalar (see the module's
    ``_COLUMNS``), a sparse error-string table, the compatibility
    header fields, and the executor/cache/fast-forward stats dict.
    """

    shard_index: int
    shard_count: int
    grid: GridSpec
    #: Global task indices (into the grid's canonical plan) of the
    #: rows below, ascending.
    index: np.ndarray
    #: name -> packed column, one row per entry of ``index``.
    columns: Dict[str, np.ndarray]
    #: row position -> error message (sparse; only failed points).
    errors: Dict[int, str]
    #: Executor/cache/fast-forward roll-up of the shard run.
    stats: Dict[str, float]
    point_cache_version: str = POINT_CACHE_VERSION
    options_digest: str = ""
    faults_doc: Optional[Dict[str, Any]] = None
    #: Telemetry snapshot (populated when metrics were enabled in the
    #: worker; not serialized into the artifact).
    report: Optional[RunReport] = field(default=None, compare=False)

    @property
    def grid_digest(self) -> str:
        return self.grid.digest()

    def measurement(self, row: int) -> PointMeasurement:
        """Rebuild the :class:`PointMeasurement` of one stored row."""
        c = self.columns
        return PointMeasurement(
            ok=bool(c["ok"][row]),
            error=self.errors.get(row, ""),
            loop_runtime_s=float(c["loop_runtime_s"][row]),
            corrected_runtime_s=float(c["corrected_runtime_s"][row]),
            iterations=int(c["iterations"][row]),
            kernel_time_s=float(c["kernel_time_s"][row]),
            injected_slack_s=float(c["injected_slack_s"][row]),
            starvation_cost_s=float(c["starvation_cost_s"][row]),
            elapsed_s=float(c["elapsed_s"][row]),
            fastforward_hit=bool(c["ff_hit"][row]),
            fastforward_events_skipped=int(c["ff_events_skipped"][row]),
        )

    def row_fingerprint(self, row: int) -> Tuple[Any, ...]:
        """The *measurement* content of one row, for overlap conflict
        checks. ``elapsed_s`` — how long the host happened to take — is
        deliberately excluded: it is telemetry, not measurement, and
        re-running a straggler shard must merge idempotently even
        though its wall clock cannot repeat."""
        return tuple(
            self.columns[name][row].item()
            for name, _ in _COLUMNS
            if name != "elapsed_s"
        ) + (self.errors.get(row, ""),)


def run_sweep_shard(
    grid: GridSpec,
    shard_index: Optional[int] = None,
    shard_count: Optional[int] = None,
    *,
    options: Optional[SweepOptions] = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepShard:
    """Execute one shard of a sweep grid and pack it for the merge.

    The shard assignment comes from the explicit arguments or, when
    omitted, from ``options.shard``. The worker plans the full
    canonical task list, keeps the tasks :func:`shard_of_task` assigns
    to it, runs them through the ordinary
    :class:`~repro.parallel.SweepExecutor` (process pool, per-point
    cache, fault and fast-forward plumbing unchanged), and reduces the
    measurements to packed numpy columns plus a stats roll-up.

    Raises :class:`~repro.proxy.ShardingUnsupportedError` for
    ``adaptive=True`` — adaptive refinement cannot be partitioned by
    point hash without changing which points get measured.
    """
    opts = (options if options is not None else SweepOptions()).validate()
    if opts.adaptive:
        raise ShardingUnsupportedError(
            "adaptive sweeps cannot be sharded: refinement is a "
            "sequential decision process over the whole grid"
        )
    if shard_index is None or shard_count is None:
        if opts.shard is None:
            raise TypeError(
                "shard_index/shard_count required (as arguments or via "
                "options.shard)"
            )
        shard_index, shard_count = opts.shard
    opts.replace(shard=(shard_index, shard_count)).validate()

    faults = opts.faults
    if faults is not None and faults.is_empty:
        faults = None
    if faults is not None:
        faults.validate()

    tasks = grid.tasks(fast_forward=opts.fast_forward, faults=faults)
    mine = [
        (i, task)
        for i, task in enumerate(tasks)
        if shard_of_task(task, shard_count) == shard_index
    ]

    ex = executor if executor is not None else SweepExecutor(options=opts)
    cache = ex.cache
    cache_before = (
        (cache.hits, cache.misses, cache.writes, cache.write_races)
        if cache is not None
        else (0, 0, 0, 0)
    )
    measurements = ex.run([task for _, task in mine])

    index = np.array([i for i, _ in mine], dtype=np.int64)
    columns = {
        name: np.empty(len(mine), dtype=dtype) for name, dtype in _COLUMNS
    }
    errors: Dict[int, str] = {}
    for row, m in enumerate(measurements):
        columns["ok"][row] = m.ok
        columns["loop_runtime_s"][row] = m.loop_runtime_s
        columns["corrected_runtime_s"][row] = m.corrected_runtime_s
        columns["iterations"][row] = m.iterations
        columns["kernel_time_s"][row] = m.kernel_time_s
        columns["injected_slack_s"][row] = m.injected_slack_s
        columns["starvation_cost_s"][row] = m.starvation_cost_s
        columns["elapsed_s"][row] = m.elapsed_s
        columns["ff_hit"][row] = m.fastforward_hit
        columns["ff_events_skipped"][row] = m.fastforward_events_skipped
        if m.error:
            errors[row] = m.error

    stats: Dict[str, float] = {}
    if ex.stats is not None:
        s = ex.stats
        stats.update(
            wall_s=s.wall_s,
            tasks=float(s.tasks),
            measured=float(s.measured),
            cached=float(s.cached),
            workers=float(s.workers),
            point_seconds=s.point_seconds,
        )
        stats["mode_process"] = float(s.mode == "process")
    if cache is not None:
        stats["cache_hits"] = float(cache.hits - cache_before[0])
        stats["cache_misses"] = float(cache.misses - cache_before[1])
        stats["cache_writes"] = float(cache.writes - cache_before[2])
        stats["cache_write_races"] = float(
            cache.write_races - cache_before[3]
        )
    stats["ff_hits"] = float(sum(m.fastforward_hit for m in measurements))
    stats["ff_events_skipped"] = float(
        sum(m.fastforward_events_skipped for m in measurements)
    )

    shard = SweepShard(
        shard_index=shard_index,
        shard_count=shard_count,
        grid=grid,
        index=index,
        columns=columns,
        errors=errors,
        stats=stats,
        point_cache_version=POINT_CACHE_VERSION,
        options_digest=options_digest(opts),
        faults_doc=faults.to_doc() if faults is not None else None,
    )

    reg = get_registry()
    if reg.enabled:
        publish_shard(shard_index, shard_count, stats, reg)
        shard.report = RunReport.collect(
            reg,
            kind="sweep-shard",
            meta={
                "shard": {"index": shard_index, "count": shard_count},
                "grid": grid.to_doc(),
                "grid_digest": grid.digest(),
                "options_digest": shard.options_digest,
                "point_cache_version": POINT_CACHE_VERSION,
                "faults": shard.faults_doc,
            },
        )
    return shard


def write_shard(shard: SweepShard, path: Union[str, Path]) -> Path:
    """Serialize one shard to its on-disk artifact.

    A single ``.npz``: the measurement columns plus a JSON header
    (grid, digests, versions, stats, sparse errors) packed as bytes.
    Written via a unique temp file + atomic rename, so shard workers
    sharing an output directory — or re-running a straggler over an
    existing artifact — never expose a torn file.
    """
    path = Path(path)
    header = {
        "kind": _SHARD_KIND,
        "schema": SHARD_SCHEMA_VERSION,
        "shard_index": shard.shard_index,
        "shard_count": shard.shard_count,
        "grid": shard.grid.to_doc(),
        "grid_digest": shard.grid_digest,
        "point_cache_version": shard.point_cache_version,
        "options_digest": shard.options_digest,
        "faults": shard.faults_doc,
        "errors": [[row, msg] for row, msg in sorted(shard.errors.items())],
        "stats": shard.stats,
    }
    header_bytes = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as f:
            np.savez(
                f, header=header_bytes, index=shard.index, **shard.columns
            )
        tmp.replace(path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            try:
                tmp.unlink()
            except OSError:
                pass
    return path


def load_shard(path: Union[str, Path]) -> SweepShard:
    """Load one shard artifact; raises :class:`ShardMergeError` for
    files that are not (readable, current-schema) shard artifacts."""
    path = Path(path)
    try:
        with np.load(path) as npz:
            arrays = {name: npz[name] for name in npz.files}
    except (OSError, ValueError, KeyError) as exc:
        raise ShardMergeError(f"cannot read shard artifact {path}: {exc}")
    try:
        header = json.loads(arrays.pop("header").tobytes().decode("utf-8"))
    except (KeyError, ValueError) as exc:
        raise ShardMergeError(
            f"{path} has no parseable shard header: {exc}"
        )
    if header.get("kind") != _SHARD_KIND:
        raise ShardMergeError(
            f"{path} is not a sweep shard artifact "
            f"(kind={header.get('kind')!r})"
        )
    if header.get("schema") != SHARD_SCHEMA_VERSION:
        raise ShardMergeError(
            f"{path} uses shard schema {header.get('schema')!r}; this "
            f"build reads schema {SHARD_SCHEMA_VERSION}"
        )
    missing = [
        name
        for name in ("index", *(name for name, _ in _COLUMNS))
        if name not in arrays
    ]
    if missing:
        raise ShardMergeError(f"{path} is missing columns: {missing}")
    return SweepShard(
        shard_index=int(header["shard_index"]),
        shard_count=int(header["shard_count"]),
        grid=GridSpec.from_doc(header["grid"]),
        index=arrays["index"],
        columns={name: arrays[name] for name, _ in _COLUMNS},
        errors={int(row): str(msg) for row, msg in header.get("errors", [])},
        stats={str(k): float(v) for k, v in header.get("stats", {}).items()},
        point_cache_version=str(header["point_cache_version"]),
        options_digest=str(header.get("options_digest", "")),
        faults_doc=header.get("faults"),
    )


@dataclass
class ShardMergeStats:
    """Per-shard telemetry roll-up of one merge.

    ``shards`` holds one plain dict per merged artifact (shard index /
    count, point counts, wall, cache split, fast-forward counts —
    whatever the worker recorded), JSON-ready for perf artifacts. The
    coordinator augments ``subprocess_wall_s`` with the walls it
    observed around each worker process.
    """

    shards: List[Dict[str, float]]
    merge_wall_s: float
    grid_points: int
    overlap_points: int = 0
    #: shard index -> end-to-end subprocess wall (coordinator runs only).
    subprocess_wall_s: Optional[Dict[int, float]] = None
    #: Launch-to-merge wall of the whole coordinated run.
    coordinator_wall_s: Optional[float] = None

    @property
    def shard_wall_s(self) -> float:
        """The critical path: the slowest shard's executor wall."""
        return max(
            (s.get("wall_s", 0.0) for s in self.shards), default=0.0
        )

    @property
    def merge_overhead(self) -> Optional[float]:
        """Merge wall over the slowest shard wall (None for 0 walls)."""
        wall = self.shard_wall_s
        return self.merge_wall_s / wall if wall > 0 else None

    def to_doc(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "merge_wall_s": self.merge_wall_s,
            "grid_points": self.grid_points,
            "overlap_points": self.overlap_points,
            "shard_wall_s": self.shard_wall_s,
            "merge_overhead": self.merge_overhead,
            "subprocess_wall_s": (
                {str(k): v for k, v in self.subprocess_wall_s.items()}
                if self.subprocess_wall_s is not None
                else None
            ),
            "coordinator_wall_s": self.coordinator_wall_s,
        }


def merge_shards(
    shards: Sequence[Union[SweepShard, str, Path]],
) -> SweepResult:
    """Reassemble a full :class:`~repro.proxy.SweepResult` from shards.

    Validates that every shard is compatible (same grid digest, same
    :data:`~repro.parallel.POINT_CACHE_VERSION`, same options digest),
    then checks coverage: every global task index exactly once.
    Overlapping indices are tolerated when the duplicate rows carry
    identical measurements (re-running a straggler shard and merging
    again is idempotent — host-local wall clocks are allowed to
    differ); conflicting duplicates and gaps raise
    :class:`ShardMergeError` listing every problem.

    The result is byte-identical to the dense single-host sweep —
    points, skips, surface — because the measurements are recombined
    in canonical grid order and fed through the same
    :func:`~repro.proxy.assemble_sweep_result` path the dense sweep
    uses. ``result.merge`` carries the :class:`ShardMergeStats`
    roll-up; ``result.timing`` reports the critical-path wall (slowest
    shard + merge).
    """
    t0 = perf_counter()
    loaded = [
        s if isinstance(s, SweepShard) else load_shard(s) for s in shards
    ]
    if not loaded:
        raise ShardMergeError("no shards to merge")

    ref = loaded[0]
    problems: List[str] = []
    for s in loaded[1:]:
        if s.grid_digest != ref.grid_digest:
            problems.append(
                f"shard {s.shard_index}/{s.shard_count} measured a "
                f"different grid (digest {s.grid_digest[:12]} != "
                f"{ref.grid_digest[:12]})"
            )
        if s.point_cache_version != ref.point_cache_version:
            problems.append(
                f"shard {s.shard_index}/{s.shard_count} ran under point-"
                f"cache version {s.point_cache_version!r} != "
                f"{ref.point_cache_version!r} (simulator behavior "
                f"changed between shard runs)"
            )
        if s.options_digest != ref.options_digest:
            problems.append(
                f"shard {s.shard_index}/{s.shard_count} ran with "
                f"different measurement options (digest "
                f"{s.options_digest[:12]} != {ref.options_digest[:12]})"
            )
    if problems:
        raise ShardMergeError(
            "incompatible shard set:\n  " + "\n  ".join(problems)
        )

    grid = ref.grid
    total = grid.task_count
    owner: Dict[int, Tuple[SweepShard, int]] = {}
    overlap = 0
    for s in loaded:
        for row, idx in enumerate(s.index.tolist()):
            if idx < 0 or idx >= total:
                problems.append(
                    f"shard {s.shard_index}/{s.shard_count} carries task "
                    f"index {idx} outside the grid's 0..{total - 1}"
                )
                continue
            prev = owner.get(idx)
            if prev is None:
                owner[idx] = (s, row)
                continue
            overlap += 1
            prev_shard, prev_row = prev
            if s.row_fingerprint(row) != prev_shard.row_fingerprint(
                prev_row
            ):
                n, t, slack = grid.point_at(idx)
                where = (
                    f"matrix {n} x {t} thread(s) "
                    + ("baseline" if slack is None else f"slack {slack:g}s")
                )
                problems.append(
                    f"conflicting measurements for {where} (task {idx}): "
                    f"shard {prev_shard.shard_index}/"
                    f"{prev_shard.shard_count} and shard "
                    f"{s.shard_index}/{s.shard_count} disagree"
                )
    missing = [i for i in range(total) if i not in owner]
    if missing:
        examples = ", ".join(
            "{} x {} {}".format(
                *grid.point_at(i)[:2],
                "baseline"
                if grid.point_at(i)[2] is None
                else f"slack {grid.point_at(i)[2]:g}s",
            )
            for i in missing[:3]
        )
        covered = sorted({(s.shard_index, s.shard_count) for s in loaded})
        problems.append(
            f"{len(missing)} of {total} grid tasks uncovered (e.g. "
            f"{examples}); merged shards: "
            + ", ".join(f"{i}/{n}" for i, n in covered)
        )
    if problems:
        raise ShardMergeError(
            "shard set does not tile the grid:\n  " + "\n  ".join(problems)
        )

    measurements = [
        owner[i][0].measurement(owner[i][1]) for i in range(total)
    ]
    result = assemble_sweep_result(
        grid.series(), grid.slack_values_s, measurements
    )

    merge_wall = perf_counter() - t0
    shard_docs = [
        {
            "shard_index": float(s.shard_index),
            "shard_count": float(s.shard_count),
            **s.stats,
        }
        for s in loaded
    ]
    result.merge = ShardMergeStats(
        shards=shard_docs,
        merge_wall_s=merge_wall,
        grid_points=total,
        overlap_points=overlap,
    )
    result.timing = SweepTiming(
        wall_s=result.merge.shard_wall_s + merge_wall,
        grid_points=total,
        measured=int(sum(s.stats.get("measured", 0.0) for s in loaded)),
        cached=int(sum(s.stats.get("cached", 0.0) for s in loaded)),
        workers=max(
            1, int(sum(s.stats.get("workers", 1.0) for s in loaded))
        ),
        mode="sharded",
        point_seconds=sum(
            s.stats.get("point_seconds", 0.0) for s in loaded
        ),
    )

    reg = get_registry()
    if reg.enabled:
        publish_shard_merge(result.merge, reg)
        reg.counter("sweep.runs").inc()
        reg.counter("sweep.points").inc(len(result.points))
        reg.counter("sweep.skipped").inc(len(result.skipped))
        reg.counter("sweep.wall_s").inc(result.timing.wall_s)
        # Meta is deliberately identical to the dense single-host
        # sweep's: a merged run is the same sweep, only executed
        # elsewhere (the shard roll-up lives in result.merge and the
        # sweep.shard.* counters, not the meta).
        result.report = RunReport.collect(
            reg,
            kind="sweep",
            meta={
                "matrix_sizes": list(grid.matrix_sizes),
                "slack_values_s": list(grid.slack_values_s),
                "threads": list(grid.threads),
                "iterations": grid.iterations,
                "faults": ref.faults_doc,
            },
        )
    return result


class ShardCoordinator:
    """Drive N shard workers as local subprocesses and merge them.

    The same-machine scale-out engine *and* the reference protocol for
    remote launchers: each worker is one ``python -m repro sweep
    --shard I/N --shard-out PATH`` invocation
    (:meth:`command_for_shard` hands the exact argv to ssh/queue
    wrappers), workers share nothing but the filesystem, and the
    artifacts merge through :func:`merge_shards` — so replacing the
    local ``subprocess`` launch with ssh, SLURM, or a work queue
    changes nothing about correctness.

    Workers inherit the environment plus ``REPRO_CACHE_DIR`` when the
    options carry a resolvable point cache, giving all shards
    cache-coherent reuse of one content-addressed store. A failed or
    straggling shard can be re-run with the identical command and the
    merge repeated — merging is idempotent.

    Parameters
    ----------
    grid:
        The sweep grid every worker plans from.
    shard_count:
        Number of workers (= shards in the partition).
    options:
        Execution knobs applied inside each worker (``workers`` is the
        *per-worker* pool size; default 1 — the shard fan-out is the
        parallelism). ``adaptive`` is refused.
    shard_dir:
        Where the artifacts land (a temporary directory by default).
    python:
        Interpreter to launch (default ``sys.executable``).
    env:
        Extra environment variables for the workers.
    """

    def __init__(
        self,
        grid: GridSpec,
        shard_count: int,
        *,
        options: Optional[SweepOptions] = None,
        shard_dir: Optional[Union[str, Path]] = None,
        python: Optional[str] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        opts = (
            options if options is not None else SweepOptions()
        ).validate()
        if opts.adaptive:
            raise ShardingUnsupportedError(
                "adaptive sweeps cannot be sharded: refinement is a "
                "sequential decision process over the whole grid"
            )
        self.grid = grid
        self.shard_count = shard_count
        self.options = opts
        self.shard_dir = Path(shard_dir) if shard_dir is not None else None
        self.python = python or sys.executable
        self.extra_env = dict(env or {})
        #: Stats of the most recent :meth:`run` (None before first use).
        self.merge_stats: Optional[ShardMergeStats] = None

    def shard_path(self, index: int, shard_dir: Path) -> Path:
        """Artifact location of one shard."""
        return shard_dir / f"shard-{index:03d}-of-{self.shard_count}.npz"

    def command_for_shard(self, index: int, out_path: Path) -> List[str]:
        """The exact worker argv — the wire protocol for any launcher."""
        grid, opts = self.grid, self.options
        cmd = [
            self.python,
            "-m",
            "repro",
            "sweep",
            "--shard",
            f"{index}/{self.shard_count}",
            "--shard-out",
            str(out_path),
        ]
        for n in grid.matrix_sizes:
            cmd += ["--matrix", str(n)]
        for s in grid.slack_values_s:
            cmd += ["--slack", repr(s)]
        for t in grid.threads:
            cmd += ["--threads", str(t)]
        cmd += ["--iterations", str(grid.iterations or 0)]
        if grid.target_compute_s != 30.0:
            cmd += ["--target-compute", repr(grid.target_compute_s)]
        workers = opts.workers
        if workers != 1:
            cmd += ["--workers", "0" if workers is None else str(workers)]
        if not opts.cache:
            cmd += ["--no-cache"]
        if opts.fast_forward is False:
            cmd += ["--no-fast-forward"]
        if opts.faults is not None and not opts.faults.is_empty:
            cmd += ["--faults", json.dumps(opts.faults.to_doc())]
        return cmd

    def worker_env(self) -> Dict[str, str]:
        """Environment for the workers (import path + shared cache)."""
        env = dict(os.environ)
        # Guarantee the workers import this build of repro even when
        # it is not installed (the usual PYTHONPATH=src layout).
        src_root = str(Path(__file__).resolve().parents[2])
        parts = [src_root] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        cache = self.options.cache
        if isinstance(cache, PointCache):
            root = Path(cache.root).resolve()
            if root.name != "points":
                raise ValueError(
                    "a custom PointCache can only be shared with shard "
                    "subprocesses when rooted at <dir>/points (the "
                    "REPRO_CACHE_DIR layout); set REPRO_CACHE_DIR "
                    "yourself via env= for other layouts"
                )
            env["REPRO_CACHE_DIR"] = str(root.parent)
        env.update(self.extra_env)
        return env

    def run(self) -> SweepResult:
        """Launch every shard, wait, merge; returns the merged result.

        Raises ``RuntimeError`` with the failing worker's stderr tail
        if any subprocess exits non-zero (its artifact, if written, is
        left in place so the shard can be re-run and re-merged).
        """
        t0 = perf_counter()
        tmp: Optional[tempfile.TemporaryDirectory] = None
        if self.shard_dir is not None:
            shard_dir = self.shard_dir
            shard_dir.mkdir(parents=True, exist_ok=True)
        else:
            tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
            shard_dir = Path(tmp.name)
        try:
            env = self.worker_env()
            paths = [
                self.shard_path(i, shard_dir)
                for i in range(self.shard_count)
            ]
            procs = [
                subprocess.Popen(
                    self.command_for_shard(i, path),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    env=env,
                    text=True,
                )
                for i, path in enumerate(paths)
            ]
            walls: Dict[int, float] = {}
            pending = set(range(self.shard_count))
            while pending:
                for i in sorted(pending):
                    if procs[i].poll() is not None:
                        walls[i] = perf_counter() - t0
                        pending.discard(i)
                if pending:
                    time.sleep(0.01)
            failures = []
            for i, proc in enumerate(procs):
                if proc.returncode != 0:
                    _, err = proc.communicate()
                    tail = "\n".join(err.strip().splitlines()[-5:])
                    failures.append(
                        f"shard {i}/{self.shard_count} exited "
                        f"{proc.returncode}: {tail}"
                    )
                else:
                    proc.communicate()
            if failures:
                raise RuntimeError(
                    "shard worker(s) failed:\n  " + "\n  ".join(failures)
                )
            result = merge_shards(paths)
        finally:
            if tmp is not None:
                tmp.cleanup()
        assert result.merge is not None
        result.merge.subprocess_wall_s = walls
        result.merge.coordinator_wall_s = perf_counter() - t0
        self.merge_stats = result.merge
        return result
