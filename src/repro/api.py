"""The stable public API of the reproduction.

``repro.api`` is the supported import surface: everything listed in
``__all__`` here follows the compatibility policy in
``docs/observability.md`` — names are only removed after a deprecation
cycle (one release of ``DeprecationWarning``), execution knobs are
keyword-only with one canonical spelling (``workers=``, ``cache=``),
and new releases may *add* names but never change the meaning of
existing ones.

Importing from submodules (``repro.proxy``, ``repro.parallel``, ...)
keeps working, but only this module's surface is covered by the
stability promise. Typical use::

    from repro.api import (
        ExperimentContext, run_slack_sweep, collecting,
    )

    with collecting() as registry:
        sweep = run_slack_sweep(iterations=25, workers=4)
    print(sweep.report.render())

The surface groups into six layers:

simulation core
    :class:`Environment` (the DES engine), :class:`CudaRuntime`,
    :class:`KernelSpec`, :func:`matmul_kernel`, :class:`Trace`,
    :class:`ColumnarTrace` (the append-only columnar store backing
    every traced run — see ``docs/performance.md``), :class:`Tracer`.
hardware & network models
    :class:`GPUSpec`, :class:`NodeSpec`, the ``A100_SXM4_40GB`` /
    ``EPYC_7413`` / ``NARVAL_NODE`` catalog entries,
    :class:`SlackModel`, :class:`Fabric`, :class:`FabricSpec`,
    :func:`fibre_distance_for_latency`,
    :func:`latency_for_fibre_distance`.
proxy methodology & prediction
    :class:`ProxyConfig`, :class:`ProxyResult`, :func:`run_proxy`,
    :class:`FastForwardInfo` (the ``result.fastforward`` record of the
    steady-state fast-forward engine; the ``fast_forward=`` knob on
    :func:`run_proxy` / :func:`run_slack_sweep` /
    :class:`ExperimentContext` controls it),
    :func:`run_slack_sweep`, :class:`SweepResult`,
    :class:`SweepTiming`, :class:`SlackResponseSurface`,
    :class:`CDIProfiler`, :class:`SlackPrediction`.
application models
    :class:`LJParams`, :class:`LammpsScalingModel`,
    :class:`LammpsProfileConfig`, :func:`profile_lammps`,
    :class:`CosmoFlowProfileConfig`, :func:`profile_cosmoflow`.
fault injection
    :class:`FaultPlan` and its event taxonomy (:class:`LatencySpike`,
    :class:`CongestionEpisode`, :class:`LinkFlap`,
    :class:`MessageLoss`, :class:`GpuStall`),
    :class:`FabricTimeoutError`, :func:`run_degraded_sweep`,
    :class:`DegradedSweepResult` — the ``faults=`` knob on
    :func:`run_proxy` / :func:`run_slack_sweep` /
    :class:`ExperimentContext` (see ``docs/faults.md``).
parallel execution & caching
    :class:`SweepExecutor`, :class:`PointCache`,
    :class:`AppProfileCache` (content-addressed traced-profile store,
    see ``docs/performance.md``).
experiments & observability
    :class:`ExperimentContext`, :func:`run_experiment`,
    :func:`run_all`, :class:`MetricsRegistry`, :class:`RunReport`,
    :func:`enable_metrics`, :func:`disable_metrics`,
    :func:`get_registry`, :func:`collecting`.
"""

from __future__ import annotations

from . import __version__
from .apps import (
    AppProfileCache,
    CosmoFlowProfileConfig,
    LammpsProfileConfig,
    LammpsScalingModel,
    LJParams,
    profile_cosmoflow,
    profile_lammps,
)
from .des import Environment
from .experiments import ExperimentContext, run_all, run_experiment
from .faults import (
    CongestionEpisode,
    DegradedSweepResult,
    FabricTimeoutError,
    FaultPlan,
    GpuStall,
    LatencySpike,
    LinkFlap,
    MessageLoss,
    run_degraded_sweep,
)
from .gpusim import CudaRuntime, KernelSpec, matmul_kernel
from .hw import (
    A100_SXM4_40GB,
    EPYC_7413,
    GPUSpec,
    NARVAL_NODE,
    NodeSpec,
    OutOfMemoryError,
)
from .model import CDIProfiler, SlackPrediction
from .network import (
    Fabric,
    FabricSpec,
    SlackModel,
    fibre_distance_for_latency,
    latency_for_fibre_distance,
)
from .obs import (
    MetricsRegistry,
    RunReport,
    collecting,
    disable_metrics,
    enable_metrics,
    get_registry,
)
from .parallel import PointCache, SweepExecutor
from .proxy import (
    FastForwardInfo,
    PAPER_MATRIX_SIZES,
    PAPER_SLACK_VALUES_S,
    PAPER_THREAD_COUNTS,
    ProxyConfig,
    ProxyResult,
    SlackResponseSurface,
    SweepResult,
    SweepTiming,
    run_proxy,
    run_slack_sweep,
)
from .trace import ColumnarTrace, Trace, Tracer

__all__ = [
    "__version__",
    # simulation core
    "Environment",
    "CudaRuntime",
    "KernelSpec",
    "matmul_kernel",
    "Trace",
    "ColumnarTrace",
    "Tracer",
    # hardware & network models
    "GPUSpec",
    "NodeSpec",
    "A100_SXM4_40GB",
    "EPYC_7413",
    "NARVAL_NODE",
    "OutOfMemoryError",
    "SlackModel",
    "Fabric",
    "FabricSpec",
    "fibre_distance_for_latency",
    "latency_for_fibre_distance",
    # proxy methodology & prediction
    "PAPER_MATRIX_SIZES",
    "PAPER_SLACK_VALUES_S",
    "PAPER_THREAD_COUNTS",
    "ProxyConfig",
    "ProxyResult",
    "FastForwardInfo",
    "run_proxy",
    "run_slack_sweep",
    "SweepResult",
    "SweepTiming",
    "SlackResponseSurface",
    "CDIProfiler",
    "SlackPrediction",
    # application models
    "LJParams",
    "LammpsScalingModel",
    "LammpsProfileConfig",
    "profile_lammps",
    "CosmoFlowProfileConfig",
    "profile_cosmoflow",
    # fault injection
    "FaultPlan",
    "LatencySpike",
    "CongestionEpisode",
    "LinkFlap",
    "MessageLoss",
    "GpuStall",
    "FabricTimeoutError",
    "run_degraded_sweep",
    "DegradedSweepResult",
    # parallel execution & caching
    "SweepExecutor",
    "PointCache",
    "AppProfileCache",
    # experiments & observability
    "ExperimentContext",
    "run_experiment",
    "run_all",
    "MetricsRegistry",
    "RunReport",
    "enable_metrics",
    "disable_metrics",
    "get_registry",
    "collecting",
]
