"""Tests for CUDA-Graphs batched submission."""

import pytest

from repro.des import Environment
from repro.gpusim import CudaGraph, CudaRuntime, GraphNode, KernelSpec
from repro.hw import MiB
from repro.network import SlackModel
from repro.trace import CopyKind, EventKind


def make_env(slack_s=0.0):
    env = Environment()
    rt = CudaRuntime(env, slack=SlackModel(slack_s))
    return env, rt


def drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


class TestGraphNode:
    def test_kernel_node_needs_spec(self):
        with pytest.raises(ValueError):
            GraphNode(kind="kernel")

    def test_memcpy_node_needs_direction_and_bytes(self):
        with pytest.raises(ValueError):
            GraphNode(kind="memcpy", nbytes=0, copy_kind=CopyKind.H2D)
        with pytest.raises(ValueError):
            GraphNode(kind="memcpy", nbytes=10)
        with pytest.raises(ValueError):
            GraphNode(kind="memcpy", nbytes=10, copy_kind=CopyKind.D2D)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GraphNode(kind="mystery")


class TestCapture:
    def test_fluent_capture(self):
        _, rt = make_env()
        g = (
            CudaGraph(rt)
            .add_memcpy(MiB, CopyKind.H2D)
            .add_kernel(KernelSpec(name="k", duration_s=1e-3))
            .add_memcpy(MiB, CopyKind.D2H)
        )
        assert len(g.nodes) == 3
        assert not g.instantiated

    def test_instantiate_freezes(self):
        _, rt = make_env()
        g = CudaGraph(rt).add_kernel(KernelSpec(name="k", duration_s=1e-3))
        g.instantiate()
        assert g.instantiated
        with pytest.raises(RuntimeError):
            g.add_kernel(KernelSpec(name="k2", duration_s=1e-3))
        with pytest.raises(RuntimeError):
            g.add_memcpy(MiB, CopyKind.H2D)

    def test_empty_graph_rejected(self):
        _, rt = make_env()
        with pytest.raises(ValueError):
            CudaGraph(rt).instantiate()

    def test_launch_requires_instantiation(self):
        env, rt = make_env()
        g = CudaGraph(rt).add_kernel(KernelSpec(name="k", duration_s=1e-3))

        def host():
            yield from g.launch()

        with pytest.raises(RuntimeError):
            drive(env, host())


class TestReplay:
    def _graph(self, rt):
        return (
            CudaGraph(rt, name="iter")
            .add_memcpy(MiB, CopyKind.H2D)
            .add_kernel(KernelSpec(name="k", duration_s=2e-3))
            .add_memcpy(MiB, CopyKind.D2H)
            .instantiate()
        )

    def test_nodes_execute_in_order(self):
        env, rt = make_env()
        g = self._graph(rt)

        def host():
            ops = yield from g.launch(blocking=True)
            return ops

        ops = drive(env, host())
        assert len(ops) == 3
        starts = [op.receipt.start for op in ops]
        assert starts == sorted(starts)
        assert g.replays == 1

    def test_blocking_waits_for_last_node(self):
        env, rt = make_env()
        g = self._graph(rt)

        def host():
            t0 = env.now
            yield from g.launch(blocking=True)
            return env.now - t0

        elapsed = drive(env, host())
        assert elapsed >= 2e-3

    def test_one_slack_charge_per_replay(self):
        env, rt = make_env(slack_s=50e-6)
        g = self._graph(rt)

        def host():
            for _ in range(4):
                yield from g.launch(blocking=True)

        drive(env, host())
        # Four replays -> four slack charges total, not 4 x 3 nodes.
        assert rt.injector.calls_delayed == 4
        assert rt.injector.total_injected_s == pytest.approx(4 * 50e-6)

    def test_graph_launch_traced_as_api_event(self):
        env, rt = make_env()
        g = self._graph(rt)

        def host():
            yield from g.launch(blocking=True)

        drive(env, host())
        apis = rt.tracer.trace.filter(
            lambda e: e.kind is EventKind.API and e.name == "cudaGraphLaunch"
        )
        assert len(apis) == 1
        assert apis[0].meta["nodes"] == 3

    def test_mitigation_vs_individual_calls(self):
        """Graphs pay ~1/5 the slack exposure of per-call submission."""
        def loop(use_graph, slack):
            env, rt = make_env(slack)
            n, iters = 512, 20
            nbytes = n * n * 4
            kernel = KernelSpec(name="k", duration_s=60e-6)
            if use_graph:
                g = (CudaGraph(rt).add_memcpy(nbytes, CopyKind.H2D)
                     .add_memcpy(nbytes, CopyKind.H2D).add_kernel(kernel)
                     .add_memcpy(nbytes, CopyKind.D2H).instantiate())

                def host():
                    t0 = env.now
                    for _ in range(iters):
                        yield from g.launch(blocking=True)
                    return env.now - t0
            else:
                def host():
                    t0 = env.now
                    for _ in range(iters):
                        yield from rt.memcpy(nbytes, CopyKind.H2D)
                        yield from rt.memcpy(nbytes, CopyKind.H2D)
                        yield from rt.launch(kernel, blocking=True)
                        yield from rt.memcpy(nbytes, CopyKind.D2H)
                        yield from rt.synchronize()
                    return env.now - t0
            return drive(env, host())

        slack = 1e-4
        overhead_calls = loop(False, slack) - loop(False, 0.0)
        overhead_graph = loop(True, slack) - loop(True, 0.0)
        assert overhead_graph < 0.3 * overhead_calls
