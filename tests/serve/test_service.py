"""The micro-batching penalty service: warm path, overload, cold path.

Plain synchronous tests driving the event loop with ``asyncio.run``
(no pytest-asyncio dependency required to run the suite).
"""

import asyncio

import numpy as np
import pytest

from repro.obs import MetricsRegistry, RunReport
from repro.proxy import SweepOptions
from repro.serve import (
    ColdPathConfig,
    PenaltyService,
    Prediction,
    ServiceOverloadedError,
    SurrogateDomainError,
    SurrogateModel,
    predict_penalty,
)

from .conftest import SIZES, SLACKS, make_sweep

#: Cheap cold path for the DES-backed tests: tiny proxy runs, no disk.
FAST_COLD = ColdPathConfig(
    iterations=3,
    target_compute_s=2.0,
    options=SweepOptions(workers=1, cache=False),
)


def fresh_model():
    return SurrogateModel.fit(make_sweep())


# -- warm path ----------------------------------------------------------------

def test_single_prediction_matches_surrogate(model):
    async def _run():
        async with PenaltyService(surrogate=model) as svc:
            return await svc.predict(512, 1e-4, 1)

    got = asyncio.run(_run())
    assert isinstance(got, Prediction)
    assert got == model.predict(512, 1e-4, 1)


def test_concurrent_requests_coalesce_into_batches(model):
    n = 64
    svc = PenaltyService(surrogate=model)

    async def _run():
        async with svc:
            return await svc.predict_many(
                [(512, float(SLACKS[j % len(SLACKS)]), 1) for j in range(n)]
            )

    results = asyncio.run(_run())
    assert len(results) == n
    stats = svc.stats()
    assert stats["requests"] == n
    assert stats["answered_warm"] == n
    # gather enqueues every request before the batcher wakes, so the
    # drain coalesces them into far fewer vectorized evaluations.
    assert stats["batches"] < n
    assert stats["max_batch"] > 1
    assert stats["queue_high_water"] >= stats["max_batch"]


def test_predict_batch_arrays_round_trip(model):
    sizes = np.array([512, 2048, 512, 2048])
    slacks = np.array([1e-5, 1e-4, 1e-4, 1e-5])
    threads = np.array([1, 2, 2, 1])

    async def _run():
        async with PenaltyService(surrogate=model) as svc:
            return await svc.predict_batch(sizes, slacks, threads)

    pen, bound = asyncio.run(_run())
    expected, expected_bound, reason = model.evaluate(sizes, threads, slacks)
    assert (reason == 0).all()
    np.testing.assert_array_equal(pen, expected)
    np.testing.assert_array_equal(bound, expected_bound)


def test_predict_batch_defaults_to_one_thread(model):
    async def _run():
        async with PenaltyService(surrogate=model) as svc:
            return await svc.predict_batch([512, 2048], [1e-4, 1e-4])

    pen, _ = asyncio.run(_run())
    assert pen[0] == model.predict(512, 1e-4, 1).penalty
    assert pen[1] == model.predict(2048, 1e-4, 1).penalty


def test_predict_batch_refusal_names_the_element(model):
    async def _run():
        async with PenaltyService(surrogate=model) as svc:
            await svc.predict_batch([512, 4096], [1e-4, 1e-4], [1, 1])

    with pytest.raises(SurrogateDomainError) as exc:
        asyncio.run(_run())
    assert exc.value.reason == "unknown-series"
    assert exc.value.query == (4096, 1, 1e-4)


def test_overload_raises_instead_of_buffering(model):
    svc = PenaltyService(surrogate=model, max_queue=4)

    async def _run():
        async with svc:
            return await asyncio.gather(
                *(svc.predict(512, 1e-4, 1) for _ in range(10)),
                return_exceptions=True,
            )

    results = asyncio.run(_run())
    overloaded = [r for r in results if isinstance(r, ServiceOverloadedError)]
    answered = [r for r in results if isinstance(r, Prediction)]
    assert overloaded and answered
    assert len(overloaded) + len(answered) == 10
    assert svc.stats()["overloads"] == len(overloaded)


def test_refusal_without_cold_path_raises(model):
    async def _run():
        async with PenaltyService(surrogate=model) as svc:
            await svc.predict(4096, 1e-4, 1)

    with pytest.raises(SurrogateDomainError) as exc:
        asyncio.run(_run())
    assert exc.value.reason == "unknown-series"


def test_service_must_be_started():
    svc = PenaltyService(surrogate=fresh_model())
    with pytest.raises(RuntimeError, match="not running"):
        asyncio.run(svc.predict(512, 1e-4, 1))


def test_constructor_validates_limits(model):
    with pytest.raises(ValueError):
        PenaltyService(surrogate=model, max_queue=0)
    with pytest.raises(ValueError):
        PenaltyService(surrogate=model, max_batch=0)


# -- cold path ----------------------------------------------------------------

def test_cold_miss_measures_then_serves_warm():
    surrogate = fresh_model()
    svc = PenaltyService(surrogate=surrogate, cold_path=FAST_COLD)

    async def _run():
        async with svc:
            first = await svc.predict(256, 1e-5, 1)
            again = await svc.predict(256, 1e-5, 1)
            return first, again

    first, again = asyncio.run(_run())
    assert first.penalty == again.penalty
    stats = svc.stats()
    assert stats["cold_misses"] == 1
    # The companion point makes the refit series viable (>= 2 points).
    assert stats["cold_measured_points"] >= 2
    assert stats["observed_points"] >= 2
    assert stats["cold_wall_s"] > 0
    assert surrogate.series_points(256, 1) >= 2


def test_concurrent_cold_misses_share_one_measurement():
    svc = PenaltyService(surrogate=fresh_model(), cold_path=FAST_COLD)

    async def _run():
        async with svc:
            return await asyncio.gather(
                svc.predict(256, 1e-5, 1),
                svc.predict(256, 1e-5, 1),
                svc.predict(256, 1e-5, 1),
            )

    results = asyncio.run(_run())
    assert len({r.penalty for r in results}) == 1
    stats = svc.stats()
    assert stats["cold_misses"] == 1
    assert stats["cold_shared"] == 2


def test_negative_slack_is_never_measured():
    svc = PenaltyService(surrogate=fresh_model(), cold_path=FAST_COLD)

    async def _run():
        async with svc:
            await svc.predict(512, -1e-5, 1)

    with pytest.raises(SurrogateDomainError) as exc:
        asyncio.run(_run())
    assert exc.value.reason == "negative-slack"
    assert svc.stats()["cold_misses"] == 0


def test_one_shot_predict_penalty(model):
    got = predict_penalty(512, 1e-4, threads=1, surrogate=model)
    assert got == model.predict(512, 1e-4, 1)


# -- telemetry ----------------------------------------------------------------

def test_stats_include_refusal_breakdown():
    svc = PenaltyService(surrogate=fresh_model())

    async def _run():
        async with svc:
            await svc.predict(512, 1e-4, 1)
            with pytest.raises(SurrogateDomainError):
                await svc.predict(4096, 1e-4, 1)

    asyncio.run(_run())
    stats = svc.stats()
    assert stats["requests"] == 2
    assert stats["answered_warm"] == 1
    assert stats["refused"] == 1
    assert stats["refusal.unknown-series"] == 1


def test_publish_folds_counters_into_registry(model):
    svc = PenaltyService(surrogate=model)

    async def _run():
        async with svc:
            await svc.predict_many([(512, 1e-4, 1), (2048, 1e-5, 2)])

    asyncio.run(_run())
    reg = MetricsRegistry()
    svc.publish(reg)
    doc = reg.to_doc()
    assert doc["serve"]["requests"] == 2
    assert doc["serve"]["answered_warm"] == 2


def test_report_is_a_serve_runreport(model):
    svc = PenaltyService(surrogate=model)

    async def _run():
        async with svc:
            await svc.predict(512, 1e-4, 1)

    asyncio.run(_run())
    report = svc.report(meta={"origin": "test"})
    assert isinstance(report, RunReport)
    doc = report.to_doc()
    assert doc["kind"] == "serve"
    assert doc["meta"]["origin"] == "test"
    assert doc["meta"]["surrogate_method"] == "loglinear"
    assert doc["meta"]["series"] == len(SIZES) * 2
