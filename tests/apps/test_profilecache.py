"""The content-addressed application-profile cache."""

import dataclasses
import json

import pytest

from repro.apps import (
    PROFILE_CACHE_VERSION,
    AppProfileCache,
    AppProfile,
    profile_key,
)
from repro.apps.lammps import LammpsProfileConfig
from repro.obs import collecting
from repro.trace import ColumnarTrace, CopyKind, EventKind, Trace, TraceEvent


def small_profile(name="app"):
    trace = ColumnarTrace(name=name)
    trace.record_fast(EventKind.KERNEL, "pair", 0.0, 1.5e-3, stream=0,
                      meta={"n": 3})
    trace.record_fast(EventKind.MEMCPY, "up", 2e-3, 2.5e-3, stream=1,
                      nbytes=4096, copy_kind=CopyKind.H2D)
    trace.record_fast(EventKind.API, "cudaLaunchKernel", 0.0, 5e-6, thread=2)
    return AppProfile(
        name=name,
        trace=trace,
        runtime_s=0.25,
        queue_parallelism=2,
        cuda_calls_per_second=1234.5,
    )


@pytest.fixture
def cache(tmp_path):
    return AppProfileCache(tmp_path / "profiles")


class TestKeying:
    def test_key_is_stable(self):
        cfg = LammpsProfileConfig()
        assert profile_key("lammps", cfg) == profile_key("lammps", cfg)

    def test_key_covers_every_config_field(self):
        base = LammpsProfileConfig()
        k0 = profile_key("lammps", base)
        for change in (
            {"seed": 2025},
            {"jitter": 0.11},
            {"processes": 4},
            {"neighbor_every": 13},
        ):
            assert profile_key(
                "lammps", dataclasses.replace(base, **change)
            ) != k0

    def test_key_covers_app_name_and_version(self):
        cfg = LammpsProfileConfig()
        assert profile_key("lammps", cfg) != profile_key("cosmoflow", cfg)
        assert profile_key("lammps", cfg) != profile_key(
            "lammps", cfg, version="other"
        )
        assert PROFILE_CACHE_VERSION in ("2026.08-5",) or PROFILE_CACHE_VERSION


class TestRoundTrip:
    def test_miss_then_hit_bit_exact(self, cache):
        cfg = LammpsProfileConfig()
        assert cache.get("lammps", cfg) is None
        original = small_profile()
        path = cache.put("lammps", cfg, original)
        assert path.exists()
        loaded = cache.get("lammps", cfg)
        assert loaded is not None
        assert loaded.name == original.name
        assert loaded.runtime_s == original.runtime_s
        assert loaded.queue_parallelism == original.queue_parallelism
        assert loaded.cuda_calls_per_second == original.cuda_calls_per_second
        # The trace round-trips bit for bit, in record order too.
        assert list(loaded.trace) == list(original.trace)
        assert (
            loaded.trace.events_in_record_order()
            == original.trace.events_in_record_order()
        )
        assert cache.hits == 1 and cache.misses == 1 and cache.writes == 1
        assert cache.hit_rate == 0.5
        assert len(cache) == 1

    def test_scalar_trace_profiles_encode_too(self, cache):
        cfg = LammpsProfileConfig()
        events = [
            TraceEvent(EventKind.KERNEL, "k", 0.0, 1e-3),
            TraceEvent(EventKind.MEMCPY, "m", 2e-3, 3e-3, nbytes=64,
                       copy_kind=CopyKind.D2H),
        ]
        profile = dataclasses.replace(
            small_profile(), trace=Trace(events, name="scalar")
        )
        cache.put("lammps", cfg, profile)
        loaded = cache.get("lammps", cfg)
        assert list(loaded.trace) == events
        assert isinstance(loaded.trace, ColumnarTrace)

    def test_corrupt_entry_is_a_miss(self, cache):
        cfg = LammpsProfileConfig()
        cache.put("lammps", cfg, small_profile())
        cache.path_for("lammps", cfg).write_text("{not json")
        assert cache.get("lammps", cfg) is None
        assert cache.corrupt == 1 and cache.misses == 1

    def test_truncated_doc_is_a_miss(self, cache):
        cfg = LammpsProfileConfig()
        cache.put("lammps", cfg, small_profile())
        path = cache.path_for("lammps", cfg)
        doc = json.loads(path.read_text())
        del doc["trace"]
        path.write_text(json.dumps(doc))
        assert cache.get("lammps", cfg) is None
        assert cache.corrupt == 1

    def test_clear_and_len(self, cache):
        cfg = LammpsProfileConfig()
        cache.put("lammps", cfg, small_profile())
        cache.put("cosmoflow", cfg, small_profile("cf"))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("lammps", cfg) is None


class TestMetrics:
    def test_lookup_accounting_published(self, cache):
        cfg = LammpsProfileConfig()
        with collecting() as reg:
            cache.get("lammps", cfg)  # miss
            cache.put("lammps", cfg, small_profile())
            cache.get("lammps", cfg)  # hit
            cache.path_for("lammps", cfg).write_text("junk")
            cache.get("lammps", cfg)  # corrupt -> invalidated + miss
            assert reg.counter("profilecache.misses").value == 2
            assert reg.counter("profilecache.hits").value == 1
            assert reg.counter("profilecache.writes").value == 1
            assert reg.counter("profilecache.invalidated").value == 1
