"""Unit and property tests for the paper's equations and binning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import MiB
from repro.model import (
    bin_kernel_durations,
    bin_transfer_sizes,
    bin_values,
    equation1_remove_direct_slack,
    equation2_total_slack_penalty,
    equation3_binned_slack_penalty,
    matrix_bytes,
    table3_bins,
    transfer_grid_bytes,
)

GRID = (512, 2048, 8192, 32768)


class TestEquation1:
    def test_basic_subtraction(self):
        # 5 calls/iter x 100 iters x 1 ms slack = 0.5 s removed.
        assert equation1_remove_direct_slack(10.0, 500, 1e-3) == pytest.approx(9.5)

    def test_zero_slack_identity(self):
        assert equation1_remove_direct_slack(10.0, 500, 0.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            equation1_remove_direct_slack(-1.0, 5, 1e-6)
        with pytest.raises(ValueError):
            equation1_remove_direct_slack(1.0, -5, 1e-6)
        with pytest.raises(ValueError):
            equation1_remove_direct_slack(1.0, 5, -1e-6)


class TestEquation2:
    def test_weighted_combination(self):
        # 30% kernel time at 10% penalty + 20% memory at 5% penalty.
        sp = equation2_total_slack_penalty(0.3, 0.10, 0.2, 0.05)
        assert sp == pytest.approx(0.04)

    def test_zero_fractions_no_penalty(self):
        assert equation2_total_slack_penalty(0.0, 99.0, 0.0, 99.0) == 0.0

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            equation2_total_slack_penalty(1.5, 0.1, 0.0, 0.1)
        with pytest.raises(ValueError):
            equation2_total_slack_penalty(0.7, 0.1, 0.5, 0.1)  # sums > 1
        with pytest.raises(ValueError):
            equation2_total_slack_penalty(0.5, -0.1, 0.3, 0.1)


class TestEquation3:
    def test_count_weighted_mean(self):
        counts = {512: 3, 2048: 1}
        penalties = {512: 0.4, 2048: 0.0}
        assert equation3_binned_slack_penalty(counts, penalties) == pytest.approx(
            0.3
        )

    def test_single_bin(self):
        assert equation3_binned_slack_penalty({512: 10}, {512: 0.07}) == 0.07

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            equation3_binned_slack_penalty({}, {512: 0.1})
        with pytest.raises(ValueError):
            equation3_binned_slack_penalty({512: 0}, {512: 0.1})

    def test_missing_penalty_rejected(self):
        with pytest.raises(KeyError):
            equation3_binned_slack_penalty({512: 1, 999: 1}, {512: 0.1})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            equation3_binned_slack_penalty({512: -1, 2048: 2}, {512: 0.1, 2048: 0})

    @settings(max_examples=50)
    @given(
        counts=st.dictionaries(
            st.sampled_from(GRID), st.integers(min_value=0, max_value=1000),
            min_size=1,
        ).filter(lambda d: sum(d.values()) > 0),
        penalties=st.fixed_dictionaries(
            {n: st.floats(min_value=0, max_value=50) for n in GRID}
        ),
    )
    def test_result_bounded_by_extremes(self, counts, penalties):
        """Property: the weighted mean lies within the used penalties."""
        sp = equation3_binned_slack_penalty(counts, penalties)
        used = [penalties[n] for n, c in counts.items() if c > 0]
        assert min(used) - 1e-12 <= sp <= max(used) + 1e-12


class TestMatrixBytes:
    def test_paper_bin_edges_are_matrix_sizes(self):
        # 2^9 -> 1 MiB, 2^11 -> 16 MiB, 2^13 -> 256 MiB, 2^15 -> 4096 MiB.
        assert matrix_bytes(2**9) == 1 * MiB
        assert matrix_bytes(2**11) == 16 * MiB
        assert matrix_bytes(2**13) == 256 * MiB
        assert matrix_bytes(2**15) == 4096 * MiB

    def test_grid_mapping(self):
        grid = transfer_grid_bytes(GRID)
        assert sorted(grid) == sorted(GRID)
        assert grid[512] == MiB

    def test_invalid(self):
        with pytest.raises(ValueError):
            matrix_bytes(0)


class TestBinValues:
    def test_exact_grid_points_bin_to_themselves(self):
        grid = {n: float(n) for n in GRID}
        binned = bin_values([512.0, 8192.0], grid)
        assert binned.lower_counts[512] == 1
        assert binned.upper_counts[512] == 1
        assert binned.lower_counts[8192] == 1
        assert binned.upper_counts[8192] == 1

    def test_between_grid_points_brackets(self):
        grid = {n: float(n) for n in GRID}
        binned = bin_values([1000.0], grid)
        # Rounded up (lower penalty) -> 2048; rounded down -> 512.
        assert binned.lower_counts[2048] == 1
        assert binned.upper_counts[512] == 1

    def test_clamping_below_and_above(self):
        grid = {n: float(n) for n in GRID}
        binned = bin_values([10.0, 1e9], grid)
        assert binned.lower_counts[512] == 1
        assert binned.upper_counts[512] == 1
        assert binned.lower_counts[32768] == 1
        assert binned.upper_counts[32768] == 1

    def test_totals_and_mean(self):
        grid = {n: float(n) for n in GRID}
        binned = bin_values([100.0, 1000.0, 10000.0], grid)
        assert binned.total == 3
        assert sum(binned.lower_counts.values()) == 3
        assert sum(binned.upper_counts.values()) == 3
        assert binned.mean_value == pytest.approx(np.mean([100, 1000, 10000]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bin_values([], {512: 1.0})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bin_values([-1.0], {512: 1.0, 2048: 2.0})

    def test_non_monotone_grid_rejected(self):
        with pytest.raises(ValueError):
            bin_values([1.0], {512: 2.0, 2048: 1.0})

    @settings(max_examples=50)
    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1e12, allow_nan=False),
            min_size=1, max_size=50,
        )
    )
    def test_upper_assignment_never_exceeds_lower_sizes(self, values):
        """Property: per observation, round-down size <= round-up size,
        so the pessimistic distribution puts mass at equal-or-smaller
        matrix sizes than the optimistic one (stochastic dominance)."""
        grid = {n: float(matrix_bytes(n)) for n in GRID}
        binned = bin_values(values, grid)
        sizes = sorted(GRID)
        cum_lower = cum_upper = 0
        for n in sizes:
            cum_lower += binned.lower_counts[n]
            cum_upper += binned.upper_counts[n]
            assert cum_upper >= cum_lower  # upper mass sits lower/equal


class TestBinTransferSizes:
    def test_lammps_like_sizes(self):
        # 9.9 MiB positions bracket (512, 2048); 19.8 MiB forces
        # bracket (2048, 8192).
        binned = bin_transfer_sizes(
            [9.9 * MiB, 19.8 * MiB], GRID
        )
        assert binned.upper_counts[512] == 1  # positions rounded down
        assert binned.lower_counts[2048] == 1  # positions rounded up
        assert binned.upper_counts[2048] == 1  # forces rounded down
        assert binned.lower_counts[8192] == 1


class TestBinKernelDurations:
    def test_duration_binning_against_calibration(self):
        cal = {512: 50e-6, 2048: 1.5e-3, 8192: 60e-3, 32768: 3.8}
        binned = bin_kernel_durations([0.9e-3], cal)
        assert binned.upper_counts[512] == 1
        assert binned.lower_counts[2048] == 1


class TestTable3Bins:
    def test_columns(self):
        sizes = [0.5 * MiB, 10 * MiB, 100 * MiB, 1000 * MiB, 5000 * MiB]
        bins = table3_bins(sizes)
        assert bins == {
            "<=1": 1, "<=16": 1, "<=256": 1, "<=4096": 1, ">4096": 1
        }

    def test_edge_inclusive(self):
        bins = table3_bins([1 * MiB, 16 * MiB])
        assert bins["<=1"] == 1
        assert bins["<=16"] == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            table3_bins([])
