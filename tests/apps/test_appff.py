"""Application-DES fast-forward: bit-parity and refusal gates.

Mirrors tests/proxy/test_fastforward.py at the application layer: a
jitter-free profiling run fast-forwarded through the epoch monitors
must be *bit-identical* to the full simulation — runtime, derived
rates, and every single trace event — and every ineligible
configuration must refuse with the documented reason and fall back to
the full run.
"""

import pytest

from repro.apps import (
    CosmoFlowProfileConfig,
    LammpsProfileConfig,
    profile_cosmoflow,
    profile_lammps,
)
from repro.apps.lammps import LJParams
from repro.des.fastforward import MIN_ITERATIONS
from repro.faults import FaultPlan
from repro.network import SlackModel
from repro.obs import collecting


# Jitter-free configs small enough to simulate fully in a test but
# long enough to certify (>= MIN_ITERATIONS epochs / cycles), with a
# non-multiple step count so the tail path is exercised too.
LAMMPS_CONFIG = LammpsProfileConfig(
    params=LJParams(box_size=40, steps=12 * 17 + 5), jitter=0.0
)
COSMOFLOW_CONFIG = CosmoFlowProfileConfig(
    epochs=2, train_samples=128, val_samples=64, jitter=0.0
)


def _assert_profiles_bit_identical(full, fast):
    assert full.name == fast.name
    assert full.runtime_s == fast.runtime_s
    assert full.queue_parallelism == fast.queue_parallelism
    assert full.cuda_calls_per_second == fast.cuda_calls_per_second
    assert len(full.trace) == len(fast.trace)
    # Every event, not just aggregates: TraceEvent is a frozen
    # dataclass, so == is field-exact (names, timestamps, sizes,
    # correlation ids).
    assert list(full.trace) == list(fast.trace)


class TestLammpsParity:
    def test_bit_identical_profile(self):
        full = profile_lammps(LAMMPS_CONFIG, fast_forward=False)
        fast = profile_lammps(LAMMPS_CONFIG, fast_forward=True)
        assert fast.fastforward is not None and fast.fastforward.certified
        assert fast.fastforward.skipped_iterations > 0
        assert fast.fastforward.events_skipped > 0
        _assert_profiles_bit_identical(full, fast)

    def test_bit_identical_under_base_slack(self):
        slack = SlackModel(1e-5)
        full = profile_lammps(LAMMPS_CONFIG, slack, fast_forward=False)
        fast = profile_lammps(LAMMPS_CONFIG, slack, fast_forward=True)
        assert fast.fastforward.certified
        _assert_profiles_bit_identical(full, fast)

    def test_default_is_on(self):
        fast = profile_lammps(LAMMPS_CONFIG)
        assert fast.fastforward.certified


class TestCosmoflowParity:
    def test_bit_identical_profile(self):
        full = profile_cosmoflow(COSMOFLOW_CONFIG, fast_forward=False)
        fast = profile_cosmoflow(COSMOFLOW_CONFIG, fast_forward=True)
        assert fast.fastforward is not None and fast.fastforward.certified
        assert fast.fastforward.skipped_iterations > 0
        _assert_profiles_bit_identical(full, fast)

    def test_bit_identical_under_base_slack(self):
        slack = SlackModel(1e-5)
        full = profile_cosmoflow(COSMOFLOW_CONFIG, slack, fast_forward=False)
        fast = profile_cosmoflow(COSMOFLOW_CONFIG, slack, fast_forward=True)
        assert fast.fastforward.certified
        _assert_profiles_bit_identical(full, fast)


class TestRefusalGates:
    """Ineligible configs fall back to the full run, with the reason."""

    def test_jittered_default_refuses(self):
        # The golden default configs jitter their delays — fast-forward
        # must refuse (outputs stay byte-identical to the seed).
        profile = profile_lammps(
            LammpsProfileConfig(params=LJParams(box_size=40, steps=200))
        )
        assert not profile.fastforward.certified
        assert profile.fastforward.reason == "jitter"

    def test_cosmoflow_jittered_default_refuses(self):
        profile = profile_cosmoflow(
            CosmoFlowProfileConfig(epochs=1, train_samples=64, val_samples=32)
        )
        assert not profile.fastforward.certified
        assert profile.fastforward.reason == "jitter"

    def test_disabled_knob(self):
        profile = profile_lammps(LAMMPS_CONFIG, fast_forward=False)
        assert not profile.fastforward.certified
        assert profile.fastforward.reason == "disabled"
        assert not profile.fastforward.enabled

    def test_too_few_iterations(self):
        short = LammpsProfileConfig(
            params=LJParams(
                box_size=40, steps=17 * (MIN_ITERATIONS - 1)
            ),
            jitter=0.0,
        )
        profile = profile_lammps(short)
        assert not profile.fastforward.certified
        assert profile.fastforward.reason == "too-few-iterations"

    def test_cosmoflow_too_few_cycles(self):
        short = CosmoFlowProfileConfig(
            epochs=1, train_samples=16, val_samples=16, jitter=0.0
        )
        profile = profile_cosmoflow(short)
        assert not profile.fastforward.certified
        assert profile.fastforward.reason == "too-few-iterations"

    def test_faults_active_refuses(self):
        plan = FaultPlan.from_spec(
            "seed=7;spike:start=0ms,duration=1ms,extra=10us"
        )
        profile = profile_lammps(LAMMPS_CONFIG, faults=plan)
        assert not profile.fastforward.certified
        assert profile.fastforward.reason == "faults-active"

    def test_slack_jitter_refuses(self):
        import numpy as np

        slack = SlackModel(
            1e-5, jitter_fraction=0.1, rng=np.random.default_rng(0)
        )
        profile = profile_lammps(LAMMPS_CONFIG, slack)
        assert not profile.fastforward.certified
        assert profile.fastforward.reason == "slack-jitter"


class TestMetrics:
    def test_appff_counters_published(self):
        with collecting() as reg:
            profile_lammps(LAMMPS_CONFIG)
            profile_lammps(LAMMPS_CONFIG, fast_forward=False)
        assert reg.counter("appff.hits").value == 1
        assert reg.counter("appff.fallbacks").value == 1
        assert reg.counter("appff.cycles_skipped").value > 0
        assert reg.counter("appff.events_skipped").value > 0
