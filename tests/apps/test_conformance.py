"""Cross-app conformance: every registered workload honors the contract.

Parametrized over :func:`repro.apps.registered_apps`, so adding a
workload to the registry automatically subjects it to the same
checks the original apps pass:

* profiling is deterministic under the config's fixed seed — two cold
  runs produce byte-identical profile documents;
* the emitted trace survives a columnar-store round trip bit-exactly;
* an :class:`~repro.apps.AppProfileCache` warm run returns a profile
  byte-identical to the cold one;
* fast-forward refusals are *recorded*, never silent: disabling the
  engine yields ``reason == "disabled"``, and a profile that was not
  certified carries a non-empty reason string.

This is also the CPU-only app's first direct coverage — previously it
was only exercised through the Sec III-D experiment.
"""

import dataclasses
import json

import pytest

from repro.apps import AppProfileCache, registered_apps
from repro.apps.profilecache import _profile_doc
from repro.trace.store import ColumnarTrace

APPS = registered_apps()
APP_IDS = [app.name for app in APPS]


def profile_doc_json(profile):
    """Canonical byte representation of a profile document."""
    return json.dumps(_profile_doc(profile), sort_keys=True)


@pytest.fixture(params=APPS, ids=APP_IDS)
def app(request):
    return request.param


class TestRegistryShape:
    def test_four_builtin_workloads(self):
        assert [a.name for a in APPS] == [
            "cosmoflow", "cpuonly", "inference", "lammps",
        ]

    def test_conformance_config_is_the_declared_type(self, app):
        assert isinstance(app.conformance_config(), app.config_type)

    def test_default_config_is_the_declared_type(self, app):
        for quick in (True, False):
            assert isinstance(app.default_config(quick), app.config_type)

    def test_quick_config_is_not_the_full_config(self, app):
        # quick must actually shorten the run, not alias the full one.
        assert app.default_config(True) != app.default_config(False)


class TestDeterminism:
    def test_profile_is_deterministic_under_fixed_seed(self, app):
        cfg = app.conformance_config()
        a = app.profiler(cfg)
        b = app.profiler(cfg)
        assert profile_doc_json(a) == profile_doc_json(b)

    def test_profile_name_matches_registry_name(self, app):
        assert app.profiler(app.conformance_config()).name == app.name

    def test_profile_invariants(self, app):
        profile = app.profiler(app.conformance_config())
        assert profile.runtime_s > 0
        assert profile.queue_parallelism >= 1
        assert profile.cuda_calls_per_second >= 0
        # A workload that declares a penalty exposes CUDA API traffic
        # for the slack model to act on; the no-penalty category must
        # expose none (that *is* its Sec III-D argument).
        if app.penalty.kind == "none":
            assert profile.cuda_calls_per_second == 0
            assert len(profile.trace) == 0
        else:
            assert profile.cuda_calls_per_second > 0
            assert len(profile.trace) > 0


class TestTraceRoundTrip:
    def test_store_round_trip_is_bit_exact(self, app):
        profile = app.profiler(app.conformance_config())
        trace = profile.trace
        assert isinstance(trace, ColumnarTrace)
        doc = trace.to_doc()
        restored = ColumnarTrace.from_doc(doc)
        assert restored.to_doc() == doc
        assert list(restored) == list(trace)


class TestProfileCacheWarmRun:
    def test_warm_run_is_byte_identical(self, app, tmp_path):
        cache = AppProfileCache(tmp_path / "profiles")
        cfg = app.conformance_config()
        cold = app.profiler(cfg)
        cache.put(app.name, cfg, cold)
        warm = cache.get(app.name, cfg)
        assert warm is not None
        assert cache.hits == 1 and cache.corrupt == 0
        assert profile_doc_json(warm) == profile_doc_json(cold)

    def test_model_version_partitions_the_cache(self, app, tmp_path):
        # A bumped model_version must never serve the old entry; the
        # registry's version joins the digest, so distinct registered
        # names (with distinct versions) land on distinct paths.
        cache = AppProfileCache(tmp_path / "profiles")
        cfg = app.conformance_config()
        others = [a for a in APPS if a.name != app.name]
        for other in others:
            assert cache.path_for(app.name, cfg) != cache.path_for(
                other.name, cfg
            )


class TestFastForwardRefusals:
    def test_disabled_engine_records_disabled(self, app):
        profile = app.profiler(
            app.conformance_config(), fast_forward=False
        )
        ff = profile.fastforward
        assert ff is not None
        assert not ff.enabled
        assert not ff.certified
        assert ff.reason == "disabled"

    def test_refusal_reason_is_never_silent(self, app):
        profile = app.profiler(app.conformance_config())
        ff = profile.fastforward
        assert ff is not None
        if not ff.certified:
            assert isinstance(ff.reason, str) and ff.reason

    def test_natural_refusals_name_the_cause(self):
        # The two workloads that can never fast-forward say why.
        by_name = {a.name: a for a in APPS}
        reasons = {
            "inference": "aperiodic-arrivals",
            "cpuonly": "cpu-only",
        }
        for name, expected in reasons.items():
            app = by_name[name]
            ff = app.profiler(app.conformance_config()).fastforward
            assert ff.reason == expected

    def test_fastforward_record_drops_from_cache_round_trip(
        self, app, tmp_path
    ):
        # fastforward is compare=False diagnostics; the cached copy
        # legitimately loses it and compares equal regardless.
        cache = AppProfileCache(tmp_path / "profiles")
        cfg = app.conformance_config()
        cold = app.profiler(cfg)
        cache.put(app.name, cfg, cold)
        warm = cache.get(app.name, cfg)
        assert warm.fastforward is None
        assert profile_doc_json(warm) == profile_doc_json(
            dataclasses.replace(cold, fastforward=None)
        )
