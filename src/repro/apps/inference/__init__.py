"""LLM inference serving: the latency-sensitive production workload.

See :mod:`repro.apps.inference.serving` for the DES,
:mod:`repro.apps.inference.slo` for the latency-SLO penalty layer.
"""

from .arrivals import Request, generate_requests
from .batcher import BatchQueue
from .llm import LLMSpec
from .serving import (
    BatchRecord,
    InferenceProfileConfig,
    InferenceRunResult,
    PHASE_DECODE,
    PHASE_KV,
    PHASE_MISC,
    PHASE_PREFILL,
    RequestRecord,
    SLOReport,
    profile_inference,
    run_inference,
)
from .slo import (
    PredictedSLOResponse,
    SLOResponse,
    TPOT_SERIES,
    TTFT_SERIES,
    measure_slo_response,
    phase_profile,
    predict_slo_response,
)

__all__ = [
    "LLMSpec",
    "Request",
    "generate_requests",
    "BatchQueue",
    "InferenceProfileConfig",
    "InferenceRunResult",
    "RequestRecord",
    "BatchRecord",
    "SLOReport",
    "run_inference",
    "profile_inference",
    "PHASE_PREFILL",
    "PHASE_DECODE",
    "PHASE_KV",
    "PHASE_MISC",
    "SLOResponse",
    "PredictedSLOResponse",
    "measure_slo_response",
    "phase_profile",
    "predict_slo_response",
    "TTFT_SERIES",
    "TPOT_SERIES",
]
