"""Unit and integration tests for the simulated CUDA runtime."""

import pytest

from repro.des import Environment
from repro.gpusim import (
    CudaEvent,
    CudaRuntime,
    KernelSpec,
    elapsed_time,
    matmul_kernel,
)
from repro.hw import GPUSpec, GiB, MiB, OutOfMemoryError
from repro.network import SlackModel
from repro.trace import CopyKind, EventKind


def make_runtime(slack_s=0.0, **gpu_kwargs):
    env = Environment()
    gpu = GPUSpec(**gpu_kwargs) if gpu_kwargs else GPUSpec()
    rt = CudaRuntime(env, gpu=gpu, slack=SlackModel(slack_s))
    return env, rt


def drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


class TestMemoryAPI:
    def test_malloc_free(self):
        env, rt = make_runtime()
        a = rt.malloc(MiB, tag="x")
        assert rt.memory.used >= MiB
        rt.free(a)
        assert rt.memory.used == 0

    def test_oom_propagates(self):
        env, rt = make_runtime()
        with pytest.raises(OutOfMemoryError):
            rt.malloc(100 * GiB)


class TestMemcpy:
    def test_sync_memcpy_takes_transfer_time(self):
        env, rt = make_runtime()

        def host():
            t0 = env.now
            yield from rt.memcpy(GiB, CopyKind.H2D)
            return env.now - t0

        elapsed = drive(env, host())
        expected = rt.pcie.transfer_time(GiB)
        assert elapsed == pytest.approx(expected + rt.api_overhead_s, rel=0.01)

    def test_memcpy_traced(self):
        env, rt = make_runtime()

        def host():
            yield from rt.memcpy(4 * MiB, CopyKind.H2D)
            yield from rt.memcpy(2 * MiB, CopyKind.D2H)

        drive(env, host())
        copies = rt.tracer.trace.memcpys()
        assert len(copies) == 2
        assert copies.sizes().sum() == 6 * MiB
        assert len(rt.tracer.trace.memcpys(CopyKind.D2H)) == 1

    def test_async_memcpy_returns_before_completion(self):
        env, rt = make_runtime()

        def host():
            t0 = env.now
            op = yield from rt.memcpy_async(GiB, CopyKind.H2D)
            host_return = env.now - t0
            yield op.completion
            total = env.now - t0
            return host_return, total

        host_return, total = drive(env, host())
        assert host_return < total
        assert total >= rt.pcie.transfer_time(GiB)

    def test_invalid_memcpy_args(self):
        env, rt = make_runtime()

        def host():
            yield from rt.memcpy(0, CopyKind.H2D)

        with pytest.raises(ValueError):
            drive(env, host())

    def test_d2d_rejected(self):
        env, rt = make_runtime()

        def host():
            yield from rt.memcpy(MiB, CopyKind.D2D)

        with pytest.raises(ValueError):
            drive(env, host())


class TestKernelLaunch:
    def test_async_launch_returns_after_overhead(self):
        env, rt = make_runtime()
        kernel = KernelSpec(name="slow", duration_s=1.0)

        def host():
            t0 = env.now
            op = yield from rt.launch(kernel)
            launch_return = env.now - t0
            yield op.completion
            return launch_return, env.now - t0

        launch_return, total = drive(env, host())
        assert launch_return == pytest.approx(rt.gpu.launch_overhead_s)
        assert total >= 1.0

    def test_blocking_launch_waits_for_kernel(self):
        env, rt = make_runtime()
        kernel = KernelSpec(name="slow", duration_s=0.5)

        def host():
            t0 = env.now
            yield from rt.launch(kernel, blocking=True)
            return env.now - t0

        elapsed = drive(env, host())
        assert elapsed >= 0.5

    def test_kernel_traced_with_duration(self):
        env, rt = make_runtime()
        kernel = KernelSpec(name="k", duration_s=0.25)

        def host():
            yield from rt.launch(kernel, blocking=True)

        drive(env, host())
        kernels = rt.tracer.trace.kernels()
        assert len(kernels) == 1
        assert kernels[0].duration == pytest.approx(0.25)

    def test_stream_ordering(self):
        env, rt = make_runtime()
        k1 = KernelSpec(name="first", duration_s=0.2)
        k2 = KernelSpec(name="second", duration_s=0.1)

        def host():
            op1 = yield from rt.launch(k1)
            op2 = yield from rt.launch(k2)
            yield op2.completion
            return op1, op2

        op1, op2 = drive(env, host())
        assert op1.receipt.end <= op2.receipt.start

    def test_multi_stream_overlap_copy_and_compute(self):
        env, rt = make_runtime()
        s1 = rt.create_stream()
        s2 = rt.create_stream()
        kernel = KernelSpec(name="k", duration_s=0.1)

        def host():
            kop = yield from rt.launch(kernel, stream=s1)
            cop = yield from rt.memcpy_async(GiB, CopyKind.H2D, stream=s2)
            yield kop.completion & cop.completion
            return kop.receipt, cop.receipt

        krec, crec = drive(env, host())
        # Kernel and copy overlapped: both start before either ends.
        assert krec.start < crec.end and crec.start < krec.end

    def test_matmul_kernel_execution_scales_with_n(self):
        env, rt = make_runtime()

        def host(n):
            yield from rt.launch(matmul_kernel(n), blocking=True)

        durations = []
        for n in (512, 2048, 8192):
            env, rt = make_runtime()
            drive(env, host(n))
            durations.append(rt.tracer.trace.kernels()[0].duration)
        assert durations[0] < durations[1] < durations[2]
        # Cubic-ish growth: 4x n is much more than 4x the time.
        assert durations[1] / durations[0] > 10


class TestSynchronize:
    def test_device_synchronize_waits_all_streams(self):
        env, rt = make_runtime()
        s1 = rt.create_stream()
        s2 = rt.create_stream()

        def host():
            yield from rt.launch(KernelSpec(name="a", duration_s=0.5), stream=s1)
            yield from rt.launch(KernelSpec(name="b", duration_s=1.0), stream=s2)
            yield from rt.synchronize()
            return env.now

        end = drive(env, host())
        assert end >= 1.0
        assert s1.idle and s2.idle

    def test_stream_synchronize_waits_one_stream(self):
        env, rt = make_runtime()
        s1 = rt.create_stream()
        s2 = rt.create_stream()

        def host():
            yield from rt.launch(KernelSpec(name="a", duration_s=0.1), stream=s1)
            yield from rt.launch(KernelSpec(name="b", duration_s=5.0), stream=s2)
            yield from rt.synchronize(stream=s1)
            return env.now, s2.idle

        now, s2_idle = drive(env, host())
        assert now < 5.0
        assert not s2_idle

    def test_sync_traced(self):
        env, rt = make_runtime()

        def host():
            yield from rt.synchronize()

        drive(env, host())
        syncs = rt.tracer.trace.filter(lambda e: e.kind is EventKind.SYNC)
        assert len(syncs) == 1


class TestCudaEvents:
    def test_event_timing_brackets_kernel(self):
        env, rt = make_runtime()
        start_evt = CudaEvent(env, "start")
        end_evt = CudaEvent(env, "end")

        def host():
            yield from start_evt.record(rt.default_stream)
            yield from rt.launch(KernelSpec(name="k", duration_s=0.75))
            yield from end_evt.record(rt.default_stream)
            yield from end_evt.synchronize()

        drive(env, host())
        assert elapsed_time(start_evt, end_evt) == pytest.approx(0.75, abs=1e-3)

    def test_unrecorded_event_raises(self):
        env, rt = make_runtime()
        evt = CudaEvent(env)
        with pytest.raises(RuntimeError):
            _ = evt.timestamp

        def host():
            yield from evt.synchronize()

        with pytest.raises(RuntimeError):
            drive(env, host())


class TestSlackInjection:
    def test_slack_extends_host_time(self):
        def loop(rt, env):
            def host():
                t0 = env.now
                yield from rt.memcpy(MiB, CopyKind.H2D)
                yield from rt.launch(
                    KernelSpec(name="k", duration_s=1e-3), blocking=True
                )
                yield from rt.synchronize()
                return env.now - t0

            return drive(env, host())

        env0, rt0 = make_runtime(0.0)
        base = loop(rt0, env0)
        env1, rt1 = make_runtime(100e-6)
        slowed = loop(rt1, env1)
        # 3 API calls x 100 us of slack, plus starvation effects.
        assert slowed - base >= 300e-6

    def test_slack_events_traced(self):
        env, rt = make_runtime(50e-6)

        def host():
            yield from rt.memcpy(MiB, CopyKind.H2D)

        drive(env, host())
        slacks = rt.tracer.trace.filter(lambda e: e.kind is EventKind.SLACK)
        assert len(slacks) == 1
        assert slacks[0].duration == pytest.approx(50e-6)

    def test_injected_total_matches_calls(self):
        env, rt = make_runtime(10e-6)

        def host():
            for _ in range(4):
                yield from rt.memcpy(MiB, CopyKind.H2D)

        drive(env, host())
        assert rt.injector.calls_delayed == 4
        assert rt.injector.total_injected_s == pytest.approx(40e-6)

    def test_set_slack_swaps_model(self):
        env, rt = make_runtime(0.0)
        rt.set_slack(SlackModel(123e-6))
        assert rt.slack.slack_s == 123e-6


class TestStarvation:
    def test_no_starvation_when_queue_busy(self):
        env, rt = make_runtime()

        def host():
            ops = []
            for _ in range(5):
                op = yield from rt.launch(KernelSpec(name="k", duration_s=0.01))
                ops.append(op)
            yield from rt.synchronize()

        drive(env, host())
        # Back-to-back kernels: no gaps beyond the first.
        assert rt.total_starvation_cost() < 1e-4

    def test_starvation_charged_after_idle_gap(self):
        env, rt = make_runtime()

        def host():
            yield from rt.launch(KernelSpec(name="k1", duration_s=0.01),
                                 blocking=True)
            yield env.timeout(5e-3)  # starve the device for 5 ms
            yield from rt.launch(KernelSpec(name="k2", duration_s=0.01),
                                 blocking=True)

        drive(env, host())
        cost = rt.total_starvation_cost()
        # gap ~5 ms -> cost ~0.9 * 5 ms
        assert cost == pytest.approx(0.9 * 5e-3, rel=0.05)

    def test_starvation_cost_saturates_at_cap(self):
        env, rt = make_runtime()

        def host():
            yield from rt.launch(KernelSpec(name="k1", duration_s=0.01),
                                 blocking=True)
            yield env.timeout(10.0)  # enormous gap
            yield from rt.launch(KernelSpec(name="k2", duration_s=0.01),
                                 blocking=True)

        drive(env, host())
        assert rt.total_starvation_cost() == pytest.approx(
            rt.gpu.idle_ramp_cap_s, rel=0.01
        )

    def test_copies_keep_device_warm(self):
        env, rt = make_runtime()

        def host():
            yield from rt.launch(KernelSpec(name="k1", duration_s=0.01),
                                 blocking=True)
            # A copy right before the next kernel keeps activity recent.
            yield from rt.memcpy(256 * MiB, CopyKind.H2D)
            yield from rt.launch(KernelSpec(name="k2", duration_s=0.01),
                                 blocking=True)

        drive(env, host())
        # Gap before k2 is only the API overhead, not the copy time.
        assert rt.total_starvation_cost() < 1e-4


class TestUtilization:
    def test_engine_utilization_reported(self):
        env, rt = make_runtime()

        def host():
            yield from rt.launch(KernelSpec(name="k", duration_s=1.0),
                                 blocking=True)

        drive(env, host())
        util = rt.engine_utilization()
        assert util["compute"] > 0.9
        assert util["copy_h2d"] == 0.0
