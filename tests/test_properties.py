"""Cross-module property-based tests on system invariants.

These pin down the relationships the reproduction's conclusions rest
on: conservation of injected slack, monotonicity of the slack
response, bracket ordering of the binning, and trace accounting
identities — for arbitrary inputs, not just the paper's grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, quantize
from repro.gpusim import CudaRuntime, KernelSpec, matmul_efficiency
from repro.hw import GPUSpec, MiB
from repro.model import bin_values, equation3_binned_slack_penalty, matrix_bytes
from repro.network import (
    SlackModel,
    fibre_distance_for_latency,
    latency_for_fibre_distance,
)
from repro.trace import CopyKind, EventKind, Trace, TraceEvent


GRID = (512, 2048, 8192, 32768)


class TestSlackConservation:
    """Injected slack is exactly calls x delay, whatever the workload."""

    @settings(max_examples=15, deadline=None)
    @given(
        calls=st.integers(min_value=1, max_value=20),
        slack_us=st.floats(min_value=0.1, max_value=1000.0),
    )
    def test_total_injected_is_calls_times_delay(self, calls, slack_us):
        slack = slack_us * 1e-6
        env = Environment()
        rt = CudaRuntime(env, slack=SlackModel(slack))

        def host():
            for _ in range(calls):
                yield from rt.memcpy(MiB, CopyKind.H2D)

        env.process(host())
        env.run()
        assert rt.injector.calls_delayed == calls
        # The injected delay is tick-quantized, and dyadic sums are
        # exact — so the accumulated total equals the product bit for
        # bit, a strictly stronger claim than approx equality.
        assert rt.injector.total_injected_s == calls * quantize(slack)
        assert rt.injector.total_injected_s == pytest.approx(calls * slack, rel=1e-5)

    @settings(max_examples=15, deadline=None)
    @given(slack_us=st.floats(min_value=1.0, max_value=10_000.0))
    def test_wall_time_at_least_injected(self, slack_us):
        slack = slack_us * 1e-6
        env = Environment()
        rt = CudaRuntime(env, slack=SlackModel(slack))

        def host():
            for _ in range(5):
                yield from rt.memcpy(MiB, CopyKind.H2D)
            return env.now

        proc = env.process(host())
        env.run()
        assert proc.value >= rt.injector.total_injected_s


class TestDistanceConversionProperties:
    @settings(max_examples=100)
    @given(st.floats(min_value=0, max_value=10.0, allow_nan=False))
    def test_roundtrip_identity(self, latency):
        assert latency_for_fibre_distance(
            fibre_distance_for_latency(latency)
        ) == pytest.approx(latency, abs=1e-15)

    @settings(max_examples=100)
    @given(
        a=st.floats(min_value=0, max_value=1.0),
        b=st.floats(min_value=0, max_value=1.0),
    )
    def test_additivity(self, a, b):
        assert fibre_distance_for_latency(a + b) == pytest.approx(
            fibre_distance_for_latency(a) + fibre_distance_for_latency(b)
        )


class TestKernelModelProperties:
    @settings(max_examples=100)
    @given(n=st.integers(min_value=1, max_value=10**6))
    def test_matmul_efficiency_bounded(self, n):
        eff = matmul_efficiency(n)
        assert 0 < eff < 1

    @settings(max_examples=50)
    @given(
        n1=st.integers(min_value=1, max_value=10**5),
        n2=st.integers(min_value=1, max_value=10**5),
    )
    def test_matmul_efficiency_monotone(self, n1, n2):
        if n1 < n2:
            assert matmul_efficiency(n1) < matmul_efficiency(n2)

    @settings(max_examples=50, deadline=None)
    @given(
        flops=st.floats(min_value=1e6, max_value=1e15),
        eff=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_execution_time_floor(self, flops, eff):
        gpu = GPUSpec()
        k = KernelSpec(name="k", flops=flops, efficiency=eff)
        assert k.execution_time(gpu) >= gpu.min_kernel_time_s

    @settings(max_examples=50)
    @given(gap=st.floats(min_value=0, max_value=100.0, allow_nan=False))
    def test_starvation_cost_bounded_and_monotone(self, gap):
        gpu = GPUSpec()
        cost = gpu.starvation_cost(gap)
        assert 0 <= cost <= gpu.idle_ramp_cap_s
        assert gpu.starvation_cost(gap + 1e-3) >= cost


class TestBinningProperties:
    @settings(max_examples=100)
    @given(
        values=st.lists(
            st.floats(min_value=1, max_value=1e13, allow_nan=False),
            min_size=1, max_size=40,
        )
    )
    def test_bracket_penalty_ordering(self, values):
        """The pessimistic assignment never yields a lower Eq.3 result
        when penalties decrease with matrix size (as measured)."""
        grid = {n: float(matrix_bytes(n)) for n in GRID}
        binned = bin_values(values, grid)
        # Any decreasing penalty profile.
        penalties = {512: 8.0, 2048: 2.0, 8192: 0.3, 32768: 0.01}
        lower = equation3_binned_slack_penalty(binned.lower_counts, penalties)
        upper = equation3_binned_slack_penalty(binned.upper_counts, penalties)
        assert upper >= lower - 1e-12

    @settings(max_examples=100)
    @given(
        values=st.lists(
            st.floats(min_value=1, max_value=1e13, allow_nan=False),
            min_size=1, max_size=40,
        )
    )
    def test_counts_conserved(self, values):
        grid = {n: float(matrix_bytes(n)) for n in GRID}
        binned = bin_values(values, grid)
        assert sum(binned.lower_counts.values()) == len(values)
        assert sum(binned.upper_counts.values()) == len(values)


class TestTraceAccountingProperties:
    @st.composite
    def intervals(draw):
        n = draw(st.integers(min_value=1, max_value=30))
        events = []
        for _ in range(n):
            start = draw(st.floats(min_value=0, max_value=100))
            length = draw(st.floats(min_value=1e-6, max_value=10))
            events.append(
                TraceEvent(EventKind.KERNEL, "k", start, start + length)
            )
        return events

    @settings(max_examples=100)
    @given(events=intervals())
    def test_busy_time_bounds(self, events):
        """Union busy time <= summed durations, and <= span."""
        trace = Trace(events)
        busy = trace.busy_time()
        assert busy <= trace.total_time() + 1e-9
        assert busy <= trace.span + 1e-9
        assert busy >= max(e.duration for e in events) - 1e-9

    @settings(max_examples=100)
    @given(events=intervals())
    def test_concurrency_consistent_with_overlap(self, events):
        trace = Trace(events)
        conc = trace.max_concurrency()
        assert 1 <= conc <= len(events)
        # If no two events overlap, concurrency is 1.
        sorted_events = sorted(events, key=lambda e: e.start)
        overlapping = any(
            a.overlaps(b)
            for a, b in zip(sorted_events, sorted_events[1:])
        )
        if not overlapping and conc > 1:
            # Only possible with non-adjacent overlaps; verify one exists.
            assert any(
                e1.overlaps(e2)
                for i, e1 in enumerate(sorted_events)
                for e2 in sorted_events[i + 1:]
            )


class TestFaultDeterminismProperties:
    """Same seed => same bits, whatever the execution strategy.

    The fault layer's contract is that a (config, slack, plan) triple
    is bit-identical across repeated invocations, inline vs.
    process-pool sweep workers, and every thread count — for *any*
    seed, not just the ones the golden files happen to pin.
    """

    GRID = dict(
        matrix_sizes=(512,),
        slack_values_s=(1e-4,),
        threads=(1, 2, 4, 8),
        iterations=8,
    )

    @staticmethod
    def _plan(seed):
        from repro.faults import FaultPlan

        return FaultPlan.from_spec(
            f"seed={seed};loss:rate=5%;flap:start=2ms,down=1ms;"
            "spike:start=0,duration=20ms,extra=50us"
        )

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_inline_vs_process_pool_bit_identical(self, seed):
        from repro.proxy import run_slack_sweep

        plan = self._plan(seed)
        inline = run_slack_sweep(**self.GRID, workers=1, faults=plan)
        pooled = run_slack_sweep(**self.GRID, workers=4, faults=plan)
        # SweepPoint is a frozen dataclass: == here is exact float
        # equality on every field of every point, in order.
        assert inline.points == pooled.points
        assert inline.skipped == pooled.skipped

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_repeated_invocations_bit_identical(self, seed):
        from repro.proxy import run_slack_sweep

        plan = self._plan(seed)
        first = run_slack_sweep(**self.GRID, workers=1, faults=plan)
        second = run_slack_sweep(**self.GRID, workers=1, faults=plan)
        assert first.points == second.points
        assert first.skipped == second.skipped

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_empty_plan_reproduces_healthy_sweep(self, seed):
        from repro.faults import FaultPlan
        from repro.proxy import run_slack_sweep

        grid = dict(self.GRID, threads=(1, 2))
        healthy = run_slack_sweep(**grid, workers=1)
        empty = run_slack_sweep(
            **grid, workers=1, faults=FaultPlan(seed=seed)
        )
        assert healthy.points == empty.points


class TestDeviceMemoryProxyInvariant:
    @settings(max_examples=30, deadline=None)
    @given(
        threads=st.integers(min_value=1, max_value=8),
        log_n=st.integers(min_value=9, max_value=15),
    )
    def test_oom_exactly_when_over_capacity(self, threads, log_n):
        """The proxy admits a configuration iff 3 matrices x threads fit."""
        from repro.hw import GiB, OutOfMemoryError
        from repro.proxy import ProxyConfig, run_proxy

        config = ProxyConfig(matrix_size=2**log_n, threads=threads,
                             iterations=1)
        fits = config.device_bytes_needed <= 40 * GiB
        if fits:
            run_proxy(config)  # must not raise
        else:
            with pytest.raises(OutOfMemoryError):
                run_proxy(config)
