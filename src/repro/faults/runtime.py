"""Runtime fault injection: the compiled form of a :class:`FaultPlan`.

A :class:`FaultInjector` is created per simulation
(:meth:`FaultPlan.compile`), holds the plan's windows pre-quantized to
the dyadic tick grid, and is consulted from three integration points:

* the CUDA API boundary — :meth:`perturb_call`, yielded through by
  :class:`repro.gpusim.interception.SlackInjector` after the base
  slack delay (downtime waits, loss retries, spike/congestion extras);
* the device engines — :meth:`stall_extra`, added to the compute
  engine's busy time inside :class:`GpuStall` windows;
* the network link — :meth:`down_wait` / :meth:`loss_at` /
  :meth:`draw`, used by :class:`repro.network.Link` to model flap
  waits and lossy retransmission at message granularity.

Every delay handed to the simulator is a multiple of the tick
(:mod:`repro.des.timebase`), so fault runs keep the bit-exact
accumulation guarantees of healthy runs. Stochastic loss decisions
come from :meth:`draw`: a counted ``blake2b(seed:counter)`` stream —
deterministic across processes, platforms and Python versions, and
consumed in simulation order (which is itself deterministic).

When no plan is active nothing here runs: integration points hold
``faults=None`` and pay one ``is None`` check per API call — zero
cost on the DES hot path.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict, Generator, List, NamedTuple, Optional, TYPE_CHECKING, Tuple

from ..des import quantize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..des import Environment, Event
    from .plan import FaultPlan

__all__ = ["FabricTimeoutError", "LossRegime", "FaultInjector"]


class FabricTimeoutError(RuntimeError):
    """A fabric message exhausted its retry budget and timed out.

    Raised *inside the simulation* to the process waiting on the call
    (the same propagation path as any worker exception — see
    ``tests/faults/test_failure_injection.py``), mirroring an RPC
    deadline exceeded in a real disaggregated pool.
    """


class LossRegime(NamedTuple):
    """The message-loss parameters active at one instant."""

    rate: float
    backoff_base_s: float
    max_retries: int


class FaultInjector:
    """Per-simulation fault state compiled from a :class:`FaultPlan`.

    All counters are public — :meth:`snapshot` flattens them into the
    ``faults.*`` metric namespace that rides on
    :class:`~repro.proxy.ProxyResult.sim_metrics`, through sweep
    workers and the point cache, into :class:`~repro.obs.RunReport`.
    """

    def __init__(self, env: "Environment", plan: "FaultPlan") -> None:
        from .plan import (
            CongestionEpisode,
            GpuStall,
            LatencySpike,
            LinkFlap,
            MessageLoss,
        )

        self.env = env
        self.plan = plan
        self.seed = plan.seed

        # Pre-quantized windows: (start, end, payload). Ends are start
        # + duration with both addends dyadic, so the sums are exact.
        self._spikes: List[Tuple[float, float, float]] = []
        self._flaps: List[Tuple[float, float]] = []
        self._losses: List[Tuple[float, float, LossRegime]] = []
        self._stalls: List[Tuple[float, float, float]] = []
        for event in plan.events:
            start = quantize(event.start_s)
            if isinstance(event, (LatencySpike, CongestionEpisode)):
                self._spikes.append(
                    (
                        start,
                        start + quantize(event.duration_s),
                        quantize(event.extra_s),
                    )
                )
            elif isinstance(event, LinkFlap):
                self._flaps.append((start, start + quantize(event.down_s)))
            elif isinstance(event, MessageLoss):
                end = (
                    math.inf
                    if event.duration_s is None
                    else start + quantize(event.duration_s)
                )
                self._losses.append(
                    (
                        start,
                        end,
                        LossRegime(
                            event.rate,
                            quantize(event.backoff_base_s),
                            event.max_retries,
                        ),
                    )
                )
            elif isinstance(event, GpuStall):
                self._stalls.append(
                    (
                        start,
                        start + quantize(event.duration_s),
                        quantize(event.extra_s),
                    )
                )
        self._flaps.sort()

        # -- accounting (all surfaced via snapshot()) ----------------------
        #: Calls/messages that received at least one fault effect.
        self.injected = 0
        #: Retransmissions performed after message loss.
        self.retries = 0
        #: Calls/messages that exhausted their retry budget.
        self.timeouts = 0
        #: Simulated seconds spent waiting out link-flap down windows.
        self.downtime_s = 0.0
        #: Total extra simulated delay attributable to faults
        #: (downtime + backoffs + spike/congestion extras; excludes
        #: GPU stalls, which are engine busy time, see stall_s).
        self.extra_delay_s = 0.0
        #: Messages lost (each retry implies one loss; a timeout's
        #: final loss counts too).
        self.messages_lost = 0
        #: Compute-engine operations stretched by a GpuStall window.
        self.gpu_stalls = 0
        #: Total stall time added to engine busy time.
        self.stall_s = 0.0
        self._decisions = 0

    # -- deterministic decision stream ------------------------------------
    def draw(self) -> float:
        """Next uniform-[0,1) decision from the counted seed stream.

        ``blake2b(f"{seed}:{counter}")`` — no RNG object state, no
        platform dependence; the counter advances in simulation order,
        which the DES makes deterministic.
        """
        i = self._decisions
        self._decisions += 1
        digest = hashlib.blake2b(
            f"{self.seed}:{i}".encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    # -- window queries ----------------------------------------------------
    def down_wait(self, now: float) -> float:
        """Seconds until the fabric is back up (0 when not in a flap)."""
        for start, end in self._flaps:
            if start <= now < end:
                return end - now
            if start > now:
                break
        return 0.0

    def extra_call_delay(self, now: float) -> float:
        """Summed spike/congestion extra delay active at ``now``."""
        total = 0.0
        for start, end, extra in self._spikes:
            if start <= now < end:
                total += extra
        return total

    def loss_at(self, now: float) -> Optional[LossRegime]:
        """The loss regime active at ``now`` (None = lossless).

        Overlapping loss events combine: rates compose as independent
        loss channels (``1 - prod(1 - r)``), the backoff is the
        largest, and the retry budget the smallest.
        """
        active = [
            regime
            for start, end, regime in self._losses
            if start <= now < end
        ]
        if not active:
            return None
        if len(active) == 1:
            return active[0]
        keep = 1.0
        for regime in active:
            keep *= 1.0 - regime.rate
        return LossRegime(
            1.0 - keep,
            max(r.backoff_base_s for r in active),
            min(r.max_retries for r in active),
        )

    def stall_extra(self, now: float) -> float:
        """Summed GPU-stall extra busy time active at ``now``."""
        total = 0.0
        for start, end, extra in self._stalls:
            if start <= now < end:
                total += extra
        return total

    # -- engine hook -------------------------------------------------------
    def charge_stall(self, now: float) -> float:
        """Stall time for one engine op at ``now``, with accounting."""
        stall = self.stall_extra(now)
        if stall > 0.0:
            self.gpu_stalls += 1
            self.stall_s += stall
        return stall

    # -- CUDA API hook -----------------------------------------------------
    def perturb_call(
        self, api_name: str
    ) -> Generator["Event", Any, float]:
        """Apply the fault effects one host-visible call experiences.

        Yielded through by the slack injector after the base slack
        delay. Order: wait out any down window, then play the loss/
        retry/backoff game, then pay spike/congestion extras. Returns
        the total extra delay injected for this call.

        Raises
        ------
        FabricTimeoutError
            To the waiting process, when ``max_retries`` resends of a
            lost message are all lost too.
        """
        env = self.env
        total = 0.0

        # 1. Link down: the call blocks until the fabric returns.
        wait = self.down_wait(env.now)
        while wait > 0.0:
            self.downtime_s += wait
            total += wait
            yield env.timeout(wait)
            wait = self.down_wait(env.now)

        # 2. Message loss: resend with exponential backoff.
        regime = self.loss_at(env.now)
        if regime is not None:
            losses = 0
            while self.draw() < regime.rate:
                losses += 1
                self.messages_lost += 1
                if losses > regime.max_retries:
                    self.timeouts += 1
                    self.injected += 1
                    self.extra_delay_s += total
                    raise FabricTimeoutError(
                        f"{api_name}: message lost after "
                        f"{regime.max_retries} retries "
                        f"(loss rate {regime.rate:g})"
                    )
                self.retries += 1
                backoff = quantize(
                    regime.backoff_base_s * 2.0 ** (losses - 1)
                )
                total += backoff
                yield env.timeout(backoff)

        # 3. Latency spike / congestion episode extras.
        extra = self.extra_call_delay(env.now)
        if extra > 0.0:
            total += extra
            yield env.timeout(extra)

        if total > 0.0:
            self.injected += 1
            self.extra_delay_s += total
        return total

    # -- observability -----------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``faults.*`` telemetry for :func:`repro.obs.simulation_snapshot`."""
        return {
            "faults.injected": float(self.injected),
            "faults.retries": float(self.retries),
            "faults.timeouts": float(self.timeouts),
            "faults.downtime_s": self.downtime_s,
            "faults.extra_delay_s": self.extra_delay_s,
            "faults.messages_lost": float(self.messages_lost),
            "faults.gpu_stalls": float(self.gpu_stalls),
            "faults.stall_s": self.stall_s,
        }

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, "
            f"events={len(self.plan.events)}, injected={self.injected})"
        )
