"""Micro-benchmark: raw event throughput of the DES kernel.

Every proxy run, sweep point, and application model ultimately grinds
through ``Environment.step``/``Event`` dispatch, so events/sec here is
the floor under everything else in the reproduction. Two scenarios:

* ``timeout_dispatch`` — one process draining a long chain of
  timeouts: the allocation + heap + dispatch fast path;
* ``event_handoff`` — two processes alternating through bare events:
  the park/resume machinery (callbacks, ``Process._loop``).

The measured events/sec land in ``BENCH_des.json`` at the repo root —
a standalone structured artifact (best-of-3 wall time per scenario),
uploaded by the CI bench-smoke job next to ``BENCH_fleet.json`` and
``BENCH_trace.json``, so DES hot-path changes stay visible across PRs.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.des import Environment

#: Where the perf artifact lands (repo root, next to BENCH_sweep.json).
DES_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_des.json"

TIMEOUT_EVENTS = 100_000
HANDOFF_ROUNDS = 50_000

#: Sections accumulated by the tests and flushed at module teardown.
_SECTIONS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_artifact():
    yield
    if not _SECTIONS:
        return
    doc = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    doc.update(_SECTIONS)
    DES_ARTIFACT.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _best_of(fn, repeats=3):
    """Best wall time of ``repeats`` runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _drain_timeouts(n):
    env = Environment()

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    return env.now


def _event_handoff(rounds):
    env = Environment()
    box = {"ev": env.event()}

    def producer(env):
        for i in range(rounds):
            ev = box["ev"]
            ev.succeed(i)
            yield env.timeout(0.0)

    def consumer(env):
        for _ in range(rounds):
            yield box["ev"]
            box["ev"] = env.event()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return env.now


def test_bench_des_timeout_dispatch():
    best_s, now = _best_of(lambda: _drain_timeouts(TIMEOUT_EVENTS))
    assert now == float(TIMEOUT_EVENTS)
    _SECTIONS["timeout_dispatch"] = {
        "events": TIMEOUT_EVENTS,
        "best_s": best_s,
        "events_per_sec": round(TIMEOUT_EVENTS / best_s),
    }


def test_bench_des_event_handoff():
    best_s, _ = _best_of(lambda: _event_handoff(HANDOFF_ROUNDS))
    # Each round dispatches the bare event plus the producer's timeout.
    _SECTIONS["event_handoff"] = {
        "rounds": HANDOFF_ROUNDS,
        "best_s": best_s,
        "events_per_sec": round(2 * HANDOFF_ROUNDS / best_s),
    }
