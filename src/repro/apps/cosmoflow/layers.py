"""CosmoFlow's network layers and their kernel cost descriptions.

CosmoFlow (Mathuriya et al., MLPerf HPC) is a 3D CNN over cosmology
volumes: five Conv3D(3x3x3)+LeakyReLU+MaxPool blocks doubling the
channel count while halving each spatial dimension, followed by three
dense layers. Each layer knows its FLOP counts and emits the CUDA
kernels TensorFlow would launch for it (forward, and data/weight
gradients + elementwise ops for backward).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ...gpusim import KernelSpec

__all__ = [
    "Conv3DBlock",
    "DenseLayer",
    "cosmoflow_layers",
    "INPUT_SHAPE",
    "CONV_CHANNELS",
    "DENSE_UNITS",
]

#: CosmoFlow input volume: 128^3 voxels with 4 redshift channels.
INPUT_SHAPE: Tuple[int, int, int, int] = (128, 128, 128, 4)
#: Output channels of the five conv blocks.
CONV_CHANNELS: Tuple[int, ...] = (32, 64, 128, 256, 512)
#: Units of the three dense layers (last = 4 target parameters).
DENSE_UNITS: Tuple[int, ...] = (128, 64, 4)

#: Achievable fraction of peak for implicit-GEMM 3D convolutions and
#: for small fully-connected GEMMs on an A100.
_CONV_EFFICIENCY = 0.35
_DENSE_EFFICIENCY = 0.10


@dataclass(frozen=True)
class Conv3DBlock:
    """One Conv3D(3^3) + LeakyReLU + MaxPool(2^3) block."""

    index: int
    in_channels: int
    out_channels: int
    spatial: int  # input edge length (voxels per dimension)
    kernel_edge: int = 3

    @property
    def output_voxels(self) -> int:
        """Spatial positions the convolution computes (same padding)."""
        return self.spatial**3

    def forward_flops(self, batch: int) -> float:
        """Multiply-add FLOPs of the forward convolution."""
        taps = self.kernel_edge**3
        return 2.0 * batch * self.in_channels * self.out_channels * taps * self.output_voxels

    def activation_bytes(self, batch: int) -> float:
        """Bytes of the block's output activations (float32)."""
        return 4.0 * batch * self.out_channels * self.output_voxels

    def forward_kernels(self, batch: int) -> List[KernelSpec]:
        """Kernels TensorFlow launches for this block's forward pass."""
        i = self.index
        return [
            KernelSpec(
                name=f"conv{i}_fprop",
                flops=self.forward_flops(batch),
                bytes_accessed=self.activation_bytes(batch),
                efficiency=_CONV_EFFICIENCY,
                meta={"layer": f"conv{i}"},
            ),
            KernelSpec(
                name=f"leaky_relu{i}",
                bytes_accessed=2 * self.activation_bytes(batch),
            ),
            KernelSpec(
                name=f"maxpool{i}",
                bytes_accessed=1.125 * self.activation_bytes(batch),
            ),
        ]

    def backward_kernels(self, batch: int) -> List[KernelSpec]:
        """Kernels of the backward pass (dgrad + wgrad + fused bias)."""
        i = self.index
        fwd = self.forward_flops(batch)
        act = self.activation_bytes(batch)
        return [
            KernelSpec(
                name=f"conv{i}_dgrad",
                flops=fwd,
                bytes_accessed=act,
                efficiency=_CONV_EFFICIENCY,
                meta={"layer": f"conv{i}"},
            ),
            KernelSpec(
                name=f"conv{i}_wgrad",
                flops=fwd,
                bytes_accessed=act,
                efficiency=_CONV_EFFICIENCY * 0.9,
                meta={"layer": f"conv{i}"},
            ),
            KernelSpec(
                name=f"relu_grad{i}",
                bytes_accessed=2 * act,
            ),
            KernelSpec(
                name=f"pool_grad{i}",
                bytes_accessed=1.125 * act,
            ),
        ]


@dataclass(frozen=True)
class DenseLayer:
    """A fully connected layer (small GEMMs + bias/activation)."""

    index: int
    in_features: int
    out_features: int

    def forward_flops(self, batch: int) -> float:
        """FLOPs of the forward GEMM."""
        return 2.0 * batch * self.in_features * self.out_features

    def forward_kernels(self, batch: int) -> List[KernelSpec]:
        """Forward GEMM plus bias/activation."""
        i = self.index
        return [
            KernelSpec(
                name=f"dense{i}_gemm",
                flops=self.forward_flops(batch),
                bytes_accessed=4.0 * (self.in_features * self.out_features),
                efficiency=_DENSE_EFFICIENCY,
            ),
            KernelSpec(
                name=f"dense{i}_bias_act",
                bytes_accessed=8.0 * batch * self.out_features,
            ),
        ]

    def backward_kernels(self, batch: int) -> List[KernelSpec]:
        """Backward GEMMs (dgrad + wgrad)."""
        i = self.index
        return [
            KernelSpec(
                name=f"dense{i}_dgrad",
                flops=self.forward_flops(batch),
                bytes_accessed=4.0 * self.in_features * self.out_features,
                efficiency=_DENSE_EFFICIENCY,
            ),
            KernelSpec(
                name=f"dense{i}_wgrad",
                flops=self.forward_flops(batch),
                bytes_accessed=4.0 * self.in_features * self.out_features,
                efficiency=_DENSE_EFFICIENCY,
            ),
        ]


def cosmoflow_layers() -> Tuple[List[Conv3DBlock], List[DenseLayer]]:
    """Build the CosmoFlow layer stack (conv blocks, dense layers)."""
    convs: List[Conv3DBlock] = []
    spatial = INPUT_SHAPE[0]
    in_ch = INPUT_SHAPE[3]
    for i, out_ch in enumerate(CONV_CHANNELS, start=1):
        convs.append(
            Conv3DBlock(
                index=i, in_channels=in_ch, out_channels=out_ch, spatial=spatial
            )
        )
        in_ch = out_ch
        spatial //= 2  # maxpool halves each dimension
    flat = CONV_CHANNELS[-1] * spatial**3
    denses: List[DenseLayer] = []
    in_f = flat
    for i, units in enumerate(DENSE_UNITS, start=1):
        denses.append(DenseLayer(index=i, in_features=in_f, out_features=units))
        in_f = units
    return convs, denses
