"""The SweepOptions bundle and its resolution contract."""

import dataclasses
import warnings

import pytest

from repro.experiments import ExperimentContext
from repro.parallel import PointCache, SweepExecutor
from repro.proxy import SweepOptions, UNSET, resolve_options, run_slack_sweep


def test_options_are_frozen_and_keyword_only():
    opts = SweepOptions(workers=2, cache=False)
    with pytest.raises(dataclasses.FrozenInstanceError):
        opts.workers = 4
    with pytest.raises(TypeError):
        SweepOptions(2)


def test_defaults_round_trip():
    opts = SweepOptions()
    assert opts.workers == 1
    assert opts.cache is None
    assert opts.fast_forward is None
    assert opts.faults is None
    assert opts.adaptive is False
    assert opts.tol is None
    assert opts == SweepOptions()
    assert hash(opts) == hash(SweepOptions())


def test_validate_rejects_bad_combinations():
    with pytest.raises(ValueError, match="workers"):
        SweepOptions(workers=0).validate()
    with pytest.raises(ValueError, match="adaptive"):
        SweepOptions(tol=1e-3).validate()
    assert SweepOptions(adaptive=True, tol=1e-3).validate().tol == 1e-3


def test_replace_returns_updated_copy():
    base = SweepOptions(workers=1)
    other = base.replace(workers=4)
    assert base.workers == 1 and other.workers == 4


def test_point_cache_resolution():
    assert SweepOptions(cache=None).point_cache() is None
    assert SweepOptions(cache=False).point_cache() is None
    store = PointCache.__new__(PointCache)  # no disk touch needed
    assert SweepOptions(cache=store).point_cache() is store


def test_resolve_options_explicit_keywords_win():
    base = SweepOptions(workers=2, cache=False)
    merged = resolve_options(base, {"workers": 4, "cache": UNSET})
    assert merged.workers == 4
    assert merged.cache is False
    untouched = resolve_options(base, {"workers": UNSET})
    assert untouched == base
    defaulted = resolve_options(None, {"workers": UNSET})
    assert defaulted == SweepOptions()


def test_run_slack_sweep_accepts_options():
    opts = SweepOptions(workers=1, cache=False, fast_forward=True)
    result = run_slack_sweep(
        matrix_sizes=[256], slack_values_s=[1e-5], threads=[1],
        iterations=3, target_compute_s=2.0, options=opts,
    )
    assert len(result.points) == 1


def test_run_slack_sweep_explicit_keyword_overrides_options():
    opts = SweepOptions(workers=4, cache=False)
    # The explicit workers=1 wins over the options object's 4.
    result = run_slack_sweep(
        matrix_sizes=[256], slack_values_s=[1e-5], threads=[1],
        iterations=3, target_compute_s=2.0, options=opts, workers=1,
    )
    assert result.timing.workers == 1
    assert result.timing.mode == "inline"


def test_legacy_positional_grid_still_works_with_warning():
    with pytest.warns(DeprecationWarning, match="keyword"):
        result = run_slack_sweep(
            [256], [1e-5], [1], 3, 2.0, workers=1, cache=False
        )
    assert len(result.points) == 1


def test_executor_accepts_options():
    ex = SweepExecutor(options=SweepOptions(workers=3, cache=False))
    assert ex.workers == 3
    assert ex.cache is None


def test_executor_explicit_workers_beat_options():
    ex = SweepExecutor(workers=2, options=SweepOptions(workers=8))
    assert ex.workers == 2


def test_context_accepts_options_bundle():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ctx = ExperimentContext(options=SweepOptions(workers=2, cache=False))
    assert ctx.workers == 2
    assert ctx.cache is False
    assert ctx.options.workers == 2


def test_context_explicit_knob_beats_options():
    ctx = ExperimentContext(
        options=SweepOptions(workers=2, cache=False), workers=5
    )
    assert ctx.workers == 5
    assert ctx.options.workers == 5
    assert ctx.cache is False
