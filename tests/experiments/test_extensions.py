"""Tests for the prose-claim extension experiments."""

import pytest

from repro.experiments import ExperimentContext, run_experiment


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(quick=True)


class TestCollectives:
    def test_tight_coupling_wins_at_every_world_size(self, ctx):
        result = run_experiment("ext_collectives", ctx)
        s = result.series[0]
        packed = s.lines["chassis-backplane"]
        split = s.lines["cross-chassis"]
        assert all(p < q for p, q in zip(packed, split))

    def test_nvlink_fastest(self, ctx):
        result = run_experiment("ext_collectives", ctx)
        s = result.series[0]
        assert all(
            n < c
            for n, c in zip(s.lines["nvlink3"], s.lines["chassis-backplane"])
        )

    def test_packed_vs_split_gap_meaningful(self, ctx):
        result = run_experiment("ext_collectives", ctx)
        factor = float(result.notes[0].split("(")[1].split("x")[0])
        assert factor > 2.0


class TestCongestion:
    def test_tolerance_headroom_large(self, ctx):
        result = run_experiment("ext_congestion", ctx)
        table = result.tables[0]
        # Every swept utilization point stays within tolerance.
        assert all(row[2] for row in table.rows)
        # The limit utilization is extreme (> 95%).
        limit = float(table.notes[0].split("beyond ")[1].split("%")[0])
        assert limit > 95.0

    def test_slack_grows_with_load(self, ctx):
        result = run_experiment("ext_congestion", ctx)
        slacks = result.tables[0].column("slack [us]")
        assert all(b > a for a, b in zip(slacks, slacks[1:]))


class TestPreload:
    def test_shortfall_tracks_coverage(self, ctx):
        result = run_experiment("ext_preload", ctx)
        table = result.tables[0]
        coverages = table.column("coverage")
        shortfalls = table.column("shortfall [%]")
        # Lower coverage -> larger shortfall.
        pairs = sorted(zip(coverages, shortfalls))
        assert all(
            s2 <= s1 for (_, s1), (_, s2) in zip(pairs, pairs[1:])
        )
        # Full coverage -> zero shortfall.
        assert dict(zip(coverages, shortfalls))[1] == 0


class TestPower:
    def test_cdi_saves_power(self, ctx):
        result = run_experiment("ext_power", ctx)
        table = result.tables[0]
        powers = dict(zip(table.column("scheduler"),
                          table.column("idle power [W]")))
        assert powers["CDI"] == 0
        assert powers["traditional"] > 100


class TestRemoting:
    def test_remoting_overhead_exceeds_cdi(self, ctx):
        result = run_experiment("ext_remoting", ctx)
        for row in result.tables[0].rows:
            cdi, remoting = row[4], row[5]
            assert remoting > 10 * max(cdi, 0.01)


class TestSensitivity:
    def test_ramp_fraction_proportional(self, ctx):
        result = run_experiment("ext_sensitivity", ctx)
        ramp = result.tables[0]
        penalties = ramp.column("penalty [%]")
        # Doubling the fraction roughly doubles the penalty.
        assert penalties[1] == pytest.approx(2 * penalties[0], rel=0.1)
        assert penalties[2] == pytest.approx(2 * penalties[1], rel=0.1)

    def test_cap_anchor_boundary(self, ctx):
        result = run_experiment("ext_sensitivity", ctx)
        cap = result.tables[1]
        holds = dict(zip(cap.column("cap [ms]"), cap.column("anchor holds")))
        assert holds[25.0] is True
        assert holds[125.0] is False


class TestGraphs:
    def test_mitigation_factor_about_five(self, ctx):
        result = run_experiment("ext_graphs", ctx)
        factors = result.tables[0].column("mitigation factor")
        # One call instead of five: ~5x less slack exposure.
        assert all(4.0 < f < 7.0 for f in factors)


class TestThroughput:
    def test_cdi_wins_on_every_metric(self, ctx):
        result = run_experiment("ext_throughput", ctx)
        rows = {r[0]: r for r in result.tables[0].rows}
        trad, cdi = rows["traditional"], rows["CDI"]
        assert cdi[1] < trad[1]  # makespan
        assert cdi[2] < trad[2]  # mean wait
        assert cdi[4] > trad[4]  # GPU utilization
        assert cdi[5] == 0.0  # trapped GPU-hours


class TestWeakScaling:
    def test_cdi_advantage_at_every_scale(self, ctx):
        result = run_experiment("ext_weak_scaling", ctx)
        advantages = result.tables[0].column("CDI advantage")
        assert all(a > 1.0 for a in advantages)

    def test_fabric_slack_stays_in_microseconds(self, ctx):
        result = run_experiment("ext_weak_scaling", ctx)
        slacks = result.tables[0].column("fabric slack [us]")
        assert all(s < 100 for s in slacks)


class TestResilience:
    def test_redundant_chassis_survive_tor_failure(self, ctx):
        result = run_experiment("ext_resilience", ctx)
        rows = {r[0]: r for r in result.tables[0].rows}
        assert rows["none"][1] == 2
        assert rows["chassis rack's ToR (tor:0)"][1] == 1
        assert rows["one chassis (chassis:0)"][1] == 1

    def test_row_switch_is_spof_for_cross_rack_host(self, ctx):
        result = run_experiment("ext_resilience", ctx)
        rows = {r[0]: r for r in result.tables[0].rows}
        assert rows["the row switch (row:0)"][1] == 0

    def test_surviving_paths_stay_in_tolerance(self, ctx):
        result = run_experiment("ext_resilience", ctx)
        for row in result.tables[0].rows:
            if row[1] > 0:
                assert row[3] is True
