"""Exception types raised by the discrete-event simulation kernel.

The kernel distinguishes three failure modes: a process being
interrupted from outside (:class:`Interrupt`), the simulation being
stopped deliberately (:class:`StopSimulation`), and programming errors
in how events are used (:class:`SimulationError`).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "SimulationError",
    "StopSimulation",
    "Interrupt",
    "EmptySchedule",
]


class SimulationError(Exception):
    """Base class for misuse of the simulation kernel.

    Raised, for example, when an event is triggered twice or a process
    yields something that is not an event.
    """


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early.

    Carries the value the simulation run should return.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened. It is
        available as :attr:`cause` in the interrupted process.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]
