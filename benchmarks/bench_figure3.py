"""Benchmark: regenerate Figure 3 (the proxy slack response surface).

This is the reproduction's most expensive artifact: a full sweep over
matrix sizes x slack values x thread counts. The sweep is disk-cached
by the shared context, so the timing below reflects the first
(uncached) cost on a fresh run and the lookup cost afterwards.
"""

import pytest

from repro.experiments import run_experiment


def test_bench_figure3(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("figure3", ctx), rounds=1, iterations=1
    )
    print_result(result)
    panel1 = result.series[0]
    idx_13 = panel1.x.index(2.0**13)
    # The paper's anchor: 2^13 first exceeds +10% at 10 ms of slack.
    assert panel1.lines["slack 10000 us"][idx_13] == pytest.approx(1.09, abs=0.03)
    # Threads raise tolerance: 8-thread panel never exceeds the 1-thread one.
    for label in panel1.lines:
        eight = result.series[3].lines[label]
        one = panel1.lines[label][: len(eight)]
        assert all(b <= a + 1e-9 for a, b in zip(one, eight))
