"""Discrete-event simulation kernel underpinning the CDI reproduction.

A compact process-based DES engine (SimPy-style): generators yield
events, an :class:`Environment` pops them off a heap in time order.
Everything above this layer — PCIe links, NICs, GPU engines, the slack
injector — is expressed as processes and resources from this package.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    NORMAL,
    PENDING,
    Process,
    Timeout,
    URGENT,
)
from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation
from .monitor import IntervalRecord, TimeSeriesMonitor, UtilizationTracker
from .timebase import TICK_S, quantize
from .resources import (
    Barrier,
    Container,
    FilterStore,
    Preempted,
    PreemptiveRequest,
    PreemptiveResource,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
)

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "PENDING",
    "NORMAL",
    "URGENT",
    "SimulationError",
    "StopSimulation",
    "EmptySchedule",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "Request",
    "PriorityRequest",
    "Release",
    "Preempted",
    "PreemptiveResource",
    "PreemptiveRequest",
    "Container",
    "Store",
    "Barrier",
    "FilterStore",
    "TimeSeriesMonitor",
    "UtilizationTracker",
    "IntervalRecord",
    "TICK_S",
    "quantize",
]
