"""Unit tests for the DES kernel core: events, processes, conditions."""

import pytest

from repro.des import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_initial_time_defaults_to_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_time():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 3.0
    assert env.now == 3.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


def test_processes_interleave_in_time_order():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, "late", 5.0))
    env.process(proc(env, "early", 1.0))
    env.process(proc(env, "mid", 3.0))
    env.run()
    assert order == ["early", "mid", "late"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for i in range(5):
        env.process(proc(env, i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_midway():
    env = Environment()
    hits = []

    def proc(env):
        while True:
            yield env.timeout(1.0)
            hits.append(env.now)

    env.process(proc(env))
    env.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "result"

    p = env.process(proc(env))
    assert env.run(until=p) == "result"


def test_run_until_never_triggered_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()

    def waiter(env, ev):
        value = yield ev
        return value

    def trigger(env, ev):
        yield env.timeout(1.0)
        ev.succeed(123)

    w = env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert w.value == 123


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    env.process(waiter(env, ev))
    env.process(failer(env, ev))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_crashes_simulation():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("defused"))
    ev.defuse()
    env.run()  # no exception


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return {"answer": 42}

    p = env.process(proc(env))
    env.run()
    assert p.value == {"answer": 42}


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def fails(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def waits(env, target):
        try:
            yield target
        except ValueError as exc:
            return f"caught {exc}"

    target = env.process(fails(env))
    w = env.process(waits(env, target))
    env.run()
    assert w.value == "caught inner"


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_raises_inside_process():
    env = Environment()

    def proc(env):
        try:
            yield 42  # type: ignore[misc]
        except SimulationError:
            return "rejected"

    p = env.process(proc(env))
    env.run()
    assert p.value == "rejected"


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_waiting_on_already_processed_event():
    env = Environment()
    results = []

    def early(env, ev):
        yield env.timeout(1.0)
        ev.succeed("early-value")

    def late(env, ev):
        yield env.timeout(10.0)
        value = yield ev
        results.append(value)

    ev = env.event()
    env.process(early(env, ev))
    env.process(late(env, ev))
    env.run()
    assert results == ["early-value"]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(env, victim_proc):
        yield env.timeout(2.0)
        victim_proc.interrupt("stop now")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(2.0, "stop now")]


def test_interrupted_process_can_continue():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        return env.now

    def attacker(env, v):
        yield env.timeout(2.0)
        v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == 3.0


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def proc(env):
        try:
            env.active_process.interrupt()
        except SimulationError as exc:
            errors.append(str(exc))
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert len(errors) == 1


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (5.0, ["a", "b"])


def test_any_of_fires_on_first_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, ["fast"])


def test_and_operator_builds_all_of():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0) & env.timeout(2.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 2.0


def test_or_operator_builds_any_of():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0) | env.timeout(2.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 1.0


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_condition_failure_propagates():
    env = Environment()
    ev = env.event()

    def proc(env, ev):
        try:
            yield env.all_of([env.timeout(10.0), ev])
        except RuntimeError as exc:
            return str(exc)

    def failer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("cond-fail"))

    p = env.process(proc(env, ev))
    env.process(failer(env, ev))
    env.run()
    assert p.value == "cond-fail"


def test_mixed_environment_events_rejected():
    env1 = Environment()
    env2 = Environment()
    t1 = env1.timeout(1.0)
    t2 = env2.timeout(1.0)
    with pytest.raises(SimulationError):
        AllOf(env1, [t1, t2])


def test_nested_process_waiting():
    env = Environment()

    def inner(env):
        yield env.timeout(2.0)
        return "inner-done"

    def outer(env):
        result = yield env.process(inner(env))
        return f"outer saw {result}"

    p = env.process(outer(env))
    env.run()
    assert p.value == "outer saw inner-done"


def test_event_repr_states():
    env = Environment()
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    env.run()
    assert "processed" in repr(ev)


def test_large_event_count_performance_sanity():
    # 10k timeouts should execute without recursion issues.
    env = Environment()
    counter = []

    def proc(env):
        for _ in range(10_000):
            yield env.timeout(0.001)
        counter.append(env.now)

    env.process(proc(env))
    env.run()
    assert len(counter) == 1
    assert counter[0] == pytest.approx(10.0, rel=1e-6)


def test_urgent_events_precede_normal_at_same_time():
    from repro.des import NORMAL, URGENT

    env = Environment()
    order = []

    normal = env.event()
    normal._ok = True
    normal._value = None
    env.schedule(normal, priority=NORMAL, delay=1.0)
    normal.callbacks.append(lambda e: order.append("normal"))

    urgent = env.event()
    urgent._ok = True
    urgent._value = None
    env.schedule(urgent, priority=URGENT, delay=1.0)
    urgent.callbacks.append(lambda e: order.append("urgent"))

    env.run()
    assert order == ["urgent", "normal"]


def test_nested_conditions_compose():
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="f")
        slow = env.timeout(10.0, value="s")
        mid = env.timeout(5.0, value="m")
        # (fast AND mid) OR slow -> fires at t=5.
        yield (fast & mid) | slow
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5.0


def test_condition_value_excludes_unfired_children():
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(10.0, value="slow")
        result = yield fast | slow
        return sorted(result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["fast"]


def test_process_waiting_on_itself_impossible_but_chain_works():
    env = Environment()

    def level3(env):
        yield env.timeout(1.0)
        return 3

    def level2(env):
        v = yield env.process(level3(env))
        return v + 2

    def level1(env):
        v = yield env.process(level2(env))
        return v + 1

    p = env.process(level1(env))
    env.run()
    assert p.value == 6


def test_environment_peek_advances_with_pops():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    assert env.peek() == 1.0
    env.step()
    assert env.peek() == 2.0
    env.step()
    assert env.peek() == float("inf")


def test_run_until_zero_elapsed():
    env = Environment()
    hits = []

    def proc(env):
        yield env.timeout(1.0)
        hits.append(env.now)

    env.process(proc(env))
    env.run(until=0.5)
    assert hits == []
    assert env.now == 0.5
    # Continue the same environment to completion.
    env.run()
    assert hits == [1.0]
