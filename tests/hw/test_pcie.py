"""Unit tests for the PCIe enumeration and topology models."""

import pytest

from repro.hw import (
    BDF,
    EnumerationError,
    PCIE_MAX_BUSES,
    PCIeDevice,
    PCIeDomain,
    PCIeSwitch,
    PCIeTopology,
    completion_timeout_margin,
)


class TestBDF:
    def test_valid(self):
        bdf = BDF(bus=3, device=1, function=0)
        assert str(bdf) == "03:01.0"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            BDF(bus=256, device=0)
        with pytest.raises(ValueError):
            BDF(bus=0, device=32)
        with pytest.raises(ValueError):
            BDF(bus=0, device=0, function=8)


class TestPCIeDomain:
    def test_enumerate_assigns_bdf(self):
        domain = PCIeDomain()
        gpu = PCIeDevice(name="gpu0")
        bdf = domain.enumerate_device(gpu)
        assert gpu.bdf is bdf
        assert len(domain.devices) == 1

    def test_switches_consume_buses(self):
        domain = PCIeDomain(reserved_buses=1)
        before = domain.buses_free
        sw = PCIeDevice(name="sw0", kind="switch", buses_consumed=4)
        domain.enumerate_device(sw)
        assert domain.buses_free == before - 4

    def test_enumeration_exhaustion(self):
        # A naive single-domain rack fabric runs out of bus numbers —
        # the scaling wall the paper attributes to rack-scale CDI.
        domain = PCIeDomain(reserved_buses=1)
        with pytest.raises(EnumerationError):
            for i in range(300):
                domain.enumerate_device(
                    PCIeDevice(name=f"sw{i}", kind="switch", buses_consumed=2)
                )

    def test_separate_domains_avoid_exhaustion(self):
        # Row-scale CDI with per-chassis domains: each domain has its
        # own 256-bus budget, so the same device population fits.
        domains = [PCIeDomain(domain_id=i) for i in range(4)]
        for d in domains:
            for i in range(100):
                d.enumerate_device(
                    PCIeDevice(name=f"d{d.domain_id}-sw{i}", kind="switch",
                               buses_consumed=2)
                )
        assert all(d.buses_free > 0 for d in domains)

    def test_can_fit(self):
        domain = PCIeDomain(reserved_buses=250)
        assert domain.can_fit(3, buses_per_gpu=2)
        assert not domain.can_fit(4, buses_per_gpu=2)


class TestPCIeTopology:
    def _build(self):
        topo = PCIeTopology()
        topo.add_switch(PCIeSwitch("sw0", downstream_ports=2))
        topo.add_switch(PCIeSwitch("sw1", downstream_ports=2), parent="sw0")
        topo.add_endpoint("gpu0", parent="sw1")
        topo.add_endpoint("gpu1", parent="root")
        return topo

    def test_hop_counting(self):
        topo = self._build()
        assert topo.hops_to("gpu0") == 2
        assert topo.hops_to("gpu1") == 0

    def test_path_latency_accumulates_hops(self):
        topo = self._build()
        direct = topo.path_latency("gpu1")
        nested = topo.path_latency("gpu0")
        assert nested > direct
        assert nested - direct == pytest.approx(2 * 0.15e-6)

    def test_port_capacity_enforced(self):
        topo = PCIeTopology()
        topo.add_switch(PCIeSwitch("sw0", downstream_ports=1))
        topo.add_endpoint("gpu0", parent="sw0")
        with pytest.raises(ValueError):
            topo.add_endpoint("gpu1", parent="sw0")

    def test_unknown_parent_rejected(self):
        topo = PCIeTopology()
        with pytest.raises(KeyError):
            topo.add_endpoint("gpu0", parent="nonexistent")

    def test_duplicate_names_rejected(self):
        topo = self._build()
        with pytest.raises(ValueError):
            topo.add_endpoint("gpu0", parent="root")
        with pytest.raises(ValueError):
            topo.add_switch(PCIeSwitch("sw0"))

    def test_unknown_endpoint_queries(self):
        topo = self._build()
        with pytest.raises(KeyError):
            topo.hops_to("nope")
        with pytest.raises(KeyError):
            topo.path_latency("nope")


class TestCompletionTimeout:
    def test_small_slack_leaves_margin(self):
        assert completion_timeout_margin(100e-6) > 0

    def test_huge_slack_exceeds_timeout(self):
        assert completion_timeout_margin(30e-3) < 0

    def test_paper_scales_all_fit(self):
        # rack (~1 us), row (~10 us), cluster (~100 us) all fit well
        # under the 50 ms default completion timeout.
        for slack in (1e-6, 10e-6, 100e-6):
            assert completion_timeout_margin(slack) > 0.049

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            completion_timeout_margin(-1e-6)
