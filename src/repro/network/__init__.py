"""Network substrate: slack models, links/NICs, CDI fabric topologies.

Slack — the CPU-to-GPU latency CDI introduces — is this package's
central object. :class:`SlackModel` supplies per-call delays for
injection; :class:`Fabric` derives those delays from physical
topology; :class:`CongestionModel` relaxes the paper's no-congestion
assumption.
"""

from .congestion import CongestionModel, utilization_for_inflation
from .fabric import Fabric, FabricSpec, PathInfo, Scale
from .link import Link, LinkSpec, NIC, NICSpec
from .slack import (
    FIBRE_REFRACTIVE_INDEX,
    MS,
    SPEED_OF_LIGHT_FIBRE_M_PER_S,
    SPEED_OF_LIGHT_VACUUM_M_PER_S,
    SlackComponents,
    SlackModel,
    US,
    fibre_distance_for_latency,
    latency_for_fibre_distance,
    slack_budget,
)

__all__ = [
    "SlackModel",
    "SlackComponents",
    "slack_budget",
    "fibre_distance_for_latency",
    "latency_for_fibre_distance",
    "SPEED_OF_LIGHT_VACUUM_M_PER_S",
    "SPEED_OF_LIGHT_FIBRE_M_PER_S",
    "FIBRE_REFRACTIVE_INDEX",
    "US",
    "MS",
    "Link",
    "LinkSpec",
    "NIC",
    "NICSpec",
    "Fabric",
    "FabricSpec",
    "PathInfo",
    "Scale",
    "CongestionModel",
    "utilization_for_inflation",
]
