"""The analytic slack-penalty model: Equations 1-3, binning, predictor.

Turns an application's traced profile plus the proxy's slack response
surface into the lower/upper penalty bounds of the paper's Table IV,
and self-validates the methodology on proxy traces (Section IV-D).
"""

from .adaptive import DEFAULT_TOL, AdaptiveSweepResult, adaptive_slack_sweep
from .surrogate import (
    BOUND_SAFETY_FACTOR,
    PCHIP_AVAILABLE,
    SURROGATE_METHODS,
    TrainingSeries,
    crossval_bounds,
    extract_training_series,
    interp_penalty,
)
from .binning import (
    BinnedDistribution,
    TABLE3_BIN_EDGES_MIB,
    bin_kernel_durations,
    bin_transfer_sizes,
    bin_values,
    matrix_bytes,
    table3_bins,
    transfer_grid_bytes,
)
from .equations import (
    equation1_remove_direct_slack,
    equation2_total_slack_penalty,
    equation3_binned_slack_penalty,
)
from .predictor import CDIProfiler, SlackPrediction
from .sensitivity import SensitivityPoint, cap_sensitivity, ramp_sensitivity
from .validation import (
    SelfValidationResult,
    validate_self_prediction,
    validation_report,
)

__all__ = [
    "DEFAULT_TOL",
    "AdaptiveSweepResult",
    "adaptive_slack_sweep",
    "TrainingSeries",
    "extract_training_series",
    "crossval_bounds",
    "interp_penalty",
    "BOUND_SAFETY_FACTOR",
    "SURROGATE_METHODS",
    "PCHIP_AVAILABLE",
    "equation1_remove_direct_slack",
    "equation2_total_slack_penalty",
    "equation3_binned_slack_penalty",
    "BinnedDistribution",
    "bin_values",
    "bin_transfer_sizes",
    "bin_kernel_durations",
    "matrix_bytes",
    "transfer_grid_bytes",
    "table3_bins",
    "TABLE3_BIN_EDGES_MIB",
    "CDIProfiler",
    "SlackPrediction",
    "SelfValidationResult",
    "validate_self_prediction",
    "validation_report",
    "SensitivityPoint",
    "ramp_sensitivity",
    "cap_sensitivity",
]
