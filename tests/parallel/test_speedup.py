"""Wall-clock speedup of the parallel sweep engine.

The acceptance bar: on a >= 4-core runner, the paper's quick grid runs
at least 2x faster with a worker pool than sequentially, while
producing exactly equal points. Single- and dual-core environments
skip the ratio assertion (the pool cannot win there) but the parity
contract is still covered by tests/parallel/test_executor.py.
"""

import os

import pytest

from repro.parallel import fork_available
from repro.proxy import (
    PAPER_MATRIX_SIZES,
    PAPER_SLACK_VALUES_S,
    PAPER_THREAD_COUNTS,
    run_slack_sweep,
)

#: The paper's quick grid (the surface ExperimentContext builds), with
#: enough iterations that compute dominates pool startup.
QUICK_PAPER_GRID = dict(
    matrix_sizes=PAPER_MATRIX_SIZES,
    slack_values_s=PAPER_SLACK_VALUES_S,
    threads=PAPER_THREAD_COUNTS,
    iterations=40,
)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4 or not fork_available(),
    reason="speedup bar needs >= 4 cores and fork",
)
def test_quick_grid_speedup_at_least_2x():
    workers = min(os.cpu_count() or 1, 8)
    sequential = run_slack_sweep(**QUICK_PAPER_GRID, workers=1)
    parallel = run_slack_sweep(**QUICK_PAPER_GRID, workers=workers)

    assert parallel.points == sequential.points
    assert parallel.skipped == sequential.skipped
    assert parallel.timing.mode == "process"

    speedup = sequential.timing.wall_s / parallel.timing.wall_s
    assert speedup >= 2.0, (
        f"parallel sweep only {speedup:.2f}x faster "
        f"({sequential.timing.wall_s:.2f}s -> {parallel.timing.wall_s:.2f}s "
        f"with {workers} workers)"
    )
