"""Steady-state cycle detection and analytic fast-forward for DES runs.

Any workload on the simulated CUDA runtime that loops over *identical*
units of work — the proxy's matmul iterations, LAMMPS timesteps,
CosmoFlow training batches — becomes strictly periodic after a short
warmup: every per-cycle quantity (the wall-time delta, the injected
slack, the starvation cost, the relative heap shape at the cycle
boundary) repeats bit for bit, guaranteed by the dyadic time grid
(:mod:`repro.des.timebase`). This module is the workload-independent
machinery that exploits it. It grew out of the proxy-only engine
(``repro.proxy.fastforward``, which now re-exports from here) and
offers two monitors:

* :class:`EpochMonitor` — the original multi-worker engine: watches
  thread-0 epoch boundaries, certifies a fixed point once
  ``CONSECUTIVE_CERTS`` consecutive cycles are bit-identical, caps
  every worker at a uniform epoch count two cycles past certification
  (so multi-thread contention plays out its natural tail *inside the
  same simulation*), and extrapolates the skipped cycles analytically.
  Used by the proxy (OpenMP threads) and LAMMPS (MPI ranks).

* :class:`SegmentedEpochMonitor` — for single-process runs composed of
  consecutive *labeled periodic segments* (CosmoFlow's per-epoch train
  and validation phases). Each segment certifies its own cycle; once a
  label has been certified, later segments with the same label verify
  against the stored certificate after a single cycle, so a run of
  ``E`` structurally identical epochs pays the warmup once, not ``E``
  times. The skipped cycles of every segment are spliced back in by a
  :class:`~repro.trace.SegmentedEpochTrace`.

Both monitors share the same snapshot machinery (additive counters
compared as per-cycle deltas; the relative simulator shape — heap
contents, engine and stream queue state, open utilization intervals —
compared for identity) and the same extrapolation arithmetic:

* absolute times shift by ``S * period`` per skipped window (exact
  dyadic arithmetic);
* additive counters and totals advance by ``S`` times their certified
  per-cycle delta;
* the trace becomes a repeated-epoch trace that expands to the full
  event list on demand;
* engine utilizations are recomputed from the extrapolated busy/idle
  sums — the same operands the full run would divide, so the quotient
  is bit-identical too.

Why capping (not replaying) is exact: the truncated run is identical
to the full run up to the certification boundary ``B_c``; the full
run's window ``[B_c, B_c + S*period)`` is ``S`` shifted copies of the
certified reference cycle; and the full run's suffix after
``B_{c+S}`` equals the truncated run's suffix after ``B_c`` shifted by
``S*period``, because at those two instants the simulation has the
same work left and the relative simulator state is bit-identical
(that is what the certificate checks). The argument applies per
segment for the segmented monitor: each segment's suffix starts from
the same certified boundary state.

Certification is deliberately conservative: any configuration whose
periodicity cannot be certified — jittered timings, active fault
plans, a run that simply never settles — completes as a full
simulation and the result records the fallback reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from .core import Environment, Process, _PRIORITY_SHIFT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpusim import CudaRuntime
    from ..network import SlackModel
    from ..trace import Trace

__all__ = [
    "FastForwardInfo",
    "EpochMonitor",
    "SegmentedEpochMonitor",
    "Extrapolated",
    "app_refusal_reason",
    "MIN_ITERATIONS",
    "CONSECUTIVE_CERTS",
    "MAX_WARMUP_EPOCHS",
]

#: Below this cycle count fast-forward cannot save anything (the
#: earliest certification caps the run at 6 epochs).
MIN_ITERATIONS = 7

#: Consecutive bit-identical cycle certificates required to certify.
CONSECUTIVE_CERTS = 3

#: Give up watching after this many warmup epochs: a run that has not
#: settled by then is not going to, and the boundary snapshots would
#: only slow the full simulation down.
MAX_WARMUP_EPOCHS = 32


@dataclass(frozen=True)
class FastForwardInfo:
    """How fast-forward engaged (or why it did not) for one run."""

    enabled: bool
    certified: bool
    reason: Optional[str] = None
    #: Cycles actually simulated (the warmup + settle tail).
    warmup_iterations: int = 0
    #: Cycles skipped analytically (summed over segments).
    skipped_iterations: int = 0
    #: DES events the skipped cycles would have scheduled.
    events_skipped: int = 0
    #: The certified steady-state cycle period (for segmented runs,
    #: the period of the segment that skipped the most cycles).
    cycle_period_s: float = 0.0


@dataclass(frozen=True)
class Extrapolated:
    """Full-run result values reconstructed from a truncated run."""

    loop_runtime_s: float
    injected_slack_s: float
    starvation_cost_s: float
    trace: "Trace"
    sim_metrics: Dict[str, float]
    info: FastForwardInfo


def app_refusal_reason(
    slack: "SlackModel",
    *,
    faults: Optional[object] = None,
    jitter: float = 0.0,
    epochs: int = 0,
) -> Optional[str]:
    """Why a monitored application run is ineligible (None = eligible).

    The shared gates of every fast-forwardable workload: an active
    fault injector makes the run time-inhomogeneous (windows open and
    close at absolute times, so no cycle certificate can extend over
    the skipped interval); jitter — whether in the slack model or the
    application's own timing model — breaks bit-identity between
    cycles; subclassed slack models may sample stochastically; and a
    run below :data:`MIN_ITERATIONS` cycles has nothing to skip.
    """
    from ..network import SlackModel

    if faults is not None:
        return "faults-active"
    if type(slack) is not SlackModel:
        return "slack-model-subclass"
    if slack.jitter_fraction > 0:
        return "slack-jitter"
    if jitter > 0:
        return "jitter"
    if epochs < MIN_ITERATIONS:
        return "too-few-iterations"
    return None


# Indices into the per-boundary counter tuple (deltas of these must be
# bit-identical across certified cycles).
_NOW = 0
_EID = 1
_CB_POOL = 2
_TRACE_LEN = 3
_CORR = 4
_API_CALLS = 5
_LAUNCHES = 6
_MEMCPYS = 7
_BYTES_H2D = 8
_BYTES_D2H = 9
_INTERCEPTED = 10
_DELAYED = 11
_INJECTED = 12
_STARVATION = 13
#: First per-engine slot; each engine contributes (ops, busy, idle).
_ENGINES_BASE = 14

_UTIL_LABELS = ("compute", "copy_h2d", "copy_d2h")


def _counters_snapshot(
    env: Environment,
    rt: "CudaRuntime",
    engines: tuple,
    tracker_state: List[List[float]],
) -> Tuple[float, ...]:
    """Cheap snapshot of every additive quantity a result depends on."""
    inj = rt.injector
    vals: List[float] = [
        env._now,
        # itertools.count exposes its next value via __reduce__
        # without consuming it (same trick as metrics_snapshot).
        env._eid.__reduce__()[1][0],
        len(env._cb_pool),
        len(rt.tracer.trace),
        rt.tracer._correlation.__reduce__()[1][0],
        rt.api_calls,
        rt.kernel_launches,
        rt.memcpy_count,
        rt.memcpy_bytes_h2d,
        rt.memcpy_bytes_d2h,
        inj.calls_intercepted,
        inj.calls_delayed,
        inj.total_injected_s,
        rt.compute.total_starvation_cost,
    ]
    for eng, state in zip(engines, tracker_state):
        # Incremental closed busy/idle sums per engine: summing the
        # whole interval list at every boundary would be O(epochs^2).
        intervals = eng.tracker.intervals
        pos, busy, idle = state
        for rec in intervals[int(pos):]:
            if rec.busy:
                busy += rec.end - rec.start
            else:
                idle += rec.end - rec.start
        state[0], state[1], state[2] = len(intervals), busy, idle
        vals.extend((eng.ops_executed, busy, idle))
    return tuple(vals)


def _shape_snapshot(
    env: Environment, rt: "CudaRuntime", engines: tuple
) -> tuple:
    """Relative (time-shifted) simulator state at a boundary."""
    now = env._now
    heap = tuple(
        sorted(
            (
                t - now,
                key >> _PRIORITY_SHIFT,
                type(ev).__name__,
                ev.name if isinstance(ev, Process) else "",
            )
            for (t, key, ev) in env._queue
        )
    )
    act = rt.activity
    activity = (
        act.busy_until - now if act.ever_busy else 0.0,
        act.ever_busy,
    )
    engine_state = tuple(
        (
            eng.tracker._busy,
            eng.tracker._started,
            now - eng.tracker._since if eng.tracker._started else 0.0,
            len(eng._unit.users),
            len(eng._unit.queue),
        )
        for eng in engines
    )
    streams = tuple(
        (
            sid,
            s.pending,
            len(s._queue.items),
            type(s._in_flight).__name__ if s._in_flight is not None else "",
            len(s._drain_waiters),
        )
        for sid, s in sorted(rt._streams.items())
    )
    return (heap, activity, engine_state, streams)


def _extrapolated_metrics(
    env: Environment,
    rt: "CudaRuntime",
    engines: tuple,
    add: Tuple[float, ...],
) -> Tuple[Dict[str, float], float, float]:
    """Full-run telemetry from a truncated run plus summed skip deltas.

    ``add`` is the elementwise sum over skipped windows of
    ``repeats * per_cycle_delta`` — for a single certified window,
    exactly the ``skipped * d[...]`` products the original proxy
    engine computed. Returns ``(sim_metrics, injected, starvation)``;
    every value is bit-identical to the full event-by-event run.
    """
    des = env.metrics_snapshot()
    eid_add = add[_EID]
    des["events_scheduled"] += eid_add
    des["events_dispatched"] += eid_add
    des["sim_time_s"] += add[_NOW]

    snap: Dict[str, float] = {f"des.{k}": v for k, v in des.items()}
    util: Dict[str, float] = {}
    for i, (eng, label) in enumerate(zip(engines, _UTIL_LABELS)):
        eng.tracker.finish()
        base = _ENGINES_BASE + 3 * i
        busy = eng.tracker.busy_time + add[base + 1]
        idle = eng.tracker.idle_time + add[base + 2]
        total = busy + idle
        util[label] = busy / total if total > 0 else 0.0
    injected = rt.injector.total_injected_s + add[_INJECTED]
    starvation = rt.total_starvation_cost() + add[_STARVATION]
    snap.update(
        {
            "gpu.kernel_launches": float(
                rt.kernel_launches + int(add[_LAUNCHES])
            ),
            "gpu.api_calls": float(rt.api_calls + int(add[_API_CALLS])),
            "gpu.memcpy_h2d_bytes": float(
                rt.memcpy_bytes_h2d + int(add[_BYTES_H2D])
            ),
            "gpu.memcpy_d2h_bytes": float(
                rt.memcpy_bytes_d2h + int(add[_BYTES_D2H])
            ),
            "gpu.memcpy_count": float(rt.memcpy_count + int(add[_MEMCPYS])),
            "gpu.stream_count": float(len(rt.streams)),
            "gpu.compute_utilization": util["compute"],
            "gpu.copy_h2d_utilization": util["copy_h2d"],
            "gpu.copy_d2h_utilization": util["copy_d2h"],
            "gpu.starvation_cost_s": starvation,
            "fabric.calls_intercepted": float(
                rt.injector.calls_intercepted + int(add[_INTERCEPTED])
            ),
            "fabric.slack_calls": float(
                rt.injector.calls_delayed + int(add[_DELAYED])
            ),
            "fabric.slack_injected_s": injected,
        }
    )
    return snap, injected, starvation


class EpochMonitor:
    """Watches epoch boundaries, certifies a fixed point, caps the run.

    Workers call :meth:`epoch_done` after each loop iteration and read
    :attr:`stop_at` as their iteration bound. At each *thread-0*
    boundary the monitor takes a cheap snapshot of every quantity the
    result depends on — additive counters (compared as per-cycle
    deltas) and the relative simulator shape (heap contents, engine
    and stream queue state, open utilization intervals, thread epoch
    offsets — compared for identity). ``CONSECUTIVE_CERTS`` identical
    certificates certify the steady state; the run is then capped two
    epochs later for every thread and the skipped cycles are
    reconstructed by :meth:`extrapolate`.
    """

    def __init__(
        self,
        env: Environment,
        rt: "CudaRuntime",
        threads: int,
        iterations: int,
    ) -> None:
        self.env = env
        self.rt = rt
        self.iterations = iterations
        #: Per-thread iteration bound; lowered once on certification.
        self.stop_at = iterations
        self.completed = [0] * threads
        self.certified_at: Optional[int] = None
        self.cycle_delta: Optional[Tuple[float, ...]] = None
        self._window: Optional[Tuple[float, float]] = None
        self._engines = (rt.compute, rt.copy_h2d, rt.copy_d2h)
        self._tracker_state = [[0, 0.0, 0.0] for _ in self._engines]
        self._prev_counters: Optional[Tuple[float, ...]] = None
        self._prev_cert: Optional[tuple] = None
        self._streak = 0
        self._dead = False

    @property
    def certified(self) -> bool:
        """Whether a steady-state fixed point was certified."""
        return self.certified_at is not None

    # -- boundary hook -----------------------------------------------------------
    def epoch_done(self, thread_id: int) -> None:
        """Called by a worker after completing one loop iteration."""
        self.completed[thread_id] += 1
        if thread_id != 0 or self._dead or self.certified_at is not None:
            return
        c = self.completed[0]
        if c > MAX_WARMUP_EPOCHS or c + 2 >= self.iterations:
            # Not going to settle (or nothing left to skip): stop
            # paying for snapshots and let the run complete naturally.
            self._dead = True
            return
        counters = self._counters()
        if self._prev_counters is not None:
            delta = tuple(
                b - a for a, b in zip(self._prev_counters, counters)
            )
            cert = (delta, self._shape(c))
            if cert == self._prev_cert:
                self._streak += 1
            else:
                self._streak = 1
                self._prev_cert = cert
            if (
                self._streak >= CONSECUTIVE_CERTS
                and delta[_CB_POOL] == 0
                and max(self.completed) <= c + 1
            ):
                # delta[_CB_POOL] == 0: a still-filling callback pool
                # would hit its cap inside the skipped cycles, breaking
                # linear extrapolation. max offset <= +1: a thread two
                # epochs ahead would already have passed the uniform
                # cap, so the truncated tail would diverge from the
                # full run's.
                self.certified_at = c
                self.stop_at = c + 2
                self.cycle_delta = delta
                self._window = (self._prev_counters[_NOW], counters[_NOW])
        self._prev_counters = counters

    # -- snapshot ----------------------------------------------------------------
    def _counters(self) -> Tuple[float, ...]:
        return _counters_snapshot(
            self.env, self.rt, self._engines, self._tracker_state
        )

    def _shape(self, c: int) -> tuple:
        offsets = tuple(n - c for n in self.completed)
        return _shape_snapshot(self.env, self.rt, self._engines) + (offsets,)

    # -- reconstruction ----------------------------------------------------------
    def extrapolate(self, loop_runtime_s: float) -> Extrapolated:
        """Reconstruct the full-run result from the truncated run.

        Call after ``env.run()`` returns on a certified run. Every
        value produced here is bit-identical to what the full
        event-by-event simulation yields (see the module docstring for
        the argument; the parity tests check it across the grid).
        """
        from ..trace import RepeatedEpochTrace

        assert self.certified_at is not None and self.cycle_delta is not None
        assert self._window is not None
        d = self.cycle_delta
        skipped = self.iterations - self.stop_at
        period = d[_NOW]
        shift = skipped * period
        add = tuple(skipped * v for v in d)

        snap, injected, starvation = _extrapolated_metrics(
            self.env, self.rt, self._engines, add
        )
        window_start, window_end = self._window
        trace = RepeatedEpochTrace(
            self.rt.tracer.trace.events_in_record_order(),
            window_start=window_start,
            window_end=window_end,
            period_s=period,
            repeats=skipped,
            correlation_stride=int(d[_CORR]),
            name=self.rt.tracer.trace.name,
        )
        info = FastForwardInfo(
            enabled=True,
            certified=True,
            reason=None,
            warmup_iterations=self.stop_at,
            skipped_iterations=skipped,
            events_skipped=skipped * int(d[_EID]),
            cycle_period_s=period,
        )
        return Extrapolated(
            loop_runtime_s=loop_runtime_s + shift,
            injected_slack_s=injected,
            starvation_cost_s=starvation,
            trace=trace,
            sim_metrics=snap,
            info=info,
        )


@dataclass(frozen=True)
class _SegmentSkip:
    """One segment's certified skip: window, repeats, per-cycle delta."""

    window_start: float
    window_end: float
    period_s: float
    repeats: int
    delta: Tuple[float, ...]


class SegmentedEpochMonitor:
    """Certify-and-skip for single-process runs of periodic segments.

    A *segment* is a block of ``cycles`` structurally identical cycles
    (CosmoFlow: the train phase of one epoch is a segment of 4-step
    cycles; the validation phase is another). The driving process
    brackets each segment with :meth:`begin_segment` and calls
    :meth:`cycle_done` after each cycle; a ``True`` return means the
    segment's remaining cycles are certified periodic and must be
    skipped (break out of the cycle loop).

    Certification within a segment works like :class:`EpochMonitor`
    (``CONSECUTIVE_CERTS`` bit-identical per-cycle deltas + relative
    shapes). Additionally, a certified (delta, shape) pair is stored
    under the segment's *label*: a later segment with the same label
    whose first cycle reproduces the stored certificate exactly skips
    after that single cycle — the warmup for a run of ``E``
    structurally identical epochs is paid once, not ``E`` times.

    After ``env.run()`` returns, :meth:`extrapolate` reconstructs the
    full-run totals (bit-identical, same argument as the module
    docstring) and a :class:`~repro.trace.SegmentedEpochTrace` that
    splices every skipped window back in on demand.
    """

    def __init__(self, env: Environment, rt: "CudaRuntime") -> None:
        self.env = env
        self.rt = rt
        self._engines = (rt.compute, rt.copy_h2d, rt.copy_d2h)
        self._tracker_state = [[0, 0.0, 0.0] for _ in self._engines]
        self._certificates: Dict[object, tuple] = {}
        self._skips: List[_SegmentSkip] = []
        #: Cycles actually simulated across all segments.
        self.cycles_simulated = 0
        # Per-segment state.
        self._label: object = None
        self._cycles = 0
        self._done = 0
        self._prev: Optional[Tuple[float, ...]] = None
        self._prev_cert: Optional[tuple] = None
        self._streak = 0
        self._dead = False

    @property
    def certified(self) -> bool:
        """Whether any segment certified (and skipped) cycles."""
        return bool(self._skips)

    @property
    def skipped_cycles(self) -> int:
        """Total cycles skipped across all segments."""
        return sum(s.repeats for s in self._skips)

    # -- segment protocol --------------------------------------------------------
    def begin_segment(self, label: object, cycles: int) -> None:
        """Start watching a segment of ``cycles`` identical cycles.

        ``label`` keys the certificate store: segments sharing a label
        must share their cycle structure (same kernels, cadences and
        starting phase) for the single-cycle verification to be sound.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._label = label
        self._cycles = cycles
        self._done = 0
        self._prev = self._counters()
        self._prev_cert = None
        self._streak = 0
        self._dead = False

    def cycle_done(self) -> bool:
        """Record one completed cycle; True = skip the segment's rest."""
        self._done += 1
        if self._dead:
            return False
        if self._done > MAX_WARMUP_EPOCHS:
            self._dead = True
            return False
        counters = self._counters()
        assert self._prev is not None
        delta = tuple(b - a for a, b in zip(self._prev, counters))
        cert = (delta, self._shape())
        self._prev = counters
        remaining = self._cycles - self._done
        stored = self._certificates.get(self._label)
        certified = False
        if stored is not None and cert == stored:
            # Single-cycle verification against the label's stored
            # certificate (from an earlier structurally identical
            # segment): an exact match means this segment has already
            # proven its periodicity.
            certified = True
        else:
            # No stored certificate (or a transient first cycle that
            # did not match it): certify the slow way, by streak.
            if cert == self._prev_cert:
                self._streak += 1
            else:
                self._streak = 1
                self._prev_cert = cert
            if self._streak >= CONSECUTIVE_CERTS and delta[_CB_POOL] == 0:
                # delta[_CB_POOL] == 0: a still-filling callback pool
                # would hit its cap inside the skipped cycles.
                self._certificates[self._label] = cert
                certified = True
        if not certified or remaining <= 0:
            return False
        self._skips.append(
            _SegmentSkip(
                window_start=counters[_NOW] - delta[_NOW],
                window_end=counters[_NOW],
                period_s=delta[_NOW],
                repeats=remaining,
                delta=delta,
            )
        )
        self.cycles_simulated += self._done
        self._done = -remaining  # end_segment() accounting marker
        self._dead = True
        return True

    def end_segment(self) -> None:
        """Close the current segment (bookkeeping only)."""
        if self._done > 0:
            self.cycles_simulated += self._done
        self._label = None
        self._cycles = self._done = 0
        self._prev = self._prev_cert = None
        self._streak = 0
        self._dead = False

    # -- snapshot ----------------------------------------------------------------
    def _counters(self) -> Tuple[float, ...]:
        return _counters_snapshot(
            self.env, self.rt, self._engines, self._tracker_state
        )

    def _shape(self) -> tuple:
        return _shape_snapshot(self.env, self.rt, self._engines)

    # -- reconstruction ----------------------------------------------------------
    def extrapolate(self, loop_runtime_s: float) -> Extrapolated:
        """Reconstruct the full-run result from the truncated run."""
        from ..trace import EpochWindow, SegmentedEpochTrace

        assert self._skips, "extrapolate() requires a certified skip"
        width = len(self._skips[0].delta)
        add_list: List[float] = [0.0] * width
        for skip in self._skips:
            for k, v in enumerate(skip.delta):
                add_list[k] += skip.repeats * v
        add = tuple(add_list)
        shift = add[_NOW]

        snap, injected, starvation = _extrapolated_metrics(
            self.env, self.rt, self._engines, add
        )
        windows = [
            EpochWindow(
                start=s.window_start,
                end=s.window_end,
                period_s=s.period_s,
                repeats=s.repeats,
                correlation_stride=int(s.delta[_CORR]),
            )
            for s in self._skips
        ]
        trace = SegmentedEpochTrace(
            self.rt.tracer.trace.events_in_record_order(),
            windows=windows,
            name=self.rt.tracer.trace.name,
        )
        dominant = max(self._skips, key=lambda s: s.repeats)
        info = FastForwardInfo(
            enabled=True,
            certified=True,
            reason=None,
            warmup_iterations=self.cycles_simulated,
            skipped_iterations=self.skipped_cycles,
            events_skipped=int(add[_EID]),
            cycle_period_s=dominant.period_s,
        )
        return Extrapolated(
            loop_runtime_s=loop_runtime_s + shift,
            injected_slack_s=injected,
            starvation_cost_s=starvation,
            trace=trace,
            sim_metrics=snap,
            info=info,
        )
