"""Benchmark: regenerate CosmoFlow's CPU-ratio study (Section IV-A)."""

import pytest

from repro.experiments import run_experiment


def test_bench_cosmoflow_cpu(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("cosmoflow_cpu", ctx), rounds=3, iterations=1
    )
    print_result(result)
    ys = result.series[0].lines["CosmoFlow"]
    assert all(y == pytest.approx(1.0) for y in ys[1:])
