"""LAMMPS strong-scaling runtime model (Table I, Figure 2, Sec IV-A).

Closed-form runtime of a GPU-package LJ run as a function of MPI
processes and OpenMP threads. The structure follows how the GPU
package actually spends time:

* a fixed setup cost (``SETUP_S``);
* CPU-side work proportional to atoms, divided over ``P x th`` cores
  with a thread-efficiency roll-off (MPI ranks scale better than OMP
  threads for LJ);
* hybrid CPU/GPU co-processed force work, accelerated by threads but
  not by extra ranks (the GPU is shared);
* communication: a per-rank latency term (halo messages, GPU-package
  packing serialization) plus a surface-scaled bandwidth term that
  saturates with rank count.

Constants were calibrated against the paper's published anchors:
Table I's five single-core runtimes (linear fit T = 3.0 s +
7.79e-5 s/atom), box 60's -17.2% at 8 ranks, box 120's -55.6% at 24
ranks with diminishing returns past 16, the -52.3% OpenMP gain at 6
threads (aggregate -76.4%), and box 20's communication-dominated
slowdown. See EXPERIMENTS.md for fit residuals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .lj import LJParams

__all__ = ["LammpsScalingModel", "SETUP_S", "PER_ATOM_RUN_S"]

#: Fixed setup cost (domain build, GPU init) per run, seconds.
SETUP_S = 3.0

#: Per-atom cost of a 5000-step single-core run (Table I linear fit).
PER_ATOM_RUN_S = 7.79e-5


@dataclass(frozen=True)
class LammpsScalingModel:
    """Analytic strong-scaling model for the LJ GPU-package benchmark.

    The default constants reproduce the paper's anchors; they are
    exposed for sensitivity studies.
    """

    setup_s: float = SETUP_S
    per_atom_s: float = PER_ATOM_RUN_S
    cpu_fraction: float = 0.7450
    thread_inefficiency: float = 0.5000
    comm_latency_per_rank_s: float = 1.0901
    comm_bandwidth_coeff: float = 0.07026
    comm_atoms_exponent: float = 0.4373
    reference_steps: int = 5000

    def __post_init__(self) -> None:
        if not 0 < self.cpu_fraction < 1:
            raise ValueError("cpu_fraction must be in (0, 1)")
        if self.thread_inefficiency < 0:
            raise ValueError("thread_inefficiency must be non-negative")

    # -- components --------------------------------------------------------------
    def thread_efficiency(self, threads: int) -> float:
        """Parallel efficiency of ``threads`` OpenMP threads (1 at th=1)."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        return 1.0 / (1.0 + self.thread_inefficiency * (threads - 1))

    def work_s(self, params: LJParams) -> float:
        """Total single-core work for the run (excludes setup/comm)."""
        scale = params.steps / self.reference_steps
        return self.per_atom_s * params.atoms * scale

    def comm_s(self, params: LJParams, processes: int) -> float:
        """Wall-clock communication/packing overhead at ``processes`` ranks."""
        if processes <= 1:
            return 0.0
        scale = params.steps / self.reference_steps
        latency = self.comm_latency_per_rank_s * (processes - 1)
        bandwidth = (
            self.comm_bandwidth_coeff
            * params.atoms**self.comm_atoms_exponent
            * (1.0 - 1.0 / processes)
        )
        return (latency + bandwidth) * scale

    # -- the model -----------------------------------------------------------------
    def runtime(
        self, params: LJParams, processes: int = 1, threads: int = 1
    ) -> float:
        """Run time of the LJ benchmark on ``processes x threads`` cores."""
        if processes <= 0 or threads <= 0:
            raise ValueError("processes and threads must be positive")
        work = self.work_s(params)
        eff = self.thread_efficiency(threads)
        cpu = self.cpu_fraction * work / (processes * threads * eff)
        # Hybrid co-processed force work benefits from threads (the
        # GPU package splits pair forces between host threads and the
        # device; the split parallelizes cleanly) but not from extra
        # ranks — the GPU is shared.
        hybrid = (1.0 - self.cpu_fraction) * work / threads
        return self.setup_s + cpu + hybrid + self.comm_s(params, processes)

    def normalized_runtime(
        self, params: LJParams, processes: int, threads: int = 1
    ) -> float:
        """Runtime over the single-process, single-thread baseline."""
        return self.runtime(params, processes, threads) / self.runtime(params, 1, 1)

    def best_process_count(
        self, params: LJParams, candidates: Sequence[int] = (1, 2, 4, 8, 12, 16, 20, 24),
        threads: int = 1,
    ) -> int:
        """The rank count minimizing runtime among ``candidates``."""
        return min(candidates, key=lambda p: self.runtime(params, p, threads))

    def gpu_fraction_estimate(self, params: LJParams) -> float:
        """Rough fraction of a single-core run spent in GPU-side work."""
        return (1.0 - self.cpu_fraction) * self.work_s(params) / self.runtime(
            params, 1, 1
        )
