"""Declarative, seeded fault plans for the simulated CDI fabric.

The paper's viability verdict assumes a *healthy* fabric: fixed
worst-case slack, congestion "a non-issue", no failures. Production
row-scale pools are not that kind: disaggregated-GPU deployments
report link flaps, lost messages and latency spikes as first-class
operational concerns, and HPC applications are differentially
sensitive to latency *variability*, not just its mean. This module is
the declarative half of the fault layer: a :class:`FaultPlan` is an
immutable, picklable, JSON-serializable composition of
:data:`FaultEvent` s that any simulation entry point
(:func:`repro.proxy.run_proxy`, :func:`repro.proxy.run_slack_sweep`,
:func:`repro.gpusim.make_remoting_runtime`, :class:`repro.network.Link`)
accepts and compiles into a runtime injector
(:class:`repro.faults.FaultInjector`).

Determinism contract
--------------------
A plan is *fully deterministic*: two runs of the same (config, slack,
plan) triple are bit-identical, across repeated invocations, inline
vs. process-pool sweep workers, and OS platforms. Three mechanisms
deliver that:

* every window boundary and every delay a plan injects is snapped to
  the dyadic tick grid (:mod:`repro.des.timebase`), so fault delays
  accumulate exactly like every other simulated delay;
* stochastic decisions (message loss) are drawn from a counted
  ``blake2b(seed, counter)`` stream — no global RNG, no process state,
  no float platform dependence;
* plans are *values*: frozen dataclasses with a stable canonical JSON
  form (:meth:`FaultPlan.to_doc`), which is also what the per-point
  sweep cache keys on.

Fault taxonomy
--------------
==================  ====================================================
:class:`LatencySpike`      extra per-call fabric delay inside a window
:class:`CongestionEpisode` per-call delay from the M/M/1
                           :class:`~repro.network.CongestionModel` at a
                           given background utilization
:class:`LinkFlap`          the fabric is *down* for a window; calls and
                           messages wait it out (downtime accounting)
:class:`MessageLoss`       each message/call is lost with probability
                           ``rate``; retried with exponential backoff,
                           raising :class:`~repro.faults.FabricTimeoutError`
                           once ``max_retries`` resends are exhausted
:class:`GpuStall`          transient device-side stall: compute-engine
                           operations inside the window pay ``extra_s``
==================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple, Type, Union

__all__ = [
    "FaultEvent",
    "LatencySpike",
    "CongestionEpisode",
    "LinkFlap",
    "MessageLoss",
    "GpuStall",
    "FaultPlan",
    "parse_seconds",
]

#: Default exponential-backoff base for message-loss retries.
DEFAULT_BACKOFF_S = 100e-6

#: Default resend budget before a lost message times out.
DEFAULT_MAX_RETRIES = 8


def parse_seconds(text: Union[str, float, int]) -> float:
    """Parse a duration that may carry a ``us``/``ms``/``s`` suffix.

    >>> parse_seconds("100us")
    0.0001
    >>> parse_seconds("1.5ms")
    0.0015
    >>> parse_seconds(2e-3)
    0.002
    """
    if isinstance(text, (int, float)):
        return float(text)
    s = text.strip().lower()
    for suffix, scale in (("us", 1e-6), ("ms", 1e-3), ("s", 1.0)):
        if s.endswith(suffix):
            return float(s[: -len(suffix)]) * scale
    return float(s)


def _parse_rate(text: Union[str, float, int]) -> float:
    """Parse a probability that may be spelled as a percentage."""
    if isinstance(text, (int, float)):
        return float(text)
    s = text.strip()
    if s.endswith("%"):
        return float(s[:-1]) / 100.0
    return float(s)


@dataclass(frozen=True)
class LatencySpike:
    """Extra per-call fabric latency inside ``[start_s, start_s+duration_s)``."""

    start_s: float
    duration_s: float
    extra_s: float

    kind = "spike"

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.extra_s <= 0:
            raise ValueError("extra_s must be positive")

    def scaled(self, factor: float) -> "LatencySpike":
        """The same spike at ``factor`` times the intensity."""
        return LatencySpike(self.start_s, self.duration_s, self.extra_s * factor)


@dataclass(frozen=True)
class CongestionEpisode:
    """A background-load episode driving the M/M/1 congestion model.

    During ``[start_s, start_s+duration_s)`` every fabric call pays the
    *extra* sojourn latency :meth:`repro.network.CongestionModel
    .extra_slack_at` predicts at ``utilization`` (deterministic — the
    episode injects the expected congestion delay, not samples of it;
    use :class:`MessageLoss`/:class:`LatencySpike` for variability).
    """

    start_s: float
    duration_s: float
    utilization: float
    service_time_s: float = 1.0e-6

    kind = "congestion"

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0 < self.utilization < 1:
            raise ValueError("utilization must be in (0, 1)")
        if self.service_time_s <= 0:
            raise ValueError("service_time_s must be positive")

    @property
    def extra_s(self) -> float:
        """The per-call congestion delay this episode injects."""
        from ..network.congestion import CongestionModel

        model = CongestionModel(
            service_time_s=self.service_time_s,
            max_utilization=max(0.99, min(0.999, (1 + self.utilization) / 2)),
        )
        return model.extra_slack_at(self.utilization)

    def scaled(self, factor: float) -> "CongestionEpisode":
        """The same episode at ``factor`` times the utilization."""
        return CongestionEpisode(
            self.start_s,
            self.duration_s,
            min(0.99, self.utilization * factor),
            self.service_time_s,
        )


@dataclass(frozen=True)
class LinkFlap:
    """The fabric link is down for ``[start_s, start_s+down_s)``.

    Calls and messages that would use the fabric during the window
    wait until it comes back up; the waiting time is accounted as
    ``faults.downtime_s``.
    """

    start_s: float
    down_s: float

    kind = "flap"

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.down_s <= 0:
            raise ValueError("down_s must be positive")

    def scaled(self, factor: float) -> "LinkFlap":
        """The same flap with ``factor`` times the down-window."""
        return LinkFlap(self.start_s, self.down_s * factor)


@dataclass(frozen=True)
class MessageLoss:
    """Messages are lost with probability ``rate`` inside the window.

    ``duration_s=None`` means the loss regime covers the whole run.
    A lost message is retried after an exponential backoff
    (``backoff_base_s * 2**k`` for the ``k``-th resend, tick-
    quantized); once ``max_retries`` resends have all been lost, a
    :class:`~repro.faults.FabricTimeoutError` is raised to the process
    waiting on the call — the simulated analogue of an RPC deadline.
    """

    rate: float
    start_s: float = 0.0
    duration_s: Optional[float] = None
    backoff_base_s: float = DEFAULT_BACKOFF_S
    max_retries: int = DEFAULT_MAX_RETRIES

    kind = "loss"

    def __post_init__(self) -> None:
        if not 0 < self.rate <= 1:
            raise ValueError("rate must be in (0, 1]")
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive (or None)")
        if self.backoff_base_s <= 0:
            raise ValueError("backoff_base_s must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")

    def scaled(self, factor: float) -> "MessageLoss":
        """The same loss regime at ``factor`` times the rate (capped at 1)."""
        return MessageLoss(
            min(1.0, self.rate * factor),
            self.start_s,
            self.duration_s,
            self.backoff_base_s,
            self.max_retries,
        )


@dataclass(frozen=True)
class GpuStall:
    """Transient device stall: compute ops in the window pay ``extra_s``.

    Models clock throttling / ECC scrubbing / preemption pauses — the
    device-side counterpart of the fabric faults above.
    """

    start_s: float
    duration_s: float
    extra_s: float

    kind = "stall"

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.extra_s <= 0:
            raise ValueError("extra_s must be positive")

    def scaled(self, factor: float) -> "GpuStall":
        """The same stall at ``factor`` times the per-op cost."""
        return GpuStall(self.start_s, self.duration_s, self.extra_s * factor)


#: The union of composable fault event types.
FaultEvent = Union[LatencySpike, CongestionEpisode, LinkFlap, MessageLoss, GpuStall]

_EVENT_TYPES: Dict[str, Type[Any]] = {
    cls.kind: cls
    for cls in (LatencySpike, CongestionEpisode, LinkFlap, MessageLoss, GpuStall)
}

#: Spec-clause key aliases accepted by :meth:`FaultPlan.from_spec`.
_SPEC_KEYS: Dict[str, Dict[str, str]] = {
    "spike": {"start": "start_s", "duration": "duration_s", "extra": "extra_s"},
    "congestion": {
        "start": "start_s",
        "duration": "duration_s",
        "utilization": "utilization",
        "service": "service_time_s",
    },
    "flap": {"start": "start_s", "down": "down_s"},
    "loss": {
        "rate": "rate",
        "start": "start_s",
        "duration": "duration_s",
        "backoff": "backoff_base_s",
        "retries": "max_retries",
    },
    "stall": {"start": "start_s", "duration": "duration_s", "extra": "extra_s"},
}

_RATE_FIELDS = {"rate", "utilization"}
_INT_FIELDS = {"max_retries"}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable composition of fault events.

    ``seed`` drives every stochastic decision the plan makes (message
    loss); two runs with the same plan are bit-identical. An empty
    plan (``FaultPlan()``) is the healthy fabric and compiles to
    ``None`` — every integration point treats it exactly like "no
    faults", so ``FaultPlan()`` and ``faults=None`` produce the same
    bits and the same cache keys.
    """

    seed: int = 0
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise ValueError("seed must be an integer")
        object.__setattr__(self, "events", tuple(self.events))

    # -- composition -------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether this plan injects nothing (the healthy fabric)."""
        return not self.events

    def with_event(self, event: FaultEvent) -> "FaultPlan":
        """A new plan with one more event appended."""
        return FaultPlan(self.seed, self.events + (event,))

    def scaled(self, intensity: float) -> "FaultPlan":
        """The same plan at a different fault intensity.

        ``intensity`` multiplies every event's magnitude — spike/stall
        extra delay, loss rate (capped at 1), congestion utilization,
        flap down-window. ``intensity=0`` is the healthy fabric (an
        empty plan); ``intensity=1`` returns an equal plan. The seed is
        unchanged, so loss *decisions* stay aligned across intensities
        of one plan.
        """
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        if intensity == 0:
            return FaultPlan(self.seed)
        return FaultPlan(
            self.seed, tuple(e.scaled(intensity) for e in self.events)
        )

    def validate(self) -> "FaultPlan":
        """Check cross-event consistency; returns self when valid.

        Field-level validation already ran in each event's
        ``__post_init__``; this adds the plan-level rules (flap windows
        must not overlap — a fabric cannot be doubly down).
        """
        flaps = sorted(
            (e.start_s, e.start_s + e.down_s)
            for e in self.events
            if isinstance(e, LinkFlap)
        )
        for (s0, e0), (s1, _) in zip(flaps, flaps[1:]):
            if s1 < e0:
                raise ValueError(
                    f"overlapping link flaps: one ends at {e0:g}s, "
                    f"the next starts at {s1:g}s"
                )
        return self

    # -- runtime -----------------------------------------------------------
    def compile(self, env: Any) -> Optional[Any]:
        """Compile into a runtime :class:`~repro.faults.FaultInjector`.

        Returns ``None`` for an empty plan — integration points keep
        their no-fault fast path (a single ``is None`` check) and the
        healthy run stays bit-identical.
        """
        if self.is_empty:
            return None
        from .runtime import FaultInjector

        return FaultInjector(env, self.validate())

    # -- serialization -----------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        """Canonical JSON-able form (also the cache-key payload)."""
        events: List[Dict[str, Any]] = []
        for event in self.events:
            doc: Dict[str, Any] = {"kind": event.kind}
            for f in fields(event):
                doc[f.name] = getattr(event, f.name)
            events.append(doc)
        return {"seed": self.seed, "events": events}

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from its document form."""
        events: List[FaultEvent] = []
        for edoc in doc.get("events", ()):
            edoc = dict(edoc)
            kind = edoc.pop("kind", None)
            etype = _EVENT_TYPES.get(kind)
            if etype is None:
                raise ValueError(f"unknown fault event kind {kind!r}")
            try:
                events.append(etype(**edoc))
            except TypeError as exc:
                raise ValueError(f"bad {kind} event fields: {exc}") from exc
        return cls(seed=int(doc.get("seed", 0)), events=tuple(events))

    def cache_token(self) -> str:
        """Stable string identifying this plan for cache keying."""
        return json.dumps(self.to_doc(), sort_keys=True)

    # -- spec DSL ----------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the compact CLI spec format.

        Semicolon-separated clauses; ``seed=<int>`` plus one clause per
        event: ``<kind>:key=value,key=value``. Durations accept
        ``us``/``ms``/``s`` suffixes, rates accept ``%``::

            seed=42;loss:rate=1%;flap:start=5ms,down=2ms;spike:start=0,duration=10ms,extra=100us

        A spec that is a JSON object (starts with ``{``) is parsed via
        :meth:`from_doc` instead, so ``--faults`` takes either form.
        """
        text = spec.strip()
        if not text:
            return cls()
        if text.startswith("{"):
            try:
                return cls.from_doc(json.loads(text))
            except json.JSONDecodeError as exc:
                raise ValueError(f"bad fault-plan JSON: {exc}") from exc
        seed = 0
        events: List[FaultEvent] = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError as exc:
                    raise ValueError(f"bad seed clause {clause!r}") from exc
                continue
            kind, sep, body = clause.partition(":")
            kind = kind.strip()
            keymap = _SPEC_KEYS.get(kind)
            if not sep or keymap is None:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise ValueError(
                    f"unknown fault clause {clause!r} "
                    f"(expected seed=N or one of: {known})"
                )
            kwargs: Dict[str, Any] = {}
            for pair in body.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, eq, value = pair.partition("=")
                key = key.strip()
                field_name = keymap.get(key)
                if not eq or field_name is None:
                    raise ValueError(
                        f"unknown key {key!r} in {kind!r} clause "
                        f"(expected one of: {', '.join(sorted(keymap))})"
                    )
                if field_name in _INT_FIELDS:
                    kwargs[field_name] = int(value)
                elif field_name in _RATE_FIELDS:
                    kwargs[field_name] = _parse_rate(value)
                else:
                    kwargs[field_name] = parse_seconds(value)
            try:
                events.append(_EVENT_TYPES[kind](**kwargs))
            except TypeError as exc:
                raise ValueError(f"incomplete {kind!r} clause: {exc}") from exc
        return cls(seed=seed, events=tuple(events))

    def describe(self) -> str:
        """Human-readable multi-line summary of the plan.

        Each event line is followed by its *grid window*: the exact
        dyadic-tick bounds the compiled :class:`FaultInjector` uses at
        runtime (``start``/``duration`` snapped to the 2^-40 s grid
        independently, end = start + duration — the same arithmetic as
        :mod:`repro.faults.runtime`, so what is printed is bit-for-bit
        what the simulator compares timestamps against).
        """
        from ..des import TICK_S, quantize

        def grid(start_s: float, length_s: Optional[float]) -> str:
            start = quantize(start_s)
            if length_s is None:
                return (
                    f"             grid window: "
                    f"[{int(round(start / TICK_S))}, inf) ticks "
                    f"= [{start!r}s, inf)"
                )
            end = start + quantize(length_s)
            return (
                f"             grid window: "
                f"[{int(round(start / TICK_S))}, "
                f"{int(round(end / TICK_S))}) ticks "
                f"= [{start!r}s, {end!r}s)"
            )

        lines = [
            f"FaultPlan(seed={self.seed}): "
            f"{len(self.events)} event(s)"
            + (" — healthy fabric (no faults)" if self.is_empty else "")
        ]
        for event in self.events:
            if isinstance(event, LatencySpike):
                lines.append(
                    f"  spike      [{event.start_s:g}s, "
                    f"{event.start_s + event.duration_s:g}s): "
                    f"+{event.extra_s * 1e6:g} us per call"
                )
                lines.append(grid(event.start_s, event.duration_s))
            elif isinstance(event, CongestionEpisode):
                lines.append(
                    f"  congestion [{event.start_s:g}s, "
                    f"{event.start_s + event.duration_s:g}s): "
                    f"rho={event.utilization:g} "
                    f"(+{event.extra_s * 1e6:g} us per call)"
                )
                lines.append(grid(event.start_s, event.duration_s))
            elif isinstance(event, LinkFlap):
                lines.append(
                    f"  flap       [{event.start_s:g}s, "
                    f"{event.start_s + event.down_s:g}s): link down "
                    f"{event.down_s * 1e3:g} ms"
                )
                lines.append(grid(event.start_s, event.down_s))
            elif isinstance(event, MessageLoss):
                window = (
                    "whole run"
                    if event.duration_s is None
                    else f"[{event.start_s:g}s, "
                    f"{event.start_s + event.duration_s:g}s)"
                )
                lines.append(
                    f"  loss       {window}: rate {event.rate * 100:g}%, "
                    f"backoff {event.backoff_base_s * 1e6:g} us x2^k, "
                    f"{event.max_retries} retries then timeout"
                )
                lines.append(grid(event.start_s, event.duration_s))
            elif isinstance(event, GpuStall):
                lines.append(
                    f"  stall      [{event.start_s:g}s, "
                    f"{event.start_s + event.duration_s:g}s): "
                    f"+{event.extra_s * 1e6:g} us per compute op"
                )
                lines.append(grid(event.start_s, event.duration_s))
        lines.append(
            "  determinism: all delays tick-quantized "
            "(repro.des.timebase), loss decisions drawn from "
            f"blake2b(seed={self.seed}, counter)"
        )
        return "\n".join(lines)
