"""Production application models: LAMMPS (CPU-heavy) and CosmoFlow
(GPU-dominant), the two workload archetypes the paper profiles."""

from .base import AppProfile, ApplicationModel
from .cpuonly import CpuOnlyApp, trapped_gpu_analysis
from .profilecache import PROFILE_CACHE_VERSION, AppProfileCache, profile_key
from .cosmoflow import (
    COSMOFLOW_REQUIRED_CORES,
    CosmoFlowNet,
    CosmoFlowProfileConfig,
    cosmoflow_cpu_runtime,
    profile_cosmoflow,
)
from .lammps import (
    LJParams,
    LammpsProfileConfig,
    LammpsScalingModel,
    PAPER_BOX_SIZES,
    profile_lammps,
)

__all__ = [
    "AppProfile",
    "ApplicationModel",
    "AppProfileCache",
    "PROFILE_CACHE_VERSION",
    "profile_key",
    "LJParams",
    "LammpsScalingModel",
    "LammpsProfileConfig",
    "profile_lammps",
    "PAPER_BOX_SIZES",
    "CosmoFlowNet",
    "CosmoFlowProfileConfig",
    "profile_cosmoflow",
    "cosmoflow_cpu_runtime",
    "COSMOFLOW_REQUIRED_CORES",
    "CpuOnlyApp",
    "trapped_gpu_analysis",
]
