"""Common interface for production-application models.

An application model can do two things:

* **answer analytically** — closed-form runtime as a function of the
  resource allocation (MPI processes, OpenMP threads), reproducing the
  CPU-to-GPU-ratio experiments of Section IV-A;
* **run on the simulator** — emit its kernel and memcpy stream through
  the simulated CUDA runtime, producing the NSys-like traces that
  Figures 4-5, Table III and the prediction model consume.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from ..des.fastforward import FastForwardInfo
from ..obs import get_registry
from ..trace import Trace

__all__ = ["AppProfile", "ApplicationModel", "publish_fastforward"]


def publish_fastforward(info: FastForwardInfo) -> None:
    """Publish one profiling run's fast-forward outcome (``appff.*``).

    Counters: ``appff.hits`` / ``appff.fallbacks`` for certified vs
    full runs, plus ``appff.cycles_skipped`` and
    ``appff.events_skipped`` for how much simulation the certified
    runs avoided.
    """
    reg = get_registry()
    if info.certified:
        reg.counter("appff.hits").inc()
        reg.counter("appff.cycles_skipped").inc(info.skipped_iterations)
        reg.counter("appff.events_skipped").inc(info.events_skipped)
    else:
        reg.counter("appff.fallbacks").inc()


@dataclass(frozen=True)
class AppProfile:
    """The result of profiling one application run.

    Attributes
    ----------
    name:
        Application name ("lammps", "cosmoflow").
    trace:
        Kernel/memcpy/API events recorded during the run.
    runtime_s:
        Wall-clock (simulated) runtime of the profiled region.
    queue_parallelism:
        Effective number of kernels concurrently queued at the GPU —
        the paper reads 8 for LAMMPS (one launcher per MPI process)
        and adopts a pessimistic 4 for CosmoFlow (whose kernel
        sequences are launched in ~1/7th of their execution time).
    cuda_calls_per_second:
        Rate of host-visible CUDA API calls, which multiplied by the
        per-call slack gives the *direct* (admissible) delay.
    """

    name: str
    trace: Trace
    runtime_s: float
    queue_parallelism: int
    cuda_calls_per_second: float
    #: How steady-state fast-forward engaged for this profiling run
    #: (None for profiles built before the knob existed, e.g. cache
    #: entries). Excluded from comparison: a fast-forwarded profile is
    #: the same profile, reached cheaper.
    fastforward: Optional[FastForwardInfo] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.runtime_s <= 0:
            raise ValueError("runtime_s must be positive")
        if self.queue_parallelism < 1:
            raise ValueError("queue_parallelism must be >= 1")


class ApplicationModel(abc.ABC):
    """Base class for the production-application workload models."""

    #: Human-readable application name.
    name: str = "app"

    @abc.abstractmethod
    def runtime(self, processes: int = 1, threads: int = 1) -> float:
        """Analytic runtime for a CPU allocation (strong scaling)."""

    @abc.abstractmethod
    def profile(self, **kwargs) -> AppProfile:
        """Run on the simulated GPU and return the traced profile."""
