#!/usr/bin/env python
"""Fleet-level throughput study: does CDI actually move the needle?

Simulates a week-scale stream of mixed jobs (CPU-heavy, GPU-heavy,
CPU-only — the paper's three archetypes) on the same physical
inventory scheduled two ways, and sweeps the GPU-job share to find
where composability pays the most.

Run:  python examples/fleet_throughput.py
"""

import numpy as np

from repro.cdi import (
    ClusterSpec,
    SimJob,
    compare_throughput,
    synthetic_job_mix,
)

CLUSTER = ClusterSpec(nodes=16, cores_per_node=48, gpus_per_node=4)


def show(label: str, metrics) -> None:
    print(f"  {label:12s} makespan {metrics.makespan_s / 3600:6.1f} h | "
          f"mean wait {metrics.mean_wait_s / 60:7.1f} min | "
          f"GPU util {metrics.gpu_utilization:5.1%} | "
          f"trapped {metrics.trapped_gpu_hours:6.1f} GPU-h")


def main() -> None:
    rng = np.random.default_rng(7)
    jobs = synthetic_job_mix(120, rng, cluster=CLUSTER)
    print(f"=== 120 mixed jobs on {CLUSTER.nodes} nodes "
          f"({CLUSTER.total_cores} cores, {CLUSTER.total_gpus} GPUs) ===")
    trad, cdi = compare_throughput(jobs, CLUSTER)
    show("traditional", trad)
    show("CDI", cdi)
    print(f"  -> CDI: {trad.makespan_s / cdi.makespan_s:.2f}x faster "
          f"time-to-solution, {trad.mean_wait_s / cdi.mean_wait_s:.1f}x "
          f"shorter queues\n")

    print("=== where does composability pay most? "
          "(CPU-only share of the stream) ===")
    for cpu_share in (0.0, 0.25, 0.5, 0.75):
        rng = np.random.default_rng(11)
        jobs = []
        t = 0.0
        for i in range(100):
            t += float(rng.exponential(600.0))
            if rng.random() < cpu_share:
                jobs.append(SimJob(f"cpu-{i}", t, 3600.0, cores=48, gpus=0))
            else:
                jobs.append(SimJob(f"gpu-{i}", t, 7200.0, cores=8, gpus=8))
        trad, cdi = compare_throughput(jobs, CLUSTER)
        print(f"  {cpu_share:4.0%} CPU-only: traditional traps "
              f"{trad.trapped_gpu_hours:7.1f} GPU-h, CDI speedup "
              f"{trad.makespan_s / cdi.makespan_s:.2f}x")

    print("\nthe more heterogeneous the mix, the more a fixed node shape "
          "strands — exactly the utilization argument that motivates "
          "row-scale CDI once slack is shown to be harmless.")


if __name__ == "__main__":
    main()
