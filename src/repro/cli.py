"""Command-line interface: ``rowscale-cdi`` / ``python -m repro``.

Subcommands:

* ``list`` — show the available experiments (one per paper artifact
  plus the ``ext_*`` prose-claim extensions);
* ``run <id> [...]`` — regenerate one or more tables/figures
  (``--chart`` adds ASCII line charts, ``--output`` writes Markdown);
* ``all`` — regenerate everything;
* ``slack <seconds>`` — quick slack-to-distance conversion;
* ``profile <app>`` — trace any registered application model (see
  :mod:`repro.apps.registry`: lammps, cosmoflow, cpuonly, inference)
  and predict its slack penalty — normalized runtime for the batch
  apps, measured + predicted TTFT/TPOT inflation for the
  latency-SLO inference workload (optionally exporting the trace);
* ``sweep`` — measure a slack response surface on a custom grid
  (``--faults SPEC`` degrades the fabric, see docs/faults.md;
  ``--adaptive [--tol PEN]`` measures a seed and refines only where
  log-linear interpolation exceeds the tolerance; ``--shard I/N
  --shard-out PATH`` runs one shard of the grid's deterministic
  partition as a scale-out worker, ``--merge-shards PATH...``
  reassembles worker artifacts into the full surface, and
  ``--shard-workers N`` does both locally over N subprocesses — see
  docs/performance.md);
* ``fleet`` — fleet-scale CDI simulation: generate a seeded
  multi-tenant job stream and run it through the vectorized fleet
  engine (``--mode both`` compares traditional vs CDI; ``--parity``
  first proves per-job bit-parity against the scalar reference DES;
  ``--racks`` adds rack placement and, with ``--penalties``, a
  per-tenant slack-penalty distribution — see docs/performance.md);
* ``faults`` — describe/validate a fault-plan spec without running;
* ``metrics`` — render a RunReport JSON (see docs/observability.md)
  as a human-readable table;
* ``predict <size> <slack>`` — one-shot penalty prediction from the
  serving surrogate (``--cold`` measures refused queries for real);
* ``serve`` — interactive serving loop: read ``SIZE SLACK [THREADS]``
  queries from stdin, answer each from the micro-batching
  :class:`~repro.serve.PenaltyService` (see docs/serving.md).

``--full`` switches from the quick configuration (short runs, fixed
proxy iterations) to the paper's full run lengths. ``--metrics-out
PATH`` (on ``run``/``all``/``sweep``) enables the :mod:`repro.obs`
metrics registry for the invocation and writes the resulting
:class:`~repro.obs.RunReport` as JSON.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import (
    ExperimentContext,
    experiment_ids,
    run_experiment,
)
from .network import fibre_distance_for_latency

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="rowscale-cdi",
        description=(
            "Reproduction of 'Examining the Viability of Row-Scale "
            "Disaggregation for Production Applications' (SC 2024)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one or more experiments")
    run_p.add_argument("experiments", nargs="+", metavar="ID",
                       help="experiment ids (see 'list')")
    run_p.add_argument("--full", action="store_true",
                       help="use the paper's full run lengths")
    run_p.add_argument("--output", metavar="PATH",
                       help="also write results as a Markdown report")
    run_p.add_argument("--chart", action="store_true",
                       help="render figure series as ASCII charts")
    _add_parallel_flags(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--full", action="store_true",
                       help="use the paper's full run lengths")
    all_p.add_argument("--output", metavar="PATH",
                       help="also write results as a Markdown report")
    _add_parallel_flags(all_p)

    slack_p = sub.add_parser("slack", help="slack <-> fibre distance")
    slack_p.add_argument("seconds", type=float, help="one-way slack in seconds")

    from .apps.registry import app_names

    prof_p = sub.add_parser(
        "profile", help="trace an application and predict its slack penalty"
    )
    prof_p.add_argument("app", choices=list(app_names()),
                        help="application model to profile (from the "
                             "app registry)")
    prof_p.add_argument("--slack", type=float, action="append",
                        metavar="SECONDS", dest="slacks",
                        help="slack value(s) to predict at "
                             "(default: the paper's grid)")
    prof_p.add_argument("--trace-out", metavar="PATH",
                        help="export the trace as JSON to PATH")
    prof_p.add_argument("--full", action="store_true",
                        help="use the paper's full run lengths")

    sweep_p = sub.add_parser(
        "sweep", help="measure a slack response surface on a custom grid"
    )
    sweep_p.add_argument("--matrix", type=int, action="append",
                         dest="matrix_sizes", metavar="N",
                         help="matrix size(s) (default: the paper's grid)")
    sweep_p.add_argument("--slack", type=float, action="append",
                         dest="slacks", metavar="SECONDS",
                         help="slack value(s) (default: the paper's grid)")
    sweep_p.add_argument("--threads", type=int, action="append",
                         dest="threads", metavar="T",
                         help="thread count(s) (default: 1)")
    sweep_p.add_argument("--iterations", type=int, default=25,
                         help="loop iterations per point (default 25; "
                              "0 = auto-calibrate like the paper)")
    sweep_p.add_argument("--target-compute", type=float, default=30.0,
                         dest="target_compute", metavar="SECONDS",
                         help="auto-calibration compute budget per point "
                              "(default 30.0; only with --iterations 0)")
    sweep_p.add_argument("--shard", metavar="I/N", dest="shard",
                         help="run only shard I of the grid's "
                              "deterministic N-way partition and write "
                              "its artifact to --shard-out (scale-out "
                              "worker mode; see docs/performance.md)")
    sweep_p.add_argument("--shard-out", metavar="PATH", dest="shard_out",
                         help="shard artifact output path (required "
                              "with --shard)")
    sweep_p.add_argument("--merge-shards", nargs="+", metavar="PATH",
                         dest="merge_shards",
                         help="merge shard artifacts into the full "
                              "surface instead of running a sweep")
    sweep_p.add_argument("--shard-workers", type=int, default=0,
                         dest="shard_workers", metavar="N",
                         help="execute the grid as N local shard "
                              "subprocesses and merge (0 = off)")
    sweep_p.add_argument("--faults", metavar="SPEC", dest="faults",
                         help="degrade the fabric with a fault plan "
                              "(spec DSL or JSON; see 'faults' "
                              "subcommand and docs/faults.md), e.g. "
                              "'seed=42;loss:rate=1%%;"
                              "flap:start=5ms,down=2ms'")
    sweep_p.add_argument("--adaptive", action="store_true",
                         help="adaptive refinement: measure a seed of "
                              "each series and predict the rest by "
                              "log-linear interpolation, refining only "
                              "where the interpolation error exceeds "
                              "--tol")
    sweep_p.add_argument("--tol", type=float, default=None, metavar="PEN",
                         help="certification tolerance for --adaptive, "
                              "in penalty units (default 1e-3 = 0.1 "
                              "percentage points)")
    _add_parallel_flags(sweep_p)

    fleet_p = sub.add_parser(
        "fleet",
        help="fleet-scale CDI simulation on the vectorized engine",
    )
    fleet_p.add_argument("--tenant", action="append", dest="tenants",
                         metavar="NAME:PER_HOUR[:CPU%%:GPU%%]",
                         help="add a tenant: arrival rate in jobs/hour "
                              "plus optional CPU-heavy / GPU-heavy "
                              "archetype shares in percent (default "
                              "tenants: batch 4/h, interactive 2/h)")
    fleet_p.add_argument("--horizon", type=float, default=7 * 24 * 3600.0,
                         metavar="SECONDS",
                         help="arrival horizon in seconds "
                              "(default: one week)")
    fleet_p.add_argument("--max-jobs", type=int, default=None,
                         dest="max_jobs", metavar="N",
                         help="truncate the generated stream to N jobs")
    fleet_p.add_argument("--seed", type=int, default=2024,
                         help="generation seed (default 2024)")
    fleet_p.add_argument("--nodes", type=int, default=16,
                         help="cluster nodes (default 16)")
    fleet_p.add_argument("--cores-per-node", type=int, default=48,
                         dest="cores_per_node", metavar="C",
                         help="cores per node (default 48)")
    fleet_p.add_argument("--gpus-per-node", type=int, default=4,
                         dest="gpus_per_node", metavar="G",
                         help="GPUs per node (default 4)")
    fleet_p.add_argument("--mode", choices=["cdi", "traditional", "both"],
                         default="both",
                         help="scheduling discipline to simulate "
                              "(default: both, as a comparison)")
    fleet_p.add_argument("--placement",
                         choices=["pack", "spread", "locality"],
                         default="pack",
                         help="rack placement policy (with --racks)")
    fleet_p.add_argument("--racks", type=int, default=0,
                         help="replay GPU grants onto N racks of a "
                              "uniform topology (0 = no placement)")
    fleet_p.add_argument("--penalties", action="store_true",
                         help="evaluate per-job slack penalties through "
                              "the serving surrogate (requires --racks; "
                              "CDI mode only)")
    fleet_p.add_argument("--penalty-matrix", type=int, default=2048,
                         dest="penalty_matrix", metavar="N",
                         help="proxy matrix size for --penalties "
                              "(default 2048; must be on the measured "
                              "grid)")
    fleet_p.add_argument("--full", action="store_true",
                         help="fit the --penalties surrogate over the "
                              "paper's full sweep")
    fleet_p.add_argument("--faults", metavar="SPEC", dest="faults",
                         help="fault plan whose link-flap windows freeze "
                              "GPU admission fleet-wide (CDI mode; see "
                              "docs/faults.md)")
    fleet_p.add_argument("--parity", action="store_true",
                         help="first prove per-job bit-parity against "
                              "the scalar reference DES (slow: runs the "
                              "generator simulation too)")
    fleet_p.add_argument("--metrics-out", metavar="PATH",
                         dest="metrics_out",
                         help="enable the metrics registry and write a "
                              "kind=fleet RunReport JSON to PATH")

    faults_p = sub.add_parser(
        "faults", help="describe or validate a fault-plan spec"
    )
    faults_p.add_argument("action", choices=["describe", "validate"],
                          help="describe: print the plan's events and "
                               "determinism contract; validate: parse "
                               "and cross-check only")
    faults_p.add_argument("spec", metavar="SPEC",
                          help="fault-plan spec (DSL clauses or a JSON "
                               "document; see docs/faults.md)")

    metrics_p = sub.add_parser(
        "metrics", help="render a RunReport JSON as a human-readable table"
    )
    metrics_p.add_argument(
        "report", nargs="?", metavar="PATH",
        help="RunReport JSON to render (omit to run a small demo sweep "
             "with metrics enabled and render its report)",
    )

    predict_p = sub.add_parser(
        "predict",
        help="one-shot penalty prediction from the serving surrogate",
    )
    predict_p.add_argument("matrix_size", type=int,
                           help="proxy matrix size (on the measured grid)")
    predict_p.add_argument("slack", type=float,
                           help="one-way slack in seconds")
    _add_serve_flags(predict_p)

    serve_p = sub.add_parser(
        "serve",
        help="serve penalty predictions: read 'SIZE SLACK [THREADS]' "
             "queries from stdin, one answer per line",
    )
    _add_serve_flags(serve_p)
    serve_p.add_argument("--metrics-out", metavar="PATH",
                         dest="metrics_out",
                         help="enable the metrics registry and write a "
                              "kind=serve RunReport JSON to PATH on exit")
    return parser


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the ``predict`` and ``serve`` subcommands."""
    parser.add_argument("--threads", type=int, default=1, metavar="T",
                        help="queue parallelism of the prediction "
                             "(predict only; default 1)")
    parser.add_argument("--full", action="store_true",
                        help="fit the surrogate over the paper's full "
                             "sweep instead of the quick configuration")
    parser.add_argument("--method", choices=["loglinear", "pchip"],
                        default="loglinear",
                        help="surrogate interpolation rule (loglinear = "
                             "exact surface parity; pchip needs scipy)")
    parser.add_argument("--cold", action="store_true",
                        help="measure refused queries with the real DES "
                             "cold path and refine the surrogate online")


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared parallel-execution and caching flags."""
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for sweeps/experiments "
                             "(default 1 = sequential; 0 = all CPU cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the per-point and surface caches "
                             "(recompute everything)")
    parser.add_argument("--no-fast-forward", action="store_true",
                        dest="no_fast_forward",
                        help="disable steady-state fast-forward and run "
                             "every proxy iteration in full (results are "
                             "bit-identical; only slower)")
    parser.add_argument("--metrics-out", metavar="PATH", dest="metrics_out",
                        help="enable the metrics registry for this run and "
                             "write a RunReport JSON to PATH")


def _resolve_workers(args: argparse.Namespace) -> int:
    """Map the CLI convention (0 = auto) to a concrete worker count."""
    import os

    workers = getattr(args, "workers", 1)
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise SystemExit("--workers must be >= 0")
    return workers


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for eid in experiment_ids():
            print(eid)
        return 0

    if args.command == "slack":
        if args.seconds < 0:
            print("slack must be non-negative", file=sys.stderr)
            return 2
        km = fibre_distance_for_latency(args.seconds) / 1e3
        print(
            f"{args.seconds:g} s of one-way slack = {km:.3f} km of fibre "
            f"at light speed"
        )
        return 0

    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "serve":
        return _cmd_serve(args)

    workers = _resolve_workers(args)
    metrics_out = _maybe_enable_metrics(args)
    ctx = ExperimentContext(
        quick=not args.full,
        workers=workers,
        cache=not getattr(args, "no_cache", False),
        fast_forward=(
            False if getattr(args, "no_fast_forward", False) else None
        ),
    )
    if args.command == "all":
        targets = experiment_ids()
    else:
        targets = args.experiments
        unknown = [t for t in targets if t not in experiment_ids()]
        if unknown:
            print(f"unknown experiment(s): {', '.join(unknown)}",
                  file=sys.stderr)
            print(f"available: {', '.join(experiment_ids())}", file=sys.stderr)
            return 2

    if args.command == "all" and workers > 1:
        from .experiments import run_all

        t0 = time.time()
        results = run_all(ctx, workers=workers)
        for result in results:
            print(result.render())
            print()
        print(f"[{len(results)} experiments, {workers} workers: "
              f"{time.time() - t0:.1f}s]")
        if getattr(args, "output", None):
            from .experiments import write_markdown_report

            path = write_markdown_report(results, args.output)
            print(f"markdown report written to {path}")
        _write_metrics_report(
            metrics_out, kind="all",
            meta={"experiments": targets, "workers": workers},
        )
        return 0

    results = []
    for eid in targets:
        t0 = time.time()
        result = run_experiment(eid, ctx)
        results.append(result)
        print(result.render())
        if getattr(args, "chart", False):
            for series in result.series:
                print()
                print(series.ascii_chart(log_y=any(
                    y is not None and y > 10
                    for ys in series.lines.values() for y in ys
                )))
        print(f"[{eid}: {time.time() - t0:.1f}s]\n")
    if getattr(args, "output", None):
        from .experiments import write_markdown_report

        path = write_markdown_report(results, args.output)
        print(f"markdown report written to {path}")
    _write_metrics_report(
        metrics_out, kind=args.command,
        meta={"experiments": targets, "workers": workers},
    )
    return 0


def _maybe_enable_metrics(args: argparse.Namespace) -> Optional[str]:
    """Enable the metrics registry if ``--metrics-out`` was given."""
    path = getattr(args, "metrics_out", None)
    if path:
        from .obs import enable_metrics

        enable_metrics()
    return path


def _write_metrics_report(
    path: Optional[str],
    kind: str,
    meta: Optional[dict] = None,
    report=None,
) -> None:
    """Write (and announce) the RunReport of a ``--metrics-out`` run."""
    if not path:
        return
    from .obs import RunReport, disable_metrics, get_registry

    if report is None:
        report = RunReport.collect(get_registry(), kind=kind, meta=meta or {})
    report.to_json(path)
    disable_metrics()
    print(f"metrics report written to {path}", file=sys.stderr)


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Render a RunReport JSON (or a fresh demo report) as a table."""
    from .obs import RunReport, collecting

    if args.report:
        try:
            report = RunReport.from_json(args.report)
        except (OSError, ValueError) as exc:
            print(f"cannot read report {args.report!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(report.render())
        return 0

    # No file given: measure a tiny sweep with metrics enabled and
    # render its report, so `repro metrics` is self-demonstrating.
    from .proxy import run_slack_sweep

    with collecting():
        sweep = run_slack_sweep(
            matrix_sizes=[512],
            slack_values_s=[1e-5, 1e-3],
            threads=[1],
            iterations=5,
        )
    assert sweep.report is not None
    print(sweep.report.render())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Trace one registered application and predict its slack penalty."""
    from .apps.registry import get_app
    from .model import CDIProfiler
    from .proxy import PAPER_SLACK_VALUES_S
    from .trace import to_json

    app = get_app(args.app)
    ctx = ExperimentContext(quick=not args.full)
    profile = ctx.app_profile(args.app)
    kernels = profile.trace.kernels()
    copies = profile.trace.memcpys()
    print(f"{profile.name}: {len(kernels)} kernels, {len(copies)} memcpys, "
          f"runtime {profile.runtime_s:.1f} s, "
          f"queue parallelism {profile.queue_parallelism}")
    store = getattr(profile.trace, "store", None)
    if store is not None:
        stats = store.stats()
        print(f"columnar store: {int(stats['events'])} events in "
              f"{int(stats['bytes'])} bytes "
              f"({int(stats['interned_names'])} interned names, "
              f"{int(stats['growths'])} growths)")

    if args.trace_out:
        to_json(profile.trace, args.trace_out)
        print(f"trace written to {args.trace_out}")

    if app.penalty.kind == "none":
        print("no accelerator: slack penalty identically zero (Sec III-D)")
        return 0

    slacks = args.slacks or list(PAPER_SLACK_VALUES_S)
    for slack in slacks:
        if slack < 0:
            print("slack must be non-negative", file=sys.stderr)
            return 2
    profiler = CDIProfiler(ctx.surface())

    if app.penalty.kind == "latency-slo":
        from .apps.inference import measure_slo_response, predict_slo_response

        positive = sorted(s for s in slacks if s > 0)
        resp = measure_slo_response(ctx.app_config(args.app), positive)
        print(f"measured SLO inflation vs zero-slack baseline "
              f"(p99 TTFT {resp.baseline.ttft_p99_s * 1e3:.1f} ms, "
              f"mean TPOT {resp.baseline.tpot_mean_s * 1e3:.2f} ms):")
        print(f"{'slack [us]':>12}  {'TTFT [%]':>10}  {'TPOT [%]':>10}")
        for s, ttft, tpot in zip(
            resp.slack_values_s, resp.ttft_penalty, resp.tpot_penalty
        ):
            print(f"{s * 1e6:12.1f}  {ttft * 100:10.4f}  {tpot * 100:10.4f}")
        pred = predict_slo_response(profiler, profile, positive)
        print("predicted per-phase starvation bounds (unchanged "
              "Equations 2-3) + first-order direct delay:")
        print(f"{'slack [us]':>12}  {'prefill [%]':>22}  "
              f"{'decode [%]':>22}  {'decode direct [%]':>18}")
        for s in positive:
            pre, dec = pred.prefill[s], pred.decode[s]
            print(f"{s * 1e6:12.1f}  "
                  f"{pre.lower_percent:10.4f}-{pre.upper_percent:<10.4f}  "
                  f"{dec.lower_percent:10.4f}-{dec.upper_percent:<10.4f}  "
                  f"{pred.decode_direct[s] * 100:18.4f}")
        return 0

    # One vectorized pass over the whole slack grid (bit-identical to
    # per-slack predict calls, see repro.model.reference).
    predictions = profiler.predict_sweep(profile, sorted(slacks))
    print(f"{'slack [us]':>12}  {'lower [%]':>10}  {'upper [%]':>10}")
    for slack, p in predictions.items():
        print(f"{slack * 1e6:12.1f}  {p.lower_percent:10.4f}  "
              f"{p.upper_percent:10.4f}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Describe or validate a fault-plan spec without running anything."""
    from .faults import FaultPlan

    try:
        plan = FaultPlan.from_spec(args.spec).validate()
    except ValueError as exc:
        print(f"invalid fault plan: {exc}", file=sys.stderr)
        return 2
    if args.action == "describe":
        print(plan.describe())
    else:
        print(
            f"valid fault plan: seed={plan.seed}, "
            f"{len(plan.events)} event(s)"
        )
    return 0


def _parse_tenant_arg(spec: str):
    """Parse ``--tenant NAME:PER_HOUR[:CPU%:GPU%]`` into a TenantSpec."""
    from .cdi import TenantSpec

    parts = spec.split(":")
    try:
        if len(parts) == 2:
            return TenantSpec(name=parts[0], rate_per_s=float(parts[1]) / 3600.0)
        if len(parts) == 4:
            return TenantSpec(
                name=parts[0],
                rate_per_s=float(parts[1]) / 3600.0,
                cpu_heavy_share=float(parts[2]) / 100.0,
                gpu_heavy_share=float(parts[3]) / 100.0,
            )
        raise ValueError("want NAME:PER_HOUR[:CPU%:GPU%]")
    except ValueError as exc:
        raise SystemExit(f"invalid --tenant {spec!r}: {exc}")


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Generate a multi-tenant stream and run the fleet engine."""
    from .cdi import (
        ClusterSpec,
        FleetConfig,
        FleetTopology,
        assert_fleet_parity,
        generate_fleet_jobs,
        run_fleet,
    )

    try:
        cluster = ClusterSpec(
            nodes=args.nodes,
            cores_per_node=args.cores_per_node,
            gpus_per_node=args.gpus_per_node,
        )
    except ValueError as exc:
        print(f"invalid cluster geometry: {exc}", file=sys.stderr)
        return 2

    config_kwargs = dict(
        cluster=cluster,
        horizon_s=args.horizon,
        seed=args.seed,
        max_jobs=args.max_jobs,
    )
    if args.tenants:
        config_kwargs["tenants"] = tuple(
            _parse_tenant_arg(s) for s in args.tenants
        )
    try:
        config = FleetConfig(**config_kwargs)
        jobs = generate_fleet_jobs(config)
    except ValueError as exc:
        print(f"cannot generate fleet stream: {exc}", file=sys.stderr)
        return 2

    topology = None
    if args.racks:
        if args.racks < 0 or cluster.total_gpus == 0 or (
            cluster.total_gpus % args.racks
        ):
            print(
                f"--racks must evenly divide the {cluster.total_gpus} "
                f"cluster GPUs",
                file=sys.stderr,
            )
            return 2
        topology = FleetTopology.uniform(
            args.racks, cluster.total_gpus // args.racks
        )
    if args.penalties and topology is None:
        print("--penalties requires --racks", file=sys.stderr)
        return 2
    surrogate = None
    if args.penalties:
        ctx = ExperimentContext(quick=not args.full)
        surrogate = ctx.surrogate(method="loglinear")
    faults = _parse_faults_arg(args)

    modes = ["traditional", "cdi"] if args.mode == "both" else [args.mode]
    print(
        f"fleet stream: {len(jobs)} jobs from "
        f"{len(jobs.tenant_names)} tenant(s) over "
        f"{config.horizon_s / 86400.0:g} day(s), seed {config.seed}; "
        f"cluster {cluster.nodes} nodes x {cluster.cores_per_node} cores "
        f"+ {cluster.gpus_per_node} GPUs"
    )

    if args.parity:
        if faults is not None:
            print(
                "--parity is defined for the fault-free schedule; "
                "checking with faults disabled",
                file=sys.stderr,
            )
        for m in modes:
            t0 = time.time()
            assert_fleet_parity(jobs, cluster, m)
            print(
                f"[parity: {len(jobs)} jobs bit-identical to the "
                f"scalar {m} DES in {time.time() - t0:.1f}s]",
                file=sys.stderr,
            )

    metrics_out = _maybe_enable_metrics(args)
    results = {}
    for m in modes:
        t0 = time.time()
        result = run_fleet(
            jobs,
            cluster,
            m,
            placement=args.placement,
            topology=topology,
            faults=faults,
            surrogate=surrogate,
            penalty_matrix_size=args.penalty_matrix,
        )
        wall = time.time() - t0
        results[m] = result
        rate = len(jobs) / wall if wall > 0 else float("inf")
        print(f"\n--- {m}: {len(jobs)} jobs simulated in {wall:.2f}s "
              f"({rate:,.0f} jobs/s) ---")
        print(f"makespan {result.makespan_s / 3600.0:.1f} h, "
              f"mean wait {result.mean_wait_s:.1f} s, "
              f"core util {result.core_utilization:.1%}, "
              f"GPU util {result.gpu_utilization:.1%}, "
              f"trapped {result.trapped_core_hours:.1f} core-h / "
              f"{result.trapped_gpu_hours:.1f} GPU-h")
        if result.penalty is not None and result.penalty_refusals:
            print(f"penalty refusals: {result.penalty_refusals} "
                  f"(slack outside the surrogate domain)")
        header = (f"{'tenant':<14}{'jobs':>8}{'wait p50 [s]':>14}"
                  f"{'wait p99 [s]':>14}{'trapped core-h':>16}")
        if result.penalty is not None:
            header += f"{'penalty p50 [%]':>17}{'p99 [%]':>9}"
        print(header)
        for name, ts in result.tenant_stats().items():
            row = (f"{name:<14}{ts.jobs:>8d}{ts.wait_p50_s:>14.1f}"
                   f"{ts.wait_p99_s:>14.1f}{ts.trapped_core_hours:>16.1f}")
            if result.penalty is not None:
                if ts.penalty_p50 is not None:
                    row += (f"{ts.penalty_p50 * 100:>17.4f}"
                            f"{(ts.penalty_p99 or 0.0) * 100:>9.4f}")
                else:
                    row += f"{'-':>17}{'-':>9}"
            print(row)

    if len(results) == 2:
        trad, cdi = results["traditional"], results["cdi"]
        trapped_trad = trad.trapped_core_hours + trad.trapped_gpu_hours
        trapped_cdi = cdi.trapped_core_hours + cdi.trapped_gpu_hours
        print(f"\nCDI vs traditional: trapped resource-hours "
              f"{trapped_trad:.1f} -> {trapped_cdi:.1f}, "
              f"mean wait {trad.mean_wait_s:.1f} s -> "
              f"{cdi.mean_wait_s:.1f} s")

    _write_metrics_report(
        metrics_out, kind="fleet",
        meta={"modes": modes, "jobs": len(jobs)},
    )
    return 0


def _parse_faults_arg(args: argparse.Namespace):
    """Parse a ``--faults`` spec (None when absent or empty)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from .faults import FaultPlan

    try:
        plan = FaultPlan.from_spec(spec).validate()
    except ValueError as exc:
        raise SystemExit(f"invalid --faults spec: {exc}")
    return None if plan.is_empty else plan


def _sweep_options(args: argparse.Namespace) -> "SweepOptions":
    """The resolved execution-knob bundle of one CLI invocation."""
    from .proxy import SweepOptions

    return SweepOptions(
        workers=_resolve_workers(args),
        cache=not getattr(args, "no_cache", False),
        fast_forward=(
            False if getattr(args, "no_fast_forward", False) else None
        ),
        faults=_parse_faults_arg(args),
    )


def _parse_shard_arg(spec: str):
    """Parse ``--shard I/N`` into an ``(index, count)`` pair."""
    try:
        index_s, count_s = spec.split("/")
        return int(index_s), int(count_s)
    except ValueError:
        raise SystemExit(
            f"invalid --shard {spec!r} (want INDEX/COUNT, e.g. 0/4)"
        )


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run a custom proxy sweep and print the surface."""
    from .proxy import (
        PAPER_MATRIX_SIZES,
        PAPER_SLACK_VALUES_S,
        ShardingUnsupportedError,
        SlackResponseSurface,
        run_slack_sweep,
    )

    matrix_sizes = args.matrix_sizes or list(PAPER_MATRIX_SIZES)
    slacks = sorted(args.slacks or PAPER_SLACK_VALUES_S)
    threads = args.threads or [1]
    iterations = args.iterations if args.iterations > 0 else None
    if args.tol is not None and not args.adaptive:
        print("--tol requires --adaptive", file=sys.stderr)
        return 2
    sharded = bool(args.shard or args.shard_workers or args.merge_shards)
    if args.adaptive and sharded:
        print(
            "sharding unsupported: adaptive sweeps cannot be sharded "
            "(refinement is a sequential decision process over the "
            "whole grid); drop --adaptive or the shard flags",
            file=sys.stderr,
        )
        return 2
    if args.shard and args.merge_shards:
        print("--shard and --merge-shards are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.shard_out and not args.shard:
        print("--shard-out requires --shard", file=sys.stderr)
        return 2
    metrics_out = _maybe_enable_metrics(args)

    if args.shard:
        from .parallel import GridSpec, run_sweep_shard, write_shard

        if not args.shard_out:
            print("--shard requires --shard-out PATH", file=sys.stderr)
            return 2
        index, count = _parse_shard_arg(args.shard)
        grid = GridSpec(
            matrix_sizes=matrix_sizes,
            slack_values_s=slacks,
            threads=threads,
            iterations=iterations,
            target_compute_s=args.target_compute,
        )
        try:
            shard = run_sweep_shard(
                grid, index, count, options=_sweep_options(args)
            )
        except (ShardingUnsupportedError, ValueError) as exc:
            print(f"cannot run shard: {exc}", file=sys.stderr)
            return 2
        path = write_shard(shard, args.shard_out)
        s = shard.stats
        print(
            f"[shard {index}/{count}: {len(shard.index)} of "
            f"{grid.task_count} grid points "
            f"({int(s.get('cached', 0))} cached) in "
            f"{s.get('wall_s', 0.0):.2f}s -> {path}]",
            file=sys.stderr,
        )
        _write_metrics_report(
            metrics_out, kind="sweep-shard", report=shard.report
        )
        return 0

    if args.merge_shards:
        from .parallel import ShardMergeError, load_shard, merge_shards

        try:
            grid = load_shard(args.merge_shards[0]).grid
            sweep = merge_shards(args.merge_shards)
        except ShardMergeError as exc:
            print(f"cannot merge shards: {exc}", file=sys.stderr)
            return 2
        slacks = sorted(grid.slack_values_s)
        m = sweep.merge
        print(
            f"[merged {len(m.shards)} shard(s): {m.grid_points} grid "
            f"points, slowest shard {m.shard_wall_s:.2f}s, merge "
            f"{m.merge_wall_s:.3f}s]",
            file=sys.stderr,
        )
        return _print_sweep_surface(args, sweep, slacks, metrics_out)

    options = _sweep_options(args)

    if args.shard_workers and args.shard_workers > 1:
        from .parallel import GridSpec, ShardCoordinator

        grid = GridSpec(
            matrix_sizes=matrix_sizes,
            slack_values_s=slacks,
            threads=threads,
            iterations=iterations,
            target_compute_s=args.target_compute,
        )
        coordinator = ShardCoordinator(
            grid, args.shard_workers, options=options
        )
        try:
            sweep = coordinator.run()
        except RuntimeError as exc:
            print(f"sharded sweep failed: {exc}", file=sys.stderr)
            return 1
        m = sweep.merge
        print(
            f"[{args.shard_workers} shard worker(s): coordinator wall "
            f"{m.coordinator_wall_s:.2f}s, slowest shard "
            f"{m.shard_wall_s:.2f}s, merge {m.merge_wall_s:.3f}s]",
            file=sys.stderr,
        )
        return _print_sweep_surface(args, sweep, slacks, metrics_out)

    common = dict(
        matrix_sizes=matrix_sizes,
        slack_values_s=slacks,
        threads=threads,
        iterations=iterations,
        target_compute_s=args.target_compute,
        options=options,
    )
    if args.adaptive:
        from .model import DEFAULT_TOL, adaptive_slack_sweep

        res = adaptive_slack_sweep(
            tol=DEFAULT_TOL if args.tol is None else args.tol, **common
        )
        sweep = res.dense
        print(
            f"[adaptive: {res.measured_grid_points}/"
            f"{res.dense_grid_points} points measured "
            f"({res.measured_fraction:.0%}: {res.seed_points} seed + "
            f"{res.refined_points} refined), {res.predicted_points} "
            f"predicted within {res.tol:g}, max observed error "
            f"{res.max_error:.2e}]",
            file=sys.stderr,
        )
    else:
        sweep = run_slack_sweep(**common)
    return _print_sweep_surface(args, sweep, slacks, metrics_out)


def _print_sweep_surface(
    args: argparse.Namespace,
    sweep,
    slacks,
    metrics_out: Optional[str],
) -> int:
    """Shared sweep-output tail: timing, report, skips, surface table."""
    from .proxy import SlackResponseSurface

    if sweep.timing is not None:
        t = sweep.timing
        print(
            f"[{t.grid_points} grid points in {t.wall_s:.2f}s "
            f"({t.points_per_sec:.1f} pts/s, {t.cached} cached, "
            f"{t.workers} worker(s), {t.mode})]",
            file=sys.stderr,
        )
    _write_metrics_report(metrics_out, kind="sweep", report=sweep.report)
    for n, t, reason in sweep.skipped:
        print(f"skipped matrix {n} x {t} threads: {reason}", file=sys.stderr)
    if not sweep.points:
        print("no measurable configurations", file=sys.stderr)
        return 1
    surface = SlackResponseSurface(sweep)
    for t in surface.thread_counts():
        print(f"--- {t} thread(s): normalized corrected runtime ---")
        print("matrix".ljust(10) + "".join(f"{s * 1e6:>12.0f}us" for s in slacks))
        for n in surface.matrix_sizes(t):
            row = f"{n:<10d}"
            for s in slacks:
                row += f"{1.0 + surface.penalty(n, s, t):>14.4f}"
            print(row)
    return 0


def _serve_setup(args: argparse.Namespace):
    """Fit the surrogate and cold-path config for predict/serve."""
    from .serve import ColdPathConfig

    ctx = ExperimentContext(quick=not args.full)
    model = ctx.surrogate(method=args.method)
    for note in model.notes:
        print(f"[surrogate: {note}]", file=sys.stderr)
    cold = ColdPathConfig() if args.cold else None
    return model, cold


def _cmd_predict(args: argparse.Namespace) -> int:
    """One-shot penalty prediction from the serving surrogate."""
    from .serve import SurrogateDomainError, predict_penalty

    model, cold = _serve_setup(args)
    try:
        p = predict_penalty(
            args.matrix_size, args.slack, args.threads,
            surrogate=model, cold_path=cold,
        )
    except SurrogateDomainError as exc:
        print(f"refused ({exc.reason}): {exc}", file=sys.stderr)
        if not args.cold:
            print("hint: --cold measures out-of-domain queries for real",
                  file=sys.stderr)
        return 1
    print(
        f"matrix {args.matrix_size}, slack {args.slack:g} s, "
        f"{args.threads} thread(s): penalty {p.penalty * 100:.4f}% "
        f"(error bound ±{p.bound * 100:.4f} pp)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Interactive serving loop over stdin queries."""
    import asyncio

    from .serve import PenaltyService, SurrogateDomainError

    model, cold = _serve_setup(args)
    metrics_out = _maybe_enable_metrics(args)

    async def _loop() -> "PenaltyService":
        svc = PenaltyService(surrogate=model, cold_path=cold)
        async with svc:
            print("ready: SIZE SLACK [THREADS] per line "
                  "(EOF or blank line to exit)", file=sys.stderr)
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    break
                parts = line.split()
                try:
                    size = int(parts[0])
                    slack = float(parts[1])
                    threads = int(parts[2]) if len(parts) > 2 else 1
                except (IndexError, ValueError):
                    print(f"cannot parse query {line!r} "
                          "(want: SIZE SLACK [THREADS])", file=sys.stderr)
                    continue
                try:
                    p = await svc.predict(size, slack, threads)
                except SurrogateDomainError as exc:
                    print(f"refused ({exc.reason})")
                    continue
                print(f"penalty={p.penalty:.6f} bound={p.bound:.6f}")
        return svc

    svc = asyncio.run(_loop())
    stats = svc.stats()
    print(
        f"[served {int(stats['requests'])} request(s): "
        f"{int(stats['answered_warm'])} warm, "
        f"{int(stats['cold_misses'])} cold, "
        f"{int(stats['refused'])} refused]",
        file=sys.stderr,
    )
    _write_metrics_report(metrics_out, kind="serve", report=svc.report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
