"""The application registry: one catalogue of profileable workloads.

Every production workload the reproduction models registers here under
a stable name, with a uniform profiler signature::

    profiler(config, slack=None, *, fast_forward=None, faults=None)
        -> AppProfile

so :class:`~repro.experiments.ExperimentContext`, the CLI's
``--app``/``profile`` choices and the cross-app conformance suite
enumerate workloads from one source of truth instead of hard-coded
pairs. Each entry also carries:

* ``model_version`` — bumped whenever the app's kernel mix or timing
  model changes; it joins the :class:`~repro.apps.AppProfileCache`
  digest so a revised workload can never alias its stale cached
  profiles (the cache-wide ``PROFILE_CACHE_VERSION`` stays for
  simulator-wide changes);
* ``default_config(quick)`` — the experiment-grade configuration
  (``quick=True`` is the shortened CI variant, exactly what
  ``ExperimentContext`` has always built);
* ``conformance_config()`` — a deliberately tiny configuration the
  conformance suite can run repeatedly;
* ``penalty`` — which penalty semantics the workload's slack response
  carries: classic normalized-runtime, a latency SLO, or none (the
  CPU-only category).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from .base import AppProfile

__all__ = [
    "PenaltyMetric",
    "RegisteredApp",
    "register_app",
    "get_app",
    "registered_apps",
    "app_names",
    "app_model_version",
]

#: Penalty-metric kinds a workload can declare.
PENALTY_KINDS = ("runtime", "latency-slo", "none")


@dataclass(frozen=True)
class PenaltyMetric:
    """How a workload's slack penalty is scored."""

    kind: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PENALTY_KINDS:
            raise ValueError(
                f"penalty kind {self.kind!r} not in {PENALTY_KINDS}"
            )


@dataclass(frozen=True)
class RegisteredApp:
    """One workload's registry entry."""

    name: str
    #: App-model version; joins the profile-cache digest.
    model_version: str
    config_type: type
    profiler: Callable[..., AppProfile]
    #: ``quick: bool -> config`` — the experiment-grade configuration.
    default_config: Callable[[bool], Any]
    #: ``() -> config`` — a tiny configuration for conformance tests.
    conformance_config: Callable[[], Any]
    penalty: PenaltyMetric
    description: str = ""


_REGISTRY: Dict[str, RegisteredApp] = {}


def register_app(app: RegisteredApp) -> RegisteredApp:
    """Add one workload to the registry (unique by name)."""
    if app.name in _REGISTRY:
        raise ValueError(f"app {app.name!r} already registered")
    _REGISTRY[app.name] = app
    return app


def get_app(name: str) -> RegisteredApp:
    """Look up one registered workload by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; registered: {', '.join(app_names())}"
        ) from None


def registered_apps() -> Tuple[RegisteredApp, ...]:
    """Every registered workload, sorted by name."""
    return tuple(_REGISTRY[name] for name in app_names())


def app_names() -> Tuple[str, ...]:
    """Registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def app_model_version(name: str) -> str:
    """The app-model version joining the profile-cache digest.

    Unregistered names (profiles cached by external callers under
    their own keys) version as ``"unregistered"`` — still a stable
    digest component, just not a tracked one.
    """
    app = _REGISTRY.get(name)
    return app.model_version if app is not None else "unregistered"


def _register_builtin_apps() -> None:
    """Register the reproduction's own workloads (import-time)."""
    from .cosmoflow import CosmoFlowProfileConfig, profile_cosmoflow
    from .cpuonly import CpuOnlyProfileConfig, profile_cpuonly
    from .inference import InferenceProfileConfig, profile_inference
    from .lammps import LammpsProfileConfig, LJParams, profile_lammps

    def lammps_default(quick: bool) -> LammpsProfileConfig:
        return LammpsProfileConfig(
            params=LJParams(120, steps=500 if quick else 5000)
        )

    register_app(
        RegisteredApp(
            name="lammps",
            model_version="1",
            config_type=LammpsProfileConfig,
            profiler=profile_lammps,
            default_config=lammps_default,
            conformance_config=lambda: LammpsProfileConfig(
                params=LJParams(120, steps=40)
            ),
            penalty=PenaltyMetric(
                kind="runtime",
                description="normalized timestep-loop runtime",
            ),
            description="LAMMPS LJ benchmark, GPU-package offload",
        )
    )

    def cosmoflow_default(quick: bool) -> CosmoFlowProfileConfig:
        if quick:
            return CosmoFlowProfileConfig(
                epochs=1, train_samples=256, val_samples=256
            )
        return CosmoFlowProfileConfig()

    register_app(
        RegisteredApp(
            name="cosmoflow",
            model_version="1",
            config_type=CosmoFlowProfileConfig,
            profiler=profile_cosmoflow,
            default_config=cosmoflow_default,
            conformance_config=lambda: CosmoFlowProfileConfig(
                epochs=1, train_samples=64, val_samples=32
            ),
            penalty=PenaltyMetric(
                kind="runtime",
                description="normalized epoch runtime",
            ),
            description="CosmoFlow 3D-CNN training",
        )
    )

    register_app(
        RegisteredApp(
            name="cpuonly",
            model_version="1",
            config_type=CpuOnlyProfileConfig,
            profiler=profile_cpuonly,
            default_config=lambda quick: CpuOnlyProfileConfig(
                iterations=50 if quick else 500
            ),
            conformance_config=lambda: CpuOnlyProfileConfig(iterations=20),
            penalty=PenaltyMetric(
                kind="none",
                description="no accelerator, no slack exposure",
            ),
            description="CPU-only stencil solver (Sec III-D)",
        )
    )

    def inference_default(quick: bool) -> InferenceProfileConfig:
        return InferenceProfileConfig(
            num_requests=24 if quick else 128
        )

    register_app(
        RegisteredApp(
            name="inference",
            model_version="1",
            config_type=InferenceProfileConfig,
            profiler=profile_inference,
            default_config=inference_default,
            conformance_config=lambda: InferenceProfileConfig(
                num_requests=8,
                prompt_tokens_mean=64,
                decode_tokens_mean=12,
            ),
            penalty=PenaltyMetric(
                kind="latency-slo",
                description="p99 TTFT and mean TPOT inflation vs "
                "zero-slack baseline",
            ),
            description="LLM inference serving, dynamic batching",
        )
    )


_register_builtin_apps()
