"""Columnar trace storage: append-only numpy columns behind ``Trace``.

Recording every kernel/memcpy as a frozen :class:`TraceEvent` dataclass
makes the *application* side of the paper's method the bench bottleneck
once the proxy side is fast-forwarded: a traced LAMMPS run emits tens of
thousands of events, and every analysis pass (duration extraction,
``%Runtime`` unions, Table IV binning) walks those objects in scalar
Python. This module replaces the object stream with an **append-only
columnar store**:

* :class:`ColumnStore` — preallocated, geometrically grown numpy arrays
  for ``start``/``end``/``stream``/``nbytes``/``correlation_id``/
  ``thread``, plus interned code tables for event kinds, names and copy
  directions. Appending a row is O(1) amortized and costs no object
  allocation beyond the (rare, usually-``None``) meta dict.
* :class:`ColumnarTrace` — a :class:`~repro.trace.container.Trace`
  whose ground truth is a :class:`ColumnStore` (optionally restricted
  to a row selection). Every summary the paper's pipeline needs —
  durations, sizes, busy-time unions, concurrency, per-name groups —
  is a masked column operation; iteration and ``filter`` lazily
  materialize bit-identical :class:`TraceEvent` objects, preserving the
  container API as a compatibility view.

All vectorized summaries are *exact* replications of the scalar
reference implementations in :class:`Trace`: the same IEEE operations
in the same order (running maxima for interval unions, per-run
accumulation, stable sorts), verified element-for-element by the parity
property tests in ``tests/trace/test_store.py``.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .container import Trace
from .events import CopyKind, EventKind, TraceEvent

__all__ = ["ColumnStore", "ColumnarTrace"]

#: Fixed kind/copy code tables (enum declaration order).
_KINDS: Tuple[EventKind, ...] = tuple(EventKind)
_KIND_CODE: Dict[EventKind, int] = {k: i for i, k in enumerate(_KINDS)}
_COPIES: Tuple[CopyKind, ...] = tuple(CopyKind)
_COPY_CODE: Dict[CopyKind, int] = {c: i for i, c in enumerate(_COPIES)}

#: Code standing for "absent" in the stream / copy-kind columns.
_NONE = -1

_MEMCPY_CODE = _KIND_CODE[EventKind.MEMCPY]


class ColumnStore:
    """Append-only columnar event storage with interned code tables.

    Rows are stored in record (append) order; sorting is the reader's
    concern. Arrays grow geometrically (doubling), so appends are O(1)
    amortized; ``growths`` counts reallocation events and
    ``nbytes_allocated`` the current (== peak, the store never shrinks)
    column footprint for the ``trace.store.*`` metrics.
    """

    __slots__ = (
        "n",
        "capacity",
        "growths",
        "start",
        "end",
        "stream",
        "nbytes",
        "corr",
        "thread",
        "kind",
        "name_code",
        "copy",
        "metas",
        "_names",
        "_name_codes",
    )

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.n = 0
        self.capacity = capacity
        self.growths = 0
        self.start = np.empty(capacity, dtype=np.float64)
        self.end = np.empty(capacity, dtype=np.float64)
        self.stream = np.empty(capacity, dtype=np.int64)
        self.nbytes = np.empty(capacity, dtype=np.int64)
        self.corr = np.empty(capacity, dtype=np.int64)
        self.thread = np.empty(capacity, dtype=np.int64)
        self.kind = np.empty(capacity, dtype=np.int8)
        self.name_code = np.empty(capacity, dtype=np.int32)
        self.copy = np.empty(capacity, dtype=np.int8)
        #: Per-row meta dict (None for the common empty case).
        self.metas: List[Optional[Dict[str, Any]]] = []
        #: Interned event names: code -> string and string -> code.
        self._names: List[str] = []
        self._name_codes: Dict[str, int] = {}

    # -- writing -----------------------------------------------------------------
    def intern_name(self, name: str) -> int:
        """Code for ``name``, interning it on first sight."""
        code = self._name_codes.get(name)
        if code is None:
            code = len(self._names)
            self._name_codes[name] = code
            self._names.append(name)
        return code

    def name_at(self, code: int) -> str:
        """The interned string behind ``code``."""
        return self._names[code]

    @property
    def names(self) -> Tuple[str, ...]:
        """All interned names, in interning order."""
        return tuple(self._names)

    def _grow(self) -> None:
        new_cap = self.capacity * 2
        for col in ("start", "end", "stream", "nbytes", "corr", "thread",
                    "kind", "name_code", "copy"):
            old = getattr(self, col)
            grown = np.empty(new_cap, dtype=old.dtype)
            grown[: self.n] = old[: self.n]
            setattr(self, col, grown)
        self.capacity = new_cap
        self.growths += 1

    def append_row(
        self,
        kind_code: int,
        name: str,
        start: float,
        end: float,
        stream: Optional[int],
        nbytes: int,
        copy_code: int,
        correlation_id: int,
        thread: int,
        meta: Optional[Dict[str, Any]],
    ) -> int:
        """Append one event row; returns its row index.

        Validation mirrors :class:`TraceEvent.__post_init__` exactly, so
        recording through columns rejects the same malformed intervals
        the object path would.
        """
        if end < start:
            raise ValueError(
                f"event {name!r} ends ({end}) before it starts ({start})"
            )
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if kind_code == _MEMCPY_CODE and copy_code == _NONE:
            raise ValueError("memcpy events need a copy_kind")
        i = self.n
        if i == self.capacity:
            self._grow()
        self.start[i] = start
        self.end[i] = end
        self.stream[i] = _NONE if stream is None else stream
        self.nbytes[i] = nbytes
        self.corr[i] = correlation_id
        self.thread[i] = thread
        self.kind[i] = kind_code
        self.name_code[i] = self.intern_name(name)
        self.copy[i] = copy_code
        self.metas.append(meta if meta else None)
        self.n = i + 1
        return i

    def extend_rows(
        self,
        kind_code: int,
        name_codes: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        stream: Optional[np.ndarray] = None,
        nbytes: Optional[np.ndarray] = None,
        copy_code: int = _NONE,
        correlation_id: Optional[np.ndarray] = None,
        thread: Optional[np.ndarray] = None,
    ) -> int:
        """Bulk :meth:`append_row`: append ``len(start)`` rows at once.

        All rows share one ``kind_code`` and ``copy_code``;
        ``name_codes`` must be pre-interned (see :meth:`intern_name`).
        Optional columns default to the same sentinels as the scalar
        path. Validation matches :meth:`append_row` and reports the
        first offending row. Returns the index of the first new row.
        """
        start = np.asarray(start, dtype=np.float64)
        end = np.asarray(end, dtype=np.float64)
        m = len(start)
        if len(end) != m or len(np.atleast_1d(name_codes)) not in (1, m):
            raise ValueError("bulk columns must align")
        bad = np.flatnonzero(end < start)
        if len(bad):
            row = int(bad[0])
            codes = np.broadcast_to(np.atleast_1d(name_codes), (m,))
            name = self._names[int(codes[row])]
            raise ValueError(
                f"event {name!r} ends ({end[row]}) before it starts "
                f"({start[row]})"
            )
        if nbytes is not None and len(np.atleast_1d(nbytes)) and int(
            np.min(nbytes)
        ) < 0:
            raise ValueError("nbytes must be non-negative")
        if kind_code == _MEMCPY_CODE and copy_code == _NONE:
            raise ValueError("memcpy events need a copy_kind")
        i = self.n
        if i + m > self.capacity:
            while self.capacity < i + m:
                self.capacity *= 2
            for col in ("start", "end", "stream", "nbytes", "corr", "thread",
                        "kind", "name_code", "copy"):
                old = getattr(self, col)
                grown = np.empty(self.capacity, dtype=old.dtype)
                grown[:i] = old[:i]
                setattr(self, col, grown)
            self.growths += 1
        sl = slice(i, i + m)
        self.start[sl] = start
        self.end[sl] = end
        self.stream[sl] = _NONE if stream is None else stream
        self.nbytes[sl] = 0 if nbytes is None else nbytes
        self.corr[sl] = 0 if correlation_id is None else correlation_id
        self.thread[sl] = 0 if thread is None else thread
        self.kind[sl] = kind_code
        self.name_code[sl] = name_codes
        self.copy[sl] = copy_code
        self.metas.extend([None] * m)
        self.n = i + m
        return i

    # -- reading -----------------------------------------------------------------
    def event_at(self, row: int) -> TraceEvent:
        """Materialize one row as a :class:`TraceEvent`."""
        copy_code = int(self.copy[row])
        stream = int(self.stream[row])
        meta = self.metas[row]
        return TraceEvent(
            kind=_KINDS[self.kind[row]],
            name=self._names[self.name_code[row]],
            start=float(self.start[row]),
            end=float(self.end[row]),
            stream=None if stream == _NONE else stream,
            nbytes=int(self.nbytes[row]),
            copy_kind=None if copy_code == _NONE else _COPIES[copy_code],
            correlation_id=int(self.corr[row]),
            thread=int(self.thread[row]),
            meta=dict(meta) if meta else {},
        )

    @property
    def nbytes_allocated(self) -> int:
        """Bytes currently held by the numpy columns (== peak)."""
        return sum(
            getattr(self, col).nbytes
            for col in ("start", "end", "stream", "nbytes", "corr", "thread",
                        "kind", "name_code", "copy")
        )

    def stats(self) -> Dict[str, float]:
        """Flat metrics for ``repro.obs`` (``trace.store.*`` section)."""
        return {
            "events": float(self.n),
            "bytes": float(self.nbytes_allocated),
            "growths": float(self.growths),
            "interned_names": float(len(self._names)),
        }

    # -- persistence (profile cache) ------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        """JSON-ready columnar document (append order, exact floats)."""
        n = self.n
        return {
            "kind": self.kind[:n].tolist(),
            "name_code": self.name_code[:n].tolist(),
            "start": self.start[:n].tolist(),
            "end": self.end[:n].tolist(),
            "stream": self.stream[:n].tolist(),
            "nbytes": self.nbytes[:n].tolist(),
            "copy": self.copy[:n].tolist(),
            "corr": self.corr[:n].tolist(),
            "thread": self.thread[:n].tolist(),
            "names": list(self._names),
            "metas": [
                [i, meta] for i, meta in enumerate(self.metas) if meta
            ],
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ColumnStore":
        """Rebuild a store from :meth:`to_doc` output (bit-exact)."""
        n = len(doc["start"])
        store = cls(capacity=max(1, n))
        store.n = n
        store.start[:n] = np.asarray(doc["start"], dtype=np.float64)
        store.end[:n] = np.asarray(doc["end"], dtype=np.float64)
        store.stream[:n] = np.asarray(doc["stream"], dtype=np.int64)
        store.nbytes[:n] = np.asarray(doc["nbytes"], dtype=np.int64)
        store.corr[:n] = np.asarray(doc["corr"], dtype=np.int64)
        store.thread[:n] = np.asarray(doc["thread"], dtype=np.int64)
        store.kind[:n] = np.asarray(doc["kind"], dtype=np.int8)
        store.name_code[:n] = np.asarray(doc["name_code"], dtype=np.int32)
        store.copy[:n] = np.asarray(doc["copy"], dtype=np.int8)
        store._names = [str(s) for s in doc["names"]]
        store._name_codes = {s: i for i, s in enumerate(store._names)}
        store.metas = [None] * n
        for row, meta in doc.get("metas", []):
            store.metas[int(row)] = dict(meta)
        return store


class ColumnarTrace(Trace):
    """A :class:`Trace` whose ground truth is a :class:`ColumnStore`.

    The root trace of a :class:`~repro.trace.tracer.Tracer` owns the
    whole store; filtered views (``kernels()``, ``memcpys()``,
    ``by_name()`` groups) share the parent's columns through a fixed
    row-selection array, so no event data is ever copied. Analysis
    methods are vectorized; iteration, indexing and generic ``filter``
    lazily materialize the sorted :class:`TraceEvent` sequence (cached
    until more rows are appended).
    """

    def __init__(
        self,
        events: Optional[Iterable[TraceEvent]] = None,
        name: str = "",
        *,
        store: Optional[ColumnStore] = None,
        selection: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(None, name=name)
        self._store = store if store is not None else ColumnStore()
        #: Fixed row selection for views; None = all (live) store rows.
        self._selection = selection
        self._perm: Optional[np.ndarray] = None
        self._perm_rows = -1
        self._events_rows = -1
        if events:
            for e in events:
                self.append(e)

    # -- recording ----------------------------------------------------------------
    @property
    def store(self) -> ColumnStore:
        """The backing column store (shared across views)."""
        return self._store

    def record_fast(
        self,
        kind: EventKind,
        name: str,
        start: float,
        end: float,
        stream: Optional[int] = None,
        nbytes: int = 0,
        copy_kind: Optional[CopyKind] = None,
        correlation_id: int = 0,
        thread: int = 0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append a row without constructing a :class:`TraceEvent`."""
        if self._selection is not None:
            raise TypeError("cannot record into a filtered trace view")
        self._store.append_row(
            _KIND_CODE[kind],
            name,
            start,
            end,
            stream,
            nbytes,
            _NONE if copy_kind is None else _COPY_CODE[copy_kind],
            correlation_id,
            thread,
            meta,
        )

    def record_batch(
        self,
        kind: EventKind,
        names: Union[str, Sequence[str]],
        start: np.ndarray,
        end: np.ndarray,
        stream: Optional[np.ndarray] = None,
        nbytes: Optional[np.ndarray] = None,
        copy_kind: Optional[CopyKind] = None,
        correlation_id: Optional[np.ndarray] = None,
        thread: Optional[np.ndarray] = None,
    ) -> None:
        """Vectorized :meth:`record_fast`: one call, many rows.

        ``names`` is a single shared name or a per-row sequence;
        everything else broadcasts like numpy. This is the fleet
        engine's recording path — a million job events land as slice
        assignments instead of a million Python-level appends.
        """
        if self._selection is not None:
            raise TypeError("cannot record into a filtered trace view")
        if isinstance(names, str):
            codes: Any = self._store.intern_name(names)
        else:
            codes = np.fromiter(
                (self._store.intern_name(s) for s in names),
                dtype=np.int32,
                count=len(names),
            )
        self._store.extend_rows(
            _KIND_CODE[kind],
            codes,
            start,
            end,
            stream=stream,
            nbytes=nbytes,
            copy_code=_NONE if copy_kind is None else _COPY_CODE[copy_kind],
            correlation_id=correlation_id,
            thread=thread,
        )

    def append(self, event: TraceEvent) -> None:
        """Add an event (encoded into columns)."""
        self.record_fast(
            event.kind,
            event.name,
            event.start,
            event.end,
            stream=event.stream,
            nbytes=event.nbytes,
            copy_kind=event.copy_kind,
            correlation_id=event.correlation_id,
            thread=event.thread,
            meta=event.meta,
        )

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for e in events:
            self.append(e)

    # -- row plumbing -------------------------------------------------------------
    def _rows(self) -> np.ndarray:
        """Selected row indices in append order."""
        if self._selection is not None:
            return self._selection
        return np.arange(self._store.n)

    def _row_count(self) -> int:
        if self._selection is not None:
            return int(self._selection.size)
        return self._store.n

    def _sorted_rows(self) -> np.ndarray:
        """Row indices in (start, end)-sorted order (stable).

        ``np.lexsort`` is stable, so equal-key rows keep append order —
        exactly the permutation Python's stable ``list.sort`` with key
        ``(start, end)`` produces on the materialized events.
        """
        count = self._row_count()
        if self._perm is not None and self._perm_rows == count:
            return self._perm
        rows = self._rows()
        store = self._store
        order = np.lexsort((store.end[rows], store.start[rows]))
        self._perm = rows[order]
        self._perm_rows = count
        return self._perm

    def _view(self, selection: np.ndarray, name: Optional[str] = None) -> "ColumnarTrace":
        return ColumnarTrace(
            name=self.name if name is None else name,
            store=self._store,
            selection=selection,
        )

    # -- compatibility materialization ---------------------------------------------
    def _ensure_sorted(self) -> None:
        count = self._row_count()
        if self._events_rows == count:
            return
        store = self._store
        self._events = [store.event_at(i) for i in self._sorted_rows()]
        self._sorted = True
        self._events_rows = count

    def events_in_record_order(self) -> List[TraceEvent]:
        """Materialize the events in append order (not time-sorted).

        This is the order the scalar path's ``_events`` list holds
        before any analysis sorts it — what the fast-forward engine
        hands to :class:`~repro.trace.epochs.RepeatedEpochTrace`.
        """
        store = self._store
        return [store.event_at(int(i)) for i in self._rows()]

    def __len__(self) -> int:
        return self._row_count()

    def __iter__(self) -> Iterator[TraceEvent]:
        self._ensure_sorted()
        return iter(self._events)

    def __getitem__(self, idx: int) -> TraceEvent:
        self._ensure_sorted()
        return self._events[idx]

    # -- vectorized views ----------------------------------------------------------
    def starts(self) -> np.ndarray:
        """Event start times in sorted order (vectorized)."""
        return self._store.start[self._sorted_rows()]

    def ends(self) -> np.ndarray:
        """Event end times in sorted order (vectorized)."""
        return self._store.end[self._sorted_rows()]

    def of_kinds(self, *kinds: EventKind) -> "ColumnarTrace":
        """Masked view of the events whose kind is in ``kinds``."""
        rows = self._rows()
        codes = self._store.kind[rows]
        mask = np.zeros(len(_KINDS), dtype=bool)
        for k in kinds:
            mask[_KIND_CODE[k]] = True
        return self._view(rows[mask[codes]])

    def count_kind(self, kind: EventKind) -> int:
        """Number of events of ``kind`` (no materialization)."""
        rows = self._rows()
        return int((self._store.kind[rows] == _KIND_CODE[kind]).sum())

    def kernels(self) -> "ColumnarTrace":
        return self.of_kinds(EventKind.KERNEL)

    def memcpys(self, direction: Optional[CopyKind] = None) -> "ColumnarTrace":
        copies = self.of_kinds(EventKind.MEMCPY)
        if direction is None:
            return copies
        rows = copies._rows()
        sel = rows[self._store.copy[rows] == _COPY_CODE[direction]]
        return self._view(sel)

    def by_name(self) -> Dict[str, "ColumnarTrace"]:
        """Per-name views, keyed in first-occurrence (sorted) order."""
        perm = self._sorted_rows()
        codes = self._store.name_code[perm]
        groups: Dict[str, ColumnarTrace] = {}
        if codes.size == 0:
            return groups
        # First occurrence order over the sorted sequence = the order
        # the scalar grouping loop discovers names.
        uniq, first = np.unique(codes, return_index=True)
        for code in uniq[np.argsort(first, kind="stable")]:
            name = self._store.name_at(int(code))
            groups[name] = self._view(perm[codes == code], name=name)
        return groups

    def threads(self) -> List[int]:
        rows = self._rows()
        return [int(t) for t in np.unique(self._store.thread[rows])]

    # -- vectorized summaries --------------------------------------------------------
    @property
    def start(self) -> float:
        rows = self._rows()
        if rows.size == 0:
            return 0.0
        return float(self._store.start[rows].min())

    @property
    def end(self) -> float:
        rows = self._rows()
        if rows.size == 0:
            return 0.0
        return float(self._store.end[rows].max())

    def durations(self) -> np.ndarray:
        perm = self._sorted_rows()
        return self._store.end[perm] - self._store.start[perm]

    def sizes(self) -> np.ndarray:
        return self._store.nbytes[self._sorted_rows()].astype(float)

    def total_time(self) -> float:
        if self._row_count() == 0:
            return 0.0
        return float(self.durations().sum())

    def busy_time(self) -> float:
        """Union length of the event intervals, exactly as the scalar.

        The scalar merge's running ``cur_end`` equals the running
        maximum of the sorted end times (a merged run only breaks when
        a start exceeds *every* previous end), so run boundaries fall
        where ``start[i] > runmax[i-1]``. Per-run parts are accumulated
        in run order with scalar adds, reproducing the reference
        left-to-right float sum bit for bit.
        """
        if self._row_count() == 0:
            return 0.0
        starts, runmax, breaks = self._merged_runs()
        firsts = np.concatenate(([0], np.flatnonzero(breaks) + 1))
        lasts = np.concatenate((firsts[1:] - 1, [starts.size - 1]))
        parts = runmax[lasts] - starts[firsts]
        busy = 0.0
        for p in parts.tolist():
            busy += p
        return busy

    def _merged_runs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sorted starts, running-max ends, and run-break mask."""
        starts = self.starts()
        runmax = np.maximum.accumulate(self.ends())
        breaks = starts[1:] > runmax[:-1]
        return starts, runmax, breaks

    def max_concurrency(self) -> int:
        count = self._row_count()
        if count == 0:
            return 0
        rows = self._rows()
        store = self._store
        times = np.concatenate((store.start[rows], store.end[rows]))
        deltas = np.concatenate(
            (np.ones(count, dtype=np.int64), np.full(count, -1, dtype=np.int64))
        )
        order = np.lexsort((deltas, times))
        return int(np.cumsum(deltas[order]).max())

    def top_names_by_total_time(self, n: int = 5) -> List[str]:
        totals = {
            name: tr.total_time() for name, tr in self.by_name().items()
        }
        return [
            name
            for name, _ in sorted(totals.items(), key=lambda kv: -kv[1])[:n]
        ]

    def __repr__(self) -> str:
        return (
            f"<ColumnarTrace {self.name!r}: {len(self)} events, "
            f"span={self.span:.6g}s>"
        )

    # -- persistence -----------------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        """Columnar JSON document (root traces only)."""
        if self._selection is not None:
            raise TypeError("only a root trace can be serialized")
        doc = self._store.to_doc()
        doc["name"] = self.name
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ColumnarTrace":
        """Rebuild a trace from :meth:`to_doc` output."""
        return cls(
            name=str(doc.get("name", "")), store=ColumnStore.from_doc(doc)
        )
