"""Figure 3: the proxy's slack response at 1/2/4/8 OpenMP threads.

One panel (Series) per thread count: normalized Equation-1-corrected
runtime vs matrix size, one line per slack value. Values below 1
(slack hidden by concurrent threads yet still subtracted by Eq. 1)
are reported clamped to 1, with the raw value preserved in the notes
— matching how the penalty aggregation treats them.
"""

from __future__ import annotations

from ..proxy import PAPER_SLACK_VALUES_S
from .context import ExperimentContext
from .report import ExperimentResult, Series

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce Figure 3(a-c) (plus the unplotted 4-thread panel)."""
    ctx = ctx or ExperimentContext()
    surface = ctx.surface()
    result = ExperimentResult(experiment_id="figure3")
    for threads in (1, 2, 4, 8):
        sizes = surface.matrix_sizes(threads)
        panel = Series(
            title=(
                f"Figure 3 panel: {threads} OpenMP thread(s) "
                f"(2^15 absent above 2 threads: out of device memory)"
            ),
            x_label="matrix size",
            y_label="corrected runtime normalized to zero slack",
            x=[float(n) for n in sizes],
        )
        for slack in PAPER_SLACK_VALUES_S:
            panel.add_line(
                f"slack {slack * 1e6:g} us",
                [1.0 + surface.penalty(n, slack, threads) for n in sizes],
            )
        result.series.append(panel)
    result.notes.append(
        "paper trends: longer kernels are more slack-resilient; more "
        "parallel threads raise tolerance; drop-off sharpens with slack; "
        "2^13 first exceeds +10% at 10 ms; 2^15 unaffected"
    )
    p13 = surface.penalty(2**13, 1e-2, 1)
    result.notes.append(
        f"measured: 2^13 at 10 ms, 1 thread: +{100 * p13:.1f}% (paper ~10%)"
    )
    return result
