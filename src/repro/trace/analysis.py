"""Trace analysis: the distribution summaries behind Figures 4 and 5.

The paper presents kernel-duration and memcpy-size distributions as
violin plots. :class:`ViolinSummary` captures everything a violin
shows (quartiles, extrema, a kernel-density profile), and
:func:`kernel_duration_profile` / :func:`memcpy_size_profile` build
the per-name + Total panels of Figures 4 and 5 from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from .container import Trace
from .events import CopyKind

__all__ = [
    "ViolinSummary",
    "DistributionProfile",
    "summarize",
    "kernel_duration_profile",
    "memcpy_size_profile",
    "launch_parallelism",
]


@dataclass(frozen=True)
class ViolinSummary:
    """Summary statistics equivalent to one violin in Figures 4/5."""

    label: str
    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    std: float
    density_x: Tuple[float, ...] = ()
    density_y: Tuple[float, ...] = ()

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1


def summarize(
    values: Sequence[float] | np.ndarray,
    label: str = "",
    density_points: int = 64,
) -> ViolinSummary:
    """Compute violin statistics (and a KDE profile) for ``values``.

    The KDE is evaluated on a linear grid between min and max; for
    degenerate samples (constant, or fewer than 3 points) the density
    is omitted.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError(f"cannot summarize empty sample {label!r}")
    if np.any(~np.isfinite(arr)):
        raise ValueError(f"sample {label!r} contains non-finite values")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    density_x: Tuple[float, ...] = ()
    density_y: Tuple[float, ...] = ()
    if arr.size >= 3 and np.ptp(arr) > 0:
        try:
            kde = stats.gaussian_kde(arr)
            xs = np.linspace(arr.min(), arr.max(), density_points)
            ys = kde(xs)
            density_x = tuple(float(x) for x in xs)
            density_y = tuple(float(y) for y in ys)
        except np.linalg.LinAlgError:  # singular samples
            pass
    return ViolinSummary(
        label=label,
        count=int(arr.size),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        std=float(arr.std()),
        density_x=density_x,
        density_y=density_y,
    )


@dataclass
class DistributionProfile:
    """A set of violins: one per selected name plus an aggregate Total."""

    title: str
    violins: List[ViolinSummary] = field(default_factory=list)

    def labels(self) -> List[str]:
        """Violin labels in presentation order."""
        return [v.label for v in self.violins]

    def __getitem__(self, label: str) -> ViolinSummary:
        for v in self.violins:
            if v.label == label:
                return v
        raise KeyError(label)


def kernel_duration_profile(
    trace: Trace, top_n: int = 5, title: str = ""
) -> DistributionProfile:
    """Figure-4-style profile: per-kernel duration violins + Total.

    ``top_n`` limits the per-name panels to the kernels with the
    largest aggregate runtime (the paper shows CosmoFlow's top five,
    which cover 49.9% of kernel time); every kernel contributes to
    the Total violin regardless.
    """
    kernels = trace.kernels()
    if len(kernels) == 0:
        raise ValueError("trace contains no kernel events")
    profile = DistributionProfile(title=title or f"{trace.name} kernel durations")
    groups = kernels.by_name()
    for name in kernels.top_names_by_total_time(top_n):
        profile.violins.append(summarize(groups[name].durations(), label=name))
    profile.violins.append(summarize(kernels.durations(), label="Total"))
    return profile


def memcpy_size_profile(
    trace: Trace,
    by_direction: bool = True,
    title: str = "",
) -> DistributionProfile:
    """Figure-5-style profile: memcpy size violins (per direction + Total)."""
    copies = trace.memcpys()
    if len(copies) == 0:
        raise ValueError("trace contains no memcpy events")
    profile = DistributionProfile(title=title or f"{trace.name} memcpy sizes")
    if by_direction:
        for direction in (CopyKind.H2D, CopyKind.D2H):
            sub = copies.memcpys(direction)
            if len(sub):
                profile.violins.append(summarize(sub.sizes(), label=direction.value))
    profile.violins.append(summarize(copies.sizes(), label="Total"))
    return profile


def launch_parallelism(trace: Trace, pessimistic: bool = False) -> int:
    """Effective kernel-queue parallelism of an application.

    The paper reads this off the traces: LAMMPS launches kernels from
    its 8 MPI processes; CosmoFlow enqueues long sequences whose
    launch phase takes ~1/7 of the sequence duration, for which the
    paper adopts a *pessimistic* equivalent of 4. We measure the
    maximum number of concurrently open kernel intervals and, when
    ``pessimistic``, halve it (rounding up) the same way.
    """
    concurrency = trace.kernels().max_concurrency()
    if concurrency == 0:
        return 0
    if pessimistic:
        return max(1, (concurrency + 1) // 2)
    return concurrency
