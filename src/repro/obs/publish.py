"""Publication glue: turn simulator state into registry metrics.

The DES kernel and GPU runtime are the reproduction's hot paths, so
they are **not** instrumented per event. Instead, each layer exposes
cheap pull-style accessors (``Environment.metrics_snapshot``, the
``CudaRuntime`` call/byte counters, ``Link``/``NIC`` carry counters)
and this module snapshots them *once per run* into the active
:class:`~repro.obs.MetricsRegistry`:

* :func:`simulation_snapshot` — reduce one finished simulation
  (environment + optional runtime) to a flat ``{dotted name: value}``
  dict. This is what :func:`repro.proxy.run_proxy` attaches to every
  :class:`~repro.proxy.ProxyResult`, and what sweep workers ship back
  to the parent process inside :class:`~repro.parallel.PointMeasurement`.
* :func:`publish_snapshot` — fold such a dict into the registry
  (additive metrics accumulate into counters, per-run metrics like
  engine utilization become histogram observations).
* :func:`publish_executor` / :func:`publish_link` — same idea for the
  parallel engine's :class:`~repro.parallel.ExecutorStats` and for
  fabric links.

Everything here is a no-op (beyond a dict build the caller asked for)
when metrics are disabled.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from .metrics import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..des import Environment
    from ..gpusim import CudaRuntime
    from ..network.link import Link, NIC
    from ..parallel.executor import ExecutorStats

__all__ = [
    "simulation_snapshot",
    "publish_snapshot",
    "publish_executor",
    "publish_fleet",
    "publish_inference",
    "publish_link",
    "publish_nic",
    "publish_service",
    "publish_shard",
    "publish_shard_merge",
    "publish_trace_store",
]

#: Snapshot keys that are *per-run observations* (distributions across
#: runs), not additive totals: they land in histograms. Everything else
#: accumulates into a counter.
_HISTOGRAM_KEYS = frozenset(
    {
        "des.heap_depth",
        "des.cb_pool_free",
        "gpu.compute_utilization",
        "gpu.copy_h2d_utilization",
        "gpu.copy_d2h_utilization",
        "gpu.stream_count",
    }
)


def simulation_snapshot(
    env: "Environment", runtime: Optional["CudaRuntime"] = None
) -> Dict[str, float]:
    """Reduce one simulation to flat scalar telemetry.

    Sections produced: ``des.*`` always; ``gpu.*`` and ``fabric.*``
    when a :class:`~repro.gpusim.CudaRuntime` is given (the fabric
    numbers come from its :class:`~repro.gpusim.interception.SlackInjector`,
    the emulation point where CDI fabric latency enters a run); and
    ``faults.*`` when the runtime carries an active
    :class:`~repro.faults.FaultInjector` (healthy runs publish no
    faults section at all, keeping their snapshots byte-identical to
    pre-fault builds).
    """
    snap: Dict[str, float] = {
        f"des.{key}": value for key, value in env.metrics_snapshot().items()
    }
    if runtime is not None:
        util = runtime.engine_utilization()
        snap.update(
            {
                "gpu.kernel_launches": float(runtime.kernel_launches),
                "gpu.api_calls": float(runtime.api_calls),
                "gpu.memcpy_h2d_bytes": float(runtime.memcpy_bytes_h2d),
                "gpu.memcpy_d2h_bytes": float(runtime.memcpy_bytes_d2h),
                "gpu.memcpy_count": float(runtime.memcpy_count),
                "gpu.stream_count": float(len(runtime.streams)),
                "gpu.compute_utilization": util["compute"],
                "gpu.copy_h2d_utilization": util["copy_h2d"],
                "gpu.copy_d2h_utilization": util["copy_d2h"],
                "gpu.starvation_cost_s": runtime.total_starvation_cost(),
                "fabric.calls_intercepted": float(
                    runtime.injector.calls_intercepted
                ),
                "fabric.slack_calls": float(runtime.injector.calls_delayed),
                "fabric.slack_injected_s": runtime.injector.total_injected_s,
            }
        )
        faults = getattr(runtime, "faults", None)
        if faults is not None:
            snap.update(faults.snapshot())
    return snap


def publish_snapshot(
    snapshot: Dict[str, float],
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Fold one flat snapshot dict into the (active) registry."""
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled or not snapshot:
        return
    for name, value in snapshot.items():
        if name in _HISTOGRAM_KEYS:
            reg.histogram(name).observe(value)
        else:
            reg.counter(name).inc(value)


def publish_executor(
    stats: "ExecutorStats",
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Publish one executor run: throughput, cache split, utilization."""
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    reg.counter("executor.runs").inc()
    reg.counter("executor.points").inc(stats.tasks)
    reg.counter("executor.measured").inc(stats.measured)
    reg.counter("executor.cached").inc(stats.cached)
    reg.counter("executor.wall_s").inc(stats.wall_s)
    reg.counter("executor.point_seconds").inc(stats.point_seconds)
    reg.gauge("executor.workers").set(stats.workers)
    # Fraction of the worker-seconds the pool had available that were
    # actually spent measuring (1.0 = perfectly packed workers).
    if stats.wall_s > 0 and stats.workers > 0:
        reg.histogram("executor.worker_utilization").observe(
            min(1.0, stats.point_seconds / (stats.wall_s * stats.workers))
        )


def publish_trace_store(
    trace: Any, registry: Optional[MetricsRegistry] = None
) -> None:
    """Publish one columnar trace's storage accounting.

    Counters under ``trace.store.*`` accumulate events recorded,
    column bytes and geometric growths across every trace published in
    the run; ``trace.store.peak_bytes`` is a high-water gauge (the
    largest single columnar footprint seen), the one-shot memory
    number ``repro metrics`` surfaces. Traces without a column store
    (plain scalar :class:`~repro.trace.Trace`) publish nothing.
    """
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    store = getattr(trace, "store", None)
    if store is None:
        return
    stats = store.stats()
    reg.counter("trace.store.events").inc(stats["events"])
    reg.counter("trace.store.bytes").inc(stats["bytes"])
    reg.counter("trace.store.growths").inc(stats["growths"])
    reg.counter("trace.store.interned_names").inc(stats["interned_names"])
    peak = reg.gauge("trace.store.peak_bytes")
    peak.set(max(peak.value, stats["bytes"]))


def publish_inference(
    result: Any,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Publish one serving run under ``apps.inference.*``.

    ``result`` is a :class:`repro.apps.inference.InferenceRunResult`.
    Counters accumulate requests/batches/tokens and SLO violations
    across runs; per-request TTFT/TPOT and per-batch occupancy/queue
    depth land in histograms; ``apps.inference.queue_high_water``
    max-merges into a gauge. Called once per run from
    :func:`repro.apps.inference.run_inference` — the snapshot idiom of
    every other layer, nothing on the DES hot path.
    """
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    slo = result.slo
    reg.counter("apps.inference.runs").inc()
    reg.counter("apps.inference.requests").inc(slo.requests)
    reg.counter("apps.inference.batches").inc(len(result.batches))
    reg.counter("apps.inference.ttft_violations").inc(slo.ttft_violations)
    reg.counter("apps.inference.tpot_violations").inc(slo.tpot_violations)
    reg.counter("apps.inference.prefill_tokens").inc(
        sum(b.prefill_tokens for b in result.batches)
    )
    reg.counter("apps.inference.decode_steps").inc(
        sum(b.decode_steps for b in result.batches)
    )
    reg.counter("apps.inference.kv_spilled_bytes").inc(
        sum(b.kv_spilled_bytes for b in result.batches)
    )
    reg.counter("apps.inference.kv_restored_bytes").inc(
        sum(b.kv_restored_bytes for b in result.batches)
    )
    ttft = reg.histogram("apps.inference.ttft_s")
    tpot = reg.histogram("apps.inference.tpot_s")
    for req in result.requests:
        ttft.observe(req.ttft_s)
        if req.tpot_s is not None:
            tpot.observe(req.tpot_s)
    occupancy = reg.histogram("apps.inference.batch_occupancy")
    depth = reg.histogram("apps.inference.queue_depth")
    for batch in result.batches:
        occupancy.observe(batch.size)
        depth.observe(batch.queue_depth)
    high_water = reg.gauge("apps.inference.queue_high_water")
    high_water.set(max(high_water.value, result.queue_high_water))


def publish_fleet(
    result: Any,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Publish one fleet run under ``fleet.*``.

    ``result`` is a :class:`repro.cdi.fleet.FleetResult`. Counters
    accumulate job counts, busy and trapped resource-seconds and
    surrogate refusals across runs; per-tenant queue-wait and penalty
    percentiles land in histograms (one observation per tenant per
    run, never per job — a million-job run publishes a handful of
    scalars); utilizations and the makespan max-merge into gauges.
    The snapshot idiom of every other layer: nothing on the engine's
    hot path.
    """
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    reg.counter("fleet.runs").inc()
    reg.counter("fleet.jobs").inc(len(result))
    reg.counter("fleet.core_busy_s").inc(result.core_busy_s)
    reg.counter("fleet.gpu_busy_s").inc(result.gpu_busy_s)
    reg.counter("fleet.trapped_core_s").inc(
        result.trapped_core_hours * 3600.0
    )
    reg.counter("fleet.trapped_gpu_s").inc(result.trapped_gpu_hours * 3600.0)
    reg.counter("fleet.penalty_refusals").inc(result.penalty_refusals)
    wait_p50 = reg.histogram("fleet.tenant_wait_p50_s")
    wait_p99 = reg.histogram("fleet.tenant_wait_p99_s")
    pen_p50 = reg.histogram("fleet.tenant_penalty_p50")
    pen_p99 = reg.histogram("fleet.tenant_penalty_p99")
    for stats in result.tenant_stats().values():
        wait_p50.observe(stats.wait_p50_s)
        wait_p99.observe(stats.wait_p99_s)
        if stats.penalty_p50 is not None:
            pen_p50.observe(stats.penalty_p50)
        if stats.penalty_p99 is not None:
            pen_p99.observe(stats.penalty_p99)
    core_util = reg.gauge("fleet.core_utilization")
    core_util.set(max(core_util.value, result.core_utilization))
    gpu_util = reg.gauge("fleet.gpu_utilization")
    gpu_util.set(max(gpu_util.value, result.gpu_utilization))
    makespan = reg.gauge("fleet.makespan_s")
    makespan.set(max(makespan.value, result.makespan_s))


#: Serving stats that are high-water marks, not additive totals: they
#: land in gauges (max-merged) instead of counters.
_SERVE_GAUGE_KEYS = frozenset({"max_batch", "queue_high_water"})


def publish_service(
    stats: Dict[str, float],
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Publish one penalty service's counters under ``serve.*``.

    ``stats`` is :meth:`repro.serve.PenaltyService.stats` — plain
    scalars accumulated off the hot path (the service never touches
    the registry per request, matching the snapshot idiom of the
    simulator layers). Additive counts accumulate into counters;
    high-water marks (``max_batch``, ``queue_high_water``) max-merge
    into gauges.
    """
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled or not stats:
        return
    for name, value in stats.items():
        if name in _SERVE_GAUGE_KEYS:
            gauge = reg.gauge(f"serve.{name}")
            gauge.set(max(gauge.value, value))
        else:
            reg.counter(f"serve.{name}").inc(value)


#: Shard-stats keys that describe the shard rather than accumulate:
#: published as gauges (last/max write wins), everything else sums.
_SHARD_GAUGE_KEYS = frozenset({"workers", "mode_process"})


def publish_shard(
    shard_index: int,
    shard_count: int,
    stats: Dict[str, float],
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Publish one shard worker's run under ``sweep.shard.*``.

    ``stats`` is the roll-up :func:`repro.parallel.run_sweep_shard`
    builds (executor wall/split, cache deltas, fast-forward counts).
    Additive numbers accumulate into counters so a process hosting
    several shard runs (tests, in-process merges) reports totals;
    ``sweep.shard.index`` / ``sweep.shard.count`` are gauges recording
    the most recent assignment — the one-worker-one-shard case every
    subprocess worker is.
    """
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    reg.counter("sweep.shard.runs").inc()
    reg.gauge("sweep.shard.index").set(shard_index)
    reg.gauge("sweep.shard.count").set(shard_count)
    for name, value in stats.items():
        if name in _SHARD_GAUGE_KEYS:
            reg.gauge(f"sweep.shard.{name}").set(value)
        else:
            reg.counter(f"sweep.shard.{name}").inc(value)


def publish_shard_merge(
    merge: Any,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Publish one merge under ``sweep.shard.merge.*``.

    ``merge`` is a :class:`repro.parallel.ShardMergeStats`. Counters
    accumulate shards/points/overlaps and the merge wall;
    ``sweep.shard.merge.overhead`` observes the merge-wall over
    slowest-shard-wall ratio (the <5% budget the bench asserts).
    """
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    reg.counter("sweep.shard.merge.runs").inc()
    reg.counter("sweep.shard.merge.shards").inc(len(merge.shards))
    reg.counter("sweep.shard.merge.points").inc(merge.grid_points)
    reg.counter("sweep.shard.merge.overlap_points").inc(
        merge.overlap_points
    )
    reg.counter("sweep.shard.merge.wall_s").inc(merge.merge_wall_s)
    if merge.merge_overhead is not None:
        reg.histogram("sweep.shard.merge.overhead").observe(
            merge.merge_overhead
        )


def publish_link(
    link: "Link", registry: Optional[MetricsRegistry] = None
) -> None:
    """Publish one fabric link's carried traffic and queueing delay."""
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    reg.counter("fabric.link_bytes").inc(link.bytes_carried)
    reg.counter("fabric.link_messages").inc(link.messages_carried)
    reg.counter("fabric.link_queue_wait_s").inc(link.queue_wait_s)


def publish_nic(
    nic: "NIC", registry: Optional[MetricsRegistry] = None
) -> None:
    """Publish one NIC's processed traffic and queueing delay."""
    reg: Any = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    reg.counter("fabric.nic_messages").inc(nic.messages_processed)
    reg.counter("fabric.nic_queue_wait_s").inc(nic.queue_wait_s)
