"""Unit and property tests for slack models and distance conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    MS,
    SlackComponents,
    SlackModel,
    US,
    fibre_distance_for_latency,
    latency_for_fibre_distance,
    slack_budget,
)


class TestDistanceConversion:
    def test_paper_headline_100us_is_20km(self):
        # The paper: 100 us of slack = 20 km of fibre at light speed.
        assert fibre_distance_for_latency(100 * US) == pytest.approx(20e3, rel=0.01)

    def test_roundtrip_conversion(self):
        for d in (1.0, 100.0, 20e3):
            assert fibre_distance_for_latency(
                latency_for_fibre_distance(d)
            ) == pytest.approx(d)

    def test_zero(self):
        assert fibre_distance_for_latency(0.0) == 0.0
        assert latency_for_fibre_distance(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fibre_distance_for_latency(-1.0)
        with pytest.raises(ValueError):
            latency_for_fibre_distance(-1.0)

    @settings(max_examples=100)
    @given(st.floats(min_value=0, max_value=1.0, allow_nan=False))
    def test_monotone(self, latency):
        d1 = fibre_distance_for_latency(latency)
        d2 = fibre_distance_for_latency(latency + 1e-6)
        assert d2 > d1


class TestSlackComponents:
    def test_total_composition(self):
        comp = SlackComponents(nic_s=1e-6, switch_hop_s=0.5e-6, switch_hops=2,
                               cable_m=0.0)
        assert comp.total() == pytest.approx(3e-6)

    def test_cable_contributes(self):
        near = SlackComponents(cable_m=1.0)
        far = SlackComponents(cable_m=1000.0)
        assert far.total() > near.total()

    def test_budget_inverse(self):
        comp = SlackComponents(cable_m=0.0)
        dist = slack_budget(100 * US, comp)
        assert comp.total() + latency_for_fibre_distance(dist) == pytest.approx(
            100 * US
        )

    def test_budget_exhausted_by_fixed_costs(self):
        comp = SlackComponents(nic_s=100 * US, cable_m=0.0)
        assert slack_budget(10 * US, comp) == 0.0


class TestSlackModel:
    def test_zero_model(self):
        model = SlackModel.none()
        assert model.is_zero
        assert model.sample() == 0.0
        assert model.calls_delayed == 0

    def test_deterministic_sampling(self):
        model = SlackModel(5 * US)
        for _ in range(10):
            assert model.sample() == pytest.approx(5 * US)
        assert model.calls_delayed == 10
        assert model.total_injected_s == pytest.approx(50 * US)

    def test_jittered_sampling_statistics(self):
        rng = np.random.default_rng(42)
        model = SlackModel(100 * US, jitter_fraction=0.2, rng=rng)
        samples = np.array([model.sample() for _ in range(5000)])
        assert samples.min() > 0
        assert samples.mean() == pytest.approx(100 * US, rel=0.05)
        assert samples.std() == pytest.approx(20 * US, rel=0.15)

    def test_for_distance(self):
        model = SlackModel.for_distance(20e3)
        assert model.slack_s == pytest.approx(100 * US, rel=0.01)
        assert model.equivalent_distance_m() == pytest.approx(20e3, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlackModel(-1.0)
        with pytest.raises(ValueError):
            SlackModel(1.0, jitter_fraction=-0.1)

    def test_repr(self):
        assert "1e-06" in repr(SlackModel(1e-6)) or "1e-06" in repr(SlackModel(1e-6))
