"""Tests for multi-GPU groups, collectives, and the preload shim."""

import numpy as np
import pytest

from repro.des import Environment
from repro.gpusim import (
    CHASSIS_INTERNAL,
    CROSS_CHASSIS,
    GPUGroup,
    NVLINK3,
    PeerLinkSpec,
    PreloadShim,
    ring_allreduce_time,
)
from repro.hw import MiB


class TestRingAllreduce:
    def test_single_gpu_free(self):
        assert ring_allreduce_time(100 * MiB, 1, NVLINK3) == 0.0

    def test_cost_model_formula(self):
        # 2(N-1) steps of nbytes/N each plus latency.
        link = PeerLinkSpec(bandwidth_Bps=1e9, latency_s=1e-6)
        t = ring_allreduce_time(8e9, 4, link)
        expected = 6 * (8e9 / 4 / 1e9 + 1e-6)
        assert t == pytest.approx(expected)

    def test_scales_sublinearly_with_world(self):
        # Per-GPU bandwidth cost approaches 2x the buffer: going from
        # 2 to 16 GPUs costs < 2x despite 8x the participants.
        t2 = ring_allreduce_time(1e9, 2, NVLINK3)
        t16 = ring_allreduce_time(1e9, 16, NVLINK3)
        assert t16 < 2 * t2

    def test_tighter_links_faster(self):
        for nbytes in (MiB, 100 * MiB):
            assert ring_allreduce_time(nbytes, 8, NVLINK3) < \
                ring_allreduce_time(nbytes, 8, CHASSIS_INTERNAL) < \
                ring_allreduce_time(nbytes, 8, CROSS_CHASSIS)

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(-1, 2, NVLINK3)
        with pytest.raises(ValueError):
            ring_allreduce_time(1, 0, NVLINK3)
        with pytest.raises(ValueError):
            PeerLinkSpec(bandwidth_Bps=0)


class TestGPUGroup:
    def test_group_construction(self):
        env = Environment()
        group = GPUGroup(env, count=4)
        assert group.world == 4
        assert len(group.devices) == 4
        with pytest.raises(ValueError):
            GPUGroup(env, count=0)

    def test_allreduce_takes_ring_time(self):
        env = Environment()
        group = GPUGroup(env, count=4, link=CHASSIS_INTERNAL)

        def host():
            yield from group.allreduce(64 * MiB)
            return env.now

        proc = env.process(host())
        env.run()
        assert proc.value == pytest.approx(
            ring_allreduce_time(64 * MiB, 4, CHASSIS_INTERNAL)
        )
        assert group.allreduces_done == 1

    def test_chassis_coupling_beats_cross_chassis(self):
        # The paper's Discussion: 20 GPUs in one chassis do collectives
        # faster than the same GPUs split across the fabric.
        env = Environment()
        packed = GPUGroup(env, count=16, link=CHASSIS_INTERNAL)
        split = GPUGroup(env, count=16, link=CROSS_CHASSIS)
        b = 100 * MiB
        assert packed.allreduce_time(b) < split.allreduce_time(b)

    def test_shared_tracer_across_devices(self):
        env = Environment()
        group = GPUGroup(env, count=2)
        assert group.devices[0].tracer is group.devices[1].tracer


class TestPreloadShim:
    def test_full_coverage_equals_slack_model(self):
        shim = PreloadShim(10e-6, coverage=1.0)
        for _ in range(100):
            assert shim.sample() == pytest.approx(10e-6)
        assert shim.calls_missed == 0
        assert shim.observed_coverage == 1.0

    def test_partial_coverage_misses_calls(self):
        rng = np.random.default_rng(3)
        shim = PreloadShim(10e-6, coverage=0.7, rng=rng)
        samples = [shim.sample() for _ in range(5000)]
        assert shim.calls_missed > 0
        assert shim.observed_coverage == pytest.approx(0.7, abs=0.03)
        assert shim.undercount_s() == pytest.approx(shim.calls_missed * 10e-6)
        # Missed calls inject nothing.
        assert samples.count(0.0) == shim.calls_missed

    def test_zero_coverage_injects_nothing(self):
        shim = PreloadShim(10e-6, coverage=0.0)
        assert all(shim.sample() == 0.0 for _ in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            PreloadShim(10e-6, coverage=1.5)

    def test_undercount_vs_builtin_injection(self):
        """The paper's coverage concern, end to end: a 60%-coverage shim
        under-injects and the Equation-1 correction then over-subtracts."""
        from repro.des import Environment
        from repro.network import SlackModel
        from repro.proxy import ProxyConfig, run_proxy

        config = ProxyConfig(matrix_size=512, iterations=50)
        full = run_proxy(config, SlackModel(1e-4))
        shim = PreloadShim(1e-4, coverage=0.6,
                           rng=np.random.default_rng(11))
        partial = run_proxy(config, shim)
        # The shim injected measurably less total slack.
        assert partial.injected_slack_s < full.injected_slack_s * 0.8
