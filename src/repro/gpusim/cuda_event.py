"""CUDA events: in-stream timestamps for device-side timing.

The paper's proxy uses "GPU-side control for timing" — it brackets the
compute loop with CUDA events rather than host clocks (and verifies
the two agree). :class:`CudaEvent` records a timestamp when the stream
reaches it; :func:`elapsed_time` mirrors ``cudaEventElapsedTime``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..des import Environment, Event
from .stream import MarkerOp, Stream

__all__ = ["CudaEvent", "elapsed_time"]


class CudaEvent:
    """A recordable device timestamp (cudaEvent_t analogue)."""

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self._timestamp: Optional[float] = None
        self._completion: Optional[Event] = None

    @property
    def recorded(self) -> bool:
        """Whether the device has reached the event's marker."""
        return self._timestamp is not None

    @property
    def timestamp(self) -> float:
        """The device time at which the marker retired."""
        if self._timestamp is None:
            raise RuntimeError(f"CUDA event {self.name!r} has not been recorded")
        return self._timestamp

    def record(self, stream: Stream, thread: int = 0) -> Generator[Event, Any, None]:
        """Enqueue the marker on ``stream`` (host-side, returns fast)."""
        completion = self.env.event()
        op = MarkerOp(completion=completion, thread=thread)
        self._completion = completion
        completion.callbacks.append(self._on_complete)
        yield stream.submit(op)

    def _on_complete(self, event: Event) -> None:
        self._timestamp = self.env.now

    def synchronize(self) -> Generator[Event, Any, None]:
        """Host-side wait until the marker has retired."""
        if self._completion is None:
            raise RuntimeError(f"CUDA event {self.name!r} was never recorded")
        if not self.recorded:
            yield self._completion


def elapsed_time(start: CudaEvent, end: CudaEvent) -> float:
    """Seconds of device time between two recorded events."""
    return end.timestamp - start.timestamp
