#!/usr/bin/env python
"""Quickstart: measure a slack penalty and convert it to a distance.

Runs the paper's slack proxy (a synchronous matmul loop on the
simulated A100) with and without 100 us of injected slack, applies
Equation 1 to isolate the GPU-starvation residual, and reports how far
away the GPU chassis could physically be.

Run:  python examples/quickstart.py
"""

from repro import (
    ProxyConfig,
    SlackModel,
    fibre_distance_for_latency,
    run_proxy,
)

SLACK_S = 100e-6  # one-way CPU-to-GPU delay: the paper's headline value
MATRIX = 2**13  # 8192^2 floats = 256 MiB per matrix


def main() -> None:
    config = ProxyConfig(matrix_size=MATRIX, iterations=25)

    baseline = run_proxy(config)  # traditional in-node GPU
    print(f"baseline loop runtime : {baseline.loop_runtime_s:8.3f} s "
          f"({baseline.iterations} iterations, "
          f"kernel {baseline.kernel_time_s * 1e3:.2f} ms)")

    disaggregated = run_proxy(config, SlackModel(SLACK_S))
    print(f"with {SLACK_S * 1e6:.0f} us slack    : "
          f"{disaggregated.loop_runtime_s:8.3f} s "
          f"({disaggregated.injected_slack_s:.3f} s injected on "
          f"{disaggregated.cuda_calls} CUDA calls)")

    # Equation 1: remove the direct (admissible) network delay; what
    # remains is the cost of starving the GPU of work.
    corrected = disaggregated.corrected_runtime_s
    penalty = corrected / baseline.loop_runtime_s - 1.0
    print(f"Eq.1-corrected runtime: {corrected:8.3f} s "
          f"-> starvation penalty {100 * penalty:+.3f}%")

    km = fibre_distance_for_latency(SLACK_S) / 1e3
    print(f"\n{SLACK_S * 1e6:.0f} us of slack corresponds to ~{km:.0f} km "
          f"of fibre at light speed:")
    print("a GPU chassis that far away would cost this workload "
          f"{100 * penalty:.2f}% beyond the direct network delay.")


if __name__ == "__main__":
    main()
