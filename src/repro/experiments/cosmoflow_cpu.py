"""Section IV-A: CosmoFlow's CPU-to-GPU ratio study.

CosmoFlow sees no benefit from additional CPU cores — it needs two.
The experiment also quantifies the traditional-node waste the paper
derives from this: 4 GPUs use at most 8 cores, stranding 40.
"""

from __future__ import annotations

from ..apps.cosmoflow import COSMOFLOW_REQUIRED_CORES, cosmoflow_cpu_runtime
from .context import ExperimentContext
from .report import ExperimentResult, Series, Table

__all__ = ["run", "CORE_GRID"]

#: Core allocations swept.
CORE_GRID = (1, 2, 4, 8, 12, 24, 48)


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce CosmoFlow's flat CPU-scaling curve."""
    ctx = ctx or ExperimentContext()
    config = ctx.cosmoflow_config()
    series = Series(
        title="CosmoFlow runtime vs CPU cores (batch 4, mini dataset)",
        x_label="CPU cores",
        y_label="runtime normalized to 2 cores",
        x=[float(c) for c in CORE_GRID],
    )
    base = cosmoflow_cpu_runtime(COSMOFLOW_REQUIRED_CORES, config)
    series.add_line(
        "CosmoFlow",
        [cosmoflow_cpu_runtime(c, config) / base for c in CORE_GRID],
    )
    series.notes.append(
        "flat above 2 cores (paper: 'absolutely no benefits from "
        "increasing the number of processes or threads'); degrades below"
    )

    table = Table(
        title="Traditional-node core waste with CosmoFlow (Narval node)",
        headers=["GPUs used", "cores needed", "cores in node", "cores wasted"],
    )
    table.add_row(4, 4 * COSMOFLOW_REQUIRED_CORES, 48,
                  48 - 4 * COSMOFLOW_REQUIRED_CORES)
    table.notes.append(
        "a CDI node could instead drive up to 24 GPUs from one 48-core "
        "CPU node (2 cores per GPU)"
    )
    return ExperimentResult(
        experiment_id="cosmoflow_cpu", tables=[table], series=[series]
    )
