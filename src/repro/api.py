"""The stable public API of the reproduction.

``repro.api`` is the supported import surface: everything listed in
``__all__`` here follows the compatibility policy in
``docs/api.md`` — names are only removed after a deprecation cycle
(one release of ``DeprecationWarning``), execution knobs are
keyword-only with one canonical spelling (``workers=``, ``cache=``,
or the :class:`SweepOptions` bundle carrying all of them), and new
releases may *add* names but never change the meaning of existing
ones.

**The front door is the serving layer.** Most consumers of this
reproduction want a penalty number, not a simulation:

    from repro.api import ExperimentContext, predict_penalty

    ctx = ExperimentContext(quick=True)
    penalty, bound = predict_penalty(2048, 1e-4, threads=2,
                                     surrogate=ctx.surrogate())

* :class:`SurrogateModel` — bounded-error vectorized interpolation
  over cached sweep points, exact parity with
  :class:`SlackResponseSurface` at measured points, typed refusals
  (:class:`SurrogateDomainError`) outside its validated domain.
* :class:`PenaltyService` — asyncio micro-batching service over a
  surrogate, with a bounded queue and an optional DES cold path
  (:class:`ColdPathConfig`) that measures refused queries for real
  and refines the surrogate online.
* :func:`predict_penalty` — the one-shot convenience
  (``rowscale-cdi predict`` on the command line, ``rowscale-cdi
  serve`` for the long-lived loop). See ``docs/serving.md``.

Beneath the serving layer, the measurement stack it is fit from:

sweeps & experiments
    :class:`ExperimentContext` (cached surface + app profiles; its
    :meth:`~repro.experiments.ExperimentContext.surrogate` bridges to
    the serving layer), :func:`run_slack_sweep`,
    :class:`SweepOptions` (the one bundle for the ``workers`` /
    ``cache`` / ``fast_forward`` / ``faults`` / ``adaptive`` / ``tol``
    knobs, accepted as ``options=`` everywhere those knobs appear),
    :class:`SweepResult`, :class:`SweepTiming`,
    :class:`SlackResponseSurface`, :func:`run_experiment`,
    :func:`run_all`, :class:`CDIProfiler`, :class:`SlackPrediction`.
simulation core
    :class:`Environment` (the DES engine), :class:`CudaRuntime`,
    :class:`KernelSpec`, :func:`matmul_kernel`, :class:`Trace`,
    :class:`ColumnarTrace` (the append-only columnar store backing
    every traced run — see ``docs/performance.md``), :class:`Tracer`.
hardware & network models
    :class:`GPUSpec`, :class:`NodeSpec`, the ``A100_SXM4_40GB`` /
    ``EPYC_7413`` / ``NARVAL_NODE`` catalog entries,
    :class:`SlackModel`, :class:`Fabric`, :class:`FabricSpec`,
    :func:`fibre_distance_for_latency`,
    :func:`latency_for_fibre_distance`.
proxy methodology
    :class:`ProxyConfig`, :class:`ProxyResult`, :func:`run_proxy`,
    :class:`FastForwardInfo` (the ``result.fastforward`` record of the
    steady-state fast-forward engine).
application models & registry
    :class:`LJParams`, :class:`LammpsScalingModel`,
    :class:`LammpsProfileConfig`, :func:`profile_lammps`,
    :class:`CosmoFlowProfileConfig`, :func:`profile_cosmoflow`,
    :class:`CpuOnlyProfileConfig` / :func:`profile_cpuonly`, the LLM
    inference-serving workload (:class:`LLMSpec`,
    :class:`InferenceProfileConfig`, :func:`run_inference` /
    :func:`profile_inference`, :func:`measure_slo_response` /
    :func:`predict_slo_response` for the latency-SLO penalty — see
    ``docs/workloads.md``), and the app registry
    (:class:`RegisteredApp`, :func:`get_app`, :func:`registered_apps`,
    :func:`app_names`) that ``ExperimentContext``, the CLI and the
    conformance tests enumerate workloads from.
fleet-scale CDI simulation
    :class:`ClusterSpec`, :class:`SimJob`, the scalar reference twins
    :func:`simulate_traditional` / :func:`simulate_cdi` and
    :func:`synthetic_job_mix`, plus the vectorized fleet engine:
    :class:`TenantSpec`, :class:`FleetConfig`,
    :func:`generate_fleet_jobs` (seeded tick-quantized multi-tenant
    Poisson streams), :func:`run_fleet` / :class:`FleetResult`
    (pointer-FIFO event core, bit-identical per-job metrics to the
    twins — :func:`assert_fleet_parity`), and
    :class:`FleetTopology` for pack/spread/locality GPU placement
    (see the fleet section of ``docs/performance.md``).
fault injection
    :class:`FaultPlan` and its event taxonomy (:class:`LatencySpike`,
    :class:`CongestionEpisode`, :class:`LinkFlap`,
    :class:`MessageLoss`, :class:`GpuStall`),
    :class:`FabricTimeoutError`, :func:`run_degraded_sweep`,
    :class:`DegradedSweepResult` — the ``faults=`` knob (see
    ``docs/faults.md``).
parallel execution & caching
    :class:`SweepExecutor`, :class:`PointCache`,
    :class:`AppProfileCache` (content-addressed traced-profile store,
    see ``docs/performance.md``).
multi-host sharding
    :class:`GridSpec`, :func:`run_sweep_shard`, :func:`merge_shards`,
    :class:`ShardCoordinator`, :func:`write_shard`,
    :func:`load_shard`, the compatibility digests
    :func:`faults_digest` / :func:`options_digest`, and the typed
    errors :class:`ShardMergeError` /
    :class:`ShardingUnsupportedError` — split one sweep grid across
    hosts and merge the artifacts byte-identically (see "Scaling out
    a sweep" in ``docs/performance.md``).
observability
    :class:`MetricsRegistry`, :class:`RunReport`,
    :func:`enable_metrics`, :func:`disable_metrics`,
    :func:`get_registry`, :func:`collecting` (the serving layer
    publishes under ``serve.*`` and reports ``kind="serve"``).

Deprecated aliases (served with a :class:`DeprecationWarning` via
module ``__getattr__``, removed after one release): ``Surrogate`` →
:class:`SurrogateModel`. Legacy *call forms* — positional grid
arguments to :func:`run_slack_sweep`, ``use_cache=`` on
:class:`ExperimentContext` — likewise warn for one release.
"""

from __future__ import annotations

import warnings
from typing import Any

from . import __version__
from .apps import (
    AppProfileCache,
    CosmoFlowProfileConfig,
    CpuOnlyProfileConfig,
    InferenceProfileConfig,
    InferenceRunResult,
    LammpsProfileConfig,
    LammpsScalingModel,
    LJParams,
    LLMSpec,
    PenaltyMetric,
    RegisteredApp,
    SLOReport,
    SLOResponse,
    app_names,
    get_app,
    measure_slo_response,
    phase_profile,
    predict_slo_response,
    profile_cosmoflow,
    profile_cpuonly,
    profile_inference,
    profile_lammps,
    register_app,
    registered_apps,
    run_inference,
)
from .cdi import (
    ClusterSpec,
    FleetConfig,
    FleetJobs,
    FleetResult,
    FleetTopology,
    SimJob,
    TenantSpec,
    TenantStats,
    assert_fleet_parity,
    generate_fleet_jobs,
    run_fleet,
    simulate_cdi,
    simulate_traditional,
    synthetic_job_mix,
)
from .des import Environment
from .experiments import ExperimentContext, run_all, run_experiment
from .faults import (
    CongestionEpisode,
    DegradedSweepResult,
    FabricTimeoutError,
    FaultPlan,
    GpuStall,
    LatencySpike,
    LinkFlap,
    MessageLoss,
    run_degraded_sweep,
)
from .gpusim import CudaRuntime, KernelSpec, matmul_kernel
from .hw import (
    A100_SXM4_40GB,
    EPYC_7413,
    GPUSpec,
    NARVAL_NODE,
    NodeSpec,
    OutOfMemoryError,
)
from .model import CDIProfiler, SlackPrediction
from .network import (
    Fabric,
    FabricSpec,
    SlackModel,
    fibre_distance_for_latency,
    latency_for_fibre_distance,
)
from .obs import (
    MetricsRegistry,
    RunReport,
    collecting,
    disable_metrics,
    enable_metrics,
    get_registry,
)
from .parallel import (
    GridSpec,
    PointCache,
    ShardCoordinator,
    ShardMergeError,
    ShardMergeStats,
    SweepExecutor,
    SweepShard,
    faults_digest,
    load_shard,
    merge_shards,
    options_digest,
    run_sweep_shard,
    write_shard,
)
from .proxy import (
    FastForwardInfo,
    PAPER_MATRIX_SIZES,
    PAPER_SLACK_VALUES_S,
    PAPER_THREAD_COUNTS,
    ProxyConfig,
    ProxyResult,
    ShardingUnsupportedError,
    SlackResponseSurface,
    SweepOptions,
    SweepResult,
    SweepTiming,
    run_proxy,
    run_slack_sweep,
)
from .serve import (
    ColdPathConfig,
    PenaltyService,
    Prediction,
    ServiceOverloadedError,
    SurrogateDomainError,
    SurrogateModel,
    predict_penalty,
)
from .trace import ColumnarTrace, Trace, Tracer

__all__ = [
    "__version__",
    # serving (the front door)
    "SurrogateModel",
    "Prediction",
    "SurrogateDomainError",
    "PenaltyService",
    "ColdPathConfig",
    "ServiceOverloadedError",
    "predict_penalty",
    # sweeps & experiments
    "ExperimentContext",
    "run_experiment",
    "run_all",
    "run_slack_sweep",
    "SweepOptions",
    "SweepResult",
    "SweepTiming",
    "SlackResponseSurface",
    "CDIProfiler",
    "SlackPrediction",
    "PAPER_MATRIX_SIZES",
    "PAPER_SLACK_VALUES_S",
    "PAPER_THREAD_COUNTS",
    # simulation core
    "Environment",
    "CudaRuntime",
    "KernelSpec",
    "matmul_kernel",
    "Trace",
    "ColumnarTrace",
    "Tracer",
    # hardware & network models
    "GPUSpec",
    "NodeSpec",
    "A100_SXM4_40GB",
    "EPYC_7413",
    "NARVAL_NODE",
    "OutOfMemoryError",
    "SlackModel",
    "Fabric",
    "FabricSpec",
    "fibre_distance_for_latency",
    "latency_for_fibre_distance",
    # proxy methodology
    "ProxyConfig",
    "ProxyResult",
    "FastForwardInfo",
    "run_proxy",
    # application models & registry
    "LJParams",
    "LammpsScalingModel",
    "LammpsProfileConfig",
    "profile_lammps",
    "CosmoFlowProfileConfig",
    "profile_cosmoflow",
    "CpuOnlyProfileConfig",
    "profile_cpuonly",
    "LLMSpec",
    "InferenceProfileConfig",
    "InferenceRunResult",
    "SLOReport",
    "SLOResponse",
    "run_inference",
    "profile_inference",
    "measure_slo_response",
    "phase_profile",
    "predict_slo_response",
    "RegisteredApp",
    "PenaltyMetric",
    "register_app",
    "get_app",
    "registered_apps",
    "app_names",
    # fleet-scale CDI simulation
    "SimJob",
    "ClusterSpec",
    "simulate_traditional",
    "simulate_cdi",
    "synthetic_job_mix",
    "TenantSpec",
    "TenantStats",
    "FleetConfig",
    "FleetJobs",
    "FleetResult",
    "FleetTopology",
    "generate_fleet_jobs",
    "run_fleet",
    "assert_fleet_parity",
    # fault injection
    "FaultPlan",
    "LatencySpike",
    "CongestionEpisode",
    "LinkFlap",
    "MessageLoss",
    "GpuStall",
    "FabricTimeoutError",
    "run_degraded_sweep",
    "DegradedSweepResult",
    # parallel execution & caching
    "SweepExecutor",
    "PointCache",
    "AppProfileCache",
    # multi-host sharding
    "GridSpec",
    "SweepShard",
    "run_sweep_shard",
    "write_shard",
    "load_shard",
    "merge_shards",
    "ShardCoordinator",
    "ShardMergeStats",
    "ShardMergeError",
    "ShardingUnsupportedError",
    "faults_digest",
    "options_digest",
    # observability
    "MetricsRegistry",
    "RunReport",
    "enable_metrics",
    "disable_metrics",
    "get_registry",
    "collecting",
]

#: Renamed symbols still served (with a warning) for one release.
_DEPRECATED_ALIASES = {
    "Surrogate": ("SurrogateModel", SurrogateModel),
}


def __getattr__(name: str) -> Any:
    """PEP 562 shim: deprecated aliases warn once per call site."""
    if name in _DEPRECATED_ALIASES:
        canonical, value = _DEPRECATED_ALIASES[name]
        warnings.warn(
            f"repro.api.{name} is deprecated; use repro.api.{canonical}",
            DeprecationWarning,
            stacklevel=2,
        )
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
