"""Steady-state fast-forward: parity, refusal gates, repeated traces.

The contract under test is strong: a fast-forwarded proxy run is
**bit-identical** to the full event-by-event simulation in every
result field — runtimes, injected slack, starvation cost, the trace,
and the complete simulator-telemetry snapshot. These tests compare
with ``==``, not ``pytest.approx``, on purpose.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import SlackModel
from repro.proxy import FastForwardInfo, ProxyConfig, run_proxy
from repro.proxy.fastforward import MIN_ITERATIONS, refusal_reason
from repro.trace import RepeatedEpochTrace


def _pair(config, slack_s):
    """One config run both ways: full simulation and fast-forwarded."""
    full = run_proxy(config, SlackModel(slack_s), fast_forward=False)
    fast = run_proxy(config, SlackModel(slack_s), fast_forward=True)
    return full, fast


def _assert_bit_identical(full, fast):
    assert full.loop_runtime_s == fast.loop_runtime_s
    assert full.corrected_runtime_s == fast.corrected_runtime_s
    assert full.injected_slack_s == fast.injected_slack_s
    assert full.starvation_cost_s == fast.starvation_cost_s
    assert full.iterations == fast.iterations
    assert full.kernel_time_s == fast.kernel_time_s
    assert len(full.trace) == len(fast.trace)
    assert full.sim_metrics == fast.sim_metrics


class TestParity:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_bit_identical_across_thread_counts(self, threads):
        config = ProxyConfig(matrix_size=512, threads=threads, iterations=40)
        full, fast = _pair(config, 1e-5)
        assert fast.fastforward is not None and fast.fastforward.certified
        assert fast.fastforward.skipped_iterations > 0
        _assert_bit_identical(full, fast)

    @pytest.mark.parametrize("slack_s", [0.0, 1e-5, 1e-3])
    def test_bit_identical_across_slacks(self, slack_s):
        config = ProxyConfig(matrix_size=512, threads=2, iterations=30)
        full = run_proxy(
            config,
            SlackModel.none() if slack_s == 0.0 else SlackModel(slack_s),
            fast_forward=False,
        )
        fast = run_proxy(
            config,
            SlackModel.none() if slack_s == 0.0 else SlackModel(slack_s),
            fast_forward=True,
        )
        assert fast.fastforward.certified
        _assert_bit_identical(full, fast)

    def test_bit_identical_large_matrix(self):
        config = ProxyConfig(matrix_size=2048, threads=2, iterations=20)
        full, fast = _pair(config, 1e-4)
        assert fast.fastforward.certified
        _assert_bit_identical(full, fast)

    def test_trace_events_identical(self):
        # The repeated-epoch trace expands to the exact event list the
        # full simulation records — every field of every event.
        config = ProxyConfig(matrix_size=512, threads=2, iterations=30)
        full, fast = _pair(config, 1e-5)
        full_events = list(full.trace)
        fast_events = list(fast.trace)
        assert len(full_events) == len(fast_events)
        for a, b in zip(full_events, fast_events):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert full.trace.busy_time() == fast.trace.busy_time()
        assert full.trace.total_time() == fast.trace.total_time()
        assert full.trace.max_concurrency() == fast.trace.max_concurrency()

    def test_info_accounting(self):
        config = ProxyConfig(matrix_size=512, threads=1, iterations=100)
        fast = run_proxy(config, SlackModel(1e-5))
        info = fast.fastforward
        assert isinstance(info, FastForwardInfo)
        assert info.enabled and info.certified and info.reason is None
        assert info.warmup_iterations + info.skipped_iterations == 100
        assert info.warmup_iterations < 15  # settles within a few epochs
        assert info.events_skipped > 0
        assert info.cycle_period_s > 0


class TestRefusalGates:
    """Ineligible configs run the full simulation — and say why."""

    def _assert_full_run(self, config, make_slack, reason):
        # SlackModel instances are stateful (they account the delays
        # they hand out), so each run gets a fresh one.
        default = run_proxy(config, make_slack())
        assert default.fastforward is not None
        assert not default.fastforward.certified
        assert default.fastforward.reason == reason
        # The fallback IS the full simulation: forcing fast_forward
        # off changes nothing but the recorded reason.
        off = run_proxy(config, make_slack(), fast_forward=False)
        assert off.fastforward.reason == "disabled"
        _assert_bit_identical(off, default)

    def test_phase_barrier_refused(self):
        config = ProxyConfig(
            matrix_size=512, threads=2, iterations=10, phase_barrier=True
        )
        self._assert_full_run(config, lambda: SlackModel(1e-5), "phase-barrier")

    @given(spacing=st.floats(min_value=1e-9, max_value=1e-3))
    @settings(max_examples=5, deadline=None)
    def test_iteration_spacing_refused(self, spacing):
        config = ProxyConfig(
            matrix_size=256, threads=1, iterations=8,
            iteration_spacing_s=spacing,
        )
        self._assert_full_run(
            config, lambda: SlackModel(1e-5), "iteration-spacing"
        )

    @given(offset=st.floats(min_value=1e-9, max_value=1e-3))
    @settings(max_examples=5, deadline=None)
    def test_thread_launch_offset_refused(self, offset):
        config = ProxyConfig(
            matrix_size=256, threads=2, iterations=8,
            thread_launch_offset_s=offset,
        )
        self._assert_full_run(
            config, lambda: SlackModel(1e-5), "thread-launch-offset"
        )

    def test_jitter_refused(self):
        config = ProxyConfig(matrix_size=256, threads=1, iterations=8)
        slack = SlackModel(1e-5, jitter_fraction=0.1)
        result = run_proxy(config, slack)
        assert not result.fastforward.certified
        assert result.fastforward.reason == "slack-jitter"

    def test_slack_subclass_refused(self):
        class Shim(SlackModel):
            pass

        config = ProxyConfig(matrix_size=256, threads=1, iterations=8)
        self._assert_full_run(
            config, lambda: Shim(1e-5), "slack-model-subclass"
        )

    @given(iterations=st.integers(min_value=1, max_value=MIN_ITERATIONS - 1))
    @settings(max_examples=5, deadline=None)
    def test_too_few_iterations_refused(self, iterations):
        config = ProxyConfig(
            matrix_size=256, threads=1, iterations=iterations
        )
        self._assert_full_run(
            config, lambda: SlackModel(1e-5), "too-few-iterations"
        )

    def test_refusal_reason_eligible(self):
        config = ProxyConfig(matrix_size=512, threads=2, iterations=40)
        assert refusal_reason(config, SlackModel(1e-5), 40) is None

    def test_faults_active_refused(self):
        # Fault windows make the run time-inhomogeneous: no epoch can
        # stand in for the rest, so an active plan refuses outright.
        from repro.faults import FaultPlan

        plan = FaultPlan.from_spec("spike:start=0,duration=10ms,extra=100us")
        config = ProxyConfig(matrix_size=512, threads=2, iterations=40)
        result = run_proxy(config, SlackModel(1e-5), faults=plan)
        assert not result.fastforward.certified
        assert result.fastforward.reason == "faults-active"
        assert result.fastforward.skipped_iterations == 0

    def test_empty_plan_does_not_refuse(self):
        from repro.faults import FaultPlan

        config = ProxyConfig(matrix_size=512, threads=2, iterations=40)
        result = run_proxy(config, SlackModel(1e-5), faults=FaultPlan(seed=9))
        assert result.fastforward.certified
        assert result.fastforward.reason is None

    def test_refusal_reason_faults_first(self):
        # The gate fires before any other eligibility check runs.
        config = ProxyConfig(
            matrix_size=512, threads=2, iterations=10, phase_barrier=True
        )
        assert (
            refusal_reason(config, SlackModel(1e-5), 10, faults=object())
            == "faults-active"
        )

    def test_degraded_sweep_records_fastforward_fallbacks(self):
        # Every freshly measured point of a degraded sweep falls back
        # to the full simulation — and the executor says so.
        from repro.faults import FaultPlan
        from repro.obs import collecting
        from repro.proxy import run_slack_sweep

        plan = FaultPlan.from_spec("spike:start=0,duration=10ms,extra=100us")
        grid = dict(
            matrix_sizes=(512,), slack_values_s=(1e-4,), threads=(1, 2),
            iterations=20,
        )
        with collecting() as reg:
            run_slack_sweep(**grid, workers=1, faults=plan)
        # 2 configs x (baseline + 1 slack point) = 4 full simulations.
        assert reg.counter("proxy.fastforward.fallbacks").value == 4
        assert reg.counter("proxy.fastforward.hits").value == 0
        with collecting() as reg:
            run_slack_sweep(**grid, workers=1)
        assert reg.counter("proxy.fastforward.hits").value == 4
        assert reg.counter("proxy.fastforward.fallbacks").value == 0

    def test_never_settling_run_reports_no_fixed_point(self):
        # phase_barrier with threads=1 builds no barriers, so the gate
        # cannot be exercised that way; instead use a run short enough
        # to be eligible but whose monitor dies before certifying is
        # hard to construct deterministically — the "disabled" knob is
        # the reliable negative control.
        config = ProxyConfig(matrix_size=512, threads=1, iterations=40)
        off = run_proxy(config, SlackModel(1e-5), fast_forward=False)
        assert off.fastforward.reason == "disabled"
        assert not off.fastforward.certified


class TestRepeatedEpochTrace:
    def _fast(self):
        config = ProxyConfig(matrix_size=512, threads=1, iterations=60)
        return run_proxy(config, SlackModel(1e-5))

    def test_lazy_until_expanded(self):
        trace = self._fast().trace
        assert isinstance(trace, RepeatedEpochTrace)
        assert not trace.materialized
        n = len(trace)  # cheap: arithmetic, no expansion
        assert not trace.materialized
        events = list(trace)
        assert trace.materialized
        assert len(events) == n

    def test_expanded_events_sorted_and_duration_positive(self):
        trace = self._fast().trace
        events = list(trace)
        starts = [e.start for e in events]
        assert starts == sorted(starts)
        assert all(e.end >= e.start for e in events)

    def test_correlation_ids_unique_per_operation(self):
        trace = self._fast().trace
        kernels = trace.kernels()
        corr = [e.correlation_id for e in kernels]
        assert len(set(corr)) == len(corr)
