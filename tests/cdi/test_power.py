"""Tests for the trapped-resource power model."""

import pytest

from repro.cdi import (
    JobPlacement,
    JobRequest,
    PowerModel,
    ScheduleOutcome,
    compare_power,
    discussion_example,
)


def outcome_with(trapped_cores=0, trapped_gpus=0):
    o = ScheduleOutcome()
    o.placements.append(
        JobPlacement(
            job=JobRequest("j", cores=1, gpus=1),
            granted_cores=1 + trapped_cores,
            granted_gpus=1 + trapped_gpus,
            trapped_cores=trapped_cores,
            trapped_gpus=trapped_gpus,
        )
    )
    return o


class TestPowerModel:
    def test_trapped_power_sums_components(self):
        model = PowerModel(gpu_idle_w=50, core_idle_w=2)
        o = outcome_with(trapped_cores=10, trapped_gpus=3)
        assert model.trapped_power_w(o) == pytest.approx(3 * 50 + 10 * 2)

    def test_nothing_trapped_no_power(self):
        assert PowerModel().trapped_power_w(outcome_with()) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(gpu_idle_w=-1)


class TestComparePower:
    def test_discussion_example_savings(self):
        cmp_sched = discussion_example()
        power = compare_power(cmp_sched.traditional, cmp_sched.cdi)
        # CDI traps nothing; traditional burns idle power on the
        # trapped cores of both placements.
        assert power.cdi_w == 0.0
        assert power.traditional_w > 0
        assert power.saved_w == power.traditional_w

    def test_saved_kwh_over_duration(self):
        power = compare_power(
            outcome_with(trapped_gpus=4), outcome_with()
        )
        kwh = power.saved_kwh(hours=10)
        assert kwh == pytest.approx(4 * 55.0 * 10 / 1000.0)
        with pytest.raises(ValueError):
            power.saved_kwh(-1)
