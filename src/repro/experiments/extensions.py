"""Extension experiments beyond the paper's published artifacts.

These quantify claims the paper makes in prose (Discussion, Background
and Methodology sections) that have no table or figure of their own:

* ``ext_collectives`` — GPU-to-GPU allreduce cost vs coupling
  (chassis-packed vs fabric-split), the Discussion's CosmoFlow
  argument;
* ``ext_congestion`` — how much background fabric load the 100 us
  tolerance leaves room for, relaxing the no-congestion assumption;
* ``ext_preload`` — the LD_PRELOAD shim's coverage problem: injected
  slack shortfall vs coverage fraction (why the paper built a proxy);
* ``ext_power`` — trapped-GPU idle power under traditional scheduling
  vs CDI power-down (the introduction's efficiency claim).
"""

from __future__ import annotations

import numpy as np

from ..cdi import compare_power, discussion_example
from ..des import Environment
from ..gpusim import (
    CHASSIS_INTERNAL,
    CROSS_CHASSIS,
    NVLINK3,
    PreloadShim,
    ring_allreduce_time,
)
from ..hw import MiB
from ..network import CongestionModel, SlackModel, utilization_for_inflation
from ..proxy import ProxyConfig, run_proxy
from .context import ExperimentContext
from .report import ExperimentResult, Series, Table

__all__ = [
    "run_collectives",
    "run_congestion",
    "run_preload",
    "run_power",
    "run_remoting",
    "run_sensitivity",
    "run_graphs",
    "run_throughput",
    "run_weak_scaling",
    "run_resilience",
]


def run_collectives(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Allreduce cost vs GPU count for three coupling tiers."""
    worlds = (2, 4, 8, 16, 24)
    buffer_bytes = 36 * MiB  # CosmoFlow-scale gradient buffer
    series = Series(
        title=f"Ring allreduce of {buffer_bytes // MiB} MiB vs world size",
        x_label="GPUs",
        y_label="allreduce time [ms]",
        x=[float(w) for w in worlds],
    )
    for link in (NVLINK3, CHASSIS_INTERNAL, CROSS_CHASSIS):
        series.add_line(
            link.name,
            [1e3 * ring_allreduce_time(buffer_bytes, w, link) for w in worlds],
        )
    series.notes.append(
        "a single chassis couples more GPUs than any node could hold; "
        "keeping a 16+-GPU collective inside one chassis avoids the "
        "cross-chassis fabric tier entirely (paper Section V)"
    )
    t_packed = ring_allreduce_time(buffer_bytes, 16, CHASSIS_INTERNAL)
    t_split = ring_allreduce_time(buffer_bytes, 16, CROSS_CHASSIS)
    return ExperimentResult(
        experiment_id="ext_collectives",
        series=[series],
        notes=[
            f"16-GPU allreduce: chassis-packed {1e3 * t_packed:.2f} ms vs "
            f"fabric-split {1e3 * t_split:.2f} ms "
            f"({t_split / t_packed:.2f}x)"
        ],
    )


def run_congestion(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Fabric-load headroom under the 100 us slack tolerance."""
    base_slack = 2.0e-6  # a row-scale worst-case path (figure1)
    tolerance = 100e-6
    model = CongestionModel(service_time_s=base_slack)
    table = Table(
        title="Slack under background fabric load (row-scale path, "
              "M/M/1 inflation)",
        headers=["utilization", "slack [us]", "within 100 us tolerance"],
    )
    for rho in (0.0, 0.5, 0.8, 0.9, 0.94):
        slack = model.latency_at(rho)
        table.add_row(rho, round(slack * 1e6, 2), slack < tolerance)
    # The load at which congestion alone exhausts the tolerance.
    inflation_limit = tolerance / base_slack
    rho_limit = utilization_for_inflation(inflation_limit)
    table.notes.append(
        f"the 100 us tolerance is only exceeded beyond "
        f"{100 * rho_limit:.1f}% sustained utilization — far past any "
        f"operable point, supporting the paper's no-congestion assumption"
    )
    return ExperimentResult(experiment_id="ext_congestion", tables=[table])


def run_preload(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """LD_PRELOAD shim coverage vs injected-slack shortfall."""
    config = ProxyConfig(matrix_size=512, iterations=50)
    slack = 1e-4
    reference = run_proxy(config, SlackModel(slack))
    table = Table(
        title="LD_PRELOAD-style interposition: coverage error "
              "(2^9 proxy, 100 us/call)",
        headers=["coverage", "injected [ms]", "shortfall [%]",
                 "observed coverage"],
    )
    for coverage in (1.0, 0.9, 0.7, 0.5):
        shim = PreloadShim(slack, coverage=coverage,
                           rng=np.random.default_rng(7))
        run = run_proxy(config, shim)
        shortfall = 1.0 - run.injected_slack_s / reference.injected_slack_s
        table.add_row(
            coverage,
            round(run.injected_slack_s * 1e3, 3),
            round(100 * shortfall, 1),
            round(shim.observed_coverage, 3),
        )
    table.notes.append(
        "statically linked call paths bypass the shim, so Equation 1's "
        "subtraction over-corrects by the shortfall — the coverage "
        "problem that made the paper reject LD_PRELOAD (Section III-B)"
    )
    return ExperimentResult(experiment_id="ext_preload", tables=[table])


def run_power(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Idle power trapped by traditional scheduling vs CDI."""
    cmp_sched = discussion_example()
    power = compare_power(cmp_sched.traditional, cmp_sched.cdi)
    table = Table(
        title="Trapped-resource idle power (Section V inventory)",
        headers=["scheduler", "trapped cores", "trapped GPUs",
                 "idle power [W]"],
    )
    table.add_row(
        "traditional",
        cmp_sched.traditional.trapped_cores,
        cmp_sched.traditional.trapped_gpus,
        round(power.traditional_w, 1),
    )
    table.add_row(
        "CDI",
        cmp_sched.cdi.trapped_cores,
        cmp_sched.cdi.trapped_gpus,
        round(power.cdi_w, 1),
    )
    return ExperimentResult(
        experiment_id="ext_power",
        tables=[table],
        notes=[
            f"CDI saves {power.saved_w:.0f} W while these jobs run "
            f"({power.saved_kwh(24):.1f} kWh/day) by powering down what "
            f"it does not allocate"
        ],
    )


def run_remoting(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """CDI (latency only) vs rCUDA-style remoting (latency + bandwidth).

    Related-work comparison: the same proxy loop behind a CDI fabric
    path and behind an API-remoting layer whose memcpys cross a
    100 Gb/s network instead of PCIe.
    """
    from ..gpusim import CudaRuntime, RemotingSpec, make_remoting_runtime
    from ..gpusim import matmul_kernel
    from ..trace import CopyKind

    def loop_time(build_runtime, n, iters=10):
        env = Environment()
        rt = build_runtime(env)
        nbytes = n * n * 4
        kernel = matmul_kernel(n)

        def host():
            t0 = env.now
            for _ in range(iters):
                yield from rt.memcpy(nbytes, CopyKind.H2D)
                yield from rt.memcpy(nbytes, CopyKind.H2D)
                yield from rt.launch(kernel, blocking=True)
                yield from rt.memcpy(nbytes, CopyKind.D2H)
                yield from rt.synchronize()
            return env.now - t0

        proc = env.process(host())
        env.run()
        return proc.value

    rpc = 5e-6
    table = Table(
        title="CDI vs API remoting (proxy loop, same 5 us per-call latency)",
        headers=["matrix", "native [s]", "CDI [s]", "remoting [s]",
                 "CDI overhead [%]", "remoting overhead [%]"],
    )
    for n in (2048, 8192):
        t_native = loop_time(lambda env: CudaRuntime(env), n)
        t_cdi = loop_time(
            lambda env: CudaRuntime(env, slack=SlackModel(rpc)), n
        )
        t_rem = loop_time(
            lambda env: make_remoting_runtime(
                env, RemotingSpec(rpc_latency_s=rpc)
            ),
            n,
        )
        table.add_row(
            f"2^{n.bit_length() - 1}",
            round(t_native, 4), round(t_cdi, 4), round(t_rem, 4),
            round(100 * (t_cdi / t_native - 1), 2),
            round(100 * (t_rem / t_native - 1), 2),
        )
    table.notes.append(
        "CDI keeps the data path on PCIe and only adds latency; "
        "remoting forwards payloads over the network, so its overhead "
        "grows with transfer volume — the structural advantage of "
        "fabric-extended PCIe over RPC remoting"
    )
    return ExperimentResult(experiment_id="ext_remoting", tables=[table])


def run_sensitivity(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Sensitivity of the calibrated starvation constants.

    How the two headline anchors move when the simulator's calibrated
    constants change — the 'calibrated, not derived' caveat of
    EXPERIMENTS.md made quantitative.
    """
    from ..model import cap_sensitivity, ramp_sensitivity

    ramp_table = Table(
        title="Idle-ramp fraction vs the 2^13 / 10 ms anchor (paper ~10%)",
        headers=["fraction", "penalty [%]"],
    )
    for p in ramp_sensitivity(iterations=10):
        ramp_table.add_row(p.value, round(100 * p.penalty, 2))
    ramp_table.notes.append("penalty scales ~proportionally: the paper's "
                            "anchor pins the default 0.9")

    cap_table = Table(
        title="Idle-ramp cap vs the 2^15 / 1 s immunity anchor (paper <1%)",
        headers=["cap [ms]", "penalty [%]", "anchor holds"],
    )
    for p in cap_sensitivity():
        cap_table.add_row(
            p.value * 1e3, round(100 * p.penalty, 3), p.penalty < 0.01
        )
    cap_table.notes.append("a 5x larger cap would violate the paper's "
                           "2^15 immunity observation")
    return ExperimentResult(
        experiment_id="ext_sensitivity", tables=[ramp_table, cap_table]
    )


def run_graphs(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """CUDA-Graphs batching as a slack mitigation.

    Replays the proxy iteration as one captured graph (one API call,
    one slack charge) versus five individual calls, across slack
    values — quantifying the obvious software mitigation for CDI
    deployments whose slack exceeds an application's tolerance.
    """
    from ..gpusim import CudaGraph, CudaRuntime, matmul_kernel
    from ..trace import CopyKind

    def run(slack_s, use_graph, n=512, iters=50):
        env = Environment()
        rt = CudaRuntime(env, slack=SlackModel(slack_s))
        nbytes = n * n * 4
        kernel = matmul_kernel(n)
        if use_graph:
            graph = (
                CudaGraph(rt)
                .add_memcpy(nbytes, CopyKind.H2D)
                .add_memcpy(nbytes, CopyKind.H2D)
                .add_kernel(kernel)
                .add_memcpy(nbytes, CopyKind.D2H)
                .instantiate()
            )

            def host():
                t0 = env.now
                for _ in range(iters):
                    yield from graph.launch(blocking=True)
                return env.now - t0

        else:

            def host():
                t0 = env.now
                for _ in range(iters):
                    yield from rt.memcpy(nbytes, CopyKind.H2D)
                    yield from rt.memcpy(nbytes, CopyKind.H2D)
                    yield from rt.launch(kernel, blocking=True)
                    yield from rt.memcpy(nbytes, CopyKind.D2H)
                    yield from rt.synchronize()
                return env.now - t0

        proc = env.process(host())
        env.run()
        return proc.value

    table = Table(
        title="CUDA-Graphs batching as slack mitigation (2^9 proxy loop)",
        headers=["slack [us]", "per-call overhead [%]",
                 "graph overhead [%]", "mitigation factor"],
    )
    for slack in (1e-5, 1e-4, 1e-3):
        base_calls = run(0.0, False)
        base_graph = run(0.0, True)
        over_calls = 100 * (run(slack, False) / base_calls - 1)
        over_graph = 100 * (run(slack, True) / base_graph - 1)
        table.add_row(
            slack * 1e6,
            round(over_calls, 1),
            round(over_graph, 1),
            round(over_calls / over_graph, 2) if over_graph > 0 else float("inf"),
        )
    table.notes.append(
        "one cudaGraphLaunch replaces the loop's five API calls: total "
        "slack exposure (direct + starvation gaps) drops ~5x — the "
        "software mitigation a slack-intolerant workload would adopt "
        "before rejecting CDI"
    )
    return ExperimentResult(experiment_id="ext_graphs", tables=[table])


def run_throughput(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Fleet-level throughput: a job stream under both disciplines.

    The introduction's claim that CDI "can lead to increased system
    efficiency for job throughput and time to solution", measured on a
    synthetic stream of the paper's three workload archetypes.
    """
    from ..cdi import ClusterSpec, compare_throughput, synthetic_job_mix

    jobs = synthetic_job_mix(120, np.random.default_rng(7))
    trad, cdi = compare_throughput(jobs, ClusterSpec())
    table = Table(
        title="Job-stream scheduling: 120 mixed jobs on 16 nodes "
              "(48 cores + 4 GPUs each)",
        headers=["discipline", "makespan [h]", "mean wait [min]",
                 "core util", "GPU util", "trapped GPU-h"],
    )
    for label, m in (("traditional", trad), ("CDI", cdi)):
        table.add_row(
            label,
            round(m.makespan_s / 3600, 1),
            round(m.mean_wait_s / 60, 1),
            round(m.core_utilization, 3),
            round(m.gpu_utilization, 3),
            round(m.trapped_gpu_hours, 1),
        )
    speedup = trad.makespan_s / cdi.makespan_s
    return ExperimentResult(
        experiment_id="ext_throughput",
        tables=[table],
        notes=[
            f"CDI finishes the same stream {speedup:.2f}x sooner with "
            f"{trad.mean_wait_s / max(cdi.mean_wait_s, 1):.1f}x shorter "
            f"queues and zero trapped GPU-hours — the introduction's "
            f"throughput claim, quantified"
        ],
    )


def run_weak_scaling(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Weak-scaling projection from the strong-scaling basic unit.

    Section III-B's promise: the single-GPU ratio study "can inform
    weak scaling for large scale production applications". We find the
    best cores-per-GPU unit for LJ box 120 and replicate it across GPU
    counts under CDI (exact units) vs traditional nodes (12 cores/GPU).
    """
    from ..apps.lammps import find_basic_unit, project_weak_scaling

    unit = find_basic_unit(120)
    table = Table(
        title=f"LAMMPS weak scaling from the basic unit "
              f"({unit.cores} cores : 1 GPU, box 120 per GPU)",
        headers=["GPUs", "atoms [M]", "CDI cores", "trad cores",
                 "CDI [s]", "trad [s]", "CDI advantage",
                 "fabric slack [us]"],
    )
    for p in project_weak_scaling(unit, slack_penalty_per_second=10.0):
        table.add_row(
            p.gpus,
            round(p.total_atoms / 1e6, 1),
            p.cdi_cores,
            p.traditional_cores,
            round(p.cdi_runtime_s, 1),
            round(p.traditional_runtime_s, 1),
            round(p.cdi_advantage, 2),
            round(p.slack_s * 1e6, 2),
        )
    table.notes.append(
        "CDI grants each GPU the unit's full core complement (a whole "
        "CPU node per pair of GPUs); the fabric slack this costs stays "
        "in the microseconds — orders of magnitude inside the tolerance"
    )
    return ExperimentResult(experiment_id="ext_weak_scaling", tables=[table])


def run_resilience(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Fabric-failure resilience: slack and reachability degraded.

    The paper's future work asks what CDI characteristics beyond
    compute may bottleneck applications; operability under component
    failure is the first one a deployer meets. We fail each fabric
    component class in a two-chassis row and report the surviving
    placements and their slack.
    """
    from ..network import Fabric, FabricSpec

    fabric = Fabric(FabricSpec(racks_per_row=8, chassis_racks=(0, 4)))
    host = "host:7:0"
    table = Table(
        title="Row-scale fabric failures seen from host:7:0 "
              "(chassis in racks 0 and 4)",
        headers=["failed component", "reachable chassis",
                 "best slack [us]", "within tolerance"],
    )
    scenarios = [
        ("none", []),
        ("chassis rack's ToR (tor:0)", ["tor:0"]),
        ("one chassis (chassis:0)", ["chassis:0"]),
        ("the row switch (row:0)", ["row:0"]),
    ]
    for label, failed in scenarios:
        surviving = fabric.survivable(host, failed)
        best = min((p.slack_s for p in surviving), default=None)
        table.add_row(
            label,
            len(surviving),
            round(best * 1e6, 3) if best is not None else "-",
            best is not None and best < 100e-6,
        )
    table.notes.append(
        "chassis redundancy keeps placements alive through ToR and "
        "chassis failures at unchanged slack; the single row switch is "
        "the SPOF for cross-rack hosts — a redundancy requirement for "
        "production row-scale CDI, not a slack problem"
    )
    return ExperimentResult(experiment_id="ext_resilience", tables=[table])
