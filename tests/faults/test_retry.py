"""Retry/backoff/timeout semantics of the compiled fault injector.

Pins down the exact arithmetic of the loss-retry game — the k-th
resend waits ``quantize(backoff_base_s * 2**(k-1))`` — plus the two
failure surfaces: retry-budget exhaustion raises
:class:`FabricTimeoutError` *to the process waiting on the call*, and
link-flap down-windows are waited out with exact downtime accounting.
Loss decisions are scripted by stubbing ``draw`` where a test needs a
specific loss count; the real counted-hash stream gets its own
determinism checks.
"""

import pytest

from repro.des import Environment, quantize
from repro.faults import FabricTimeoutError, FaultInjector, FaultPlan
from repro.faults.plan import LatencySpike, LinkFlap, MessageLoss

BASE = 100e-6


def _injector(env, *events, seed=0):
    return FaultPlan(seed=seed, events=tuple(events)).compile(env)


def _scripted(injector, draws):
    """Replace the hash stream with a fixed sequence of decisions."""
    it = iter(draws)
    injector.draw = lambda: next(it)


class TestBackoffSchedule:
    @pytest.mark.parametrize("losses", [1, 2, 3, 4])
    def test_kth_resend_waits_base_times_2_to_k_minus_1(self, losses):
        env = Environment()
        inj = _injector(env, MessageLoss(rate=0.5, backoff_base_s=BASE))
        # `losses` lost sends, then one success.
        _scripted(inj, [0.0] * losses + [0.9])

        def caller():
            yield from inj.perturb_call("call")

        env.process(caller())
        env.run()
        # The injector quantizes the base once at compile time; doubling
        # a dyadic value is exact, so the k-th resend waits exactly
        # quantize(base) * 2**(k-1) — and the waits sum exactly too.
        expected = sum(quantize(BASE) * 2.0 ** (k - 1) for k in range(1, losses + 1))
        assert env.now == expected
        assert inj.retries == losses
        assert inj.messages_lost == losses
        assert inj.injected == 1
        assert inj.extra_delay_s == expected

    def test_lossless_draw_costs_nothing(self):
        env = Environment()
        inj = _injector(env, MessageLoss(rate=0.5, backoff_base_s=BASE))
        _scripted(inj, [0.9])

        def caller():
            yield from inj.perturb_call("call")

        env.process(caller())
        env.run()
        assert env.now == 0.0
        assert inj.retries == 0 and inj.injected == 0


class TestRetryExhaustion:
    def test_timeout_raises_to_waiting_process(self):
        env = Environment()
        # rate=1.0: every send is lost; the budget burns down determin-
        # istically and the third loss exceeds max_retries=2.
        inj = _injector(env, MessageLoss(rate=1.0, max_retries=2))
        outcomes = {}

        def worker():
            yield from inj.perturb_call("doomed-call")

        def supervisor(proc):
            try:
                yield proc
            except FabricTimeoutError as exc:
                outcomes["error"] = str(exc)

        proc = env.process(worker())
        env.process(supervisor(proc))
        env.run()
        assert "doomed-call" in outcomes["error"]
        assert "2 retries" in outcomes["error"]
        assert inj.timeouts == 1
        assert inj.retries == 2  # both budgeted resends were used
        assert inj.messages_lost == 3  # ... and the final loss counts
        assert inj.injected == 1

    def test_unwatched_timeout_surfaces_at_run(self):
        env = Environment()
        inj = _injector(env, MessageLoss(rate=1.0, max_retries=1))

        def worker():
            yield from inj.perturb_call("call")

        env.process(worker())
        with pytest.raises(FabricTimeoutError):
            env.run()

    def test_other_processes_survive_a_timeout(self):
        env = Environment()
        inj = _injector(env, MessageLoss(rate=1.0, max_retries=1))
        log = []

        def doomed():
            yield from inj.perturb_call("call")

        def supervisor(proc):
            try:
                yield proc
            except FabricTimeoutError:
                log.append("timed-out")

        def bystander():
            yield env.timeout(1.0)
            log.append("bystander-done")

        proc = env.process(doomed())
        env.process(supervisor(proc))
        env.process(bystander())
        env.run()
        assert log == ["timed-out", "bystander-done"]


class TestLinkFlapDowntime:
    FLAP = LinkFlap(start_s=1e-3, down_s=2e-3)

    def test_call_in_window_waits_until_link_returns(self):
        env = Environment()
        inj = _injector(env, self.FLAP)

        def caller():
            # Arrive exactly at the (quantized) flap start: timeouts
            # take raw delays, so the test supplies grid-snapped ones.
            yield env.timeout(quantize(1e-3))
            yield from inj.perturb_call("call")

        env.process(caller())
        env.run()
        assert env.now == quantize(1e-3) + quantize(2e-3)
        assert inj.downtime_s == quantize(2e-3)
        assert inj.injected == 1

    def test_partial_window_waits_the_remainder(self):
        env = Environment()
        inj = _injector(env, self.FLAP)

        def caller():
            yield env.timeout(quantize(2e-3))  # mid-window arrival
            yield from inj.perturb_call("call")

        env.process(caller())
        env.run()
        end = quantize(1e-3) + quantize(2e-3)
        assert env.now == end
        assert inj.downtime_s == end - quantize(2e-3)

    def test_call_outside_window_unaffected(self):
        env = Environment()
        inj = _injector(env, self.FLAP)

        def caller():
            yield from inj.perturb_call("call")  # at t=0, before the flap

        env.process(caller())
        env.run()
        assert env.now == 0.0
        assert inj.downtime_s == 0.0 and inj.injected == 0

    def test_two_flaps_accumulate_downtime(self):
        env = Environment()
        inj = _injector(
            env, LinkFlap(start_s=0.0, down_s=1e-3),
            LinkFlap(start_s=5e-3, down_s=3e-3),
        )

        def caller():
            yield from inj.perturb_call("a")  # waits out flap 1
            yield env.timeout(5e-3 - env.now + 1e-6)  # into flap 2
            yield from inj.perturb_call("b")

        env.process(caller())
        env.run()
        assert inj.downtime_s == pytest.approx(1e-3 + (3e-3 - 1e-6), rel=1e-9)
        assert inj.injected == 2


class TestLinkIntegration:
    """The network link plays the same game at message granularity."""

    def test_flap_delays_transmission(self):
        from repro.network.link import Link, LinkSpec

        env = Environment()
        inj = _injector(env, LinkFlap(start_s=0.0, down_s=2e-3))
        spec = LinkSpec()
        link = Link(env, spec, faults=inj)

        def sender():
            yield link.transmit(1024)

        env.process(sender())
        env.run()
        # Fault delays are grid-snapped; the link's own serialization
        # and propagation delays are raw floats — accumulate in the
        # same order the simulation does.
        expected = quantize(2e-3)
        expected += 1024 / spec.bandwidth_Bps
        expected += spec.latency_s
        assert env.now == expected
        assert inj.downtime_s == quantize(2e-3)
        assert link.messages_carried == 1

    def test_message_timeout_propagates_to_transmit_waiter(self):
        from repro.network.link import Link, LinkSpec

        env = Environment()
        inj = _injector(env, MessageLoss(rate=1.0, max_retries=1))
        link = Link(env, LinkSpec(), faults=inj)
        outcomes = {}

        def sender():
            try:
                yield link.transmit(1024)
            except FabricTimeoutError as exc:
                outcomes["error"] = str(exc)

        env.process(sender())
        env.run()
        assert "link-tx" in outcomes["error"]
        assert link.messages_carried == 0  # the message never got through
        assert inj.timeouts == 1

    def test_spike_adds_latency_without_losing_messages(self):
        from repro.network.link import Link, LinkSpec

        env = Environment()
        inj = _injector(
            env, LatencySpike(start_s=0.0, duration_s=1e-2, extra_s=100e-6)
        )
        spec = LinkSpec()
        link = Link(env, spec, faults=inj)

        def sender():
            yield link.transmit(1024)

        env.process(sender())
        env.run()
        expected = quantize(100e-6)
        expected += 1024 / spec.bandwidth_Bps
        expected += spec.latency_s
        assert env.now == expected
        assert link.messages_carried == 1
        assert inj.messages_lost == 0


class TestDecisionStream:
    def test_same_seed_same_stream(self):
        env = Environment()
        a = _injector(env, MessageLoss(rate=0.5), seed=42)
        b = _injector(env, MessageLoss(rate=0.5), seed=42)
        assert [a.draw() for _ in range(64)] == [b.draw() for _ in range(64)]

    def test_different_seed_different_stream(self):
        env = Environment()
        a = _injector(env, MessageLoss(rate=0.5), seed=1)
        b = _injector(env, MessageLoss(rate=0.5), seed=2)
        assert [a.draw() for _ in range(16)] != [b.draw() for _ in range(16)]

    def test_draws_are_uniform_unit_interval(self):
        env = Environment()
        inj = _injector(env, MessageLoss(rate=0.5), seed=7)
        draws = [inj.draw() for _ in range(512)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6
