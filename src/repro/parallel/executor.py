"""Parallel sweep execution: fan independent grid points over processes.

:class:`SweepExecutor` takes an ordered list of :class:`PointTask`s and
returns their measurements **in the same order**, so parallel output is
byte-identical to sequential. Internally it

1. resolves as many tasks as possible from the per-point
   :class:`~repro.parallel.PointCache` (when one is attached),
2. fans the misses out over a ``concurrent.futures
   .ProcessPoolExecutor`` (fork start method, chunked so each worker
   amortizes dispatch overhead),
3. falls back to a deterministic in-process loop for ``workers=1``,
   platforms without ``fork``, or a pool that fails to start
   (restricted sandboxes), and
4. writes fresh measurements back to the cache.

Every run leaves an :class:`ExecutorStats` on ``executor.stats`` —
wall time, points/sec, cached-vs-measured split, and the
speedup-vs-sequential implied by the per-point timings — which the
sweep layer surfaces on :class:`~repro.proxy.SweepResult`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import perf_counter
from typing import Any, List, Optional, Sequence, TYPE_CHECKING

from ..obs import get_registry, publish_executor, publish_snapshot
from ..proxy.options import UNSET as _UNSET
from .point import PointMeasurement, PointTask, measure_point
from .pointcache import PointCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..proxy.options import SweepOptions

__all__ = ["ExecutorStats", "SweepExecutor"]


@dataclass(frozen=True)
class ExecutorStats:
    """Timing and provenance of one executor run."""

    wall_s: float
    tasks: int
    measured: int
    cached: int
    workers: int
    mode: str  # "process" or "inline"
    point_seconds: float  # summed per-point wall time of fresh measurements

    @property
    def points_per_sec(self) -> float:
        """Grid points resolved (cached or measured) per wall second."""
        return self.tasks / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def speedup_vs_sequential(self) -> Optional[float]:
        """Summed per-point time over wall time (``None`` when the run
        was sequential — comparing the inline path against itself
        would report meaningless dispatch overhead as a slowdown).

        Only fresh measurements count: a fully cached run reports 0
        point-seconds, not an artificial speedup.
        """
        if self.workers <= 1:
            return None
        return self.point_seconds / self.wall_s if self.wall_s > 0 else 0.0


def merge_stats(runs: Sequence[ExecutorStats]) -> Optional[ExecutorStats]:
    """Combine the stats of several executor runs into one.

    Multi-round drivers (the adaptive sweep refines in batches, each a
    separate :meth:`SweepExecutor.run`) would otherwise only see the
    last round on ``executor.stats``. Additive fields sum; ``workers``
    is the maximum any round used; ``mode`` reports "process" if any
    round pooled. Returns ``None`` for an empty sequence.
    """
    runs = [r for r in runs if r is not None]
    if not runs:
        return None
    return ExecutorStats(
        wall_s=sum(r.wall_s for r in runs),
        tasks=sum(r.tasks for r in runs),
        measured=sum(r.measured for r in runs),
        cached=sum(r.cached for r in runs),
        workers=max(r.workers for r in runs),
        mode="process" if any(r.mode == "process" for r in runs) else "inline",
        point_seconds=sum(r.point_seconds for r in runs),
    )


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


class SweepExecutor:
    """Executes point tasks over a process pool with per-point caching.

    Parameters
    ----------
    workers:
        Process count; ``None`` means ``os.cpu_count()``. ``1`` always
        runs in-process (deterministic, no pool).
    cache:
        Optional :class:`PointCache`; hits skip the proxy run entirely
        and fresh results are written back.
    chunk_size:
        Tasks per worker dispatch; default splits the miss list into
        roughly four chunks per worker so stragglers rebalance while
        interpreter/dispatch startup still amortizes.
    options:
        Optional :class:`~repro.proxy.SweepOptions` supplying
        ``workers``/``cache`` when the explicit keywords are not
        passed (explicit keywords win, matching every other
        ``options=`` consumer). The cache knob resolves through
        :meth:`~repro.proxy.SweepOptions.point_cache`.
    """

    def __init__(
        self,
        workers: Any = _UNSET,
        cache: Any = _UNSET,
        chunk_size: Optional[int] = None,
        *,
        options: Optional["SweepOptions"] = None,
    ) -> None:
        if workers is _UNSET:
            # Bare SweepExecutor() keeps its historical cpu_count
            # default; an options object supplies its workers knob.
            workers = None if options is None else options.workers
        if cache is _UNSET:
            cache = None if options is None else options.point_cache()
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for cpu_count)")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.cache = cache
        self.chunk_size = chunk_size
        #: Stats of the most recent :meth:`run` (None before first use).
        self.stats: Optional[ExecutorStats] = None

    def run(self, tasks: Sequence[PointTask]) -> List[PointMeasurement]:
        """Resolve every task, preserving input order exactly."""
        tasks = list(tasks)
        t0 = perf_counter()
        results: List[Optional[PointMeasurement]] = [None] * len(tasks)

        # 1. Cache pass: resolve known points without running anything.
        miss_idx: List[int] = []
        if self.cache is not None:
            for i, task in enumerate(tasks):
                hit = self.cache.get_task(task)
                if hit is not None:
                    results[i] = hit
                else:
                    miss_idx.append(i)
        else:
            miss_idx = list(range(len(tasks)))
        cached = len(tasks) - len(miss_idx)

        # 2. Measure the misses — pooled when it can help, else inline.
        mode = "inline"
        workers_used = 1
        if miss_idx:
            miss_tasks = [tasks[i] for i in miss_idx]
            pool_workers = min(self.workers, len(miss_tasks))
            measured: Optional[List[PointMeasurement]] = None
            if pool_workers > 1 and fork_available():
                try:
                    measured = self._run_pool(miss_tasks, pool_workers)
                    mode = "process"
                    workers_used = pool_workers
                except (OSError, PermissionError, BrokenProcessPool):
                    # Pool could not start or died (e.g. sandboxed
                    # environments without process spawning): the
                    # in-process path below produces identical results.
                    measured = None
            if measured is None:
                measured = [measure_point(task) for task in miss_tasks]
            for i, m in zip(miss_idx, measured):
                results[i] = m
                if self.cache is not None:
                    self.cache.put_task(tasks[i], m)

        wall = perf_counter() - t0
        self.stats = ExecutorStats(
            wall_s=wall,
            tasks=len(tasks),
            measured=len(miss_idx),
            cached=cached,
            workers=workers_used,
            mode=mode,
            point_seconds=sum(results[i].elapsed_s for i in miss_idx),
        )
        reg = get_registry()
        if reg.enabled:
            # Identical publication on the pool and inline paths: the
            # per-run simulator telemetry rides inside each measurement
            # (and inside cache entries), so cached points count too.
            publish_executor(self.stats, reg)
            miss_set = set(miss_idx)
            ff_hits = ff_fallbacks = ff_skipped = 0
            for i, m in enumerate(results):
                publish_snapshot(m.sim, reg)  # type: ignore[union-attr]
                if i in miss_set:
                    reg.histogram("executor.point_wall_s").observe(
                        m.elapsed_s  # type: ignore[union-attr]
                    )
                    # Fast-forward telemetry counts freshly measured
                    # points only: cached entries did not exercise the
                    # engine this run.
                    if m.fastforward_hit:  # type: ignore[union-attr]
                        ff_hits += 1
                        ff_skipped += m.fastforward_events_skipped  # type: ignore[union-attr]
                    elif m.ok:  # type: ignore[union-attr]
                        ff_fallbacks += 1
            if ff_hits or ff_fallbacks:
                reg.counter("proxy.fastforward.hits").inc(ff_hits)
                reg.counter("proxy.fastforward.fallbacks").inc(ff_fallbacks)
                reg.counter("proxy.fastforward.events_skipped").inc(
                    ff_skipped
                )
        return results  # type: ignore[return-value]

    def _run_pool(
        self, miss_tasks: List[PointTask], pool_workers: int
    ) -> List[PointMeasurement]:
        chunk = self.chunk_size or max(
            1, len(miss_tasks) // (pool_workers * 4)
        )
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=pool_workers, mp_context=ctx
        ) as pool:
            # map() yields results in submission order regardless of
            # completion order — the determinism guarantee.
            return list(pool.map(measure_point, miss_tasks, chunksize=chunk))
