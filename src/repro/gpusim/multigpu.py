"""Multi-GPU nodes: peer links, D2D copies and collectives.

The paper's Discussion argues a CDI chassis can couple more GPUs
tightly than any node ("fitting 16 GPUs in a single node is not
possible... CDI can allow for this in a single GPU chassis, which can
greatly increase the performance of CPU-asynchronous operations such
as GPU-to-GPU collective operations"). This module makes that claim
quantitative:

* :class:`GPUGroup` — several :class:`CudaRuntime` devices joined by a
  peer interconnect (NVLink inside a node/chassis, or the CDI fabric
  between chassis);
* :func:`ring_allreduce_time` — the standard 2(N-1)/N ring cost model
  Horovod/NCCL follow, parameterized by the group's link;
* :meth:`GPUGroup.allreduce` — the same as a simulated operation that
  occupies every member's copy engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence

from ..des import Environment, Event
from ..hw import A100_SXM4_40GB, GPUSpec, PCIeSpec, PCIE_GEN4_X16
from ..network import SlackModel
from ..trace import Tracer
from .runtime import CudaRuntime

__all__ = [
    "PeerLinkSpec",
    "NVLINK3",
    "CHASSIS_INTERNAL",
    "CROSS_CHASSIS",
    "GPUGroup",
    "ring_allreduce_time",
]


@dataclass(frozen=True)
class PeerLinkSpec:
    """A GPU-to-GPU interconnect between group members."""

    name: str = "nvlink3"
    bandwidth_Bps: float = 300e9  # NVLink3 aggregate per GPU pair
    latency_s: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth_Bps must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")


#: NVLink 3 (A100): ~300 GB/s per direction between peers.
NVLINK3 = PeerLinkSpec()

#: GPUs inside one CDI chassis: switch-backplane coupled (NVSwitch- or
#: PCIe-Gen5-class fabric internal to the chassis).
CHASSIS_INTERNAL = PeerLinkSpec(name="chassis-backplane",
                                bandwidth_Bps=100e9, latency_s=1.5e-6)

#: GPUs split across chassis: traffic crosses the CDI network fabric
#: (200 Gb/s-class links plus extra hops).
CROSS_CHASSIS = PeerLinkSpec(name="cross-chassis", bandwidth_Bps=25e9,
                             latency_s=5.0e-6)


def ring_allreduce_time(
    nbytes: float, world: int, link: PeerLinkSpec
) -> float:
    """Ring allreduce cost: ``2 (N-1)/N`` of the buffer over the link.

    Each of the 2(N-1) steps moves ``nbytes/N`` and pays the link
    latency — the cost model NCCL's ring and Horovod inherit.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if world < 1:
        raise ValueError("world must be >= 1")
    if world == 1:
        return 0.0
    steps = 2 * (world - 1)
    per_step = nbytes / world / link.bandwidth_Bps + link.latency_s
    return steps * per_step


class GPUGroup:
    """Several simulated GPUs joined by a peer interconnect."""

    def __init__(
        self,
        env: Environment,
        count: int,
        link: PeerLinkSpec = NVLINK3,
        gpu: GPUSpec = A100_SXM4_40GB,
        pcie: PCIeSpec = PCIE_GEN4_X16,
        slack: Optional[SlackModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.env = env
        self.link = link
        self.tracer = tracer or Tracer(env, name="gpu-group")
        self.devices: List[CudaRuntime] = [
            CudaRuntime(env, gpu=gpu, pcie=pcie, tracer=self.tracer,
                        slack=slack)
            for _ in range(count)
        ]
        self.allreduces_done = 0
        self.allreduce_seconds = 0.0

    @property
    def world(self) -> int:
        """Number of member GPUs."""
        return len(self.devices)

    def allreduce(self, nbytes: float) -> Generator[Event, Any, float]:
        """One allreduce across the group (a host-side generator).

        Occupies simulated time per the ring model; returns the
        operation's duration. CPU-asynchronous: only the caller waits.
        """
        duration = ring_allreduce_time(nbytes, self.world, self.link)
        if duration > 0:
            yield self.env.timeout(duration)
        self.allreduces_done += 1
        self.allreduce_seconds += duration
        return duration

    def allreduce_time(self, nbytes: float) -> float:
        """The ring-model cost without running the simulation."""
        return ring_allreduce_time(nbytes, self.world, self.link)
