"""Benchmark: regenerate Table I (LAMMPS box sizes and runtimes)."""

from repro.experiments import run_experiment


def test_bench_table1(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", ctx), rounds=3, iterations=1
    )
    print_result(result)
    # Shape check: model within 7% of every published runtime.
    assert all(abs(d) < 7 for d in result.tables[0].column("Delta %"))
