"""CosmoFlow traced training: the profile the paper collects with NSys.

Reproduces the observed CPU-GPU interaction pattern:

* per step, TensorFlow dispatches the step's ~50 kernels in quick
  succession; per-op host dispatch costs make the launch phase take
  about **1/7th of the sequence's execution time** (the paper's
  number), overlapped with device execution;
* input batches arrive through a double-buffered prefetch pipeline:
  one large H2D every ``prefetch_batches`` steps (the (256, 4096] MiB
  transfers of Table III);
* Horovod-style gradient exchange every other training step (staged
  D2H of a fused gradient buffer), periodic optimizer-state sync, and
  small per-step loss/metric copies;
* the host side needs only ~2 cores (the input pipeline), which is why
  the paper measures no benefit from additional CPU resources.

The run is structured as labeled *segments* — each epoch's train and
validation phase — of cycles spanning the least common multiple of
every per-step cadence (prefetch, gradient exchange, weight sync,
metric copies), so the segmented fast-forward engine
(:mod:`repro.des.fastforward`) certifies each phase's cycle once,
verifies later structurally identical phases with a single cycle, and
extrapolates everything else analytically. Jittered configurations
(the default: real NSys traces wobble) are ineligible and always run
in full; the profile records which happened in
:attr:`~repro.apps.base.AppProfile.fastforward`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

import numpy as np

from ...des import Environment, Event, quantize
from ...des.fastforward import (
    FastForwardInfo,
    SegmentedEpochMonitor,
    app_refusal_reason,
)
from ...faults import FaultPlan
from ...gpusim import CudaRuntime, KernelSpec
from ...hw import A100_SXM4_40GB, GPUSpec, MiB, PCIE_GEN4_X16, PCIeSpec
from ...network import SlackModel
from ...trace import CopyKind, EventKind
from ..base import AppProfile, publish_fastforward
from .model import CosmoFlowNet

__all__ = [
    "CosmoFlowProfileConfig",
    "profile_cosmoflow",
    "cosmoflow_cpu_runtime",
    "COSMOFLOW_REQUIRED_CORES",
    "LAUNCH_PHASE_FRACTION",
]

#: Cores CosmoFlow actually needs (paper: found by limiting resources).
COSMOFLOW_REQUIRED_CORES = 2

#: The paper's trace reading: kernel launching takes ~1/7 of the
#: sequence duration, happening in parallel with execution.
LAUNCH_PHASE_FRACTION = 1.0 / 7.0


@dataclass(frozen=True)
class CosmoFlowProfileConfig:
    """Configuration of one traced CosmoFlow run (mini dataset)."""

    batch_size: int = 4
    epochs: int = 5
    train_samples: int = 1024
    val_samples: int = 1024
    prefetch_batches: int = 4
    gradient_exchange_every: int = 2
    weight_sync_every: int = 4
    gpu: GPUSpec = field(default_factory=lambda: A100_SXM4_40GB)
    pcie: PCIeSpec = field(default_factory=lambda: PCIE_GEN4_X16)
    jitter: float = 0.08
    seed: int = 42

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.epochs <= 0:
            raise ValueError("batch_size and epochs must be positive")
        if self.train_samples <= 0 or self.val_samples < 0:
            raise ValueError("sample counts must be positive")
        if min(self.prefetch_batches, self.gradient_exchange_every,
               self.weight_sync_every) <= 0:
            raise ValueError("cadence parameters must be positive")

    @property
    def train_steps(self) -> int:
        """Optimizer steps per run."""
        return self.epochs * (self.train_samples // self.batch_size)

    @property
    def val_steps(self) -> int:
        """Validation (forward-only) steps per run."""
        return self.epochs * (self.val_samples // self.batch_size)


def profile_cosmoflow(
    config: Optional[CosmoFlowProfileConfig] = None,
    slack: Optional[SlackModel] = None,
    *,
    fast_forward: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
) -> AppProfile:
    """Run the traced CosmoFlow training and return its profile.

    Parameters
    ----------
    fast_forward:
        Steady-state fast-forward (default on): each train/validation
        phase certifies one cadence cycle bit-exactly and the rest is
        extrapolated analytically; phases structurally identical to an
        already-certified one verify after a single cycle. Same
        profile, O(warmup) events. Jittered configurations, non-base
        slack models, active fault plans and phases of fewer than
        :data:`~repro.des.fastforward.MIN_ITERATIONS` cycles always
        run the full simulation; ``profile.fastforward`` records what
        happened.
    faults:
        Optional :class:`~repro.faults.FaultPlan` degrading the fabric
        for this run. Active plans refuse fast-forward
        (``reason="faults-active"``).
    """
    config = config or CosmoFlowProfileConfig()
    slack_model = slack or SlackModel.none()
    env = Environment()
    injector = faults.compile(env) if faults is not None else None
    rt = CudaRuntime(
        env, gpu=config.gpu, pcie=config.pcie, slack=slack_model,
        faults=injector,
    )
    rng = np.random.default_rng(config.seed)
    net = CosmoFlowNet(batch_size=config.batch_size)

    train_kernels = net.training_step_kernels()
    val_kernels = net.validation_step_kernels()
    # Host op-dispatch cost per kernel, sized so the launch phase
    # covers LAUNCH_PHASE_FRACTION of the sequence's execution time.
    train_dispatch = (
        net.step_gpu_seconds(config.gpu, training=True)
        * LAUNCH_PHASE_FRACTION
        / len(train_kernels)
    )
    val_dispatch = (
        net.step_gpu_seconds(config.gpu, training=False)
        * LAUNCH_PHASE_FRACTION
        / len(val_kernels)
    )

    prefetch_bytes = (
        config.prefetch_batches * config.batch_size * net.sample_bytes()
    )
    gradient_bytes = 8 * MiB  # fused gradient buffer
    weight_bytes = int(
        3 * 4 * net.parameter_count()
    )  # weights + optimizer state
    loss_bytes = 4 * 1024
    counter_bytes = 4 * 1024
    summary_bytes = 100 * 1024
    metric_bytes = 300 * 1024

    def jittered(mean: float) -> float:
        if config.jitter == 0 or mean <= 0:
            return mean
        sigma = np.sqrt(np.log(1 + config.jitter**2))
        return float(rng.lognormal(np.log(mean) - sigma**2 / 2, sigma))

    # One cycle spans every per-step cadence below (prefetch, gradient
    # exchange, weight sync, the %2 metric copy), so steps at the same
    # offset within a cycle are structurally identical and only a
    # step's residue modulo the cycle affects its behavior.
    cycle_len = math.lcm(
        config.prefetch_batches,
        config.gradient_exchange_every,
        config.weight_sync_every,
        2,
    )

    def run_step(
        stream, kernels: List[KernelSpec], dispatch: float, step: int,
        training: bool,
    ) -> Generator[Event, Any, None]:
        # Input prefetch: one large staged H2D every prefetch_batches
        # steps (async — the pipeline keeps a buffer ahead).
        if step % config.prefetch_batches == 0:
            yield from rt.memcpy_async(prefetch_bytes, CopyKind.H2D, stream)
        # Dispatch the kernel sequence with per-op host cost
        # (tick-quantized like every simulated device delay, keeping
        # the run on the dyadic grid fast-forward needs).
        for spec in kernels:
            yield env.timeout(quantize(jittered(dispatch)))
            jk = KernelSpec(
                name=spec.name,
                duration_s=jittered(spec.execution_time(config.gpu)),
                meta=spec.meta,
            )
            yield from rt.launch(jk, stream)
        if training:
            if step % config.gradient_exchange_every == 0:
                yield from rt.memcpy(gradient_bytes, CopyKind.D2H, stream)
            if step % config.weight_sync_every == 0:
                yield from rt.memcpy(weight_bytes, CopyKind.D2H, stream)
        # Per-step small copies: loss scalar and step counters always,
        # training summaries and periodic metrics besides — together
        # the ~3.2 sub-MiB transfers per step Table III counts. The
        # host then waits for the sequence ("the CPU performs other
        # tasks in the background and waits for the sequence to
        # complete").
        yield from rt.memcpy(loss_bytes, CopyKind.D2H, stream)
        yield from rt.memcpy(counter_bytes, CopyKind.H2D, stream)
        if training:
            yield from rt.memcpy(summary_bytes, CopyKind.D2H, stream)
        if step % 2 == 0:
            yield from rt.memcpy(metric_bytes, CopyKind.D2H, stream)
        yield from rt.synchronize(stream=stream)

    steps_per_epoch_train = config.train_samples // config.batch_size
    steps_per_epoch_val = config.val_samples // config.batch_size
    max_cycles = max(
        steps_per_epoch_train // cycle_len, steps_per_epoch_val // cycle_len
    )
    enabled = True if fast_forward is None else bool(fast_forward)
    reason = "disabled" if not enabled else app_refusal_reason(
        slack_model,
        faults=injector,
        jitter=config.jitter,
        epochs=max_cycles,
    )
    monitor = SegmentedEpochMonitor(env, rt) if (
        enabled and reason is None
    ) else None

    def phase(
        stream, kernels: List[KernelSpec], dispatch: float, step0: int,
        steps: int, training: bool, label: str,
    ) -> Generator[Event, Any, None]:
        # ``step0`` is the phase's starting step in *full-run*
        # numbering (independent of any capping of earlier phases);
        # only its residue modulo the cycle affects per-step behavior,
        # so every step runs with its full-run cadence phase whether
        # or not the cycle loop below gets cut short.
        offset = step0 % cycle_len
        cycles = steps // cycle_len
        tail = steps % cycle_len
        if monitor is not None and cycles > 0:
            # Phases sharing (label, offset) are structurally
            # identical, so a certificate from one carries over.
            monitor.begin_segment((label, offset), cycles)
        cycle = 0
        while cycle < cycles:
            for j in range(cycle_len):
                yield from run_step(stream, kernels, dispatch, offset + j,
                                    training)
            cycle += 1
            if monitor is not None and monitor.cycle_done():
                break
        if monitor is not None and cycles > 0:
            monitor.end_segment()
        for j in range(tail):
            yield from run_step(stream, kernels, dispatch, offset + j,
                                training)

    def main() -> Generator[Event, Any, float]:
        t0 = env.now
        stream = rt.create_stream()
        step0 = 0
        for _epoch in range(config.epochs):
            yield from phase(stream, train_kernels, train_dispatch, step0,
                             steps_per_epoch_train, True, "train")
            step0 += steps_per_epoch_train
            yield from phase(stream, val_kernels, val_dispatch, step0,
                             steps_per_epoch_val, False, "val")
            step0 += steps_per_epoch_val
        yield from rt.synchronize()
        return env.now - t0

    main_proc = env.process(main(), name="cosmoflow-main")
    env.run()

    if monitor is not None and monitor.certified:
        ex = monitor.extrapolate(float(main_proc.value))
        runtime = ex.loop_runtime_s
        trace = ex.trace
        info = ex.info
    else:
        if monitor is not None:
            # Eligible but never certified: the run completed as a
            # full simulation on its own.
            reason = "no-fixed-point"
        runtime = float(main_proc.value)
        trace = rt.tracer.trace
        info = FastForwardInfo(enabled=enabled, certified=False, reason=reason)
    publish_fastforward(info)
    # Cheap on a SegmentedEpochTrace: counted from the compression
    # recipe without expanding the event list.
    api_calls = trace.count_kind(EventKind.API)
    # The paper's pessimistic parallelism: launches take ~1/7 of the
    # sequence, i.e. ~7 kernels deep; halved to 4 as the pessimistic
    # equivalent queue depth.
    parallelism = max(1, round(1.0 / LAUNCH_PHASE_FRACTION) // 2 + 1)
    return AppProfile(
        name="cosmoflow",
        trace=trace,
        runtime_s=runtime,
        queue_parallelism=parallelism,
        cuda_calls_per_second=api_calls / runtime,
        fastforward=info,
    )


def cosmoflow_cpu_runtime(
    cores: int,
    config: Optional[CosmoFlowProfileConfig] = None,
    gpu: GPUSpec = A100_SXM4_40GB,
) -> float:
    """Analytic runtime vs CPU-core allocation (paper Section IV-A).

    CosmoFlow's host side is a ~2-core input pipeline; the GPU path
    bounds the step time once those 2 cores are available, so runtime
    is flat above ``COSMOFLOW_REQUIRED_CORES`` and degrades below
    (the pipeline stops hiding behind the GPU).
    """
    if cores <= 0:
        raise ValueError("cores must be positive")
    config = config or CosmoFlowProfileConfig()
    gpu_time = (
        config.train_steps * CosmoFlowNet(config.batch_size).step_gpu_seconds(gpu)
        + config.val_steps
        * CosmoFlowNet(config.batch_size).step_gpu_seconds(gpu, training=False)
    )
    # Launch phase overlaps; the exposed host cost is the dispatch tail.
    gpu_path = gpu_time * (1.0 + LAUNCH_PHASE_FRACTION / 7.0)
    pipeline_full = gpu_time * 0.6  # input pipeline work at 2 cores
    effective = min(cores, COSMOFLOW_REQUIRED_CORES)
    pipeline = pipeline_full * COSMOFLOW_REQUIRED_CORES / effective
    return max(gpu_path, pipeline)
