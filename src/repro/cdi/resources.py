"""CDI resource inventory: CPU nodes, GPU chassis, pools.

In a composable system the schedulable units are no longer whole
heterogeneous nodes but *pools* of CPU nodes and GPU chassis that can
be wired together per job. These classes model that inventory plus
the PCIe-domain bookkeeping each chassis needs (Background, Sec II).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..hw import CPUSpec, EPYC_7413, GPUSpec, A100_SXM4_40GB, PCIeDomain

__all__ = ["CPUNode", "GPUChassis", "ResourcePool", "Composition"]

_composition_ids = itertools.count(1)


@dataclass
class CPUNode:
    """A CPU-only node contributing cores to compositions."""

    node_id: str
    spec: CPUSpec = field(default_factory=lambda: EPYC_7413)
    sockets: int = 1
    allocated_cores: int = 0

    @property
    def total_cores(self) -> int:
        """All physical cores on the node."""
        return self.spec.cores * self.sockets

    @property
    def free_cores(self) -> int:
        """Unallocated cores."""
        return self.total_cores - self.allocated_cores

    def allocate(self, cores: int) -> None:
        """Reserve ``cores`` on this node."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        if cores > self.free_cores:
            raise ValueError(
                f"node {self.node_id}: requested {cores} cores, "
                f"{self.free_cores} free"
            )
        self.allocated_cores += cores

    def release(self, cores: int) -> None:
        """Return ``cores`` to the node."""
        if cores <= 0 or cores > self.allocated_cores:
            raise ValueError(f"invalid release of {cores} cores")
        self.allocated_cores -= cores


@dataclass
class GPUChassis:
    """A chassis of pooled GPUs served over the CDI fabric.

    Each chassis is its own PCIe domain (the row-scale answer to bus
    enumeration); GPUs power down when unallocated — the efficiency
    benefit the paper's introduction highlights.
    """

    chassis_id: str
    gpu_count: int = 8
    gpu_spec: GPUSpec = field(default_factory=lambda: A100_SXM4_40GB)
    rack: int = 0
    allocated: Set[int] = field(default_factory=set)
    powered_on: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.gpu_count <= 0:
            raise ValueError("gpu_count must be positive")
        self.domain = PCIeDomain(domain_id=hash(self.chassis_id) & 0xFFFF)

    @property
    def free_gpus(self) -> int:
        """Unallocated GPUs in the chassis."""
        return self.gpu_count - len(self.allocated)

    def allocate(self, count: int) -> List[int]:
        """Reserve (and power on) ``count`` GPUs; returns their slots."""
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self.free_gpus:
            raise ValueError(
                f"chassis {self.chassis_id}: requested {count} GPUs, "
                f"{self.free_gpus} free"
            )
        slots = [i for i in range(self.gpu_count) if i not in self.allocated]
        taken = slots[:count]
        self.allocated.update(taken)
        self.powered_on.update(taken)
        return taken

    def release(self, slots: List[int]) -> None:
        """Return (and power down) the given GPU slots."""
        for s in slots:
            if s not in self.allocated:
                raise ValueError(f"slot {s} is not allocated")
        for s in slots:
            self.allocated.discard(s)
            self.powered_on.discard(s)

    def idle_power_fraction(self) -> float:
        """Fraction of the chassis' GPUs burning idle power.

        Zero for CDI (unallocated GPUs power off); contrast with
        trapped GPUs in traditional nodes, which cannot power down.
        """
        return len(self.powered_on - self.allocated) / self.gpu_count


@dataclass
class Composition:
    """One composed allocation: cores from nodes + GPUs from chassis."""

    job: str
    cores: Dict[str, int] = field(default_factory=dict)  # node_id -> cores
    gpus: Dict[str, List[int]] = field(default_factory=dict)  # chassis -> slots
    composition_id: int = field(default_factory=lambda: next(_composition_ids))

    @property
    def total_cores(self) -> int:
        """Cores across all contributing nodes."""
        return sum(self.cores.values())

    @property
    def total_gpus(self) -> int:
        """GPUs across all contributing chassis."""
        return sum(len(slots) for slots in self.gpus.values())

    @property
    def cores_per_gpu(self) -> float:
        """The composed CPU:GPU ratio (inf for CPU-only jobs)."""
        if self.total_gpus == 0:
            return float("inf")
        return self.total_cores / self.total_gpus


class ResourcePool:
    """The schedulable inventory of a CDI system."""

    def __init__(
        self,
        nodes: Optional[List[CPUNode]] = None,
        chassis: Optional[List[GPUChassis]] = None,
    ) -> None:
        self.nodes: Dict[str, CPUNode] = {n.node_id: n for n in nodes or []}
        self.chassis: Dict[str, GPUChassis] = {
            c.chassis_id: c for c in chassis or []
        }
        if len(self.nodes) != len(nodes or []):
            raise ValueError("duplicate node ids")
        if len(self.chassis) != len(chassis or []):
            raise ValueError("duplicate chassis ids")

    # -- aggregate queries ---------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """All cores in the pool."""
        return sum(n.total_cores for n in self.nodes.values())

    @property
    def free_cores(self) -> int:
        """Unallocated cores."""
        return sum(n.free_cores for n in self.nodes.values())

    @property
    def total_gpus(self) -> int:
        """All GPUs in the pool."""
        return sum(c.gpu_count for c in self.chassis.values())

    @property
    def free_gpus(self) -> int:
        """Unallocated GPUs."""
        return sum(c.free_gpus for c in self.chassis.values())

    def add_node(self, node: CPUNode) -> None:
        """Register a CPU node."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node {node.node_id}")
        self.nodes[node.node_id] = node

    def add_chassis(self, chassis: GPUChassis) -> None:
        """Register a GPU chassis."""
        if chassis.chassis_id in self.chassis:
            raise ValueError(f"duplicate chassis {chassis.chassis_id}")
        self.chassis[chassis.chassis_id] = chassis
