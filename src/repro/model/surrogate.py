"""Surrogate fitting machinery: training series and error bounds.

The serving layer (:mod:`repro.serve`) answers penalty queries from a
fitted surrogate instead of a DES run. This module owns the *math* of
that surrogate, kept below the serving layer so the model package can
validate it against sweeps directly:

* :func:`extract_training_series` turns measured
  :class:`~repro.proxy.SweepPoint` collections (a
  :class:`~repro.proxy.SweepResult` or a
  :class:`~repro.proxy.SlackResponseSurface`) into per-
  ``(matrix_size, threads)`` training grids, canonicalized through the
  shared slack quantization (:mod:`repro.proxy.quantize`) so the
  surrogate, the surface and ``SweepResult.get`` agree on what counts
  as one grid point.
* :func:`interp_penalty` is the one log-linear interpolation rule —
  the same rule :class:`~repro.proxy.SlackResponseSurface` applies and
  :mod:`repro.model.adaptive` certifies against, which is what makes
  surrogate predictions bit-identical to surface lookups at measured
  points.
* :func:`crossval_bounds` computes per-region (per slack-interval)
  error bounds by leave-one-out cross-validation: hold out each
  interior grid point, predict it from its neighbours, and let each
  interval inherit the worst deviation observed in its neighbourhood
  (times a safety factor). Like the adaptive sweep's certification,
  this is a sampling argument, not a proof — it holds for the smooth
  monotone penalty curves the calibrated proxy produces, and the
  serving tests pin exactly that regime.

An optional monotone PCHIP fit (shape-preserving cubic in log-slack,
via scipy when present) is exposed through ``method="pchip"``; the
default stays ``"loglinear"`` because only that rule is exactly the
surface's own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..proxy.quantize import slack_bucket
from ..proxy.response import SlackResponseSurface
from ..proxy.sweep import SweepPoint, SweepResult

try:  # pragma: no cover - exercised only where scipy is present
    from scipy.interpolate import PchipInterpolator

    PCHIP_AVAILABLE = True
except Exception:  # pragma: no cover - scipy genuinely absent
    PchipInterpolator = None
    PCHIP_AVAILABLE = False

__all__ = [
    "BOUND_SAFETY_FACTOR",
    "PCHIP_AVAILABLE",
    "SURROGATE_METHODS",
    "TrainingSeries",
    "crossval_bounds",
    "extract_training_series",
    "interp_penalty",
]

#: Interpolation rules a surrogate can be fit with. ``loglinear`` is
#: the surface's own rule (exact parity); ``pchip`` is a monotone
#: shape-preserving cubic in log-slack (needs scipy; falls back to
#: loglinear with a recorded reason when scipy is missing).
SURROGATE_METHODS = ("loglinear", "pchip")

#: Cross-validated interval bounds are observed deviations, not
#: proofs; the safety factor widens them so a *held-out* measured
#: point (whose own deviation the reduced fit never saw) still lands
#: inside the reported bound for the smooth response curves the proxy
#: produces.
BOUND_SAFETY_FACTOR = 2.0


def interp_penalty(
    s_lo: float, p_lo: float, s_hi: float, p_hi: float, slack_s: float
) -> float:
    """Log-linear penalty interpolation — the surface's own rule."""
    if slack_s <= s_lo:
        return p_lo
    if slack_s >= s_hi:
        return p_hi
    t = (math.log(slack_s) - math.log(s_lo)) / (
        math.log(s_hi) - math.log(s_lo)
    )
    return p_lo + t * (p_hi - p_lo)


@dataclass(frozen=True)
class TrainingSeries:
    """One fitted ``(matrix_size, threads)`` series of the surrogate.

    ``slacks`` is the ascending positive-slack grid (canonical
    spellings, duplicates merged by shared bucket), ``penalties`` the
    clamped (``max(0, .)``) penalties downstream consumers read, and
    ``interval_bounds`` the cross-validated error bound of each of the
    ``len(slacks) - 1`` inter-point intervals (``inf`` where the
    series is too short to cross-validate).
    """

    matrix_size: int
    threads: int
    slacks: np.ndarray
    penalties: np.ndarray
    interval_bounds: np.ndarray

    def __post_init__(self) -> None:
        if len(self.slacks) != len(self.penalties):
            raise ValueError("slacks and penalties must align")
        if len(self.interval_bounds) != max(0, len(self.slacks) - 1):
            raise ValueError("need one bound per slack interval")
        if len(self.slacks) and self.slacks[0] <= 0:
            raise ValueError("training slacks must be positive")

    @property
    def viable(self) -> bool:
        """Whether the series has enough points to interpolate."""
        return len(self.slacks) >= 2

    def pchip(self) -> Optional[Callable[[np.ndarray], np.ndarray]]:
        """Monotone PCHIP fit in log-slack, or ``None`` without scipy."""
        if not PCHIP_AVAILABLE or not self.viable:
            return None
        return PchipInterpolator(
            np.log(self.slacks), self.penalties, extrapolate=False
        )


def crossval_bounds(
    slacks: np.ndarray,
    penalties: np.ndarray,
    *,
    safety: float = BOUND_SAFETY_FACTOR,
) -> np.ndarray:
    """Per-interval error bounds by leave-one-out cross-validation.

    For every interior grid point ``i`` the deviation
    ``|p_i - interp(s_{i-1}, p_{i-1}, s_{i+1}, p_{i+1}, s_i)|`` is the
    error the surrogate *would* have made had ``i`` not been measured.
    Each of the ``n - 1`` intervals reports ``safety`` times the worst
    deviation among the interior points adjacent to it (both endpoints
    and their immediate neighbours), so the bound reflects the local
    curvature rather than one global worst case. Series with fewer
    than 3 points have no interior point to hold out: every interval
    bound is ``inf`` (predictions there are still served, explicitly
    uncertified).
    """
    n = len(slacks)
    if n < 2:
        return np.zeros(0)
    if n < 3:
        return np.full(n - 1, np.inf)
    deviations = np.empty(n - 2)
    for i in range(1, n - 1):
        predicted = interp_penalty(
            float(slacks[i - 1]), float(penalties[i - 1]),
            float(slacks[i + 1]), float(penalties[i + 1]),
            float(slacks[i]),
        )
        deviations[i - 1] = abs(float(penalties[i]) - predicted)
    bounds = np.empty(n - 1)
    for j in range(n - 1):
        # Interior points i = 1 .. n-2 map to deviations[i - 1]; the
        # window for interval (j, j+1) covers the held-out deviations
        # at its endpoints and their immediate neighbours.
        lo = max(1, j - 1)
        hi = min(n - 2, j + 2)
        bounds[j] = safety * float(deviations[lo - 1:hi].max())
    return bounds


def extract_training_series(
    source: Union[SweepResult, SlackResponseSurface, Sequence[SweepPoint]],
    *,
    safety: float = BOUND_SAFETY_FACTOR,
) -> List[TrainingSeries]:
    """Training series for every measured ``(matrix_size, threads)``.

    Accepts a :class:`~repro.proxy.SweepResult`, a
    :class:`~repro.proxy.SlackResponseSurface` (its retained points),
    or a plain sequence of :class:`~repro.proxy.SweepPoint`. Zero-
    slack baselines are dropped (the surrogate answers them exactly as
    0.0 without a series), penalties are clamped at 0 — the quantity
    every downstream consumer reads through the surface — and slack
    values falling in one shared quantization bucket collapse to the
    first-recorded spelling, exactly like ``SweepResult.get``'s
    near-miss index.
    """
    if isinstance(source, SlackResponseSurface):
        points: Sequence[SweepPoint] = list(source.iter_points())
    elif isinstance(source, SweepResult):
        points = source.points
    else:
        points = list(source)

    grouped: Dict[Tuple[int, int], Dict[str, SweepPoint]] = {}
    for p in points:
        if p.slack_s <= 0:
            continue
        series = grouped.setdefault((p.matrix_size, p.threads), {})
        series.setdefault(slack_bucket(p.slack_s), p)

    out: List[TrainingSeries] = []
    for (matrix_size, threads), by_bucket in sorted(grouped.items()):
        pts = sorted(by_bucket.values(), key=lambda p: p.slack_s)
        slacks = np.array([p.slack_s for p in pts])
        penalties = np.array([max(0.0, p.penalty) for p in pts])
        out.append(
            TrainingSeries(
                matrix_size=matrix_size,
                threads=threads,
                slacks=slacks,
                penalties=penalties,
                interval_bounds=crossval_bounds(
                    slacks, penalties, safety=safety
                ),
            )
        )
    return out
