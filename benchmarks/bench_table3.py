"""Benchmark: regenerate Table III (transfer-size binning)."""

import pytest

from repro.experiments import run_experiment


def test_bench_table3(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("table3", ctx), rounds=1, iterations=1
    )
    print_result(result)
    rows = {row[0]: row for row in result.tables[0].rows}
    # Means near the paper's 16.85 / 34.4 MiB.
    assert rows["lammps"][6] == pytest.approx(16.85, rel=0.25)
    assert rows["cosmoflow"][6] == pytest.approx(34.4, rel=0.35)
