"""CUDA-style streams: in-order device work queues.

Operations enqueued on one stream execute in submission order; work on
different streams overlaps subject to engine availability. Each
stream runs a dispatcher process that pulls operations and drives the
appropriate engine; completion events let the host (or CUDA events)
wait on individual operations or on the whole stream draining.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Union

from ..des import Environment, Event, Store
from ..trace import CopyKind, EventKind, Tracer
from .engines import ComputeEngine, CopyEngine, ExecutionReceipt
from .kernels import KernelSpec

__all__ = ["Stream", "KernelOp", "CopyOp", "MarkerOp"]

_op_ids = itertools.count(1)


@dataclass
class _BaseOp:
    """Common bookkeeping for device operations."""

    completion: Event
    thread: int = 0
    correlation_id: int = 0
    op_id: int = field(default_factory=lambda: next(_op_ids))
    receipt: Optional[ExecutionReceipt] = None


@dataclass
class KernelOp(_BaseOp):
    """A kernel launch awaiting execution."""

    kernel: Optional[KernelSpec] = None


@dataclass
class CopyOp(_BaseOp):
    """A memcpy awaiting a DMA engine."""

    nbytes: int = 0
    copy_kind: CopyKind = CopyKind.H2D
    transfer_time: float = 0.0


@dataclass
class MarkerOp(_BaseOp):
    """A no-work marker (CUDA event record) that completes in order."""


Op = Union[KernelOp, CopyOp, MarkerOp]


class Stream:
    """One in-order work queue on a simulated GPU."""

    def __init__(
        self,
        env: Environment,
        stream_id: int,
        compute: ComputeEngine,
        copy_h2d: CopyEngine,
        copy_d2h: CopyEngine,
        tracer: Tracer,
        gpu_execution_time: Any,
        max_depth: int = 1024,
    ) -> None:
        self.env = env
        self.stream_id = stream_id
        self._compute = compute
        self._copy = {CopyKind.H2D: copy_h2d, CopyKind.D2H: copy_d2h}
        self._tracer = tracer
        self._execution_time = gpu_execution_time
        self._queue: Store[Op] = Store(env, capacity=max_depth)
        self._in_flight: Optional[Op] = None
        self._drain_waiters: List[Event] = []
        # Explicit outstanding-op counter: an op handed from the Store
        # to the dispatcher's pending get() is otherwise momentarily
        # invisible to both the queue and _in_flight.
        self._outstanding = 0
        self.ops_retired = 0
        env.process(self._dispatch(), name=f"stream{stream_id}-dispatch")

    # -- host-facing ------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Operations submitted but not yet retired."""
        return self._outstanding

    @property
    def idle(self) -> bool:
        """Whether the stream has no queued or executing work."""
        return self.pending == 0

    def submit(self, op: Op) -> Event:
        """Enqueue an operation; returns the put-event (back-pressure)."""
        self._outstanding += 1
        return self._queue.put(op)

    def drained(self) -> Event:
        """An event that fires when the stream has fully drained."""
        evt = self.env.event()
        if self.idle:
            evt.succeed(None)
        else:
            self._drain_waiters.append(evt)
        return evt

    # -- dispatcher ---------------------------------------------------------------
    def _dispatch(self) -> Generator[Event, Any, None]:
        while True:
            op = yield self._queue.get()
            self._in_flight = op
            if isinstance(op, KernelOp):
                yield from self._run_kernel(op)
            elif isinstance(op, CopyOp):
                yield from self._run_copy(op)
            else:
                op.receipt = None
            self._in_flight = None
            self._outstanding -= 1
            self.ops_retired += 1
            op.completion.succeed(op)
            if self.idle and self._drain_waiters:
                waiters, self._drain_waiters = self._drain_waiters, []
                for evt in waiters:
                    evt.succeed(None)

    def _run_kernel(self, op: KernelOp) -> Generator[Event, Any, None]:
        assert op.kernel is not None
        busy = self._execution_time(op.kernel)
        execute_kernel = getattr(self._compute, "execute_kernel", None)
        if execute_kernel is not None:
            receipt = yield from execute_kernel(busy, op.kernel.sm_fraction)
        else:
            receipt = yield from self._compute.execute(busy)
        op.receipt = receipt
        self._tracer.record(
            EventKind.KERNEL,
            op.kernel.name,
            receipt.start,
            receipt.end,
            stream=self.stream_id,
            correlation_id=op.correlation_id,
            thread=op.thread,
            meta={
                "starvation_cost": receipt.starvation_cost,
                **op.kernel.meta,
            },
        )

    def _run_copy(self, op: CopyOp) -> Generator[Event, Any, None]:
        engine = self._copy[op.copy_kind]
        receipt = yield from engine.copy(op.nbytes, op.transfer_time)
        op.receipt = receipt
        self._tracer.record(
            EventKind.MEMCPY,
            f"memcpy{op.copy_kind.value}",
            receipt.start,
            receipt.end,
            stream=self.stream_id,
            nbytes=op.nbytes,
            copy_kind=op.copy_kind,
            correlation_id=op.correlation_id,
            thread=op.thread,
        )
