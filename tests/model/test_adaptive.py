"""Error-bounded adaptive sweep refinement vs the dense ground truth."""

import numpy as np
import pytest

from repro.model import DEFAULT_TOL, adaptive_slack_sweep
from repro.model.adaptive import _interp_penalty
from repro.obs import collecting
from repro.proxy import SlackResponseSurface, run_slack_sweep

SIZES = (2**11, 2**13)
THREADS = (1, 2)
UNIFORM_GRID = list(np.logspace(-6, -2, 17))


def _worst_predicted_deviation(res, dense):
    """Max |predicted - dense| clamped penalty over predicted points."""
    worst = 0.0
    for p in res.dense.points:
        if res.bounds[(p.matrix_size, p.threads, p.slack_s)] == 0.0:
            continue
        q = dense.get(p.matrix_size, p.threads, p.slack_s)
        worst = max(
            worst, abs(max(0.0, p.penalty) - max(0.0, q.penalty))
        )
    return worst


class TestParity:
    def test_measured_points_bit_identical_to_dense(self):
        dense = run_slack_sweep(
            matrix_sizes=SIZES, slack_values_s=UNIFORM_GRID,
            threads=THREADS, iterations=25,
        )
        res = adaptive_slack_sweep(
            SIZES, UNIFORM_GRID, threads=THREADS, iterations=25
        )
        assert res.measured.points  # sanity: something was measured
        for p in res.measured.points:
            assert p == dense.get(p.matrix_size, p.threads, p.slack_s)

    def test_predicted_within_tol_on_uniform_grid(self):
        dense = run_slack_sweep(
            matrix_sizes=SIZES, slack_values_s=UNIFORM_GRID,
            threads=THREADS, iterations=25,
        )
        res = adaptive_slack_sweep(
            SIZES, UNIFORM_GRID, threads=THREADS, iterations=25, tol=1e-3
        )
        assert res.predicted_points > 0
        assert _worst_predicted_deviation(res, dense) <= 1e-3

    @pytest.mark.parametrize("seed", [0, 3, 7, 9])
    def test_predicted_within_tol_on_seeded_random_grids(self, seed):
        # Random log-uniform grids; single-thread series (the smooth
        # regime the certification bound covers — see the module
        # docstring on multi-thread beat effects at tiny iteration
        # counts).
        rng = np.random.default_rng(seed)
        grid = sorted(10 ** rng.uniform(-6, -2, 21))
        dense = run_slack_sweep(
            matrix_sizes=SIZES, slack_values_s=grid, threads=(1,), iterations=25
        )
        res = adaptive_slack_sweep(
            SIZES, grid, threads=(1,), iterations=25, tol=1e-3
        )
        assert res.predicted_points > 0
        assert _worst_predicted_deviation(res, dense) <= 1e-3

    def test_dense_result_covers_full_grid_with_bounds(self):
        res = adaptive_slack_sweep(
            SIZES, UNIFORM_GRID, threads=THREADS, iterations=25
        )
        n = len(UNIFORM_GRID)
        assert len(res.dense.points) == len(SIZES) * len(THREADS) * n
        for p in res.dense.points:
            key = (p.matrix_size, p.threads, p.slack_s)
            assert key in res.bounds
            assert res.error_bound(*key) >= 0.0
        # Measured points carry an exact-zero bound (predicted points
        # in flat zero-penalty regions can too, so >= not ==).
        for p in res.measured.points:
            assert res.error_bound(p.matrix_size, p.threads, p.slack_s) == 0.0
        zero_bounds = sum(1 for b in res.bounds.values() if b == 0.0)
        assert zero_bounds >= len(res.measured.points)
        assert res.max_error >= 0.0

    def test_surface_reproduces_predictions(self):
        # Feeding the dense result to the response surface returns the
        # adaptive predictions exactly: the synthesized points inverted
        # the same clamped log-linear interpolation the surface applies.
        res = adaptive_slack_sweep(
            SIZES, UNIFORM_GRID, threads=(1,), iterations=25
        )
        surface = SlackResponseSurface(res.dense)
        for p in res.dense.points:
            assert surface.penalty(
                p.matrix_size, p.slack_s, p.threads
            ) == pytest.approx(max(0.0, p.penalty), abs=1e-12)


class TestEconomy:
    def test_measures_at_most_40_percent_of_dense_grid(self):
        # The acceptance grid: the paper's sizes and threads on a
        # 33-point slack grid. The adaptive sweep must resolve it from
        # at most 40% of the dense points.
        res = adaptive_slack_sweep(
            (2**9, 2**11, 2**13, 2**15),
            list(np.logspace(-6, -2, 33)),
            threads=(1, 2, 4, 8),
            iterations=40,
        )
        assert res.measured_fraction <= 0.40
        assert res.predicted_points > res.refined_points
        # OOM series (2^15 above 2 threads) are skipped like the dense
        # sweep skips them.
        skipped_keys = {(n, t) for n, t, _ in res.dense.skipped}
        assert (2**15, 4) in skipped_keys and (2**15, 8) in skipped_keys

    def test_point_cache_shared_with_dense_sweeps(self, tmp_path):
        from repro.parallel import PointCache

        cache = PointCache(tmp_path / "points")
        res = adaptive_slack_sweep(
            (2**11,), UNIFORM_GRID, threads=(1,), iterations=25, cache=cache
        )
        assert res.measured.timing.cached == 0
        # A dense sweep over the same grid reuses every adaptive point.
        dense = run_slack_sweep(
            matrix_sizes=(2**11,), slack_values_s=UNIFORM_GRID,
            threads=(1,), iterations=25, cache=cache,
        )
        assert dense.timing.cached == res.measured_grid_points
        for p in res.measured.points:
            assert p == dense.get(p.matrix_size, p.threads, p.slack_s)


class TestWiring:
    def test_run_slack_sweep_adaptive_returns_dense_view(self):
        res = adaptive_slack_sweep(
            (2**11,), UNIFORM_GRID, threads=(1,), iterations=25
        )
        via_sweep = run_slack_sweep(
            matrix_sizes=(2**11,), slack_values_s=UNIFORM_GRID,
            threads=(1,), iterations=25, adaptive=True,
        )
        assert via_sweep.points == res.dense.points

    def test_tol_requires_adaptive(self):
        with pytest.raises(ValueError, match="adaptive"):
            run_slack_sweep(
                matrix_sizes=(2**11,), slack_values_s=[1e-5, 1e-4],
                iterations=25, tol=1e-3,
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            adaptive_slack_sweep((2**11,), [1e-5], iterations=25, tol=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            adaptive_slack_sweep((2**11,), [], iterations=25)
        with pytest.raises(ValueError, match="positive slack"):
            adaptive_slack_sweep((2**11,), [0.0, 1e-5], iterations=25)

    def test_metrics_published(self):
        with collecting() as reg:
            res = adaptive_slack_sweep(
                (2**11,), UNIFORM_GRID, threads=(1,), iterations=25
            )
        assert reg.counter("sweep.adaptive.seed_points").value == (
            res.seed_points
        )
        assert reg.counter("sweep.adaptive.refined_points").value == (
            res.refined_points
        )
        assert reg.counter("sweep.adaptive.skipped_points").value == (
            res.predicted_points
        )
        assert reg.counter("sweep.runs").value == 1
        assert res.dense.report is not None
        assert res.dense.report.meta["adaptive"] is True
        assert res.dense.report.meta["tol"] == DEFAULT_TOL

    def test_interp_endpoints_exact(self):
        assert _interp_penalty(1e-5, 0.1, 1e-3, 0.3, 1e-5) == 0.1
        assert _interp_penalty(1e-5, 0.1, 1e-3, 0.3, 1e-3) == 0.3
        mid = _interp_penalty(1e-5, 0.1, 1e-3, 0.3, 1e-4)
        assert mid == pytest.approx(0.2)
