"""Section IV-A OpenMP results: threads 1-6 at 8 processes, box >= 60.

Also covers the box-200 experiment (GPU memory saturated): 48 cores
beat 24 cores, motivating CDI's whole-CPU-node + single-GPU shape.
"""

from __future__ import annotations

from ..apps.lammps import LJParams, LammpsScalingModel
from .context import ExperimentContext
from .report import ExperimentResult, Series, Table

__all__ = ["run", "THREAD_GRID", "OMP_BOX_SIZES"]

#: Threads per process swept (hyper-threading unused: 8 x 6 = 48 cores).
THREAD_GRID = (1, 2, 3, 4, 5, 6)
#: Box sizes the OpenMP sweep covers (>= 60 per the paper).
OMP_BOX_SIZES = (60, 80, 100, 120)


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce the OpenMP thread-scaling results of Section IV-A."""
    model = LammpsScalingModel()
    series = Series(
        title="OpenMP scaling at 8 MPI processes (normalized to 1 thread)",
        x_label="OpenMP threads per process",
        y_label="runtime normalized to 1 thread",
        x=[float(t) for t in THREAD_GRID],
    )
    for box in OMP_BOX_SIZES:
        params = LJParams(box)
        base = model.runtime(params, 8, 1)
        series.add_line(
            f"Box Size {box}",
            [model.runtime(params, 8, t) / base for t in THREAD_GRID],
        )

    p120 = LJParams(120)
    romp = model.runtime(p120, 8, 6) / model.runtime(p120, 8, 1)
    agg = model.runtime(p120, 8, 6) / model.runtime(p120, 1, 1)

    p200 = LJParams(200)
    t48 = model.runtime(p200, 24, 2)
    t24 = model.runtime(p200, 12, 2)
    table = Table(
        title="Section IV-A headline numbers",
        headers=["quantity", "measured", "paper"],
    )
    table.add_row("box 120: 6 threads vs 1 (8 procs)",
                  f"{100 * (1 - romp):.1f}% faster", "52.3% faster")
    table.add_row("box 120: aggregate vs single core",
                  f"{100 * (1 - agg):.1f}% faster", "76.4% faster")
    table.add_row("box 200: 48 cores vs 24 cores",
                  f"{100 * (1 - t48 / t24):.1f}% faster", "24.3% faster")
    table.notes.append(
        "box 200 gain is directionally reproduced; the magnitude is "
        "sensitive to the thread-efficiency roll-off (see EXPERIMENTS.md)"
    )
    return ExperimentResult(
        experiment_id="omp_scaling", tables=[table], series=[series]
    )
