"""Tests for the Markdown export of experiment results."""

import pytest

from repro.experiments import results_to_markdown, write_markdown_report
from repro.experiments.export import series_to_markdown, table_to_markdown
from repro.experiments.report import ExperimentResult, Series, Table


def sample_table():
    t = Table(title="T", headers=["a", "b"], notes=["a note"])
    t.add_row(1, 2.5)
    t.add_row(3, 4.0)
    return t


def sample_series():
    s = Series(title="S", x_label="x", y_label="y", x=[1.0, 2.0])
    s.add_line("line1", [10.0, None])
    return s


class TestTableToMarkdown:
    def test_pipe_table_structure(self):
        md = table_to_markdown(sample_table())
        lines = md.splitlines()
        assert lines[0] == "**T**"
        assert "| a | b |" in md
        assert "| 1 | 2.5 |" in md
        assert "> a note" in md

    def test_separator_matches_columns(self):
        md = table_to_markdown(sample_table())
        sep = [l for l in md.splitlines() if l and set(l) <= {"|", "-"}][0]
        assert sep.count("---") == 2


class TestSeriesToMarkdown:
    def test_series_rows(self):
        md = series_to_markdown(sample_series())
        assert "| series | 1 | 2 |" in md
        assert "| line1 | 10 | – |" in md
        assert "*x = x; y = y*" in md


class TestResultsToMarkdown:
    def test_full_document(self):
        result = ExperimentResult(
            experiment_id="exp1",
            tables=[sample_table()],
            series=[sample_series()],
            notes=["important"],
        )
        md = results_to_markdown([result], title="My Report")
        assert md.startswith("# My Report")
        assert "## exp1" in md
        assert "> **NOTE:** important" in md
        assert md.endswith("\n")

    def test_write_report(self, tmp_path):
        result = ExperimentResult(experiment_id="e", tables=[sample_table()])
        path = write_markdown_report([result], tmp_path / "r.md")
        assert path.exists()
        assert "## e" in path.read_text()


class TestCliOutputFlag:
    def test_run_with_output(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["run", "table1", "--output", str(out)]) == 0
        assert out.exists()
        text = out.read_text()
        assert "## table1" in text
        assert "| Box Size |" in text
