"""The slack response surface: penalty as f(matrix size, slack, threads).

Wraps a :class:`SweepResult` into an interpolating lookup that the
prediction model (Equations 2-3) queries: given a kernel-duration or
transfer-size bin mapped to a proxy matrix size, what slack penalty
does the proxy predict at a target slack value and queue parallelism?

Interpolation is log-linear in slack (the grid spans decades) and the
thread axis falls back to the nearest measured count.

Slack indexing goes through the shared quantization
(:mod:`repro.proxy.quantize`): points whose slack values share a
bucket collapse to the first-recorded spelling when the surface is
built, and a query slack within :func:`~repro.proxy.quantize
.slack_tolerance` of a measured grid point answers with that point's
penalty exactly — the same near-miss rule ``SweepResult.get`` applies,
so the two lookups can no longer disagree at bucket boundaries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .quantize import same_slack, slack_bucket
from .sweep import SweepPoint, SweepResult

__all__ = ["SlackResponseSurface"]


class SlackResponseSurface:
    """Queryable slack-penalty surface built from proxy sweeps."""

    def __init__(self, sweep: SweepResult) -> None:
        if not sweep.points:
            raise ValueError("sweep has no measured points")
        buckets: Dict[Tuple[int, int], Dict[str, SweepPoint]] = {}
        for p in sweep.points:
            series = buckets.setdefault((p.matrix_size, p.threads), {})
            # First spelling of a bucket wins, matching SweepResult's
            # near-miss index — re-measured float spellings of one grid
            # point must not grow duplicate series entries.
            series.setdefault(slack_bucket(p.slack_s), p)
        self._series: Dict[Tuple[int, int], List[SweepPoint]] = {
            key: sorted(series.values(), key=lambda p: p.slack_s)
            for key, series in buckets.items()
        }

    # -- introspection --------------------------------------------------------
    def matrix_sizes(self, threads: Optional[int] = None) -> List[int]:
        """Matrix sizes available (optionally for one thread count)."""
        sizes = {
            n for (n, t) in self._series if threads is None or t == threads
        }
        return sorted(sizes)

    def thread_counts(self) -> List[int]:
        """Thread counts available."""
        return sorted({t for (_, t) in self._series})

    def slack_values(self, matrix_size: int, threads: int) -> List[float]:
        """Slack grid measured for one series."""
        key = self._resolve(matrix_size, threads)
        return [p.slack_s for p in self._series[key]]

    # -- queries ---------------------------------------------------------------
    def penalty(self, matrix_size: int, slack_s: float, threads: int = 1) -> float:
        """Fractional starvation penalty at one surface point.

        ``matrix_size`` must be on the measured grid (binning happens
        upstream in :mod:`repro.model.binning`); slack is interpolated
        log-linearly between grid points and clamped at the ends;
        ``threads`` falls back to the nearest measured count.
        """
        if slack_s < 0:
            raise ValueError("slack_s must be non-negative")
        if slack_s == 0:
            return 0.0
        key = self._resolve(matrix_size, threads)
        series = self._series[key]
        slacks = np.array([p.slack_s for p in series])
        penalties = np.array([max(0.0, p.penalty) for p in series])
        # Near-miss snap: a query within the shared quantization
        # tolerance of a measured point is that point (SweepResult.get
        # semantics), not an interpolation across it.
        idx = int(np.searchsorted(slacks, slack_s))
        for j in (idx - 1, idx):
            if 0 <= j < len(slacks) and same_slack(float(slacks[j]), slack_s):
                return float(penalties[j])
        if slack_s <= slacks[0]:
            # Below the measured grid: scale the first point linearly
            # down to zero (penalty is linear in slack in this regime).
            return float(penalties[0] * slack_s / slacks[0])
        if slack_s >= slacks[-1]:
            return float(penalties[-1])
        # Log-linear interpolation between bracketing grid points.
        return float(
            np.interp(np.log(slack_s), np.log(slacks), penalties)
        )

    def normalized_runtime(
        self, matrix_size: int, slack_s: float, threads: int = 1
    ) -> float:
        """Equation-1-corrected normalized runtime (1 + penalty)."""
        return 1.0 + self.penalty(matrix_size, slack_s, threads)

    def nearest_sizes(self, value: int, threads: int = 1) -> Tuple[int, int]:
        """Bracket ``value`` by measured matrix sizes (lower, upper).

        Used by the model's binning to produce the paper's lower/upper
        slack-penalty bounds; values off either end clamp to the
        nearest size on both slots.
        """
        sizes = self.matrix_sizes(threads)
        lower = max((s for s in sizes if s <= value), default=sizes[0])
        upper = min((s for s in sizes if s >= value), default=sizes[-1])
        return lower, upper

    def iter_points(self) -> Iterator[SweepPoint]:
        """The retained (bucket-deduplicated) measured points.

        Series order is sorted ``(matrix_size, threads)``, points
        ascending in slack — the canonical training-data extraction
        order for the serving surrogate.
        """
        for key in sorted(self._series):
            yield from self._series[key]

    # -- persistence --------------------------------------------------------------
    def to_json(self, path: Union[str, Path]) -> None:
        """Cache the surface to a JSON file."""
        doc = [
            {
                "matrix_size": p.matrix_size,
                "threads": p.threads,
                "slack_s": p.slack_s,
                "loop_runtime_s": p.loop_runtime_s,
                "corrected_runtime_s": p.corrected_runtime_s,
                "baseline_runtime_s": p.baseline_runtime_s,
                "iterations": p.iterations,
                "kernel_time_s": p.kernel_time_s,
            }
            for series in self._series.values()
            for p in series
        ]
        Path(path).write_text(json.dumps(doc, indent=1))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "SlackResponseSurface":
        """Load a surface cached by :meth:`to_json`."""
        doc = json.loads(Path(path).read_text())
        sweep = SweepResult()
        for item in doc:
            sweep.add(SweepPoint(**item))
        return cls(sweep)

    # -- internals ---------------------------------------------------------------
    def _resolve(self, matrix_size: int, threads: int) -> Tuple[int, int]:
        available_threads = sorted(
            {t for (n, t) in self._series if n == matrix_size}
        )
        if not available_threads:
            raise KeyError(
                f"matrix size {matrix_size} not on the measured grid "
                f"{self.matrix_sizes()}"
            )
        nearest_t = min(available_threads, key=lambda t: abs(t - threads))
        return (matrix_size, nearest_t)
