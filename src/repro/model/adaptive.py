"""Error-bounded adaptive refinement of proxy slack sweeps.

A dense sweep measures every (matrix size, threads, slack) point of
its grid, but the slack response is log-linear over most of its range
(that is exactly the interpolation :class:`repro.proxy.SlackResponseSurface`
applies between grid points) — so most interior points only confirm
what their neighbours already imply. This module measures a coarse
seed of each series, *predicts* the interior by the surface's own
log-linear rule, and only measures where the prediction cannot be
certified:

1. **Seed** — the zero-slack baseline plus the first, middle and last
   slack values of every series, one executor batch for all series.
2. **Refine** — for each unverified interval, measure its midpoint and
   compare against the log-linear interpolation of the endpoints. If
   the deviation is within ``tol`` the whole interval is *certified*
   (its interior points inherit the observed deviation as their error
   bound); otherwise both halves are queued for the next round. Each
   round is one executor batch across every active series, so the
   refinement parallelizes exactly like a dense sweep.
3. **Predict** — unmeasured grid points are synthesized from their
   nearest measured neighbours; the result is a *dense*
   :class:`~repro.proxy.SweepResult` on the full requested grid,
   plus a per-point error bound (0 for measured points).

Interpolation error is evaluated in the clamped-penalty space
(``max(0, penalty)``) that every downstream consumer reads through
:class:`~repro.proxy.SlackResponseSurface`, so ``tol`` bounds exactly
the quantity the prediction model consumes: ``tol=1e-3`` certifies the
predicted surface to within 0.1 percentage points of penalty.

Certification probes each interval at its *geometric* midpoint — the
point where log-linear interpolation error peaks for a smooth convex
response — so the bound is a sampling argument, not a proof: it holds
for the smooth monotone penalty curves the calibrated proxy produces,
but a series that oscillates *between* grid probes (short
fixed-iteration multi-thread runs can beat against the slack period)
can deviate more than its recorded bound. Dense sweeps remain the
ground truth; the parity tests pin the regimes where the bound holds.

Determinism: rounds, series order and midpoint choice are all fixed by
the input grid, so an adaptive sweep measures the same points in the
same order every run — and each measured point carries the same
:class:`~repro.parallel.PointTask` a dense sweep would use, so the
per-point cache is shared bidirectionally between the two modes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..obs import RunReport, get_registry
from ..proxy.calibration import calibrate_iterations, time_single_kernel
from ..proxy.matmul import CUDA_CALLS_PER_ITERATION, ProxyConfig
from ..proxy.options import UNSET as _UNSET
from ..proxy.sweep import SweepPoint, SweepResult, SweepTiming
from .surrogate import interp_penalty

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultPlan
    from ..parallel import PointCache, PointMeasurement, SweepExecutor
    from ..proxy.options import SweepOptions

__all__ = [
    "DEFAULT_TOL",
    "AdaptiveSweepResult",
    "adaptive_slack_sweep",
]

#: Default certification tolerance: 0.1 percentage points of penalty.
DEFAULT_TOL = 1e-3


# The canonical rule lives in model.surrogate so the serving layer,
# this refinement loop and the surface certify against one function.
_interp_penalty = interp_penalty


@dataclass
class _Series:
    """Refinement state of one (matrix size, threads) series."""

    config: ProxyConfig
    kernel_time_s: float
    baseline: Optional["PointMeasurement"] = None
    #: Measured slack points by grid index (clamped penalty cached).
    measured: Dict[int, Tuple["PointMeasurement", float]] = field(
        default_factory=dict
    )
    #: Certified error bound of each *unmeasured* grid index.
    bounds: Dict[int, float] = field(default_factory=dict)
    #: Intervals (lo, hi) of measured indices still awaiting a verdict.
    pending: List[Tuple[int, int]] = field(default_factory=list)
    dead: bool = False  # baseline failed: whole series unmeasurable

    def penalty_at(self, idx: int) -> float:
        return self.measured[idx][1]


@dataclass
class AdaptiveSweepResult:
    """Outcome of one adaptive sweep.

    ``measured`` holds only the points that actually ran;``dense``
    covers the full requested grid, with unmeasured points synthesized
    by log-linear interpolation — feeding it to
    :class:`~repro.proxy.SlackResponseSurface` reproduces the adaptive
    predictions exactly. ``bounds`` maps every dense grid key
    ``(matrix_size, threads, slack_s)`` to its certified error bound in
    penalty units: 0.0 for measured points, the observed interval
    deviation for predicted ones (``inf`` marks points whose interval
    could not be certified because a measurement failed mid-refinement).
    """

    measured: SweepResult
    dense: SweepResult
    bounds: Dict[Tuple[int, int, float], float]
    tol: float
    #: Slack points measured in the seed round (baselines excluded).
    seed_points: int
    #: Midpoints measured during refinement rounds.
    refined_points: int
    #: Dense grid points predicted instead of measured.
    predicted_points: int
    #: Largest observed midpoint interpolation error (penalty units).
    max_error: float
    #: Points a dense sweep of the same grid would run
    #: (``series x (slacks + baseline)``).
    dense_grid_points: int
    #: Points this adaptive sweep ran (baselines + seeds + midpoints).
    measured_grid_points: int

    @property
    def measured_fraction(self) -> float:
        """Share of the dense grid actually run (baselines included)."""
        if not self.dense_grid_points:
            return 0.0
        return self.measured_grid_points / self.dense_grid_points

    def error_bound(
        self, matrix_size: int, threads: int, slack_s: float
    ) -> float:
        """Certified error bound of one dense grid point."""
        return self.bounds[(matrix_size, threads, slack_s)]


def adaptive_slack_sweep(
    matrix_sizes: Sequence[int],
    slack_values_s: Sequence[float],
    threads: Sequence[int] = (1,),
    iterations: Optional[int] = None,
    target_compute_s: float = 30.0,
    *,
    tol: float = DEFAULT_TOL,
    options: Optional["SweepOptions"] = None,
    workers: Any = _UNSET,
    cache: Any = _UNSET,
    executor: Optional["SweepExecutor"] = None,
    fast_forward: Any = _UNSET,
    faults: Any = _UNSET,
) -> AdaptiveSweepResult:
    """Measure a slack response surface by adaptive refinement.

    Same grid semantics and execution knobs as
    :func:`repro.proxy.run_slack_sweep` (whose ``adaptive=True`` path
    delegates here) — including the ``options=``
    :class:`~repro.proxy.SweepOptions` bundle, with explicit keywords
    overriding it — plus ``tol``: the certification tolerance in
    penalty units. Slack values must be positive (the zero-slack
    baseline is implicit, exactly like the dense sweep) and are sorted
    internally; the dense result covers the sorted grid.
    """
    from ..parallel import PointTask, SweepExecutor
    from ..parallel.executor import merge_stats
    from ..proxy.options import resolve_options

    opts = resolve_options(
        options,
        {
            "workers": workers,
            "cache": cache,
            "fast_forward": fast_forward,
            "faults": faults,
        },
    )
    fast_forward = opts.fast_forward
    faults = opts.faults
    if tol <= 0:
        raise ValueError("tol must be positive")
    slacks = sorted({float(s) for s in slack_values_s})
    if not slacks:
        raise ValueError("slack_values_s must be non-empty")
    if slacks[0] <= 0:
        raise ValueError(
            "adaptive sweeps need positive slack values (the zero-slack "
            "baseline is measured implicitly)"
        )
    n = len(slacks)

    if faults is not None and faults.is_empty:
        faults = None
    if faults is not None:
        faults.validate()

    # Hoisted per-size calibration, identical to the dense sweep's.
    calibration: Dict[int, Tuple[float, int]] = {}
    for size in matrix_sizes:
        if size in calibration:
            continue
        probe = ProxyConfig(
            matrix_size=size, target_compute_s=target_compute_s
        )
        kt = time_single_kernel(size, probe.gpu, probe.pcie, probe.dtype_bytes)
        iters = iterations or calibrate_iterations(
            kt, target_s=target_compute_s
        )
        calibration[size] = (kt, iters)

    series_list = [
        _Series(
            config=ProxyConfig(
                matrix_size=size,
                threads=t,
                iterations=calibration[size][1],
                target_compute_s=target_compute_s,
            ),
            kernel_time_s=calibration[size][0],
        )
        for t in threads
        for size in matrix_sizes
    ]

    ex = executor if executor is not None else SweepExecutor(options=opts)
    round_stats = []

    def run_batch(tasks: List[PointTask]) -> List["PointMeasurement"]:
        ms = ex.run(tasks)
        if ex.stats is not None:
            round_stats.append(ex.stats)
        return ms

    def task_for(series: _Series, slack_s: float) -> PointTask:
        return PointTask(
            series.config,
            slack_s,
            kernel_time_s=series.kernel_time_s,
            fast_forward=fast_forward,
            faults=faults,
        )

    measured_result = SweepResult()

    def clamped_penalty(
        series: _Series, m: "PointMeasurement"
    ) -> float:
        base = series.baseline.loop_runtime_s  # type: ignore[union-attr]
        return max(0.0, m.corrected_runtime_s / base - 1.0)

    def record_failure(series: _Series, lo: int, hi: int, error: str) -> None:
        # A slack point failed on its own (fault-plan fabric timeout):
        # record the skip, give up on this interval — its interior can
        # never be certified, which the infinite bound makes explicit.
        measured_result.skipped.append(
            (series.config.matrix_size, series.config.threads, error)
        )
        for k in range(lo + 1, hi):
            if k not in series.measured:
                series.bounds[k] = float("inf")

    # -- Round 0: baselines + seed points -----------------------------
    seed_idx = sorted({0, n // 2, n - 1})
    seed_tasks: List[PointTask] = []
    owners: List[Tuple[_Series, Optional[int]]] = []
    for series in series_list:
        seed_tasks.append(task_for(series, 0.0))
        owners.append((series, None))
        for idx in seed_idx:
            seed_tasks.append(task_for(series, slacks[idx]))
            owners.append((series, idx))
    seed_points = 0
    for (series, idx), m in zip(owners, run_batch(seed_tasks)):
        if idx is None:
            series.baseline = m
            if not m.ok:
                series.dead = True
                measured_result.skipped.append(
                    (series.config.matrix_size, series.config.threads, m.error)
                )
        elif not series.dead:
            seed_points += 1
            if m.ok:
                series.measured[idx] = (m, clamped_penalty(series, m))
            else:
                record_failure(series, idx, idx, m.error)
    for series in series_list:
        if series.dead:
            continue
        anchors = sorted(series.measured)
        series.pending = [
            (lo, hi)
            for lo, hi in zip(anchors, anchors[1:])
            if hi - lo > 1
        ]

    # -- Refinement rounds --------------------------------------------
    def split_index(lo: int, hi: int) -> int:
        # Probe where log-linear interpolation error peaks for a
        # convex response: the grid index nearest the *geometric*
        # midpoint of the interval. On a uniform log grid this is the
        # index midpoint; on irregular grids it keeps the probe at the
        # worst-deviation point instead of a lopsided index split.
        target = 0.5 * (math.log(slacks[lo]) + math.log(slacks[hi]))
        return min(
            range(lo + 1, hi),
            key=lambda k: (abs(math.log(slacks[k]) - target), k),
        )

    refined_points = 0
    max_error = 0.0
    while any(s.pending for s in series_list):
        batch: List[PointTask] = []
        batch_owners: List[Tuple[_Series, int, int, int]] = []
        for series in series_list:
            for lo, hi in series.pending:
                mid = split_index(lo, hi)
                batch.append(task_for(series, slacks[mid]))
                batch_owners.append((series, lo, hi, mid))
            series.pending = []
        for (series, lo, hi, mid), m in zip(batch_owners, run_batch(batch)):
            refined_points += 1
            if not m.ok:
                record_failure(series, lo, hi, m.error)
                continue
            pen = clamped_penalty(series, m)
            series.measured[mid] = (m, pen)
            predicted = _interp_penalty(
                slacks[lo], series.penalty_at(lo),
                slacks[hi], series.penalty_at(hi),
                slacks[mid],
            )
            err = abs(pen - predicted)
            max_error = max(max_error, err)
            if err <= tol:
                # Certified: the interior of both halves inherits the
                # observed deviation as its error bound.
                for k in range(lo + 1, hi):
                    if k != mid:
                        series.bounds[k] = err
            else:
                for a, b in ((lo, mid), (mid, hi)):
                    if b - a > 1:
                        series.pending.append((a, b))

    # -- Assembly: measured + dense predicted results -----------------
    dense_result = SweepResult()
    # Both views agree on what could not be measured (baseline OOMs
    # plus any per-point fabric-timeout failures).
    dense_result.skipped.extend(measured_result.skipped)
    bounds: Dict[Tuple[int, int, float], float] = {}
    predicted_points = 0
    for series in series_list:
        if series.dead:
            continue
        cfg = series.config
        base = series.baseline.loop_runtime_s  # type: ignore[union-attr]
        anchors = sorted(series.measured)
        for idx in sorted(series.measured):
            m, _ = series.measured[idx]
            point = SweepPoint(
                matrix_size=cfg.matrix_size,
                threads=cfg.threads,
                slack_s=slacks[idx],
                loop_runtime_s=m.loop_runtime_s,
                corrected_runtime_s=m.corrected_runtime_s,
                baseline_runtime_s=base,
                iterations=m.iterations,
                kernel_time_s=m.kernel_time_s,
            )
            measured_result.add(point)
            dense_result.add(point)
            bounds[(cfg.matrix_size, cfg.threads, slacks[idx])] = 0.0
        if not anchors:
            continue
        kt, iters = calibration[cfg.matrix_size]
        for idx in range(n):
            if idx in series.measured:
                continue
            lo = max((a for a in anchors if a < idx), default=None)
            hi = min((a for a in anchors if a > idx), default=None)
            if lo is None:
                pen = series.penalty_at(hi)  # type: ignore[arg-type]
            elif hi is None:
                pen = series.penalty_at(lo)
            else:
                pen = _interp_penalty(
                    slacks[lo], series.penalty_at(lo),
                    slacks[hi], series.penalty_at(hi),
                    slacks[idx],
                )
            # Synthesize the point the proxy would have reported for
            # this penalty: invert the normalization and Equation 1.
            corrected = base * (1.0 + pen)
            loop = corrected + CUDA_CALLS_PER_ITERATION * iters * slacks[idx]
            dense_result.add(
                SweepPoint(
                    matrix_size=cfg.matrix_size,
                    threads=cfg.threads,
                    slack_s=slacks[idx],
                    loop_runtime_s=loop,
                    corrected_runtime_s=corrected,
                    baseline_runtime_s=base,
                    iterations=iters,
                    kernel_time_s=kt,
                )
            )
            predicted_points += 1
            bounds[(cfg.matrix_size, cfg.threads, slacks[idx])] = (
                series.bounds.get(idx, float("inf"))
            )

    stats = merge_stats(round_stats)
    if stats is not None:
        timing = SweepTiming(
            wall_s=stats.wall_s,
            grid_points=stats.tasks,
            measured=stats.measured,
            cached=stats.cached,
            workers=stats.workers,
            mode=stats.mode,
            point_seconds=stats.point_seconds,
        )
        measured_result.timing = timing
        dense_result.timing = timing

    result = AdaptiveSweepResult(
        measured=measured_result,
        dense=dense_result,
        bounds=bounds,
        tol=tol,
        seed_points=seed_points,
        refined_points=refined_points,
        predicted_points=predicted_points,
        max_error=max_error,
        dense_grid_points=len(series_list) * (n + 1),
        measured_grid_points=len(series_list) + seed_points + refined_points,
    )

    reg = get_registry()
    if reg.enabled:
        reg.counter("sweep.runs").inc()
        reg.counter("sweep.points").inc(len(dense_result.points))
        reg.counter("sweep.skipped").inc(len(dense_result.skipped))
        if dense_result.timing is not None:
            reg.counter("sweep.wall_s").inc(dense_result.timing.wall_s)
        reg.counter("sweep.adaptive.seed_points").inc(seed_points)
        reg.counter("sweep.adaptive.refined_points").inc(refined_points)
        reg.counter("sweep.adaptive.skipped_points").inc(predicted_points)
        reg.gauge("sweep.adaptive.max_error").set(max_error)
        report = RunReport.collect(
            reg,
            kind="sweep",
            meta={
                "adaptive": True,
                "tol": tol,
                "matrix_sizes": list(matrix_sizes),
                "slack_values_s": slacks,
                "threads": list(threads),
                "iterations": iterations,
                "faults": faults.to_doc() if faults is not None else None,
            },
        )
        measured_result.report = report
        dense_result.report = report
    return result
