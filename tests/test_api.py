"""The stable ``repro.api`` facade and its deprecation contracts."""

import warnings

import pytest

import repro
import repro.api as api


# -- facade ------------------------------------------------------------------

def test_every_documented_name_resolves():
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing


def test_facade_matches_package_surface():
    """Everything the top-level package exports is also on the facade
    (the facade may export more, e.g. the paper grid constants)."""
    assert set(repro.__all__) <= set(api.__all__)


def test_quickstart_imports():
    from repro.api import (  # noqa: F401
        ExperimentContext,
        MetricsRegistry,
        PointCache,
        RunReport,
        SweepExecutor,
        collecting,
        run_all,
        run_experiment,
        run_proxy,
        run_slack_sweep,
    )


def test_serving_layer_is_on_the_facade():
    """The documented front door: serving names lead ``__all__``."""
    from repro.api import (  # noqa: F401
        ColdPathConfig,
        PenaltyService,
        Prediction,
        ServiceOverloadedError,
        SurrogateDomainError,
        SurrogateModel,
        SweepOptions,
        predict_penalty,
    )

    assert api.__all__.index("SurrogateModel") < api.__all__.index(
        "run_slack_sweep"
    )


def test_no_deprecation_warning_on_import():
    """Importing the supported surface never warns (the CI leg runs the
    whole suite under ``-W error::DeprecationWarning``; this is the
    fast, pinpointed version)."""
    import importlib

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        importlib.reload(api)


# -- keyword-only execution knobs --------------------------------------------

def test_run_slack_sweep_workers_is_keyword_only():
    from repro.api import run_slack_sweep

    with pytest.raises(TypeError):
        run_slack_sweep([256], [1e-5], [1], 3, 30.0, 2)  # workers positional


def test_run_all_workers_is_keyword_only():
    from repro.api import run_all

    with pytest.raises(TypeError):
        run_all(None, 2)  # workers positional


def test_context_knobs_are_keyword_only():
    from repro.api import ExperimentContext

    with pytest.raises(TypeError):
        ExperimentContext(True, None)  # cache_dir positional


# -- deprecated kwarg spelling -----------------------------------------------

def test_context_use_cache_kwarg_warns_but_works():
    from repro.api import ExperimentContext

    with pytest.warns(DeprecationWarning, match="use_cache"):
        ctx = ExperimentContext(use_cache=False)
    assert ctx.cache is False
    assert ctx.point_cache() is None

    with pytest.warns(DeprecationWarning, match="use_cache"):
        assert ctx.use_cache is False


def test_context_canonical_cache_kwarg_is_silent():
    from repro.api import ExperimentContext, PointCache

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ctx = ExperimentContext(cache=False)
        assert ctx.point_cache() is None
        store = PointCache.__new__(PointCache)  # no disk touch needed
        ctx2 = ExperimentContext(cache=store)
        assert ctx2.point_cache() is store


# -- deprecated module re-exports --------------------------------------------

def test_sweep_module_shims_warn_and_alias_canonical():
    import repro.hw
    import repro.network
    import repro.proxy.sweep as sweep_mod

    with pytest.warns(DeprecationWarning, match="repro.hw"):
        oom = sweep_mod.OutOfMemoryError
    assert oom is repro.hw.OutOfMemoryError

    with pytest.warns(DeprecationWarning, match="repro.network"):
        model = sweep_mod.SlackModel
    assert model is repro.network.SlackModel


def test_sweep_module_unknown_attribute_still_raises():
    import repro.proxy.sweep as sweep_mod

    with pytest.raises(AttributeError):
        sweep_mod.does_not_exist


# -- deprecated facade aliases ------------------------------------------------

def test_surrogate_alias_warns_and_resolves_canonical():
    with pytest.warns(DeprecationWarning, match="SurrogateModel"):
        alias = api.Surrogate
    assert alias is api.SurrogateModel


def test_facade_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        api.does_not_exist


def test_legacy_positional_sweep_grid_warns():
    from repro.api import run_slack_sweep

    with pytest.warns(DeprecationWarning, match="keyword"):
        result = run_slack_sweep(
            [256], [1e-5], iterations=3, target_compute_s=2.0,
            workers=1, cache=False,
        )
    assert len(result.points) == 1
