"""Benchmark: regenerate Table IV (total slack penalty bounds).

The headline of the paper: both production applications pessimistically
lose less than 1% at 100 us of slack — 20 km of fibre.
"""

from repro.experiments import run_experiment


def test_bench_table4(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("table4", ctx), rounds=1, iterations=1
    )
    print_result(result)
    assert any("REPRODUCED" in n for n in result.notes)
    for row in result.tables[0].rows:
        if row[1] == 100.0:
            assert row[3] < 1.0
        assert row[2] <= row[3] + 1e-9
