"""Trace comparison: where did a slack run lose its time?

Diffs two traces of the same workload (typically a zero-slack baseline
against a slack-injected run): per-kernel-name duration ratios, device
idle-gap growth, and an attribution of the wall-clock delta to direct
slack vs starvation vs everything else. This is the diagnosis view an
operator uses after the prediction model flags a workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .container import Trace
from .events import EventKind
from .timeline import device_gaps

__all__ = ["KernelDelta", "TraceComparison", "compare_traces"]


@dataclass(frozen=True)
class KernelDelta:
    """Duration change of one kernel name between two traces."""

    name: str
    baseline_mean_s: float
    other_mean_s: float
    baseline_count: int
    other_count: int

    @property
    def ratio(self) -> float:
        """Other over baseline mean duration."""
        if self.baseline_mean_s <= 0:
            return float("inf")
        return self.other_mean_s / self.baseline_mean_s


@dataclass
class TraceComparison:
    """The full diff between a baseline and another trace."""

    baseline_span_s: float
    other_span_s: float
    kernel_deltas: List[KernelDelta] = field(default_factory=list)
    direct_slack_s: float = 0.0
    starvation_s: float = 0.0
    baseline_mean_gap_s: float = 0.0
    other_mean_gap_s: float = 0.0

    @property
    def wall_delta_s(self) -> float:
        """Total wall-clock growth."""
        return self.other_span_s - self.baseline_span_s

    @property
    def unattributed_s(self) -> float:
        """Wall growth not explained by slack or starvation."""
        return self.wall_delta_s - self.direct_slack_s - self.starvation_s

    @property
    def gap_growth(self) -> float:
        """Mean device idle gap: other over baseline."""
        if self.baseline_mean_gap_s <= 0:
            return float("inf") if self.other_mean_gap_s > 0 else 1.0
        return self.other_mean_gap_s / self.baseline_mean_gap_s

    def delta(self, name: str) -> KernelDelta:
        """Look up one kernel's delta by name."""
        for d in self.kernel_deltas:
            if d.name == name:
                return d
        raise KeyError(name)


def compare_traces(baseline: Trace, other: Trace) -> TraceComparison:
    """Diff ``other`` (e.g. a slack run) against ``baseline``.

    Both traces must contain device activity. Kernel names present in
    only one trace are still reported (with zero mean/count on the
    missing side).
    """
    base_kernels = baseline.kernels()
    other_kernels = other.kernels()
    if len(base_kernels) == 0 or len(other_kernels) == 0:
        raise ValueError("both traces need kernel activity")

    base_groups = base_kernels.by_name()
    other_groups = other_kernels.by_name()
    deltas: List[KernelDelta] = []
    for name in sorted(set(base_groups) | set(other_groups)):
        b = base_groups.get(name)
        o = other_groups.get(name)
        deltas.append(
            KernelDelta(
                name=name,
                baseline_mean_s=float(b.durations().mean()) if b else 0.0,
                other_mean_s=float(o.durations().mean()) if o else 0.0,
                baseline_count=len(b) if b else 0,
                other_count=len(o) if o else 0,
            )
        )

    direct = other.filter(lambda e: e.kind is EventKind.SLACK).total_time()
    starvation = float(
        sum(
            e.meta.get("starvation_cost", 0.0)
            for e in other_kernels
        )
    ) - float(
        sum(e.meta.get("starvation_cost", 0.0) for e in base_kernels)
    )

    return TraceComparison(
        baseline_span_s=baseline.span,
        other_span_s=other.span,
        kernel_deltas=deltas,
        direct_slack_s=direct,
        starvation_s=max(0.0, starvation),
        baseline_mean_gap_s=device_gaps(baseline).mean_gap,
        other_mean_gap_s=device_gaps(other).mean_gap,
    )
