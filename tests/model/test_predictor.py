"""Tests for the CDI profiler (prediction pipeline) and self-validation."""

import pytest

from repro.apps.base import AppProfile
from repro.hw import MiB
from repro.model import CDIProfiler, validate_self_prediction
from repro.proxy import SlackResponseSurface, run_slack_sweep
from repro.trace import CopyKind, EventKind, Trace, TraceEvent

from .conftest import SYNTHETIC_KERNEL_TIMES


def make_profile(
    name="app",
    kernel_durations=(1e-3,),
    transfer_sizes=(10 * MiB,),
    runtime=10.0,
    parallelism=1,
):
    """Build a minimal AppProfile with prescribed distributions."""
    trace = Trace(name=name)
    t = 0.0
    for d in kernel_durations:
        trace.append(TraceEvent(EventKind.KERNEL, "k", t, t + d))
        t += d + 1e-4
    for s in transfer_sizes:
        trace.append(
            TraceEvent(
                EventKind.MEMCPY, "m", t, t + 1e-4, nbytes=int(s),
                copy_kind=CopyKind.H2D,
            )
        )
        t += 2e-4
    return AppProfile(
        name=name,
        trace=trace,
        runtime_s=runtime,
        queue_parallelism=parallelism,
        cuda_calls_per_second=100.0,
    )


class TestCDIProfiler:
    @pytest.fixture
    def profiler(self, synthetic_surface):
        return CDIProfiler(synthetic_surface, SYNTHETIC_KERNEL_TIMES)

    def test_lower_never_exceeds_upper(self, profiler):
        profile = make_profile(
            kernel_durations=[9e-4, 5e-3, 0.1],
            transfer_sizes=[3 * MiB, 50 * MiB],
        )
        for slack in (1e-6, 1e-4, 1e-2):
            p = profiler.predict(profile, slack)
            assert p.lower <= p.upper

    def test_zero_slack_zero_penalty(self, profiler):
        profile = make_profile()
        p = profiler.predict(profile, 0.0)
        assert p.lower == 0.0
        assert p.upper == 0.0

    def test_on_grid_observations_have_tight_bounds(self, profiler):
        # Kernel duration and transfer size exactly at grid points:
        # lower == upper (no bracketing uncertainty).
        profile = make_profile(
            kernel_durations=[SYNTHETIC_KERNEL_TIMES[2048]],
            transfer_sizes=[16 * MiB],
        )
        p = profiler.predict(profile, 1e-4)
        assert p.lower == pytest.approx(p.upper)

    def test_off_grid_observations_widen_bounds(self, profiler):
        profile = make_profile(
            kernel_durations=[5e-3],  # between 2048 and 8192 times
            transfer_sizes=[50 * MiB],  # between 16 and 256 MiB
        )
        p = profiler.predict(profile, 1e-2)
        assert p.upper > p.lower

    def test_parallelism_reduces_penalty(self, profiler):
        profile = make_profile(kernel_durations=[9e-4], transfer_sizes=[3 * MiB])
        serial = profiler.predict(profile, 1e-2, parallelism=1)
        parallel = profiler.predict(profile, 1e-2, parallelism=8)
        assert parallel.upper < serial.upper

    def test_profile_parallelism_used_by_default(self, profiler):
        profile = make_profile(parallelism=8, kernel_durations=[9e-4])
        p = profiler.predict(profile, 1e-2)
        assert p.parallelism == 8

    def test_runtime_fractions_weight_the_result(self, profiler):
        # Same distributions, GPU-busier profile suffers more.
        busy = make_profile(kernel_durations=[1.0], runtime=1.5)
        idle = make_profile(kernel_durations=[1.0], runtime=100.0)
        p_busy = profiler.predict(busy, 1e-2)
        p_idle = profiler.predict(idle, 1e-2)
        assert p_busy.upper > p_idle.upper

    def test_percent_properties(self, profiler):
        profile = make_profile(kernel_durations=[9e-4])
        p = profiler.predict(profile, 1e-2)
        assert p.upper_percent == pytest.approx(100 * p.upper)
        assert p.lower_percent == pytest.approx(100 * p.lower)

    def test_predict_sweep_covers_all_slacks(self, profiler):
        profile = make_profile()
        slacks = (1e-6, 1e-4, 1e-2)
        results = profiler.predict_sweep(profile, slacks)
        assert set(results) == set(slacks)

    def test_negative_slack_rejected(self, profiler):
        with pytest.raises(ValueError):
            profiler.predict(make_profile(), -1.0)

    def test_profile_without_kernels_rejected(self, profiler):
        trace = Trace()
        trace.append(
            TraceEvent(EventKind.MEMCPY, "m", 0, 1, nbytes=10,
                       copy_kind=CopyKind.H2D)
        )
        profile = AppProfile(
            name="x", trace=trace, runtime_s=1.0, queue_parallelism=1,
            cuda_calls_per_second=1.0,
        )
        with pytest.raises(ValueError):
            profiler.predict(profile, 1e-4)

    def test_missing_kernel_times_rejected(self, synthetic_surface):
        with pytest.raises(ValueError):
            CDIProfiler(synthetic_surface, {512: 50e-6})  # grid incomplete

    def test_binned_distributions_exposed(self, profiler):
        profile = make_profile(
            kernel_durations=[9e-4, 9e-4], transfer_sizes=[3 * MiB]
        )
        bins = profiler.bin_profile(profile)
        assert bins["kernel"].total == 2
        assert bins["memory"].total == 1


class TestPredictSweepReferenceParity:
    """Vectorized slack-grid sweep vs. the scalar per-slack loop.

    ``predict_sweep`` computes Equation 3 once as a weighted matrix
    product over the whole slack grid; it must reproduce a plain
    ``{s: predict(profile, s)}`` loop bit for bit, on arbitrary
    random profiles.
    """

    @pytest.fixture
    def profiler(self, synthetic_surface):
        return CDIProfiler(synthetic_surface, SYNTHETIC_KERNEL_TIMES)

    @pytest.mark.parametrize("seed", [0, 5, 42, 999, 271828])
    def test_random_profiles_match_reference(self, profiler, seed):
        import numpy as np

        from repro.model.reference import predict_sweep_reference

        rng = np.random.RandomState(seed)
        profile = make_profile(
            kernel_durations=10.0 ** rng.uniform(-5, 0.8, rng.randint(1, 60)),
            transfer_sizes=2.0 ** rng.uniform(18, 34, rng.randint(1, 40)),
            runtime=float(rng.uniform(1.0, 100.0)),
            parallelism=int(rng.randint(1, 9)),
        )
        slacks = np.sort(10.0 ** rng.uniform(-6.2, -1.8, rng.randint(1, 12)))
        vec = profiler.predict_sweep(profile, slacks)
        ref = predict_sweep_reference(profiler, profile, slacks)
        assert vec == ref  # SlackPrediction dataclass equality: exact

    def test_explicit_parallelism_matches_reference(self, profiler):
        from repro.model.reference import predict_sweep_reference

        profile = make_profile(
            kernel_durations=[9e-4, 5e-3, 0.1],
            transfer_sizes=[3 * MiB, 50 * MiB],
        )
        slacks = (1e-6, 1e-4, 1e-2)
        vec = profiler.predict_sweep(profile, slacks, parallelism=4)
        ref = predict_sweep_reference(profiler, profile, slacks, parallelism=4)
        assert vec == ref

    def test_empty_slack_grid(self, profiler):
        assert profiler.predict_sweep(make_profile(), ()) == {}


class TestSelfValidation:
    """The paper's Section IV-D methodology validation, on a real
    (simulated) sweep: the lower bound self-predicts within 0.005."""

    @pytest.fixture(scope="class")
    def surface(self):
        sweep = run_slack_sweep(
            matrix_sizes=(512, 2048, 8192),
            slack_values_s=(1e-6, 1e-4, 1e-2),
            threads=(1,),
            iterations=25,
        )
        return SlackResponseSurface(sweep)

    @pytest.mark.parametrize("matrix_size", [512, 2048])
    @pytest.mark.parametrize("slack", [1e-4, 1e-2])
    def test_lower_bound_within_paper_tolerance(self, surface, matrix_size, slack):
        result = validate_self_prediction(
            surface, matrix_size, slack, threads=1, iterations=25
        )
        # Paper: "the lower value was within 0.005 of the actual".
        # Tolerance scales with the actual for the violent 512/10ms
        # point (the paper's absolute 0.005 applies to its small-
        # penalty regime); the proportional residue is the host-time
        # fraction Equation 2 deliberately leaves unweighted.
        tol = max(0.005, 0.06 * result.actual_penalty)
        assert abs(result.lower_error) <= tol

    def test_upper_bound_tracks_actual_for_exact_traces(self, surface):
        # On-grid traces collapse the bracket: upper == lower, both
        # within the host-fraction residue of the actual.
        result = validate_self_prediction(surface, 2048, 1e-2, iterations=25)
        assert result.predicted_upper >= result.actual_penalty * 0.99
        assert result.predicted_upper == pytest.approx(result.predicted_lower)

    def test_jittered_traces_make_upper_pessimistic(self, surface):
        exact = validate_self_prediction(
            surface, 2048, 1e-2, iterations=25, duration_jitter=0.0
        )
        noisy = validate_self_prediction(
            surface, 2048, 1e-2, iterations=25, duration_jitter=0.15
        )
        # Measurement noise pushes observations off the exact grid
        # points; the round-down assignment then reaches the much
        # more slack-sensitive smaller matrix -> severe pessimism.
        assert noisy.upper_pessimism > exact.upper_pessimism


class TestMultiThreadPessimism:
    """Paper Sec IV-D: 'the more threads that were added the less
    pessimistic the upper value became as the exponential slack
    response became less of a factor.'"""

    @pytest.fixture(scope="class")
    def full_surface(self):
        from repro.experiments import ExperimentContext

        return ExperimentContext(quick=True).surface()

    def test_upper_pessimism_shrinks_with_threads(self, full_surface):
        from repro.model import validate_self_prediction

        profiler = CDIProfiler(full_surface)
        pessimism = {}
        for threads in (1, 4):
            r = validate_self_prediction(
                full_surface, 2**11, 1e-2, threads=threads,
                iterations=25, duration_jitter=0.15, profiler=profiler,
            )
            pessimism[threads] = r.upper_pessimism
        assert pessimism[4] < pessimism[1]
