"""Section V's scheduling example: traditional vs CDI on 40 GPUs / 20 CPUs."""

from __future__ import annotations

from ..cdi import discussion_example
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce the Discussion-section scheduling comparison."""
    cmp = discussion_example()
    table = Table(
        title="Section V example: 40 GPUs + 20 CPUs (24 cores each), "
              "LAMMPS and CosmoFlow each wanting 20 GPUs",
        headers=["scheduler", "job", "cores", "GPUs", "cores/GPU",
                 "trapped cores", "trapped GPUs"],
    )
    for label, outcome in (("traditional", cmp.traditional), ("CDI", cmp.cdi)):
        for p in outcome.placements:
            table.add_row(
                label, p.job.name, p.granted_cores, p.granted_gpus,
                round(p.cores_per_gpu, 2), p.trapped_cores, p.trapped_gpus,
            )
    table.notes.append(
        "CDI gives CosmoFlow 4 CPUs for 20 tightly-coupled GPUs and "
        "leaves LAMMPS 16 CPUs — 19.2 cores/GPU vs the forced 12 under "
        "traditional nodes (the paper phrases the CPU:GPU unit ratio as "
        "16 CPUs : 20 GPUs)"
    )
    return ExperimentResult(
        experiment_id="discussion",
        tables=[table],
        notes=[
            f"trapped cores: traditional {cmp.traditional.trapped_cores} "
            f"vs CDI {cmp.cdi.trapped_cores}",
            f"ratio improvement (|achieved-ideal| reduction): "
            f"lammps {cmp.ratio_improvement('lammps'):.2f}, "
            f"cosmoflow {cmp.ratio_improvement('cosmoflow'):.2f}",
        ],
    )
