"""Unit tests for device engines, activity tracking and kernel specs."""

import pytest

from repro.des import Environment
from repro.gpusim import (
    ComputeEngine,
    CopyEngine,
    DeviceActivity,
    KernelSpec,
    matmul_efficiency,
    matmul_kernel,
)
from repro.hw import A100_SXM4_40GB, GPUSpec


def drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


class TestDeviceActivity:
    def test_fresh_device_no_gap(self):
        activity = DeviceActivity()
        assert activity.idle_gap(100.0) == 0.0

    def test_gap_after_activity(self):
        activity = DeviceActivity()
        activity.note(10.0)
        assert activity.idle_gap(15.0) == 5.0
        assert activity.idle_gap(10.0) == 0.0
        assert activity.idle_gap(5.0) == 0.0  # still busy

    def test_note_only_extends(self):
        activity = DeviceActivity()
        activity.note(10.0)
        activity.note(5.0)  # earlier end must not shrink the horizon
        assert activity.busy_until == 10.0


class TestEngineExecution:
    def test_receipt_fields(self):
        env = Environment()
        engine = ComputeEngine(env, A100_SXM4_40GB)

        def host():
            receipt = yield from engine.execute(2.0)
            return receipt

        receipt = drive(env, host())
        assert receipt.queued_at == 0.0
        assert receipt.start == 0.0
        assert receipt.end == pytest.approx(2.0)
        assert receipt.duration == pytest.approx(2.0)
        assert receipt.queue_wait == 0.0
        assert engine.ops_executed == 1

    def test_contention_measured_in_queue_wait(self):
        env = Environment()
        engine = ComputeEngine(env, A100_SXM4_40GB)
        receipts = []

        def user():
            receipt = yield from engine.execute(1.0)
            receipts.append(receipt)

        env.process(user())
        env.process(user())
        env.run()
        waits = sorted(r.queue_wait for r in receipts)
        assert waits[0] == 0.0
        assert waits[1] == pytest.approx(1.0)

    def test_utilization_counts_busy_fraction(self):
        env = Environment()
        engine = ComputeEngine(env, A100_SXM4_40GB)

        def host():
            yield from engine.execute(3.0)
            yield env.timeout(1.0)
            yield from engine.execute(1.0)

        drive(env, host())
        # 4.025 s busy (the second kernel pays the 25 ms ramp after
        # its 1 s starvation gap) over a 5.025 s lifetime.
        assert engine.utilization() == pytest.approx(4.025 / 5.025)

    def test_copy_engine_tracks_bytes(self):
        env = Environment()
        engine = CopyEngine(env, "h2d")

        def host():
            yield from engine.copy(1000, 0.5)
            yield from engine.copy(2000, 0.5)

        drive(env, host())
        assert engine.bytes_moved == 3000
        assert engine.ops_executed == 2

    def test_shared_activity_suppresses_starvation(self):
        env = Environment()
        activity = DeviceActivity()
        compute = ComputeEngine(env, A100_SXM4_40GB, activity)
        copier = CopyEngine(env, "h2d", activity)

        def host():
            yield from compute.execute(0.01)
            # Long idle, but a copy right before the kernel re-warms
            # the device.
            yield env.timeout(0.1)
            yield from copier.copy(100, 0.001)
            receipt = yield from compute.execute(0.01)
            return receipt

        receipt = drive(env, host())
        assert receipt.starvation_cost < 1e-6


class TestKernelSpecs:
    def test_explicit_duration_wins(self):
        k = KernelSpec(name="k", duration_s=0.5, flops=1e15)
        assert k.execution_time(A100_SXM4_40GB) == 0.5

    def test_memory_bound_kernel(self):
        # Pure bandwidth: 155.5 GB at 1555 GB/s = 0.1 s.
        k = KernelSpec(name="k", bytes_accessed=155.5e9)
        assert k.execution_time(A100_SXM4_40GB) == pytest.approx(0.1)

    def test_compute_bound_kernel(self):
        k = KernelSpec(name="k", flops=19.5e12, efficiency=1.0)
        assert k.execution_time(A100_SXM4_40GB) == pytest.approx(1.0)

    def test_roofline_takes_max(self):
        k = KernelSpec(name="k", flops=19.5e12, bytes_accessed=1555e9 * 2,
                       efficiency=1.0)
        assert k.execution_time(A100_SXM4_40GB) == pytest.approx(2.0)

    def test_no_work_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="empty")

    def test_negative_terms_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="k", duration_s=-1)
        with pytest.raises(ValueError):
            KernelSpec(name="k", flops=-1)
        with pytest.raises(ValueError):
            KernelSpec(name="k", flops=1, efficiency=0)

    def test_matmul_kernel_metadata(self):
        k = matmul_kernel(4096)
        assert k.meta["matrix_size"] == 4096
        assert k.flops == 2 * 4096**3
        assert k.efficiency == matmul_efficiency(4096)

    def test_matmul_invalid(self):
        with pytest.raises(ValueError):
            matmul_kernel(0)
        with pytest.raises(ValueError):
            matmul_kernel(128, dtype_bytes=0)
        with pytest.raises(ValueError):
            matmul_efficiency(0)
