"""Figure 4: violin distributions of kernel durations for both apps."""

from __future__ import annotations

from ..trace import kernel_duration_profile
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce Figure 4's kernel-duration distributions."""
    ctx = ctx or ExperimentContext()
    result = ExperimentResult(experiment_id="figure4")
    for profile in ctx.profiles():
        dist = kernel_duration_profile(
            profile.trace, top_n=5,
            title=f"{profile.name} kernel durations [s]",
        )
        table = Table(
            title=dist.title,
            headers=["kernel", "count", "min", "q1", "median", "q3", "max"],
        )
        for v in dist.violins:
            table.add_row(v.label, v.count, v.minimum, v.q1, v.median,
                          v.q3, v.maximum)
        kernels = profile.trace.kernels()
        top = kernels.top_names_by_total_time(5)
        share = sum(
            kernels.by_name()[n].total_time() for n in top
        ) / kernels.total_time()
        table.notes.append(
            f"top-5 kernels cover {100 * share:.1f}% of kernel time"
            + (" (paper: 49.9% for CosmoFlow)" if profile.name == "cosmoflow"
               else "")
        )
        result.tables.append(table)
    return result
