"""Deterministic fabric fault injection (``repro.faults``).

The paper evaluates row-scale disaggregation on a *healthy* fabric.
This package models the unhealthy one: seeded, fully deterministic
fault plans (latency spikes, congestion episodes, link flaps, message
loss with retry/backoff/timeout, transient GPU stalls) that any
simulation entry point accepts via ``faults=`` and that the sweep
layer turns into degraded-mode response surfaces.

* :mod:`repro.faults.plan` — the declarative layer:
  :class:`FaultPlan` / the :data:`FaultEvent` taxonomy, the CLI spec
  DSL, JSON serialization, cache keying.
* :mod:`repro.faults.runtime` — the per-simulation
  :class:`FaultInjector` (compiled by :meth:`FaultPlan.compile`) and
  :class:`FabricTimeoutError`.
* :mod:`repro.faults.degraded` — :func:`run_degraded_sweep`, the
  penalty-vs-slack-vs-fault-intensity surface.

See ``docs/faults.md`` for the taxonomy, the spec format, and the
determinism guarantees.
"""

from .degraded import DegradedSweepResult, run_degraded_sweep
from .plan import (
    CongestionEpisode,
    FaultEvent,
    FaultPlan,
    GpuStall,
    LatencySpike,
    LinkFlap,
    MessageLoss,
    parse_seconds,
)
from .runtime import FabricTimeoutError, FaultInjector

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "LatencySpike",
    "CongestionEpisode",
    "LinkFlap",
    "MessageLoss",
    "GpuStall",
    "FaultInjector",
    "FabricTimeoutError",
    "DegradedSweepResult",
    "run_degraded_sweep",
    "parse_seconds",
]
