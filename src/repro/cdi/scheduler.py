"""Traditional vs CDI scheduling (paper Section V's worked example).

Two schedulers over the same physical inventory:

* :class:`TraditionalScheduler` — whole heterogeneous nodes with a
  fixed CPU:GPU ratio; a job that wants G GPUs takes ceil(G / gpus
  per node) nodes, *trapping* all cores and GPUs it does not use;
* :class:`CDIScheduler` — independent core and GPU pools through the
  :class:`Composer`, so each job gets exactly its requested ratio.

The comparison quantities — trapped cores, trapped (idle-powered)
GPUs, achieved CPU:GPU ratios — are what the paper's Discussion uses
to argue CDI's scheduling benefit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .composer import Composer, CompositionError
from .resources import Composition, ResourcePool

__all__ = [
    "JobRequest",
    "JobPlacement",
    "ScheduleOutcome",
    "TraditionalScheduler",
    "CDIScheduler",
]


@dataclass(frozen=True)
class JobRequest:
    """A job's resource ask: cores and GPUs (its ideal ratio)."""

    name: str
    cores: int
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.gpus < 0:
            raise ValueError("gpus must be non-negative")


@dataclass(frozen=True)
class JobPlacement:
    """What a scheduler actually granted one job."""

    job: JobRequest
    granted_cores: int
    granted_gpus: int
    trapped_cores: int = 0
    trapped_gpus: int = 0

    @property
    def cores_per_gpu(self) -> float:
        """Achieved CPU:GPU ratio."""
        if self.granted_gpus == 0:
            return float("inf")
        return self.granted_cores / self.granted_gpus

    @property
    def requested_ratio(self) -> float:
        """The job's ideal CPU:GPU ratio."""
        if self.job.gpus == 0:
            return float("inf")
        return self.job.cores / self.job.gpus


@dataclass
class ScheduleOutcome:
    """Aggregate result of scheduling a job list."""

    placements: List[JobPlacement] = field(default_factory=list)
    rejected: List[JobRequest] = field(default_factory=list)

    @property
    def trapped_cores(self) -> int:
        """Cores allocated but unused across all placements."""
        return sum(p.trapped_cores for p in self.placements)

    @property
    def trapped_gpus(self) -> int:
        """GPUs allocated (and burning power) but unused."""
        return sum(p.trapped_gpus for p in self.placements)

    def placement(self, name: str) -> JobPlacement:
        """Look up one job's placement by name."""
        for p in self.placements:
            if p.job.name == name:
                return p
        raise KeyError(name)


class TraditionalScheduler:
    """Whole-node scheduling on fixed heterogeneous nodes."""

    def __init__(
        self, node_count: int, cores_per_node: int = 48, gpus_per_node: int = 4
    ) -> None:
        if node_count <= 0 or cores_per_node <= 0 or gpus_per_node < 0:
            raise ValueError("invalid node geometry")
        self.node_count = node_count
        self.cores_per_node = cores_per_node
        self.gpus_per_node = gpus_per_node
        self.free_nodes = node_count

    def schedule(self, jobs: List[JobRequest]) -> ScheduleOutcome:
        """Allocate whole nodes to each job in order."""
        outcome = ScheduleOutcome()
        for job in jobs:
            nodes_for_gpus = (
                math.ceil(job.gpus / self.gpus_per_node)
                if self.gpus_per_node and job.gpus
                else 0
            )
            nodes_for_cores = math.ceil(job.cores / self.cores_per_node)
            need = max(1, nodes_for_gpus, nodes_for_cores)
            if need > self.free_nodes:
                outcome.rejected.append(job)
                continue
            self.free_nodes -= need
            granted_cores = need * self.cores_per_node
            granted_gpus = need * self.gpus_per_node
            outcome.placements.append(
                JobPlacement(
                    job=job,
                    granted_cores=granted_cores,
                    granted_gpus=granted_gpus,
                    trapped_cores=max(0, granted_cores - job.cores),
                    trapped_gpus=max(0, granted_gpus - job.gpus),
                )
            )
        return outcome


class CDIScheduler:
    """Exact-ratio scheduling through a composer over pooled resources."""

    def __init__(self, pool: ResourcePool) -> None:
        self.pool = pool
        self.composer = Composer(pool)
        self.compositions: Dict[str, Composition] = {}

    def schedule(self, jobs: List[JobRequest]) -> ScheduleOutcome:
        """Compose each job's exact request; nothing is trapped."""
        outcome = ScheduleOutcome()
        for job in jobs:
            try:
                comp = self.composer.compose(job.name, job.cores, job.gpus)
            except CompositionError:
                outcome.rejected.append(job)
                continue
            self.compositions[job.name] = comp
            outcome.placements.append(
                JobPlacement(
                    job=job,
                    granted_cores=comp.total_cores,
                    granted_gpus=comp.total_gpus,
                    trapped_cores=0,
                    trapped_gpus=0,
                )
            )
        return outcome
