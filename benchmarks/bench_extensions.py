"""Benchmarks: the prose-claim extension experiments."""

from repro.experiments import run_experiment


def test_bench_ext_collectives(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_collectives", ctx), rounds=3, iterations=1
    )
    print_result(result)
    factor = float(result.notes[0].split("(")[1].split("x")[0])
    assert factor > 2.0  # packing a chassis pays for collectives


def test_bench_ext_congestion(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_congestion", ctx), rounds=3, iterations=1
    )
    print_result(result)
    assert all(row[2] for row in result.tables[0].rows)


def test_bench_ext_preload(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_preload", ctx), rounds=1, iterations=1
    )
    print_result(result)
    shortfalls = result.tables[0].column("shortfall [%]")
    assert max(shortfalls) > 25  # half-coverage loses a quarter+


def test_bench_ext_power(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_power", ctx), rounds=3, iterations=1
    )
    print_result(result)
    powers = dict(zip(result.tables[0].column("scheduler"),
                      result.tables[0].column("idle power [W]")))
    assert powers["CDI"] == 0


def test_bench_ext_remoting(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_remoting", ctx), rounds=1, iterations=1
    )
    print_result(result)
    for row in result.tables[0].rows:
        assert row[5] > row[4]  # remoting overhead > CDI overhead


def test_bench_ext_sensitivity(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_sensitivity", ctx), rounds=1, iterations=1
    )
    print_result(result)
    cap = result.tables[1]
    holds = dict(zip(cap.column("cap [ms]"), cap.column("anchor holds")))
    assert holds[25.0] is True


def test_bench_ext_graphs(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_graphs", ctx), rounds=1, iterations=1
    )
    print_result(result)
    factors = result.tables[0].column("mitigation factor")
    assert all(f > 3 for f in factors)


def test_bench_ext_throughput(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_throughput", ctx), rounds=3, iterations=1
    )
    print_result(result)
    rows = {r[0]: r for r in result.tables[0].rows}
    assert rows["CDI"][1] < rows["traditional"][1]


def test_bench_ext_weak_scaling(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_weak_scaling", ctx), rounds=3, iterations=1
    )
    print_result(result)
    assert all(a > 1.0 for a in result.tables[0].column("CDI advantage"))


def test_bench_ext_resilience(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_resilience", ctx), rounds=3, iterations=1
    )
    print_result(result)
    rows = {r[0]: r for r in result.tables[0].rows}
    assert rows["none"][1] == 2
