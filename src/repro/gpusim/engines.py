"""Device-side execution engines of the simulated GPU.

A GPU exposes three serial engines, matching the hardware units a
CUDA device schedules independently:

* the **compute engine** executing kernels;
* two **copy engines** (DMA), one per direction (H2D, D2H).

Each engine serializes its own work but runs concurrently with the
others, which is what lets multi-threaded workloads overlap transfers
with compute — the latency hiding slack disrupts.

**Starvation accounting** (the paper's central mechanism) lives here.
:class:`DeviceActivity` tracks when *any* engine last had work; the
compute engine charges :meth:`GPUSpec.starvation_cost` on the idle gap
since then — the clock/power-ramp and scheduler re-priming cost a real
GPU pays when its queue runs dry. While anything keeps the device busy
the gap is zero and no cost accrues, so well-fed GPUs (long kernels,
or many parallel submitters) hide slack exactly as the paper observes.
Copy (DMA) engines pay no ramp: they run off the bus clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..des import Environment, Event, Resource, UtilizationTracker, quantize
from ..hw import GPUSpec

__all__ = ["DeviceActivity", "Engine", "ComputeEngine", "CopyEngine", "ExecutionReceipt"]


class DeviceActivity:
    """Device-wide record of the last time any engine had work."""

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.ever_busy = False

    def note(self, until: float) -> None:
        """Extend the device-busy horizon to ``until``."""
        self.ever_busy = True
        if until > self.busy_until:
            self.busy_until = until

    def idle_gap(self, now: float) -> float:
        """Idle time since the device last had work (0 if fresh/busy)."""
        if not self.ever_busy:
            return 0.0
        return max(0.0, now - self.busy_until)


@dataclass(frozen=True)
class ExecutionReceipt:
    """What an engine reports back for one executed operation."""

    start: float
    end: float
    queued_at: float
    starvation_cost: float = 0.0

    @property
    def duration(self) -> float:
        """Busy time including any starvation cost."""
        return self.end - self.start

    @property
    def queue_wait(self) -> float:
        """Time spent waiting for the engine."""
        return self.start - self.queued_at


class Engine:
    """A serial device engine with utilization tracking."""

    def __init__(self, env: Environment, name: str, activity: DeviceActivity) -> None:
        self.env = env
        self.name = name
        self.activity = activity
        self._unit = Resource(env, capacity=1)
        self.tracker = UtilizationTracker(env, name=name)
        self.ops_executed = 0

    def execute(self, busy_time: float) -> Generator[Event, None, ExecutionReceipt]:
        """Occupy the engine for ``busy_time`` seconds (a sub-process).

        Use as ``receipt = yield from engine.execute(t)`` inside
        another process generator.
        """
        queued_at = self.env.now
        with self._unit.request() as req:
            yield req
            start = self.env.now
            extra = self._pre_execution_cost()
            # Mark the device busy through this op's expected end so
            # concurrent engines measure their gaps correctly even
            # while this op is still in flight.
            self.activity.note(start + busy_time + extra)
            self.tracker.set_busy()
            yield self.env.timeout(busy_time + extra)
            end = self.env.now
            self.activity.note(end)
            self.tracker.set_idle()
            self.ops_executed += 1
        return ExecutionReceipt(
            start=start, end=end, queued_at=queued_at, starvation_cost=extra
        )

    def _pre_execution_cost(self) -> float:
        """Extra cost charged before this execution (engine-specific)."""
        return 0.0

    def utilization(self) -> float:
        """Busy fraction over the engine's observed lifetime."""
        self.tracker.finish()
        return self.tracker.utilization()


class ComputeEngine(Engine):
    """The kernel-execution engine, with starvation cost on idle gaps.

    ``faults`` optionally holds a compiled
    :class:`~repro.faults.FaultInjector`: operations starting inside a
    ``GpuStall`` window pay its extra busy time (throttling/preemption
    pauses), charged through the same pre-execution path as the
    starvation cost so both engine variants inherit it.
    """

    #: Optional fault injector (set by the runtime; None = healthy).
    faults = None

    def __init__(
        self,
        env: Environment,
        gpu: GPUSpec,
        activity: Optional[DeviceActivity] = None,
        name: str = "compute",
    ) -> None:
        super().__init__(env, name, activity or DeviceActivity())
        self.gpu = gpu
        self.total_starvation_cost = 0.0

    def _pre_execution_cost(self) -> float:
        # Tick-quantized (repro.des.timebase) so starvation totals and
        # the event times they extend stay exactly representable.
        cost = quantize(self.gpu.starvation_cost(self.activity.idle_gap(self.env.now)))
        self.total_starvation_cost += cost
        if self.faults is not None:
            cost += self.faults.charge_stall(self.env.now)
        return cost


class OccupancyComputeEngine(ComputeEngine):
    """A compute engine that co-schedules kernels by SM occupancy.

    Instead of serializing all kernels on one unit, kernels acquire a
    share of the device's SMs (``kernel.sm_fraction``): small kernels
    from different streams run concurrently, which is the
    latency-hiding the Background section describes ("GPUs function
    best with large amounts of work queued up at their scheduler").
    Execution time is unchanged while shares fit — concurrent kernels
    use disjoint SMs.
    """

    def __init__(
        self,
        env: Environment,
        gpu: GPUSpec,
        activity: Optional[DeviceActivity] = None,
        name: str = "compute-occupancy",
    ) -> None:
        super().__init__(env, gpu, activity, name)
        from ..des import Container

        self._sms = Container(
            env, capacity=float(gpu.sm_count), init=float(gpu.sm_count)
        )
        self._resident = 0

    @property
    def resident_kernels(self) -> int:
        """Kernels currently executing concurrently."""
        return self._resident

    def execute_kernel(
        self, busy_time: float, sm_fraction: float
    ) -> Generator[Event, None, ExecutionReceipt]:
        """Run one kernel on its SM share (concurrent with others)."""
        if not 0 < sm_fraction <= 1:
            raise ValueError("sm_fraction must be in (0, 1]")
        queued_at = self.env.now
        share = max(1.0, sm_fraction * self.gpu.sm_count)
        yield self._sms.get(share)
        start = self.env.now
        extra = self._pre_execution_cost()
        self.activity.note(start + busy_time + extra)
        self._resident += 1
        if self._resident == 1:
            self.tracker.set_busy()
        yield self.env.timeout(busy_time + extra)
        end = self.env.now
        self.activity.note(end)
        self._resident -= 1
        if self._resident == 0:
            self.tracker.set_idle()
        self.ops_executed += 1
        yield self._sms.put(share)
        return ExecutionReceipt(
            start=start, end=end, queued_at=queued_at, starvation_cost=extra
        )


class CopyEngine(Engine):
    """A DMA engine; transfer time comes from the host link (PCIe)."""

    def __init__(
        self, env: Environment, name: str, activity: Optional[DeviceActivity] = None
    ) -> None:
        super().__init__(env, name, activity or DeviceActivity())
        self.bytes_moved = 0.0

    def copy(
        self, nbytes: float, transfer_time: float
    ) -> Generator[Event, None, ExecutionReceipt]:
        """Occupy the engine for one transfer of ``nbytes``."""
        receipt = yield from self.execute(transfer_time)
        self.bytes_moved += nbytes
        return receipt
