"""LLM inference serving on the simulated GPU: the traced profile.

The third production workload, and the first *latency-sensitive* one —
directly the ROADMAP's "millions of users" scenario. An open-loop
arrival process admits requests (``arrivals.py``), a dynamic batcher
forms batches under a max-size + batching-window policy
(``batcher.py``), and the engine runs each batch through the paper's
instrumented CUDA runtime:

* optional KV-cache **restore** (H2D) when the batch's pages were
  spilled by the previous cycle;
* one H2D upload of the batch's prompt token ids;
* one large **prefill** kernel (compute-bound, one-shot);
* a **decode** loop — per generated token one small memory-bound
  kernel plus a tiny *synchronous* D2H of the sampled token ids, so
  every step's injected slack lands on the request's critical path
  exactly as it would for a real token-streaming frontend;
* optional KV-cache **spill** (D2H) on the paging cadence.

Per-request TTFT/TPOT are read off simulated time, which is what turns
the paper's per-call slack into a *latency-SLO* penalty instead of a
batch-throughput penalty (see ``slo.py``). Every device operation is
tagged with its serving phase through the trace's ``thread`` field, so
phase sub-profiles (prefill vs decode) can be re-fed to the unchanged
:class:`~repro.model.CDIProfiler`.

Arrivals are aperiodic by construction, so steady-state fast-forward
always refuses (``reason="aperiodic-arrivals"``) — recorded, like
every refusal, in :attr:`~repro.apps.base.AppProfile.fastforward`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ...des import Environment, Event, quantize
from ...des.fastforward import FastForwardInfo
from ...faults import FaultPlan
from ...gpusim import CudaRuntime, KernelSpec
from ...hw import A100_SXM4_40GB, GPUSpec, PCIE_GEN4_X16, PCIeSpec
from ...network import SlackModel
from ...trace import CopyKind, EventKind
from ..base import AppProfile, publish_fastforward
from .arrivals import Request, generate_requests
from .batcher import BatchQueue
from .llm import LLMSpec

__all__ = [
    "PHASE_PREFILL",
    "PHASE_DECODE",
    "PHASE_KV",
    "PHASE_MISC",
    "InferenceProfileConfig",
    "RequestRecord",
    "BatchRecord",
    "SLOReport",
    "InferenceRunResult",
    "run_inference",
    "profile_inference",
]

#: Serving-phase tags carried on every trace event's ``thread`` field.
#: They are what :func:`repro.apps.inference.slo.phase_profile` filters
#: on to hand the unchanged predictor a per-phase sub-profile.
PHASE_PREFILL = 0
PHASE_DECODE = 1
PHASE_KV = 2
PHASE_MISC = 3


@dataclass(frozen=True)
class InferenceProfileConfig:
    """Configuration of one traced serving run."""

    llm: LLMSpec = field(default_factory=LLMSpec)
    gpu: GPUSpec = field(default_factory=lambda: A100_SXM4_40GB)
    pcie: PCIeSpec = field(default_factory=lambda: PCIE_GEN4_X16)
    #: Open-loop Poisson arrival rate (ignored with ``arrival_trace``).
    request_rate_per_s: float = 4.0
    num_requests: int = 64
    #: Explicit arrival timestamps (seconds); overrides the Poisson
    #: process and ``num_requests`` when given.
    arrival_trace: Optional[Tuple[float, ...]] = None
    max_batch_size: int = 8
    #: How long a non-full batch waits for more arrivals before launch.
    batch_window_s: float = 0.004
    prompt_tokens_mean: int = 256
    prompt_tokens_sigma: float = 0.35
    decode_tokens_mean: int = 64
    decode_tokens_sigma: float = 0.35
    #: KV-cache paging cadence: every Nth batch spills its KV pages to
    #: host (D2H) and the following batch restores them (H2D). 0 = no
    #: paging traffic.
    kv_spill_every: int = 4
    #: Latency SLOs the run's violation counters are scored against.
    ttft_slo_s: float = 1.5
    tpot_slo_s: float = 0.02
    #: Host-side per-step cost (sampling, detokenize, stream write).
    host_overhead_s: float = 25e-6
    #: Lognormal wobble on kernel durations (0 = deterministic kernels;
    #: arrivals are stochastic either way, via the seed).
    jitter: float = 0.0
    seed: int = 2026

    def __post_init__(self) -> None:
        if self.request_rate_per_s <= 0:
            raise ValueError("request_rate_per_s must be positive")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if self.prompt_tokens_mean <= 0 or self.decode_tokens_mean <= 0:
            raise ValueError("token means must be positive")
        if self.prompt_tokens_sigma < 0 or self.decode_tokens_sigma < 0:
            raise ValueError("token sigmas must be non-negative")
        if self.kv_spill_every < 0:
            raise ValueError("kv_spill_every must be non-negative")
        if self.ttft_slo_s <= 0 or self.tpot_slo_s <= 0:
            raise ValueError("SLO targets must be positive")
        if self.host_overhead_s < 0:
            raise ValueError("host_overhead_s must be non-negative")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")


@dataclass(frozen=True)
class RequestRecord:
    """One request's simulated lifecycle timestamps."""

    rid: int
    arrival_s: float
    prompt_tokens: int
    decode_tokens: int
    batch_id: int
    #: When the batch containing this request started executing.
    dispatch_s: float
    #: When the first generated token reached the host.
    first_token_s: float
    #: When the last generated token reached the host.
    done_s: float

    @property
    def ttft_s(self) -> float:
        """Time to first token (queueing + prefill + first decode step)."""
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> Optional[float]:
        """Mean time per output token after the first (None if only one)."""
        if self.decode_tokens <= 1:
            return None
        return (self.done_s - self.first_token_s) / (self.decode_tokens - 1)


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch as the engine saw it."""

    batch_id: int
    dispatch_s: float
    #: Request ids in dispatch order (FIFO slice of the admission queue).
    request_ids: Tuple[int, ...]
    #: Queue depth at dispatch, batch included.
    queue_depth: int
    prefill_tokens: int
    decode_steps: int
    kv_restored_bytes: int
    kv_spilled_bytes: int

    @property
    def size(self) -> int:
        return len(self.request_ids)


@dataclass(frozen=True)
class SLOReport:
    """Latency aggregates of one serving run."""

    requests: int
    ttft_mean_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    ttft_max_s: float
    tpot_mean_s: float
    tpot_p50_s: float
    tpot_p99_s: float
    ttft_violations: int
    tpot_violations: int
    makespan_s: float

    @property
    def throughput_rps(self) -> float:
        """Completed requests per simulated second."""
        return self.requests / self.makespan_s if self.makespan_s > 0 else 0.0


@dataclass(frozen=True)
class InferenceRunResult:
    """Everything one serving run produced."""

    profile: AppProfile
    requests: Tuple[RequestRecord, ...]
    batches: Tuple[BatchRecord, ...]
    slo: SLOReport
    #: Deepest the admission queue ever got.
    queue_high_water: int


def _slo_report(
    config: InferenceProfileConfig,
    records: Tuple[RequestRecord, ...],
    makespan_s: float,
) -> SLOReport:
    ttft = np.array([r.ttft_s for r in records], dtype=float)
    tpot = np.array(
        [r.tpot_s for r in records if r.tpot_s is not None], dtype=float
    )
    if len(tpot) == 0:
        tpot = np.zeros(1)
        tpot_violations = 0
    else:
        tpot_violations = int(np.sum(tpot > config.tpot_slo_s))
    return SLOReport(
        requests=len(records),
        ttft_mean_s=float(np.mean(ttft)),
        ttft_p50_s=float(np.percentile(ttft, 50)),
        ttft_p99_s=float(np.percentile(ttft, 99)),
        ttft_max_s=float(np.max(ttft)),
        tpot_mean_s=float(np.mean(tpot)),
        tpot_p50_s=float(np.percentile(tpot, 50)),
        tpot_p99_s=float(np.percentile(tpot, 99)),
        ttft_violations=int(np.sum(ttft > config.ttft_slo_s)),
        tpot_violations=tpot_violations,
        makespan_s=makespan_s,
    )


def run_inference(
    config: Optional[InferenceProfileConfig] = None,
    slack: Optional[SlackModel] = None,
    *,
    fast_forward: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
) -> InferenceRunResult:
    """Run the serving DES and return its full result.

    Parameters mirror :func:`repro.apps.profile_lammps`; the extra
    return value (per-request records, batch records, SLO aggregates)
    is what the latency-penalty layer consumes. Fast-forward is always
    *refused* for this workload — an open-loop arrival stream has no
    certified-periodic epoch to extrapolate — and the refusal reason
    is recorded on the profile like any other gate.
    """
    config = config or InferenceProfileConfig()
    slack_model = slack or SlackModel.none()
    requests = generate_requests(config)

    env = Environment()
    injector = faults.compile(env) if faults is not None else None
    rt = CudaRuntime(
        env, gpu=config.gpu, pcie=config.pcie, slack=slack_model,
        faults=injector,
    )
    rng = np.random.default_rng(config.seed + 1)
    llm = config.llm
    stream = rt.create_stream()
    queue = BatchQueue()
    window_s = quantize(config.batch_window_s)
    host_step_s = quantize(config.host_overhead_s)

    def jittered(mean: float) -> float:
        if config.jitter == 0:
            return mean
        sigma = np.sqrt(np.log(1 + config.jitter**2))
        return float(rng.lognormal(np.log(mean) - sigma**2 / 2, sigma))

    def kernel(spec: KernelSpec, name: Optional[str] = None) -> KernelSpec:
        """Resolve a roofline spec to a (possibly jittered) duration."""
        dur = jittered(spec.execution_time(config.gpu))
        return KernelSpec(name=name or spec.name, duration_s=dur)

    # Fresh event per arrival: the engine snapshots the current one
    # before waiting, so a batch window can race arrivals against its
    # deadline without missing either.
    arrival_event: List[Event] = [env.event()]
    records: List[RequestRecord] = []
    batches: List[BatchRecord] = []
    # KV bytes the most recent spill moved out (restored by the next batch).
    spilled: List[int] = [0]

    def arrivals() -> Generator[Event, Any, None]:
        for req in requests:
            delay = req.arrival_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            queue.admit(req)
            fired, arrival_event[0] = arrival_event[0], env.event()
            fired.succeed()

    def kv_bytes(batch: List[Request]) -> int:
        return sum(
            (r.prompt_tokens + r.decode_tokens) * llm.kv_bytes_per_token
            for r in batch
        )

    def execute_batch(
        batch: List[Request], batch_id: int, queue_depth: int
    ) -> Generator[Event, Any, None]:
        dispatch_s = env.now
        restore_bytes = spilled[0]
        if restore_bytes > 0:
            yield from rt.memcpy(restore_bytes, CopyKind.H2D, stream, PHASE_KV)
            spilled[0] = 0

        prompt_tokens = sum(r.prompt_tokens for r in batch)
        yield from rt.memcpy(
            prompt_tokens * llm.token_id_bytes, CopyKind.H2D, stream,
            PHASE_PREFILL,
        )
        yield from rt.launch(
            kernel(llm.prefill_kernel(prompt_tokens)), stream, PHASE_PREFILL
        )

        steps = max(r.decode_tokens for r in batch)
        first_token_s: Dict[int, float] = {}
        done_s: Dict[int, float] = {}
        for step in range(1, steps + 1):
            active = [r for r in batch if r.decode_tokens >= step]
            resident_kv = sum(
                r.prompt_tokens + min(step, r.decode_tokens) for r in batch
            )
            yield from rt.launch(
                kernel(llm.decode_kernel(len(active), resident_kv)),
                stream,
                PHASE_DECODE,
            )
            # Synchronous token readback: the frontend streams each
            # sampled token, so the step's slack is on the critical path.
            yield from rt.memcpy(
                len(active) * llm.token_id_bytes, CopyKind.D2H, stream,
                PHASE_DECODE,
            )
            if host_step_s > 0:
                yield env.timeout(host_step_s)
            now = env.now
            if step == 1:
                for r in batch:
                    first_token_s[r.rid] = now
            for r in active:
                if r.decode_tokens == step:
                    done_s[r.rid] = now

        spill_bytes = 0
        if (
            config.kv_spill_every > 0
            and batch_id % config.kv_spill_every == config.kv_spill_every - 1
        ):
            spill_bytes = kv_bytes(batch)
            yield from rt.memcpy(spill_bytes, CopyKind.D2H, stream, PHASE_KV)
            spilled[0] = spill_bytes

        batches.append(
            BatchRecord(
                batch_id=batch_id,
                dispatch_s=dispatch_s,
                request_ids=tuple(r.rid for r in batch),
                queue_depth=queue_depth,
                prefill_tokens=prompt_tokens,
                decode_steps=steps,
                kv_restored_bytes=restore_bytes,
                kv_spilled_bytes=spill_bytes,
            )
        )
        for r in batch:
            records.append(
                RequestRecord(
                    rid=r.rid,
                    arrival_s=r.arrival_s,
                    prompt_tokens=r.prompt_tokens,
                    decode_tokens=r.decode_tokens,
                    batch_id=batch_id,
                    dispatch_s=dispatch_s,
                    first_token_s=first_token_s[r.rid],
                    done_s=done_s[r.rid],
                )
            )

    def engine() -> Generator[Event, Any, None]:
        batch_id = 0
        total = len(requests)
        while queue.served < total:
            if not len(queue):
                yield arrival_event[0]
            # Dynamic batching window: launch when full, when the
            # window expires, or when no more arrivals can come.
            deadline = env.now + window_s
            while (
                len(queue) < config.max_batch_size
                and queue.admitted < total
                and env.now < deadline
            ):
                yield arrival_event[0] | env.timeout(deadline - env.now)
            depth = len(queue)
            batch = queue.pop_batch(config.max_batch_size)
            yield from execute_batch(batch, batch_id, depth)
            batch_id += 1

    def main() -> Generator[Event, Any, float]:
        t0 = env.now
        procs = [
            env.process(arrivals(), name="infer-arrivals"),
            env.process(engine(), name="infer-engine"),
        ]
        yield env.all_of(procs)
        yield from rt.synchronize(thread=PHASE_MISC)
        return env.now - t0

    main_proc = env.process(main(), name="inference-main")
    env.run()
    runtime = float(main_proc.value)

    enabled = True if fast_forward is None else bool(fast_forward)
    info = FastForwardInfo(
        enabled=enabled,
        certified=False,
        reason="disabled" if not enabled else "aperiodic-arrivals",
    )
    publish_fastforward(info)

    trace = rt.tracer.trace
    api_calls = trace.count_kind(EventKind.API)
    profile = AppProfile(
        name="inference",
        trace=trace,
        runtime_s=runtime,
        # One engine loop feeds the GPU: a single kernel launcher.
        queue_parallelism=1,
        cuda_calls_per_second=api_calls / runtime,
        fastforward=info,
    )
    records.sort(key=lambda r: r.rid)
    result = InferenceRunResult(
        profile=profile,
        requests=tuple(records),
        batches=tuple(batches),
        slo=_slo_report(config, tuple(records), runtime),
        queue_high_water=queue.high_water,
    )
    from ...obs import publish_inference

    publish_inference(result)
    return result


def profile_inference(
    config: Optional[InferenceProfileConfig] = None,
    slack: Optional[SlackModel] = None,
    *,
    fast_forward: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
) -> AppProfile:
    """Profile-only entry point, signature-compatible with the other apps."""
    return run_inference(
        config, slack, fast_forward=fast_forward, faults=faults
    ).profile
