"""Compressed trace for fast-forwarded runs: one epoch, repeated.

When the steady-state fast-forward engine (:mod:`repro.proxy.fastforward`)
skips ``S`` bit-identical loop iterations, the full trace it owes the
caller is the truncated run's trace with ``S`` time-shifted copies of
one reference epoch spliced in. :class:`RepeatedEpochTrace` stores
exactly that recipe — the truncated base events, the reference window,
the cycle period and the repeat count — and only materializes the full
event list when an analysis method actually needs it. A sweep that
reads scalar results pays nothing; a caller that profiles the trace
gets every event the full simulation would have recorded, bit for bit.

The decomposition partitions strictly by event *start* time (events are
recorded at completion, so a spanning event belongs to the window its
start falls in):

* base events starting before the certification boundary — unchanged;
* reference-window events, replicated ``j = 1..S`` times at
  ``start + j*period`` (correlation ids advance by the per-cycle
  stride, matching the ids the full run would have issued);
* base events starting at/after the boundary (the truncated run's
  final epochs and teardown) — shifted by ``S*period``.

All shifts are exact because every timestamp sits on the dyadic tick
grid (:mod:`repro.des.timebase`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import Iterable, List, Sequence

from .container import Trace
from .events import TraceEvent

__all__ = ["EpochWindow", "RepeatedEpochTrace", "SegmentedEpochTrace"]


class RepeatedEpochTrace(Trace):
    """A :class:`Trace` whose middle is one epoch repeated ``S`` times.

    Parameters
    ----------
    base_events:
        The truncated run's recorded events, in append order.
    window_start, window_end:
        The reference epoch ``[window_start, window_end)`` — the last
        certified steady-state cycle of the truncated run.
    period_s:
        The cycle period (``window_end - window_start``).
    repeats:
        How many skipped cycles to splice in.
    correlation_stride:
        Correlation ids issued per cycle; replica ``j`` advances the
        reference events' nonzero ids by ``j * correlation_stride``.
    """

    def __init__(
        self,
        base_events: Iterable[TraceEvent],
        *,
        window_start: float,
        window_end: float,
        period_s: float,
        repeats: int,
        correlation_stride: int,
        name: str = "",
    ) -> None:
        if repeats < 0:
            raise ValueError("repeats must be non-negative")
        super().__init__(None, name=name)
        self._base: List[TraceEvent] = list(base_events)
        self._window_start = window_start
        self._window_end = window_end
        self._period_s = period_s
        self._repeats = int(repeats)
        self._corr_stride = int(correlation_stride)
        self._ref_count = sum(
            1 for e in self._base if window_start <= e.start < window_end
        )
        self._materialized = False

    # -- compression metadata ----------------------------------------------------
    @property
    def repeats(self) -> int:
        """Number of spliced-in cycle copies."""
        return self._repeats

    @property
    def period_s(self) -> float:
        """The steady-state cycle period."""
        return self._period_s

    @property
    def events_per_cycle(self) -> int:
        """Trace events starting inside one reference cycle."""
        return self._ref_count

    @property
    def materialized(self) -> bool:
        """Whether the full event list has been expanded."""
        return self._materialized

    # -- expansion ---------------------------------------------------------------
    def _materialize(self) -> None:
        if self._materialized:
            return
        w0, w1 = self._window_start, self._window_end
        period, stride = self._period_s, self._corr_stride
        events: List[TraceEvent] = []
        ref: List[TraceEvent] = []
        tail: List[TraceEvent] = []
        for e in self._base:
            if e.start < w1:
                events.append(e)
                if e.start >= w0:
                    ref.append(e)
            else:
                tail.append(e)
        for j in range(1, self._repeats + 1):
            off = j * period
            corr_off = j * stride
            for e in ref:
                events.append(
                    replace(
                        e,
                        start=e.start + off,
                        end=e.end + off,
                        correlation_id=(
                            e.correlation_id + corr_off if e.correlation_id else 0
                        ),
                    )
                )
        off = self._repeats * period
        corr_off = self._repeats * stride
        for e in tail:
            events.append(
                replace(
                    e,
                    start=e.start + off,
                    end=e.end + off,
                    correlation_id=(
                        e.correlation_id + corr_off if e.correlation_id else 0
                    ),
                )
            )
        self._events = events
        self._sorted = False
        self._materialized = True

    def _ensure_sorted(self) -> None:
        self._materialize()
        super()._ensure_sorted()

    # -- cheap paths that must not force expansion --------------------------------
    def __len__(self) -> int:
        if self._materialized:
            return len(self._events)
        return len(self._base) + self._repeats * self._ref_count

    def threads(self) -> List[int]:
        if self._materialized:
            return super().threads()
        # Replicas only duplicate base events, so the thread set is
        # exactly the base trace's.
        return sorted({e.thread for e in self._base})

    def count_kind(self, kind) -> int:
        if self._materialized:
            return super().count_kind(kind)
        # Replicas copy the reference window verbatim, so per-kind
        # counts are base + repeats * reference-window count.
        base = ref = 0
        w0, w1 = self._window_start, self._window_end
        for e in self._base:
            if e.kind is kind:
                base += 1
                if w0 <= e.start < w1:
                    ref += 1
        return base + self._repeats * ref

    @property
    def start(self) -> float:
        if self._materialized:
            return Trace.start.fget(self)  # type: ignore[attr-defined]
        # Replicas and the shifted tail start no earlier than the base
        # prefix, so the earliest start is the base minimum.
        if not self._base:
            return 0.0
        return min(e.start for e in self._base)

    # -- methods reading _events directly: expand first ----------------------------
    @property
    def end(self) -> float:
        self._materialize()
        return Trace.end.fget(self)  # type: ignore[attr-defined]

    def total_time(self) -> float:
        self._materialize()
        return super().total_time()

    def busy_time(self) -> float:
        self._materialize()
        return super().busy_time()

    def max_concurrency(self) -> int:
        self._materialize()
        return super().max_concurrency()

    def append(self, event: TraceEvent) -> None:
        self._materialize()
        super().append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self._materialize()
        super().extend(events)

    def __repr__(self) -> str:
        state = "expanded" if self._materialized else "compressed"
        return (
            f"<RepeatedEpochTrace {self.name!r}: {len(self)} events "
            f"({state}, {self._repeats} repeated cycles)>"
        )


@dataclass(frozen=True)
class EpochWindow:
    """One certified reference cycle and how many copies to splice in.

    All coordinates are in the *truncated* run's timeline (the
    continuous timeline the capped simulation actually produced);
    :class:`SegmentedEpochTrace` applies the cumulative shift of every
    preceding window when it expands.
    """

    start: float
    end: float
    period_s: float
    repeats: int
    correlation_stride: int


class SegmentedEpochTrace(Trace):
    """A :class:`Trace` with several repeated windows spliced back in.

    The multi-segment generalization of :class:`RepeatedEpochTrace`:
    a segmented fast-forward run certifies one reference cycle *per
    periodic segment* (e.g. one per CosmoFlow train/validation phase)
    and skips the remainder of each. The full trace is reconstructed
    by partitioning the truncated run's events at the window
    boundaries and shifting each region by the cumulative skipped time
    of every window before it:

    * events starting before window ``i``'s end and at/after its start
      are that window's reference cycle: replica ``j = 1..repeats_i``
      is spliced in at ``start + C_{i-1} + j*period_i`` with nonzero
      correlation ids advanced by ``K_{i-1} + j*stride_i``;
    * every event is itself shifted by the cumulative time
      ``C = Σ repeats_k*period_k`` and correlation stride
      ``K = Σ repeats_k*stride_k`` of the windows fully before it.

    All shifts are exact because every timestamp sits on the dyadic
    tick grid (:mod:`repro.des.timebase`). With a single window this
    expands to exactly what :class:`RepeatedEpochTrace` produces.
    """

    def __init__(
        self,
        base_events: Iterable[TraceEvent],
        *,
        windows: Sequence[EpochWindow],
        name: str = "",
    ) -> None:
        super().__init__(None, name=name)
        self._base: List[TraceEvent] = list(base_events)
        self._windows: List[EpochWindow] = sorted(
            windows, key=lambda w: w.start
        )
        prev_end = float("-inf")
        for w in self._windows:
            if w.repeats < 0:
                raise ValueError("repeats must be non-negative")
            if w.start < prev_end:
                raise ValueError("epoch windows must not overlap")
            prev_end = w.end
        self._ends = [w.end for w in self._windows]
        # Cumulative time/correlation shift contributed by the first
        # k windows (index k of these lists).
        self._cum_time: List[float] = [0.0]
        self._cum_corr: List[int] = [0]
        for w in self._windows:
            self._cum_time.append(self._cum_time[-1] + w.repeats * w.period_s)
            self._cum_corr.append(
                self._cum_corr[-1] + w.repeats * w.correlation_stride
            )
        self._ref_counts = [
            sum(1 for e in self._base if w.start <= e.start < w.end)
            for w in self._windows
        ]
        self._materialized = False

    # -- compression metadata ----------------------------------------------------
    @property
    def windows(self) -> List[EpochWindow]:
        """The certified windows, in time order."""
        return list(self._windows)

    @property
    def repeats(self) -> int:
        """Total spliced-in cycle copies across all windows."""
        return sum(w.repeats for w in self._windows)

    @property
    def materialized(self) -> bool:
        """Whether the full event list has been expanded."""
        return self._materialized

    # -- expansion ---------------------------------------------------------------
    def _shifted(self, e: TraceEvent, off: float, corr_off: int) -> TraceEvent:
        if off == 0.0 and corr_off == 0:
            return e
        return replace(
            e,
            start=e.start + off,
            end=e.end + off,
            correlation_id=(
                e.correlation_id + corr_off if e.correlation_id else 0
            ),
        )

    def _materialize(self) -> None:
        if self._materialized:
            return
        events: List[TraceEvent] = []
        refs: List[List[TraceEvent]] = [[] for _ in self._windows]
        for e in self._base:
            # Number of windows lying fully before this event's start;
            # their cumulative shift applies to the event itself.
            k = bisect_right(self._ends, e.start)
            events.append(self._shifted(e, self._cum_time[k], self._cum_corr[k]))
            if k < len(self._windows) and e.start >= self._windows[k].start:
                refs[k].append(e)
        for k, w in enumerate(self._windows):
            base_off = self._cum_time[k]
            base_corr = self._cum_corr[k]
            for j in range(1, w.repeats + 1):
                off = base_off + j * w.period_s
                corr_off = base_corr + j * w.correlation_stride
                for e in refs[k]:
                    events.append(self._shifted(e, off, corr_off))
        self._events = events
        self._sorted = False
        self._materialized = True

    def _ensure_sorted(self) -> None:
        self._materialize()
        super()._ensure_sorted()

    # -- cheap paths that must not force expansion --------------------------------
    def __len__(self) -> int:
        if self._materialized:
            return len(self._events)
        return len(self._base) + sum(
            w.repeats * n for w, n in zip(self._windows, self._ref_counts)
        )

    def threads(self) -> List[int]:
        if self._materialized:
            return super().threads()
        return sorted({e.thread for e in self._base})

    def count_kind(self, kind) -> int:
        if self._materialized:
            return super().count_kind(kind)
        total = 0
        for e in self._base:
            if e.kind is kind:
                total += 1
                k = bisect_right(self._ends, e.start)
                if (
                    k < len(self._windows)
                    and e.start >= self._windows[k].start
                ):
                    total += self._windows[k].repeats
        return total

    @property
    def start(self) -> float:
        if self._materialized:
            return Trace.start.fget(self)  # type: ignore[attr-defined]
        # Shifts are non-negative, so the earliest start is the base
        # minimum (events before the first window are unshifted).
        if not self._base:
            return 0.0
        return min(e.start for e in self._base)

    # -- methods reading _events directly: expand first ----------------------------
    @property
    def end(self) -> float:
        self._materialize()
        return Trace.end.fget(self)  # type: ignore[attr-defined]

    def total_time(self) -> float:
        self._materialize()
        return super().total_time()

    def busy_time(self) -> float:
        self._materialize()
        return super().busy_time()

    def max_concurrency(self) -> int:
        self._materialize()
        return super().max_concurrency()

    def append(self, event: TraceEvent) -> None:
        self._materialize()
        super().append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self._materialize()
        super().extend(events)

    def __repr__(self) -> str:
        state = "expanded" if self._materialized else "compressed"
        return (
            f"<SegmentedEpochTrace {self.name!r}: {len(self)} events "
            f"({state}, {len(self._windows)} windows, "
            f"{self.repeats} repeated cycles)>"
        )
