"""Figure 2: LAMMPS strong scaling, MPI processes 1-24, per box size."""

from __future__ import annotations

from ..apps.lammps import LJParams, LammpsScalingModel, PAPER_BOX_SIZES
from .context import ExperimentContext
from .report import ExperimentResult, Series

__all__ = ["run", "PROCESS_GRID"]

#: MPI process counts swept in the paper's Figure 2.
PROCESS_GRID = (1, 2, 4, 8, 12, 16, 20, 24)


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce Figure 2's normalized strong-scaling curves."""
    model = LammpsScalingModel()
    series = Series(
        title="Figure 2: LAMMPS strong scaling (single GPU, normalized)",
        x_label="MPI processes",
        y_label="runtime normalized to 1 process",
        x=[float(p) for p in PROCESS_GRID],
    )
    for box in PAPER_BOX_SIZES:
        params = LJParams(box)
        series.add_line(
            f"Box Size {box}",
            [model.normalized_runtime(params, p) for p in PROCESS_GRID],
        )
    series.notes.append(
        "paper anchors: box 60 -17.2% at 8 procs; box 120 -55.6% at 24 "
        "with diminishing returns after 16; box 20 monotonically degrades"
    )
    result = ExperimentResult(experiment_id="figure2", series=[series])

    # Shape assertions recorded as notes (checked in tests/benches).
    r60 = model.normalized_runtime(LJParams(60), 8)
    r120 = model.normalized_runtime(LJParams(120), 24)
    result.notes.append(
        f"measured: box60@8 = {r60:.3f} (paper 0.828); "
        f"box120@24 = {r120:.3f} (paper 0.444)"
    )
    return result
