"""Tests for trace timeline analysis: gaps and utilization series."""

import numpy as np
import pytest

from repro.trace import (
    CopyKind,
    EventKind,
    Trace,
    TraceEvent,
    device_gaps,
    utilization_series,
)


def kernel(start, end):
    return TraceEvent(EventKind.KERNEL, "k", start, end)


def memcpy(start, end):
    return TraceEvent(EventKind.MEMCPY, "m", start, end, nbytes=10,
                      copy_kind=CopyKind.H2D)


def api(start, end):
    return TraceEvent(EventKind.API, "a", start, end)


class TestDeviceGaps:
    def test_back_to_back_no_gaps(self):
        t = Trace([kernel(0, 1), kernel(1, 2), kernel(2, 3)])
        g = device_gaps(t)
        assert g.count == 0
        assert g.utilization == pytest.approx(1.0)
        assert g.mean_gap == 0.0
        assert g.max_gap == 0.0

    def test_gaps_measured(self):
        t = Trace([kernel(0, 1), kernel(2, 3), kernel(6, 7)])
        g = device_gaps(t)
        assert g.gaps == (1.0, 3.0)
        assert g.total_gap_time == 4.0
        assert g.mean_gap == 2.0
        assert g.max_gap == 3.0
        assert g.busy_time == pytest.approx(3.0)
        assert g.span == pytest.approx(7.0)

    def test_memcpys_count_as_activity(self):
        # A copy bridging two kernels removes the gap between them.
        t = Trace([kernel(0, 1), memcpy(1, 2), kernel(2, 3)])
        assert device_gaps(t).count == 0

    def test_api_events_do_not_count(self):
        t = Trace([kernel(0, 1), api(1, 5), kernel(5, 6)])
        g = device_gaps(t)
        assert g.gaps == (4.0,)

    def test_overlapping_activity_merged(self):
        t = Trace([kernel(0, 4), kernel(1, 2), kernel(5, 6)])
        g = device_gaps(t)
        assert g.gaps == (1.0,)
        assert g.busy_time == pytest.approx(5.0)

    def test_min_gap_filter(self):
        t = Trace([kernel(0, 1), kernel(1.001, 2), kernel(5, 6)])
        g = device_gaps(t, min_gap_s=0.01)
        assert g.gaps == (3.0,)

    def test_gaps_exceeding(self):
        t = Trace([kernel(0, 1), kernel(2, 3), kernel(6, 7)])
        g = device_gaps(t)
        assert g.gaps_exceeding(2.0) == 1
        assert g.gaps_exceeding(0.5) == 2
        with pytest.raises(ValueError):
            g.gaps_exceeding(-1)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            device_gaps(Trace())
        with pytest.raises(ValueError):
            device_gaps(Trace([api(0, 1)]))
        with pytest.raises(ValueError):
            device_gaps(Trace([kernel(0, 1)]), min_gap_s=-1)

    def test_slack_widens_gaps_integration(self):
        """Slack injection visibly widens the traced device gaps."""
        from repro.network import SlackModel
        from repro.proxy import ProxyConfig, run_proxy

        cfg = ProxyConfig(matrix_size=512, iterations=20)
        quiet = device_gaps(run_proxy(cfg).trace)
        slowed = device_gaps(
            run_proxy(cfg, SlackModel(1e-3)).trace
        )
        assert slowed.mean_gap > 10 * max(quiet.mean_gap, 1e-9)
        assert slowed.utilization < quiet.utilization


class TestUtilizationSeries:
    def test_fully_busy_windows(self):
        t = Trace([kernel(0, 10)])
        centres, util = utilization_series(t, window_s=2.0)
        assert len(centres) == 5
        assert np.allclose(util, 1.0)

    def test_half_busy(self):
        t = Trace([kernel(0, 1)])
        t.append(kernel(2, 3))
        _, util = utilization_series(t, window_s=4.0)
        assert util[0] == pytest.approx(0.5)

    def test_kind_filter(self):
        t = Trace([kernel(0, 1), memcpy(1, 2)])
        _, util_k = utilization_series(t, 2.0, kind=EventKind.KERNEL)
        _, util_all = utilization_series(t, 2.0)
        assert util_k[0] == pytest.approx(0.5)
        assert util_all[0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            utilization_series(Trace([kernel(0, 1)]), window_s=0)
        with pytest.raises(ValueError):
            utilization_series(Trace(), window_s=1.0)
