"""Steady-state cycle detection and analytic fast-forward for the proxy.

The proxy workload (:mod:`repro.proxy.matmul`) simulates up to 1000
*identical* loop iterations event by event. After a short warmup the
simulation is strictly periodic: every per-iteration quantity — the
wall-time delta, the injected slack, the starvation cost, the heap
shape at the epoch boundary — repeats bit for bit (guaranteed by the
dyadic time grid, :mod:`repro.des.timebase`). This module exploits
that: it watches the run at thread-0 epoch boundaries, certifies a
fixed point once ``CONSECUTIVE_CERTS`` consecutive cycles are
bit-identical, caps every worker at a uniform epoch count two cycles
past certification (so multi-thread contention plays out its natural
tail *inside the same simulation*), and analytically extrapolates the
skipped ``S`` cycles:

* absolute times shift by ``S * period`` (exact dyadic arithmetic);
* additive counters and totals advance by ``S`` times their certified
  per-cycle delta;
* the trace becomes a :class:`~repro.trace.RepeatedEpochTrace` that
  expands to the full event list on demand;
* engine utilizations are recomputed from the extrapolated busy/idle
  sums — the same operands the full run would divide, so the quotient
  is bit-identical too.

Why capping (not replaying) is exact: the truncated run is identical
to the full run up to the certification boundary ``B_c``; the full
run's window ``[B_c, B_c + S*period)`` is ``S`` shifted copies of the
certified reference cycle; and the full run's suffix after
``B_{c+S}`` equals the truncated run's suffix after ``B_c`` shifted by
``S*period``, because at those two instants every thread has the same
number of epochs left (the uniform cap subtracts ``S`` from each
thread's remaining count) and the relative simulator state is
bit-identical (that is what the certificate checks).

Certification is deliberately conservative: any configuration whose
periodicity cannot be certified — phase barriers, iteration spacing,
staggered thread launch, jittered or subclassed slack models, or a run
that simply never settles — completes as a full simulation and the
result records the fallback reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..des import Environment, Process
from ..des.core import _PRIORITY_SHIFT
from ..network import SlackModel
from ..trace import RepeatedEpochTrace, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpusim import CudaRuntime
    from .matmul import ProxyConfig

__all__ = [
    "FastForwardInfo",
    "EpochMonitor",
    "Extrapolated",
    "refusal_reason",
    "MIN_ITERATIONS",
    "CONSECUTIVE_CERTS",
    "MAX_WARMUP_EPOCHS",
]

#: Below this iteration count fast-forward cannot save anything (the
#: earliest certification caps the run at 6 epochs).
MIN_ITERATIONS = 7

#: Consecutive bit-identical cycle certificates required to certify.
CONSECUTIVE_CERTS = 3

#: Give up watching after this many warmup epochs: a run that has not
#: settled by then is not going to, and the boundary snapshots would
#: only slow the full simulation down.
MAX_WARMUP_EPOCHS = 32


@dataclass(frozen=True)
class FastForwardInfo:
    """How fast-forward engaged (or why it did not) for one run."""

    enabled: bool
    certified: bool
    reason: Optional[str] = None
    #: Thread-0 epochs actually simulated (the warmup + settle tail).
    warmup_iterations: int = 0
    #: Per-thread iterations skipped analytically.
    skipped_iterations: int = 0
    #: DES events the skipped cycles would have scheduled.
    events_skipped: int = 0
    #: The certified steady-state cycle period.
    cycle_period_s: float = 0.0


@dataclass(frozen=True)
class Extrapolated:
    """Full-run result values reconstructed from a truncated run."""

    loop_runtime_s: float
    injected_slack_s: float
    starvation_cost_s: float
    trace: Trace
    sim_metrics: Dict[str, float]
    info: FastForwardInfo


def refusal_reason(
    config: "ProxyConfig",
    slack: SlackModel,
    iterations: int,
    faults: Optional[object] = None,
) -> Optional[str]:
    """Why this run is ineligible for fast-forward (None = eligible).

    Everything here is a configuration whose periodicity the monitor
    either cannot certify (jitter breaks bit-identity) or should not
    try to (barriers and spacing/offset knobs exist precisely to
    perturb the steady state the paper's control experiments probe).
    """
    if faults is not None:
        # An active fault injector makes the run time-inhomogeneous:
        # fault windows open and close at absolute times, so no cycle
        # certificate can extend over the skipped interval. Refuse
        # outright rather than wasting boundary snapshots.
        return "faults-active"
    if type(slack) is not SlackModel:
        # Subclasses (e.g. the PreloadShim coverage model) may sample
        # stochastically; only the exact base model is certified.
        return "slack-model-subclass"
    if slack.jitter_fraction > 0:
        return "slack-jitter"
    if config.phase_barrier:
        return "phase-barrier"
    if config.iteration_spacing_s > 0:
        return "iteration-spacing"
    if config.thread_launch_offset_s > 0:
        return "thread-launch-offset"
    if iterations < MIN_ITERATIONS:
        return "too-few-iterations"
    return None


# Indices into the per-boundary counter tuple (deltas of these must be
# bit-identical across certified cycles).
_NOW = 0
_EID = 1
_CB_POOL = 2
_TRACE_LEN = 3
_CORR = 4
_API_CALLS = 5
_LAUNCHES = 6
_MEMCPYS = 7
_BYTES_H2D = 8
_BYTES_D2H = 9
_INTERCEPTED = 10
_DELAYED = 11
_INJECTED = 12
_STARVATION = 13
#: First per-engine slot; each engine contributes (ops, busy, idle).
_ENGINES_BASE = 14

_UTIL_LABELS = ("compute", "copy_h2d", "copy_d2h")


class EpochMonitor:
    """Watches epoch boundaries, certifies a fixed point, caps the run.

    Workers call :meth:`epoch_done` after each loop iteration and read
    :attr:`stop_at` as their iteration bound. At each *thread-0*
    boundary the monitor takes a cheap snapshot of every quantity the
    result depends on — additive counters (compared as per-cycle
    deltas) and the relative simulator shape (heap contents, engine
    and stream queue state, open utilization intervals, thread epoch
    offsets — compared for identity). ``CONSECUTIVE_CERTS`` identical
    certificates certify the steady state; the run is then capped two
    epochs later for every thread and the skipped cycles are
    reconstructed by :meth:`extrapolate`.
    """

    def __init__(
        self,
        env: Environment,
        rt: "CudaRuntime",
        threads: int,
        iterations: int,
    ) -> None:
        self.env = env
        self.rt = rt
        self.iterations = iterations
        #: Per-thread iteration bound; lowered once on certification.
        self.stop_at = iterations
        self.completed = [0] * threads
        self.certified_at: Optional[int] = None
        self.cycle_delta: Optional[Tuple[float, ...]] = None
        self._window: Optional[Tuple[float, float]] = None
        self._engines = (rt.compute, rt.copy_h2d, rt.copy_d2h)
        # Incremental closed busy/idle sums per engine: summing the
        # whole interval list at every boundary would be O(epochs^2).
        self._tracker_state = [[0, 0.0, 0.0] for _ in self._engines]
        self._prev_counters: Optional[Tuple[float, ...]] = None
        self._prev_cert: Optional[tuple] = None
        self._streak = 0
        self._dead = False

    @property
    def certified(self) -> bool:
        """Whether a steady-state fixed point was certified."""
        return self.certified_at is not None

    # -- boundary hook -----------------------------------------------------------
    def epoch_done(self, thread_id: int) -> None:
        """Called by a worker after completing one loop iteration."""
        self.completed[thread_id] += 1
        if thread_id != 0 or self._dead or self.certified_at is not None:
            return
        c = self.completed[0]
        if c > MAX_WARMUP_EPOCHS or c + 2 >= self.iterations:
            # Not going to settle (or nothing left to skip): stop
            # paying for snapshots and let the run complete naturally.
            self._dead = True
            return
        counters = self._counters()
        if self._prev_counters is not None:
            delta = tuple(
                b - a for a, b in zip(self._prev_counters, counters)
            )
            cert = (delta, self._shape(c))
            if cert == self._prev_cert:
                self._streak += 1
            else:
                self._streak = 1
                self._prev_cert = cert
            if (
                self._streak >= CONSECUTIVE_CERTS
                and delta[_CB_POOL] == 0
                and max(self.completed) <= c + 1
            ):
                # delta[_CB_POOL] == 0: a still-filling callback pool
                # would hit its cap inside the skipped cycles, breaking
                # linear extrapolation. max offset <= +1: a thread two
                # epochs ahead would already have passed the uniform
                # cap, so the truncated tail would diverge from the
                # full run's.
                self.certified_at = c
                self.stop_at = c + 2
                self.cycle_delta = delta
                self._window = (self._prev_counters[_NOW], counters[_NOW])
        self._prev_counters = counters

    # -- snapshot ----------------------------------------------------------------
    def _counters(self) -> Tuple[float, ...]:
        env, rt = self.env, self.rt
        inj = rt.injector
        vals: List[float] = [
            env._now,
            # itertools.count exposes its next value via __reduce__
            # without consuming it (same trick as metrics_snapshot).
            env._eid.__reduce__()[1][0],
            len(env._cb_pool),
            len(rt.tracer.trace),
            rt.tracer._correlation.__reduce__()[1][0],
            rt.api_calls,
            rt.kernel_launches,
            rt.memcpy_count,
            rt.memcpy_bytes_h2d,
            rt.memcpy_bytes_d2h,
            inj.calls_intercepted,
            inj.calls_delayed,
            inj.total_injected_s,
            rt.compute.total_starvation_cost,
        ]
        for eng, state in zip(self._engines, self._tracker_state):
            intervals = eng.tracker.intervals
            pos, busy, idle = state
            for rec in intervals[pos:]:
                if rec.busy:
                    busy += rec.end - rec.start
                else:
                    idle += rec.end - rec.start
            state[0], state[1], state[2] = len(intervals), busy, idle
            vals.extend((eng.ops_executed, busy, idle))
        return tuple(vals)

    def _shape(self, c: int) -> tuple:
        """Relative (time-shifted) simulator state at a boundary."""
        env, rt = self.env, self.rt
        now = env._now
        heap = tuple(
            sorted(
                (
                    t - now,
                    key >> _PRIORITY_SHIFT,
                    type(ev).__name__,
                    ev.name if isinstance(ev, Process) else "",
                )
                for (t, key, ev) in env._queue
            )
        )
        act = rt.activity
        activity = (
            act.busy_until - now if act.ever_busy else 0.0,
            act.ever_busy,
        )
        engines = tuple(
            (
                eng.tracker._busy,
                eng.tracker._started,
                now - eng.tracker._since if eng.tracker._started else 0.0,
                len(eng._unit.users),
                len(eng._unit.queue),
            )
            for eng in self._engines
        )
        streams = tuple(
            (
                sid,
                s.pending,
                len(s._queue.items),
                type(s._in_flight).__name__ if s._in_flight is not None else "",
                len(s._drain_waiters),
            )
            for sid, s in sorted(rt._streams.items())
        )
        offsets = tuple(n - c for n in self.completed)
        return (heap, activity, engines, streams, offsets)

    # -- reconstruction ----------------------------------------------------------
    def extrapolate(self, loop_runtime_s: float) -> Extrapolated:
        """Reconstruct the full-run result from the truncated run.

        Call after ``env.run()`` returns on a certified run. Every
        value produced here is bit-identical to what the full
        event-by-event simulation yields (see the module docstring for
        the argument; the parity tests check it across the grid).
        """
        assert self.certified_at is not None and self.cycle_delta is not None
        assert self._window is not None
        env, rt = self.env, self.rt
        d = self.cycle_delta
        skipped = self.iterations - self.stop_at
        period = d[_NOW]
        shift = skipped * period

        des = env.metrics_snapshot()
        eid_add = skipped * d[_EID]
        des["events_scheduled"] += eid_add
        des["events_dispatched"] += eid_add
        des["sim_time_s"] += shift

        snap: Dict[str, float] = {f"des.{k}": v for k, v in des.items()}
        util: Dict[str, float] = {}
        for i, (eng, label) in enumerate(zip(self._engines, _UTIL_LABELS)):
            eng.tracker.finish()
            base = _ENGINES_BASE + 3 * i
            busy = eng.tracker.busy_time + skipped * d[base + 1]
            idle = eng.tracker.idle_time + skipped * d[base + 2]
            total = busy + idle
            util[label] = busy / total if total > 0 else 0.0
        injected = rt.injector.total_injected_s + skipped * d[_INJECTED]
        starvation = rt.total_starvation_cost() + skipped * d[_STARVATION]
        snap.update(
            {
                "gpu.kernel_launches": float(
                    rt.kernel_launches + skipped * int(d[_LAUNCHES])
                ),
                "gpu.api_calls": float(
                    rt.api_calls + skipped * int(d[_API_CALLS])
                ),
                "gpu.memcpy_h2d_bytes": float(
                    rt.memcpy_bytes_h2d + skipped * int(d[_BYTES_H2D])
                ),
                "gpu.memcpy_d2h_bytes": float(
                    rt.memcpy_bytes_d2h + skipped * int(d[_BYTES_D2H])
                ),
                "gpu.memcpy_count": float(
                    rt.memcpy_count + skipped * int(d[_MEMCPYS])
                ),
                "gpu.stream_count": float(len(rt.streams)),
                "gpu.compute_utilization": util["compute"],
                "gpu.copy_h2d_utilization": util["copy_h2d"],
                "gpu.copy_d2h_utilization": util["copy_d2h"],
                "gpu.starvation_cost_s": starvation,
                "fabric.calls_intercepted": float(
                    rt.injector.calls_intercepted
                    + skipped * int(d[_INTERCEPTED])
                ),
                "fabric.slack_calls": float(
                    rt.injector.calls_delayed + skipped * int(d[_DELAYED])
                ),
                "fabric.slack_injected_s": injected,
            }
        )

        window_start, window_end = self._window
        trace = RepeatedEpochTrace(
            rt.tracer.trace.events_in_record_order(),
            window_start=window_start,
            window_end=window_end,
            period_s=period,
            repeats=skipped,
            correlation_stride=int(d[_CORR]),
            name=rt.tracer.trace.name,
        )
        info = FastForwardInfo(
            enabled=True,
            certified=True,
            reason=None,
            warmup_iterations=self.stop_at,
            skipped_iterations=skipped,
            events_skipped=skipped * int(d[_EID]),
            cycle_period_s=period,
        )
        return Extrapolated(
            loop_runtime_s=loop_runtime_s + shift,
            injected_slack_s=injected,
            starvation_cost_s=starvation,
            trace=trace,
            sim_metrics=snap,
            info=info,
        )
