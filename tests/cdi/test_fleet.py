"""Tests for the vectorized fleet-scale simulation engine.

The load-bearing property is *bit*-parity: on any shared
configuration the fleet engine must reproduce the scalar reference
DES per job — wait, start, end, cores-grant time, and trapped
core/GPU accounting — exactly, not approximately. Everything layered
on top (placement, penalties, traces, metrics) must never perturb the
schedule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdi import (
    PLACEMENT_POLICIES,
    ClusterSpec,
    FleetConfig,
    FleetJobs,
    FleetTopology,
    SimJob,
    TenantSpec,
    assert_fleet_parity,
    generate_fleet_jobs,
    run_fleet,
    synthetic_job_mix,
)
from repro.cdi.placement import place_locality, place_pack, place_spread
from repro.des import quantize
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry
from repro.trace import ColumnarTrace, EventKind

CLUSTER = ClusterSpec(nodes=4)


def fleet_jobs(n=200, seed=3, mean_gap=120.0, cluster=CLUSTER):
    return FleetJobs.from_sim_jobs(
        synthetic_job_mix(
            n, np.random.default_rng(seed),
            mean_interarrival_s=mean_gap, cluster=cluster,
        )
    )


class TestFleetJobs:
    def test_roundtrip_through_sim_jobs(self):
        jobs = fleet_jobs(50)
        back = FleetJobs.from_sim_jobs(jobs.to_sim_jobs())
        assert (back.arrival_s == jobs.arrival_s).all()
        assert (back.duration_s == jobs.duration_s).all()
        assert (back.cores == jobs.cores).all()
        assert (back.gpus == jobs.gpus).all()
        assert (back.tenant == jobs.tenant).all()
        assert back.tenant_names == jobs.tenant_names

    def test_validation(self):
        one = np.ones(1)
        with pytest.raises(ValueError, match="align"):
            FleetJobs(one, np.ones(2), np.ones(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64), ("t",))
        with pytest.raises(ValueError, match="timing"):
            FleetJobs(one, np.zeros(1), np.ones(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64), ("t",))
        with pytest.raises(ValueError, match="tenant"):
            FleetJobs(one, one, np.ones(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64),
                      np.ones(1, dtype=np.int64), ("t",))


class TestGeneration:
    def test_deterministic(self):
        config = FleetConfig(horizon_s=3.0e5, seed=99)
        a = generate_fleet_jobs(config)
        b = generate_fleet_jobs(config)
        assert (a.arrival_s == b.arrival_s).all()
        assert (a.duration_s == b.duration_s).all()
        assert (a.cores == b.cores).all()
        assert (a.gpus == b.gpus).all()

    def test_arrivals_are_tick_quantized(self):
        jobs = generate_fleet_jobs(FleetConfig(horizon_s=2.0e5))
        for t in jobs.arrival_s[:64]:
            assert float(t) == quantize(float(t))

    def test_tenants_independent(self):
        """Adding a tenant must not perturb existing tenants' draws."""
        base = FleetConfig(
            horizon_s=3.0e5,
            tenants=(TenantSpec(name="batch", rate_per_s=1 / 900.0),),
        )
        both = FleetConfig(
            horizon_s=3.0e5,
            tenants=(
                TenantSpec(name="batch", rate_per_s=1 / 900.0),
                TenantSpec(name="extra", rate_per_s=1 / 500.0),
            ),
        )
        a = generate_fleet_jobs(base)
        b = generate_fleet_jobs(both)
        mask = b.tenant == 0
        assert (b.arrival_s[mask] == a.arrival_s).all()
        assert (b.duration_s[mask] == a.duration_s).all()

    def test_shares_respected_roughly(self):
        config = FleetConfig(
            horizon_s=2.0e6,
            tenants=(TenantSpec(name="t", rate_per_s=1 / 300.0,
                                cpu_heavy_share=0.0,
                                gpu_heavy_share=1.0),),
        )
        jobs = generate_fleet_jobs(config)
        assert (jobs.gpus >= 4).all()  # all GPU-heavy

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="", rate_per_s=1.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", rate_per_s=1.0, cpu_heavy_share=0.7,
                       gpu_heavy_share=0.5)
        with pytest.raises(ValueError, match="unique"):
            FleetConfig(tenants=(TenantSpec(name="t", rate_per_s=1.0),
                                 TenantSpec(name="t", rate_per_s=2.0)))
        with pytest.raises(ValueError, match="GPUs"):
            generate_fleet_jobs(FleetConfig(
                cluster=ClusterSpec(nodes=2, gpus_per_node=0),
                horizon_s=1.0e5,
            ))
        assert len(generate_fleet_jobs(
            FleetConfig(horizon_s=5.0e5, max_jobs=10)
        )) == 10


class TestBitParity:
    """The acceptance property: per-job bit-parity with the reference."""

    @pytest.mark.parametrize("mode", ["traditional", "cdi"])
    def test_parity_on_synthetic_mix(self, mode):
        assert_fleet_parity(fleet_jobs(400, seed=11, mean_gap=60.0),
                            CLUSTER, mode)

    @pytest.mark.parametrize("mode", ["traditional", "cdi"])
    def test_parity_on_generated_stream(self, mode):
        config = FleetConfig(cluster=CLUSTER, horizon_s=5.0e5, seed=5)
        assert_fleet_parity(generate_fleet_jobs(config), CLUSTER, mode)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        mean_gap=st.floats(min_value=10.0, max_value=1000.0),
        nodes=st.integers(min_value=1, max_value=8),
    )
    def test_parity_under_random_load(self, seed, mean_gap, nodes):
        cluster = ClusterSpec(nodes=nodes)
        jobs = fleet_jobs(60, seed=seed, mean_gap=mean_gap, cluster=cluster)
        for mode in ("traditional", "cdi"):
            assert_fleet_parity(jobs, cluster, mode)

    def test_simultaneous_arrivals_keep_submission_order(self):
        # Three same-instant jobs: FIFO must follow submission order,
        # and the over-sized head blocks the queue (no backfilling).
        jobs = FleetJobs.from_sim_jobs([
            SimJob("t-0", arrival_s=0.0, duration_s=50.0, cores=40, gpus=0),
            SimJob("t-1", arrival_s=0.0, duration_s=50.0, cores=40, gpus=0),
            SimJob("t-2", arrival_s=0.0, duration_s=10.0, cores=8, gpus=0),
        ])
        cluster = ClusterSpec(nodes=1, cores_per_node=48, gpus_per_node=0)
        result, _ = assert_fleet_parity(jobs, cluster, "cdi")
        assert result.start_s.tolist() == [0.0, 50.0, 50.0]

    def test_hold_and_wait_parity(self):
        # Cores granted while blocked on GPUs: the trapped accounting
        # must match the reference bit for bit.
        jobs = FleetJobs.from_sim_jobs([
            SimJob("t-0", arrival_s=0.0, duration_s=100.0, cores=1, gpus=16),
            SimJob("t-1", arrival_s=1.0, duration_s=10.0, cores=2, gpus=1),
        ])
        result, _ = assert_fleet_parity(jobs, CLUSTER, "cdi")
        assert float(result.cores_start_s[1]) == 1.0
        assert float(result.start_s[1]) == 100.0
        assert float(result.trapped_core_s[1]) == 2 * 99.0


class TestRunFleetValidation:
    def test_bad_inputs(self):
        jobs = fleet_jobs(10)
        with pytest.raises(ValueError, match="mode"):
            run_fleet(jobs, CLUSTER, "magic")
        with pytest.raises(ValueError, match="placement"):
            run_fleet(jobs, CLUSTER, "cdi", placement="nope")
        with pytest.raises(ValueError, match="topology"):
            run_fleet(jobs, CLUSTER, "cdi",
                      topology=FleetTopology.uniform(2, 1))
        with pytest.raises(ValueError, match="empty"):
            run_fleet(FleetJobs(
                np.empty(0), np.empty(0),
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64), ()), CLUSTER)

    def test_oversized_job_rejected(self):
        jobs = FleetJobs.from_sim_jobs(
            [SimJob("t-0", arrival_s=0.0, duration_s=1.0,
                    cores=10_000, gpus=0)]
        )
        for mode in ("traditional", "cdi"):
            with pytest.raises(ValueError, match="larger than the machine"):
                run_fleet(jobs, CLUSTER, mode)


class TestFaultFreeze:
    def test_flap_delays_gpu_admission(self):
        jobs = FleetJobs.from_sim_jobs([
            SimJob("t-0", arrival_s=10.0, duration_s=5.0, cores=1, gpus=1),
        ])
        plan = FaultPlan.from_spec("seed=1;flap:start=5,down=20")
        healthy = run_fleet(jobs, CLUSTER, "cdi")
        flapped = run_fleet(jobs, CLUSTER, "cdi", faults=plan)
        assert float(healthy.start_s[0]) == 10.0
        # Frozen until the window ends at t=25; cores held throughout.
        assert float(flapped.start_s[0]) == 25.0
        assert float(flapped.cores_start_s[0]) == 10.0
        assert float(flapped.trapped_core_s[0]) == 15.0

    def test_traditional_untouched_by_flaps(self):
        jobs = fleet_jobs(50)
        plan = FaultPlan.from_spec("seed=1;flap:start=100,down=1e6")
        a = run_fleet(jobs, CLUSTER, "traditional")
        b = run_fleet(jobs, CLUSTER, "traditional", faults=plan)
        assert (a.start_s == b.start_s).all()


class TestPlacementPolicies:
    def test_pack_prefers_tightest_fit(self):
        free = [2, 8, 4]
        assert place_pack(free, 3, [0, 1, 2]) == [(2, 3)]
        assert free == [2, 8, 1]

    def test_pack_spans_when_needed(self):
        free = [2, 3, 1]
        assert place_pack(free, 5, [0, 1, 2]) == [(1, 3), (0, 2)]
        assert free == [0, 0, 1]

    def test_spread_balances(self):
        free = [4, 4]
        assert place_spread(free, 2, [0, 1]) == [(0, 1), (1, 1)]
        assert free == [3, 3]

    def test_locality_prefers_low_slack(self):
        free = [4, 4]
        # slack_order says rack 1 is nearer: it wins the whole fit.
        assert place_locality(free, 2, [1, 0]) == [(1, 2)]
        assert free == [4, 2]

    def test_exhaustion_raises(self):
        for policy in PLACEMENT_POLICIES.values():
            with pytest.raises(ValueError, match="cannot place"):
                policy([1, 1], 3, [0, 1])

    @pytest.mark.parametrize("policy", sorted(PLACEMENT_POLICIES))
    def test_replay_conserves_rack_inventory(self, policy):
        jobs = fleet_jobs(300, seed=13, mean_gap=60.0)
        topo = FleetTopology.uniform(4, CLUSTER.total_gpus // 4)
        result = run_fleet(jobs, CLUSTER, "cdi",
                           placement=policy, topology=topo)
        assert result.placement == policy
        gpu_jobs = jobs.gpus > 0
        placed = np.array([len(r) > 0 for r in result.rack_of_gpus])
        assert (placed == gpu_jobs).all()
        for i in np.flatnonzero(gpu_jobs):
            counts = result.rack_of_gpus[i]
            assert sum(c for _, c in counts) == int(jobs.gpus[i])
            want = max(topo.rack_slack_s[r] for r, _ in counts)
            assert float(result.slack_s[i]) == want
        assert np.isnan(result.slack_s[~gpu_jobs]).all()

    def test_placement_does_not_perturb_schedule(self):
        jobs = fleet_jobs(200, seed=17)
        plain = run_fleet(jobs, CLUSTER, "cdi")
        placed = run_fleet(
            jobs, CLUSTER, "cdi", placement="spread",
            topology=FleetTopology.uniform(2, CLUSTER.total_gpus // 2),
        )
        assert (plain.start_s == placed.start_s).all()

    def test_topology_helpers(self):
        topo = FleetTopology.uniform(3, 8)
        assert topo.racks == 3 and topo.total_gpus == 24
        assert topo.rack_slack_s[0] < topo.rack_slack_s[2]
        with pytest.raises(ValueError):
            FleetTopology(rack_slack_s=(), gpus_per_rack=8)
        with pytest.raises(ValueError):
            FleetTopology(rack_slack_s=(1e-6,), gpus_per_rack=0)


class _StubSurrogate:
    """Evaluates to slack*1000 with every odd row refused."""

    def evaluate(self, sizes, threads, slacks):
        n = len(slacks)
        reason = np.zeros(n, dtype=np.int64)
        reason[1::2] = 3
        return np.asarray(slacks) * 1000.0, np.zeros(n), reason


class TestPenaltiesAndStats:
    def test_penalty_distribution(self):
        jobs = fleet_jobs(100, seed=23)
        topo = FleetTopology.uniform(2, CLUSTER.total_gpus // 2)
        result = run_fleet(jobs, CLUSTER, "cdi", topology=topo,
                           surrogate=_StubSurrogate())
        gpu_rows = int((jobs.gpus > 0).sum())
        assert result.penalty is not None
        assert int((~np.isnan(result.penalty)).sum()) == gpu_rows
        assert result.penalty_refusals == gpu_rows // 2
        stats = result.tenant_stats()
        assert any(s.penalty_p50 is not None for s in stats.values())

    def test_tenant_stats_partition_jobs(self):
        jobs = fleet_jobs(150, seed=29)
        result = run_fleet(jobs, CLUSTER, "cdi")
        stats = result.tenant_stats()
        assert set(stats) <= set(jobs.tenant_names)
        assert sum(s.jobs for s in stats.values()) == len(jobs)
        for name, s in stats.items():
            mask = jobs.tenant == jobs.tenant_names.index(name)
            assert s.mean_wait_s == pytest.approx(
                float(result.wait_s[mask].mean())
            )
            assert s.wait_p50_s <= s.wait_p99_s


class TestObservability:
    def test_trace_records_one_event_per_job(self):
        jobs = fleet_jobs(80, seed=31)
        trace = ColumnarTrace(name="fleet")
        result = run_fleet(jobs, CLUSTER, "cdi", trace=trace)
        assert len(trace) == len(jobs)
        events = sorted(trace, key=lambda e: (e.start, e.name))
        want = sorted(
            zip(result.start_s.tolist(), (
                f"job:{jobs.tenant_names[t]}" for t in jobs.tenant.tolist()
            ))
        )
        assert [(e.start, e.name) for e in events] == want
        assert all(e.kind is EventKind.KERNEL for e in events)

    def test_metrics_published_to_registry(self):
        jobs = fleet_jobs(60, seed=37)
        reg = MetricsRegistry()  # fresh registries are enabled
        run_fleet(jobs, CLUSTER, "cdi", registry=reg)
        doc = reg.to_doc()["fleet"]
        assert doc["runs"] == 1.0
        assert doc["jobs"] == float(len(jobs))
        assert 0.0 < doc["core_utilization"] <= 1.0

    def test_report_kind_and_meta(self):
        result = run_fleet(fleet_jobs(60, seed=41), CLUSTER, "cdi")
        rep = result.report(meta={"extra": 1})
        assert rep.kind == "fleet"
        assert rep.meta["mode"] == "cdi"
        assert rep.meta["jobs"] == 60
        assert rep.meta["extra"] == 1
        assert rep.metrics["fleet"]["jobs"] == 60.0
