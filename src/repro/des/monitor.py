"""Instrumentation helpers for DES simulations.

The paper's analysis hinges on time-series quantities (GPU busy/idle
intervals, queue depth over time). :class:`TimeSeriesMonitor` records
(time, value) pairs, and :class:`UtilizationTracker` turns busy/idle
transitions into aggregate utilization and exposed-idle statistics.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .core import Environment

__all__ = ["TimeSeriesMonitor", "UtilizationTracker", "IntervalRecord"]


class TimeSeriesMonitor:
    """Record a piecewise-constant time series of values.

    Values are sampled on change: each ``record`` call appends
    ``(env.now, value)``. The time-weighted mean treats the series as a
    step function held constant until the next sample.
    """

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, value: float) -> None:
        """Append the current value at the current simulated time."""
        self.times.append(self.env.now)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, t: float) -> float:
        """Step-function lookup of the value at time ``t``."""
        if not self.times:
            raise ValueError("monitor is empty")
        idx = bisect_right(self.times, t) - 1
        if idx < 0:
            raise ValueError(f"t={t} precedes the first sample {self.times[0]}")
        return self.values[idx]

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean of the step function from the first sample to ``until``."""
        if not self.times:
            raise ValueError("monitor is empty")
        end = self.env.now if until is None else until
        times = np.asarray(self.times + [end])
        values = np.asarray(self.values)
        widths = np.diff(times)
        total = times[-1] - times[0]
        if total <= 0:
            return float(values[-1])
        return float(np.dot(widths, values) / total)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as NumPy arrays."""
        return np.asarray(self.times), np.asarray(self.values)


@dataclass
class IntervalRecord:
    """A closed busy or idle interval observed on a tracked device."""

    start: float
    end: float
    busy: bool

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start


@dataclass
class UtilizationTracker:
    """Track busy/idle transitions of a device (e.g. a GPU engine).

    Engines call :meth:`set_busy` / :meth:`set_idle`; the tracker
    accumulates closed intervals and answers utilization queries. The
    *exposed idle* statistics (idle gaps between work) are exactly the
    quantity slack uncovers in the paper's starvation analysis.
    """

    env: Environment
    name: str = ""
    intervals: list[IntervalRecord] = field(default_factory=list)
    _busy: bool = False
    _since: float = 0.0
    _started: bool = False

    def set_busy(self) -> None:
        """Mark the device busy from now on (no-op if already busy)."""
        self._transition(True)

    def set_idle(self) -> None:
        """Mark the device idle from now on (no-op if already idle)."""
        self._transition(False)

    def _transition(self, busy: bool) -> None:
        now = self.env.now
        if not self._started:
            self._started = True
            self._busy = busy
            self._since = now
            return
        if busy == self._busy:
            return
        if now > self._since:
            self.intervals.append(IntervalRecord(self._since, now, self._busy))
        self._busy = busy
        self._since = now

    def finish(self) -> None:
        """Close the currently open interval at the present time."""
        if self._started and self.env.now > self._since:
            self.intervals.append(
                IntervalRecord(self._since, self.env.now, self._busy)
            )
            self._since = self.env.now

    @property
    def busy_time(self) -> float:
        """Total closed busy time."""
        return sum(r.duration for r in self.intervals if r.busy)

    @property
    def idle_time(self) -> float:
        """Total closed idle time."""
        return sum(r.duration for r in self.intervals if not r.busy)

    def utilization(self) -> float:
        """Busy fraction over all closed intervals (0 if none)."""
        total = self.busy_time + self.idle_time
        if total <= 0:
            return 0.0
        return self.busy_time / total

    def idle_gaps(self) -> np.ndarray:
        """Durations of idle intervals that sit *between* busy ones.

        Leading idle (before first work) and trailing idle are
        excluded: only gaps where the device was starved mid-run count.
        """
        gaps: list[float] = []
        seen_busy = False
        pending: Optional[float] = None
        for rec in self.intervals:
            if rec.busy:
                if seen_busy and pending is not None:
                    gaps.append(pending)
                seen_busy = True
                pending = None
            else:
                if seen_busy:
                    pending = rec.duration if pending is None else pending + rec.duration
        return np.asarray(gaps)
