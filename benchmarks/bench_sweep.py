"""Benchmark: the parallel sweep execution engine itself.

Measures the same compact grid sequentially and through the process
pool, records both timings (plus the parallel/sequential ratio) into
the BENCH_sweep.json perf artifact, and asserts the engine's core
contract: parallel output is exactly equal to sequential output.

On single-core runners the pool degenerates gracefully — the parity
assertion still holds, only the speedup becomes uninteresting.
"""

import os

from repro.proxy import run_slack_sweep

#: Compact but non-trivial grid: 3 sizes x 2 thread counts x 3 slacks
#: (+ baselines) = 24 proxy runs per mode.
GRID = dict(
    matrix_sizes=(512, 2048, 8192),
    slack_values_s=(1e-6, 1e-4, 1e-2),
    threads=(1, 2),
    iterations=15,
)


def test_bench_sweep_engine(benchmark, bench_extra):
    sequential = run_slack_sweep(**GRID, workers=1)

    workers = os.cpu_count() or 1
    parallel = benchmark.pedantic(
        lambda: run_slack_sweep(**GRID, workers=workers),
        rounds=1,
        iterations=1,
    )

    # The engine's contract: fan-out must not change a single bit.
    assert parallel.points == sequential.points
    assert parallel.skipped == sequential.skipped

    # A wall-time comparison only means something when the second leg
    # actually fanned out: with one worker both legs run the same
    # inline path and the "speedup" would just measure noise and
    # dispatch overhead (historically reported ~0.95x). Emit null so
    # the perf artifact can't be misread.
    wall_speedup = None
    if workers > 1 and parallel.timing.wall_s > 0:
        wall_speedup = sequential.timing.wall_s / parallel.timing.wall_s
    bench_extra["sweep_engine"] = {
        "sequential": sequential.timing.to_doc(),
        "parallel": parallel.timing.to_doc(),
        "wall_speedup": wall_speedup,
    }


#: Reduced paper grid for the fast-forward benchmark. Auto-calibrated
#: iteration counts (the paper's regime: 1000 iterations at 2^9) are
#: where fast-forward pays off — the quick 25-iteration grids above
#: deliberately keep the full simulations cheap.
FF_GRID = dict(
    matrix_sizes=(512, 8192),
    slack_values_s=(1e-5, 1e-3),
    threads=(1, 4),
    iterations=None,
)


def test_bench_fastforward(benchmark, bench_extra):
    full = run_slack_sweep(**FF_GRID, fast_forward=False)

    fast = benchmark.pedantic(
        lambda: run_slack_sweep(**FF_GRID, fast_forward=True),
        rounds=1,
        iterations=1,
    )

    # The engine's contract: every SweepPoint field bit-identical.
    assert fast.points == full.points
    assert fast.skipped == full.skipped

    speedup = (
        full.timing.wall_s / fast.timing.wall_s
        if fast.timing.wall_s > 0
        else float("inf")
    )
    bench_extra["fastforward"] = {
        "grid_points": fast.timing.grid_points,
        "full_wall_s": full.timing.wall_s,
        "fastforward_wall_s": fast.timing.wall_s,
        "speedup": speedup,
        "full_points_per_sec": full.timing.points_per_sec,
        "fastforward_points_per_sec": fast.timing.points_per_sec,
    }
    assert speedup >= 10.0, (
        f"fast-forward speedup {speedup:.1f}x below the 10x floor"
    )
