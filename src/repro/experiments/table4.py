"""Table IV: lower/upper total slack penalties for both applications.

The paper's headline result: at 100 us of slack (20 km of fibre) both
LAMMPS and CosmoFlow pessimistically lose less than 1%.
"""

from __future__ import annotations

from ..model import CDIProfiler
from ..network import fibre_distance_for_latency
from ..proxy import PAPER_SLACK_VALUES_S
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run", "HEADLINE_SLACK_S"]

#: The paper's headline slack value: 100 us.
HEADLINE_SLACK_S = 100e-6


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Reproduce Table IV via the full prediction pipeline."""
    ctx = ctx or ExperimentContext()
    profiler = CDIProfiler(ctx.surface())
    table = Table(
        title="Table IV: total slack penalty bounds [%]",
        headers=["app", "slack [us]", "lower [%]", "upper [%]"],
    )
    result = ExperimentResult(experiment_id="table4", tables=[table])
    headline_ok = True
    for profile in ctx.profiles():
        predictions = profiler.predict_sweep(profile, PAPER_SLACK_VALUES_S)
        for slack in PAPER_SLACK_VALUES_S:
            p = predictions[slack]
            table.add_row(
                profile.name, slack * 1e6,
                round(p.lower_percent, 4), round(p.upper_percent, 4),
            )
        headline = profiler.predict(profile, HEADLINE_SLACK_S)
        headline_ok &= headline.upper_percent < 1.0
        result.notes.append(
            f"{profile.name} at 100 us: upper bound "
            f"{headline.upper_percent:.4f}% (paper: < 1%)"
        )
    km = fibre_distance_for_latency(HEADLINE_SLACK_S) / 1e3
    result.notes.append(
        f"headline {'REPRODUCED' if headline_ok else 'NOT reproduced'}: "
        f"both applications pessimistically lose < 1% at 100 us of slack "
        f"(~{km:.0f} km of fibre at light speed)"
    )
    return result
