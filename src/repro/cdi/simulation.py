"""Fleet-level scheduling simulation: job throughput under CDI.

The paper's introduction claims CDI "can lead to increased system
efficiency for job throughput and time to solution" because exact-
ratio composition stops jobs from trapping resources they don't use.
This module tests that claim dynamically: a stream of jobs (CPU-heavy,
GPU-heavy and CPU-only archetypes) arrives at a cluster and is
scheduled either as whole heterogeneous nodes or as composed
cores+GPUs, on the DES. Reported metrics: makespan, mean job wait,
time-integrated core/GPU utilization, and trapped GPU-hours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..des import Container, Environment, Event

__all__ = [
    "SimJob",
    "ClusterSpec",
    "JobMetrics",
    "SimulationMetrics",
    "simulate_traditional",
    "simulate_cdi",
    "synthetic_job_mix",
    "compare_throughput",
]


@dataclass(frozen=True)
class SimJob:
    """One job of the stream."""

    name: str
    arrival_s: float
    duration_s: float
    cores: int
    gpus: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0 or self.duration_s <= 0:
            raise ValueError("invalid job timing")
        if self.cores <= 0 or self.gpus < 0:
            raise ValueError("invalid job resources")


@dataclass(frozen=True)
class ClusterSpec:
    """The physical inventory, viewable as nodes or as pools."""

    nodes: int = 16
    cores_per_node: int = 48
    gpus_per_node: int = 4

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.cores_per_node <= 0 or self.gpus_per_node < 0:
            raise ValueError("invalid cluster geometry")

    @property
    def total_cores(self) -> int:
        """All cores in the machine."""
        return self.nodes * self.cores_per_node

    @property
    def total_gpus(self) -> int:
        """All GPUs in the machine."""
        return self.nodes * self.gpus_per_node


@dataclass(frozen=True)
class JobMetrics:
    """Per-job outcome.

    ``cores_start_s`` is when the job's cores (or nodes) were granted;
    for CDI jobs that then block on the GPU pool it can precede
    ``start_s``, and the capacity held across that gap is charged to
    ``trapped_core_s``. Traditional allocations acquire atomically, so
    there ``cores_start_s == start_s`` and the trapped fields count the
    statically stranded remainder of the whole-node footprint.
    """

    name: str
    wait_s: float
    start_s: float
    end_s: float
    cores_start_s: float = 0.0
    trapped_core_s: float = 0.0
    trapped_gpu_s: float = 0.0


@dataclass
class SimulationMetrics:
    """Aggregate outcome of one simulated schedule."""

    jobs: List[JobMetrics] = field(default_factory=list)
    makespan_s: float = 0.0
    core_busy_s: float = 0.0
    gpu_busy_s: float = 0.0
    trapped_core_s: float = 0.0
    trapped_gpu_s: float = 0.0
    total_cores: int = 0
    total_gpus: int = 0

    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay across jobs."""
        if not self.jobs:
            return 0.0
        return float(np.mean([j.wait_s for j in self.jobs]))

    @property
    def core_utilization(self) -> float:
        """Time-integrated fraction of cores doing useful work."""
        denom = self.total_cores * self.makespan_s
        return self.core_busy_s / denom if denom > 0 else 0.0

    @property
    def gpu_utilization(self) -> float:
        """Time-integrated fraction of GPUs doing useful work."""
        denom = self.total_gpus * self.makespan_s
        return self.gpu_busy_s / denom if denom > 0 else 0.0

    @property
    def trapped_core_hours(self) -> float:
        """Core-hours stranded: whole-node remainders plus capacity a
        CDI job held while blocked on the GPU pool (hold-and-wait)."""
        return self.trapped_core_s / 3600.0

    @property
    def trapped_gpu_hours(self) -> float:
        """GPU-hours allocated to jobs that never used them."""
        return self.trapped_gpu_s / 3600.0


def _run_stream(
    jobs: Sequence[SimJob],
    acquire_sizes,  # job -> (amount, gpu_amount, trapped_cores, trapped_gpus)
    cores_pool: Container,
    gpus_pool: Optional[Container],
    env: Environment,
    metrics: SimulationMetrics,
) -> None:
    def job_proc(job: SimJob) -> Generator[Event, Any, None]:
        yield env.timeout(job.arrival_s)
        arrived = env.now
        core_amt, gpu_amt, trapped_cores, trapped_gpus = acquire_sizes(job)
        yield cores_pool.get(core_amt)
        cores_at = env.now
        held_core_s = 0.0
        if gpus_pool is not None and gpu_amt > 0:
            yield gpus_pool.get(gpu_amt)
            # Hold-and-wait: the cores were granted but sat blocked on
            # the GPU pool — capacity no other job could use.
            held_core_s = job.cores * (env.now - cores_at)
        start = env.now
        yield env.timeout(job.duration_s)
        yield cores_pool.put(core_amt)
        if gpus_pool is not None and gpu_amt > 0:
            yield gpus_pool.put(gpu_amt)
        job_trapped_core_s = trapped_cores * job.duration_s + held_core_s
        job_trapped_gpu_s = trapped_gpus * job.duration_s
        metrics.jobs.append(
            JobMetrics(name=job.name, wait_s=start - arrived,
                       start_s=start, end_s=env.now,
                       cores_start_s=cores_at,
                       trapped_core_s=job_trapped_core_s,
                       trapped_gpu_s=job_trapped_gpu_s)
        )
        metrics.core_busy_s += job.cores * job.duration_s
        metrics.gpu_busy_s += job.gpus * job.duration_s
        metrics.trapped_core_s += job_trapped_core_s
        metrics.trapped_gpu_s += job_trapped_gpu_s

    for job in jobs:
        env.process(job_proc(job), name=f"job-{job.name}")
    env.run()
    metrics.makespan_s = max((j.end_s for j in metrics.jobs), default=0.0)


def simulate_traditional(
    jobs: Sequence[SimJob], cluster: ClusterSpec = ClusterSpec()
) -> SimulationMetrics:
    """Whole-node scheduling: jobs take node-shaped allocations.

    A job's footprint is the node count covering both its core and
    GPU asks; everything on those nodes is held for the duration
    (the trapped GPUs are tracked).
    """
    env = Environment()
    nodes_pool = Container(env, capacity=cluster.nodes, init=cluster.nodes)
    metrics = SimulationMetrics(
        total_cores=cluster.total_cores, total_gpus=cluster.total_gpus
    )

    def sizes(job: SimJob) -> Tuple[int, int, int, int]:
        need = max(
            1,
            math.ceil(job.cores / cluster.cores_per_node),
            math.ceil(job.gpus / cluster.gpus_per_node)
            if cluster.gpus_per_node and job.gpus
            else 0,
        )
        if need > cluster.nodes:
            raise ValueError(f"job {job.name} larger than the machine")
        trapped_cores = need * cluster.cores_per_node - job.cores
        trapped_gpus = need * cluster.gpus_per_node - job.gpus
        return (need, 0, trapped_cores, trapped_gpus)

    _run_stream(jobs, sizes, nodes_pool, None, env, metrics)
    return metrics


def simulate_cdi(
    jobs: Sequence[SimJob], cluster: ClusterSpec = ClusterSpec()
) -> SimulationMetrics:
    """Composed scheduling: jobs take exactly their cores and GPUs."""
    env = Environment()
    cores_pool = Container(
        env, capacity=cluster.total_cores, init=cluster.total_cores
    )
    # Zero-GPU clusters simply have no GPU pool (no phantom capacity).
    gpus_pool = (
        Container(env, capacity=cluster.total_gpus, init=cluster.total_gpus)
        if cluster.total_gpus > 0
        else None
    )
    metrics = SimulationMetrics(
        total_cores=cluster.total_cores, total_gpus=cluster.total_gpus
    )

    def sizes(job: SimJob) -> Tuple[int, int, int, int]:
        if job.cores > cluster.total_cores or job.gpus > cluster.total_gpus:
            raise ValueError(f"job {job.name} larger than the machine")
        return (job.cores, job.gpus, 0, 0)

    _run_stream(jobs, sizes, cores_pool, gpus_pool, env, metrics)
    return metrics


def synthetic_job_mix(
    n_jobs: int,
    rng: Optional[np.random.Generator] = None,
    mean_interarrival_s: float = 600.0,
    cluster: ClusterSpec = ClusterSpec(),
) -> List[SimJob]:
    """A mixed stream of the paper's three workload archetypes.

    ~40% CPU-heavy (LAMMPS-like: many cores, few GPUs), ~35%
    GPU-heavy (CosmoFlow-like: few cores, many GPUs), ~25% CPU-only.
    Poisson arrivals, log-normal durations around 1-3 h.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    rng = rng or np.random.default_rng(2024)
    jobs: List[SimJob] = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(mean_interarrival_s))
        archetype = rng.random()
        if archetype < 0.40:  # CPU-heavy with a GPU or two
            cores = int(rng.integers(2, 5)) * cluster.cores_per_node // 2
            gpus = int(rng.integers(1, 3))
            duration = float(rng.lognormal(np.log(7200), 0.4))
            name = f"cpuheavy-{i}"
        elif archetype < 0.75:  # GPU-heavy
            gpus = int(rng.integers(4, min(17, cluster.total_gpus + 1)))
            cores = max(2, gpus // 2)
            duration = float(rng.lognormal(np.log(10800), 0.4))
            name = f"gpuheavy-{i}"
        else:  # CPU-only
            cores = int(rng.integers(1, 3)) * cluster.cores_per_node
            gpus = 0
            duration = float(rng.lognormal(np.log(3600), 0.4))
            name = f"cpuonly-{i}"
        cores = min(cores, cluster.total_cores)
        jobs.append(
            SimJob(name=name, arrival_s=t, duration_s=duration,
                   cores=cores, gpus=gpus)
        )
    return jobs


def compare_throughput(
    jobs: Sequence[SimJob], cluster: ClusterSpec = ClusterSpec()
) -> Tuple[SimulationMetrics, SimulationMetrics]:
    """Run the same stream both ways; returns (traditional, cdi)."""
    return simulate_traditional(jobs, cluster), simulate_cdi(jobs, cluster)
