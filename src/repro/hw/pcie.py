"""PCIe topology, bus enumeration and address-space modelling.

The paper's Background section identifies two PCIe obstacles CDI
vendors must solve before a chassis can serve GPUs across racks:

* **bus enumeration** — PCIe bus numbers are 8-bit; a fabric that
  naively merges every chassis into one PCIe domain runs out of bus
  IDs. Vendors either spend the full Bus/Device/Function space or
  translate between *separate PCIe domains*.
* **transaction timeouts** — PCIe completion timeouts bound how much
  latency a disaggregated path can add before transactions abort.

:class:`PCIeDomain` models the enumeration budget and
:class:`PCIeSwitch`/:class:`PCIeTopology` a node- or chassis-internal
switch hierarchy. :func:`completion_timeout_margin` answers how much
slack fits under the PCIe completion timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .specs import PCIeSpec

__all__ = [
    "BDF",
    "PCIeDevice",
    "PCIeDomain",
    "PCIeSwitch",
    "PCIeTopology",
    "EnumerationError",
    "completion_timeout_margin",
    "PCIE_MAX_BUSES",
    "PCIE_MAX_DEVICES_PER_BUS",
    "PCIE_DEFAULT_COMPLETION_TIMEOUT_S",
]

#: PCIe bus numbers are 8 bits per domain.
PCIE_MAX_BUSES = 256
#: Device numbers are 5 bits per bus.
PCIE_MAX_DEVICES_PER_BUS = 32
#: Typical default completion-timeout range midpoint (50 ms, range D
#: allows up to 64 s on capable devices).
PCIE_DEFAULT_COMPLETION_TIMEOUT_S = 50e-3


class EnumerationError(RuntimeError):
    """Raised when a PCIe domain runs out of enumeration space."""


@dataclass(frozen=True)
class BDF:
    """A Bus/Device/Function address within one PCIe domain."""

    bus: int
    device: int
    function: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.bus < PCIE_MAX_BUSES:
            raise ValueError(f"bus {self.bus} out of range")
        if not 0 <= self.device < PCIE_MAX_DEVICES_PER_BUS:
            raise ValueError(f"device {self.device} out of range")
        if not 0 <= self.function < 8:
            raise ValueError(f"function {self.function} out of range")

    def __str__(self) -> str:
        return f"{self.bus:02x}:{self.device:02x}.{self.function}"


@dataclass
class PCIeDevice:
    """An endpoint (GPU, NIC, switch port) enumerated on a domain."""

    name: str
    kind: str = "gpu"
    bdf: Optional[BDF] = None
    #: Buses a bridge/switch consumes downstream of itself.
    buses_consumed: int = 1


class PCIeDomain:
    """One PCIe enumeration domain with a finite bus budget.

    A traditional node is one domain. A naive rack-scale CDI fabric
    extends this single domain to the chassis, so every remote GPU and
    every switch level consumes buses here — which is exactly the
    scaling wall the paper describes. Row-scale solutions instead
    bridge *separate* domains through address translation, modelled by
    simply creating one :class:`PCIeDomain` per chassis.
    """

    def __init__(self, domain_id: int = 0, reserved_buses: int = 1) -> None:
        if not 0 <= reserved_buses < PCIE_MAX_BUSES:
            raise ValueError("reserved_buses out of range")
        self.domain_id = domain_id
        self._next_bus = reserved_buses
        self._next_device: Dict[int, int] = {}
        self.devices: List[PCIeDevice] = []

    @property
    def buses_used(self) -> int:
        """Number of bus IDs consumed so far (including reserved)."""
        return self._next_bus

    @property
    def buses_free(self) -> int:
        """Remaining bus IDs before enumeration fails."""
        return PCIE_MAX_BUSES - self._next_bus

    def enumerate_device(self, device: PCIeDevice) -> BDF:
        """Assign a BDF to ``device``, consuming enumeration space.

        Switches/bridges consume ``device.buses_consumed`` extra bus
        numbers for their downstream hierarchy.
        """
        extra = device.buses_consumed if device.kind in ("switch", "bridge") else 0
        if self._next_bus + extra >= PCIE_MAX_BUSES:
            raise EnumerationError(
                f"domain {self.domain_id}: out of PCIe bus numbers "
                f"({self._next_bus} used, device needs {extra + 1})"
            )
        bus = self._next_bus
        slot = self._next_device.get(bus, 0)
        if slot >= PCIE_MAX_DEVICES_PER_BUS:
            raise EnumerationError(
                f"domain {self.domain_id}: bus {bus} device space exhausted"
            )
        self._next_device[bus] = slot + 1
        if extra:
            self._next_bus += extra
        elif slot + 1 >= PCIE_MAX_DEVICES_PER_BUS:
            self._next_bus += 1
        bdf = BDF(bus=bus, device=slot)
        device.bdf = bdf
        self.devices.append(device)
        return bdf

    def can_fit(self, n_gpus: int, buses_per_gpu: int = 2) -> bool:
        """Whether ``n_gpus`` more GPUs (with their bridges) fit."""
        return self.buses_free >= n_gpus * buses_per_gpu


@dataclass
class PCIeSwitch:
    """A switch fanning one upstream link out to several downstream ports."""

    name: str
    spec: PCIeSpec = field(default_factory=PCIeSpec)
    downstream_ports: int = 8
    hop_latency_s: float = 0.15e-6

    def __post_init__(self) -> None:
        if self.downstream_ports <= 0:
            raise ValueError("downstream_ports must be positive")
        if self.hop_latency_s < 0:
            raise ValueError("hop_latency_s must be non-negative")


class PCIeTopology:
    """A tree of PCIe switches from a root port down to endpoints.

    Used to compute the host-to-GPU path latency inside a node or a
    CDI chassis: each switch hop adds ``hop_latency_s``.
    """

    def __init__(self, root_spec: Optional[PCIeSpec] = None) -> None:
        self.root_spec = root_spec or PCIeSpec()
        self._children: Dict[str, List[str]] = {"root": []}
        self._switches: Dict[str, PCIeSwitch] = {}
        self._endpoints: Dict[str, str] = {}  # endpoint -> parent

    def add_switch(self, switch: PCIeSwitch, parent: str = "root") -> None:
        """Attach a switch beneath ``parent`` ('root' or another switch)."""
        if parent != "root" and parent not in self._switches:
            raise KeyError(f"unknown parent {parent!r}")
        if switch.name in self._switches:
            raise ValueError(f"duplicate switch {switch.name!r}")
        self._switches[switch.name] = switch
        self._children.setdefault(parent, []).append(switch.name)
        self._children[switch.name] = []

    def add_endpoint(self, name: str, parent: str = "root") -> None:
        """Attach an endpoint (GPU/NIC) beneath ``parent``."""
        if parent != "root" and parent not in self._switches:
            raise KeyError(f"unknown parent {parent!r}")
        if name in self._endpoints:
            raise ValueError(f"duplicate endpoint {name!r}")
        if parent != "root":
            used = sum(1 for e, p in self._endpoints.items() if p == parent)
            used += sum(1 for c in self._children[parent] if c in self._switches)
            if used >= self._switches[parent].downstream_ports:
                raise ValueError(f"switch {parent!r} has no free downstream port")
        self._endpoints[name] = parent
        self._children.setdefault(parent, []).append(name)

    def hops_to(self, endpoint: str) -> int:
        """Number of switch hops from the root port to ``endpoint``."""
        if endpoint not in self._endpoints:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        hops = 0
        node = self._endpoints[endpoint]
        while node != "root":
            hops += 1
            node = self._parent_of_switch(node)
        return hops

    def path_latency(self, endpoint: str) -> float:
        """One-way root-to-endpoint latency: link + per-hop costs."""
        latency = self.root_spec.latency_s
        node = self._endpoints[endpoint] if endpoint in self._endpoints else None
        if node is None:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        while node != "root":
            latency += self._switches[node].hop_latency_s
            node = self._parent_of_switch(node)
        return latency

    def endpoints(self) -> Iterator[str]:
        """All endpoint names."""
        return iter(self._endpoints)

    def _parent_of_switch(self, name: str) -> str:
        for parent, children in self._children.items():
            if name in children:
                return parent
        raise KeyError(name)  # pragma: no cover - invariant


def completion_timeout_margin(
    slack_s: float,
    base_path_latency_s: float = 2e-6,
    timeout_s: float = PCIE_DEFAULT_COMPLETION_TIMEOUT_S,
) -> float:
    """Remaining headroom under the PCIe completion timeout.

    Returns ``timeout - (base round trip + 2*slack)``; negative values
    mean a disaggregated transaction would abort. The paper notes PCIe
    timeouts are "long enough to potentially be avoided" for realistic
    slack — this quantifies that claim.
    """
    if slack_s < 0:
        raise ValueError("slack_s must be non-negative")
    round_trip = 2.0 * (base_path_latency_s + slack_s)
    return timeout_s - round_trip
