"""Tests for the fleet-level scheduling simulation."""

import numpy as np
import pytest

from repro.cdi import (
    ClusterSpec,
    SimJob,
    compare_throughput,
    simulate_cdi,
    simulate_traditional,
    synthetic_job_mix,
)


def job(name="j", arrival=0.0, duration=3600.0, cores=24, gpus=2):
    return SimJob(name=name, arrival_s=arrival, duration_s=duration,
                  cores=cores, gpus=gpus)


class TestSimJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimJob("j", arrival_s=-1, duration_s=1, cores=1, gpus=0)
        with pytest.raises(ValueError):
            SimJob("j", arrival_s=0, duration_s=0, cores=1, gpus=0)
        with pytest.raises(ValueError):
            SimJob("j", arrival_s=0, duration_s=1, cores=0, gpus=0)


class TestClusterSpec:
    def test_totals(self):
        c = ClusterSpec(nodes=4, cores_per_node=48, gpus_per_node=4)
        assert c.total_cores == 192
        assert c.total_gpus == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)


class TestSingleJob:
    def test_immediate_start_when_empty(self):
        for sim in (simulate_traditional, simulate_cdi):
            m = sim([job()], ClusterSpec(nodes=4))
            assert len(m.jobs) == 1
            assert m.jobs[0].wait_s == 0.0
            assert m.makespan_s == pytest.approx(3600.0)

    def test_oversized_job_rejected(self):
        tiny = ClusterSpec(nodes=1, cores_per_node=4, gpus_per_node=1)
        with pytest.raises(ValueError):
            simulate_traditional([job(cores=1000)], tiny)
        with pytest.raises(ValueError):
            simulate_cdi([job(cores=1000)], tiny)


class TestTrappedResources:
    def test_traditional_traps_gpus(self):
        # A 24-core, 0-GPU job takes half a node... i.e. one node with
        # its 4 GPUs idle-held.
        m = simulate_traditional(
            [job(cores=24, gpus=0)], ClusterSpec(nodes=4)
        )
        assert m.trapped_gpu_s == pytest.approx(4 * 3600.0)

    def test_cdi_traps_nothing(self):
        m = simulate_cdi([job(cores=24, gpus=0)], ClusterSpec(nodes=4))
        assert m.trapped_gpu_s == 0.0


class TestHoldAndWait:
    """Cores granted while blocked on the GPU pool are trapped time."""

    def test_cdi_charges_held_cores(self):
        # A grabs all 4 GPUs for 100s; B gets its core immediately but
        # holds it uselessly until A releases the GPUs.
        cluster = ClusterSpec(nodes=1, cores_per_node=48, gpus_per_node=4)
        jobs = [
            job(name="a", cores=1, gpus=4, duration=100.0),
            job(name="b", arrival=0.0, cores=2, gpus=1, duration=10.0),
        ]
        m = simulate_cdi(jobs, cluster)
        b = next(j for j in m.jobs if j.name == "b")
        assert b.cores_start_s == pytest.approx(0.0)
        assert b.start_s == pytest.approx(100.0)
        assert b.trapped_core_s == pytest.approx(2 * 100.0)
        assert m.trapped_core_s == pytest.approx(2 * 100.0)

    def test_traditional_grant_is_atomic(self):
        jobs = [job(name=f"j{i}", arrival=i * 5.0) for i in range(6)]
        m = simulate_traditional(jobs, ClusterSpec(nodes=2))
        for jm in m.jobs:
            assert jm.cores_start_s == jm.start_s

    def test_zero_gpu_cluster_has_no_phantom_pool(self):
        cluster = ClusterSpec(nodes=2, cores_per_node=48, gpus_per_node=0)
        jobs = [job(name=f"j{i}", cores=24, gpus=0, duration=50.0)
                for i in range(4)]
        m = simulate_cdi(jobs, cluster)
        assert len(m.jobs) == 4
        assert m.trapped_core_s == 0.0
        assert m.trapped_gpu_s == 0.0
        assert m.gpu_utilization == 0.0


class TestContention:
    def test_traditional_serializes_node_hogs(self):
        # Two jobs that each need all nodes' cores: strictly serial.
        cluster = ClusterSpec(nodes=2, cores_per_node=48)
        jobs = [
            job(name="a", cores=96, gpus=0, duration=100.0),
            job(name="b", cores=96, gpus=0, duration=100.0),
        ]
        m = simulate_traditional(jobs, cluster)
        assert m.makespan_s == pytest.approx(200.0)

    def test_cdi_packs_fractional_jobs(self):
        # Four 24-core jobs fit 2x48-core nodes simultaneously under
        # CDI but serialize two-deep as whole nodes.
        cluster = ClusterSpec(nodes=2, cores_per_node=48, gpus_per_node=0)
        jobs = [job(name=f"j{i}", cores=24, gpus=0, duration=100.0)
                for i in range(4)]
        trad = simulate_traditional(jobs, cluster)
        cdi = simulate_cdi(jobs, cluster)
        assert cdi.makespan_s == pytest.approx(100.0)
        assert trad.makespan_s == pytest.approx(200.0)

    def test_wait_time_measured(self):
        cluster = ClusterSpec(nodes=1, cores_per_node=48)
        jobs = [
            job(name="first", cores=48, gpus=0, duration=100.0),
            job(name="second", arrival=10.0, cores=48, gpus=0,
                duration=50.0),
        ]
        m = simulate_traditional(jobs, cluster)
        second = next(j for j in m.jobs if j.name == "second")
        assert second.wait_s == pytest.approx(90.0)


class TestSyntheticMix:
    def test_job_count_and_ordering(self):
        jobs = synthetic_job_mix(50, np.random.default_rng(1))
        assert len(jobs) == 50
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_archetypes_present(self):
        jobs = synthetic_job_mix(200, np.random.default_rng(1))
        names = [j.name.split("-")[0] for j in jobs]
        assert {"cpuheavy", "gpuheavy", "cpuonly"} <= set(names)
        assert all(j.gpus == 0 for j in jobs if j.name.startswith("cpuonly"))

    def test_jobs_fit_cluster(self):
        cluster = ClusterSpec()
        for j in synthetic_job_mix(100, np.random.default_rng(3),
                                   cluster=cluster):
            assert j.cores <= cluster.total_cores
            assert j.gpus <= cluster.total_gpus

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_job_mix(0)


class TestThroughputComparison:
    """The paper's introduction claim, measured on a job stream."""

    @pytest.fixture(scope="class")
    def outcome(self):
        jobs = synthetic_job_mix(120, np.random.default_rng(7))
        return compare_throughput(jobs)

    def test_cdi_improves_time_to_solution(self, outcome):
        trad, cdi = outcome
        assert cdi.makespan_s < trad.makespan_s

    def test_cdi_reduces_waits(self, outcome):
        trad, cdi = outcome
        assert cdi.mean_wait_s < 0.5 * trad.mean_wait_s

    def test_cdi_raises_gpu_utilization(self, outcome):
        trad, cdi = outcome
        assert cdi.gpu_utilization > trad.gpu_utilization

    def test_cdi_eliminates_trapped_gpu_hours(self, outcome):
        trad, cdi = outcome
        assert trad.trapped_gpu_hours > 100
        assert cdi.trapped_gpu_hours == 0.0

    def test_all_jobs_complete_in_both(self, outcome):
        trad, cdi = outcome
        assert len(trad.jobs) == len(cdi.jobs) == 120
