"""CUDA-Graphs-style batched submission — a slack mitigation.

Slack is charged per *host-visible API call*. CUDA Graphs let an
application capture a whole sequence of kernels and memcpys once and
replay it with a single launch call — collapsing N per-call slack
charges into one per replay. For a CDI deployment this is the obvious
software mitigation, and the simulator can quantify exactly how much
of the starvation penalty it recovers (see ``ext_graphs``).

:class:`CudaGraph` captures operations against a runtime;
:meth:`CudaGraph.launch` enqueues the whole sequence onto a stream
with one API overhead + one slack charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Union

from ..des import Event
from ..trace import CopyKind, EventKind
from .kernels import KernelSpec
from .runtime import CudaRuntime
from .stream import CopyOp, KernelOp, Stream

__all__ = ["GraphNode", "CudaGraph"]


@dataclass(frozen=True)
class GraphNode:
    """One captured operation: a kernel or a memcpy."""

    kind: str  # "kernel" | "memcpy"
    kernel: Optional[KernelSpec] = None
    nbytes: int = 0
    copy_kind: Optional[CopyKind] = None

    def __post_init__(self) -> None:
        if self.kind == "kernel":
            if self.kernel is None:
                raise ValueError("kernel node needs a KernelSpec")
        elif self.kind == "memcpy":
            if self.nbytes <= 0 or self.copy_kind is None:
                raise ValueError("memcpy node needs nbytes and a direction")
            if self.copy_kind is CopyKind.D2D:
                raise ValueError("D2D copies do not cross the host link")
        else:
            raise ValueError(f"unknown node kind {self.kind!r}")


class CudaGraph:
    """A captured sequence of device operations, replayable in one call."""

    def __init__(self, runtime: CudaRuntime, name: str = "graph") -> None:
        self.runtime = runtime
        self.name = name
        self.nodes: List[GraphNode] = []
        self._instantiated = False
        self.replays = 0

    # -- capture -----------------------------------------------------------------
    def add_kernel(self, kernel: KernelSpec) -> "CudaGraph":
        """Capture a kernel launch."""
        self._check_mutable()
        self.nodes.append(GraphNode(kind="kernel", kernel=kernel))
        return self

    def add_memcpy(self, nbytes: int, kind: CopyKind) -> "CudaGraph":
        """Capture a memcpy."""
        self._check_mutable()
        self.nodes.append(
            GraphNode(kind="memcpy", nbytes=nbytes, copy_kind=kind)
        )
        return self

    def instantiate(self) -> "CudaGraph":
        """Freeze the graph (cudaGraphInstantiate)."""
        if not self.nodes:
            raise ValueError("cannot instantiate an empty graph")
        self._instantiated = True
        return self

    @property
    def instantiated(self) -> bool:
        """Whether the graph is frozen and launchable."""
        return self._instantiated

    def _check_mutable(self) -> None:
        if self._instantiated:
            raise RuntimeError("graph is instantiated; capture is closed")

    # -- replay ---------------------------------------------------------------------
    def launch(
        self,
        stream: Optional[Stream] = None,
        thread: int = 0,
        blocking: bool = False,
    ) -> Generator[Event, Any, List[Union[KernelOp, CopyOp]]]:
        """Replay the captured sequence with ONE host API call.

        The host pays one launch overhead and one slack charge for the
        entire sequence; the device executes the nodes in capture
        order on ``stream``. With ``blocking`` the call returns after
        the last node retires.
        """
        if not self._instantiated:
            raise RuntimeError("instantiate() the graph before launching")
        rt = self.runtime
        stream = stream or rt.default_stream
        env = rt.env
        start = env.now
        corr = rt.tracer.next_correlation_id()
        yield env.timeout(rt.gpu.launch_overhead_s)
        ops: List[Union[KernelOp, CopyOp]] = []
        for node in self.nodes:
            if node.kind == "kernel":
                op: Union[KernelOp, CopyOp] = KernelOp(
                    completion=env.event(),
                    thread=thread,
                    correlation_id=corr,
                    kernel=node.kernel,
                )
            else:
                op = CopyOp(
                    completion=env.event(),
                    thread=thread,
                    correlation_id=corr,
                    nbytes=node.nbytes,
                    copy_kind=node.copy_kind,
                    transfer_time=rt.pcie.transfer_time(node.nbytes),
                )
            yield stream.submit(op)
            ops.append(op)
        if blocking:
            yield ops[-1].completion
        rt.tracer.record(
            EventKind.API, "cudaGraphLaunch", start, env.now,
            correlation_id=corr, thread=thread,
            meta={"graph": self.name, "nodes": len(self.nodes)},
        )
        yield from rt.injector.after_call("cudaGraphLaunch", thread)
        self.replays += 1
        return ops
