"""Weak-scaling projection from the strong-scaling basic unit.

The paper's Section III-B: the single-GPU, fixed-problem strong
scaling study "provides a basic unit of CPU-to-GPU resources [that]
can inform weak scaling for large scale production applications as the
best basic CPU-to-GPU ratio". This module performs that projection:

* find the best (cores : 1 GPU) unit for a given per-GPU problem size;
* replicate it N times (problem grows with resources — weak scaling);
* compare the achievable configuration under CDI (exact units) vs
  traditional nodes (units rounded to node shape), including the
  slack the CDI fabric adds at each deployment scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ...network import Fabric, FabricSpec, Scale
from .lj import LJParams
from .scaling import LammpsScalingModel

__all__ = ["BasicUnit", "find_basic_unit", "WeakScalingProjection",
           "project_weak_scaling"]


@dataclass(frozen=True)
class BasicUnit:
    """The best per-GPU resource unit for one workload density."""

    box_size: int
    cores: int
    threads: int
    runtime_s: float

    @property
    def cores_per_gpu(self) -> int:
        """The unit's CPU:GPU core ratio."""
        return self.cores


def find_basic_unit(
    box_size: int = 120,
    core_candidates: Sequence[Tuple[int, int]] = (
        (1, 1), (2, 1), (4, 1), (8, 1), (8, 2), (8, 3), (8, 6),
        (12, 2), (16, 3), (24, 2),
    ),
    model: Optional[LammpsScalingModel] = None,
) -> BasicUnit:
    """The (processes, threads) unit minimizing single-GPU runtime.

    Candidates are (MPI ranks, OpenMP threads per rank) pairs; the
    unit's core count is their product.
    """
    model = model or LammpsScalingModel()
    params = LJParams(box_size)
    best = None
    for procs, threads in core_candidates:
        t = model.runtime(params, procs, threads)
        if best is None or t < best[0]:
            best = (t, procs, threads)
    assert best is not None
    t, procs, threads = best
    return BasicUnit(
        box_size=box_size, cores=procs * threads, threads=threads,
        runtime_s=t,
    )


@dataclass(frozen=True)
class WeakScalingProjection:
    """Projected weak-scaled run at one GPU count."""

    gpus: int
    total_atoms: int
    cdi_cores: int
    traditional_cores: int
    cdi_runtime_s: float
    traditional_runtime_s: float
    slack_s: float

    @property
    def cdi_advantage(self) -> float:
        """Traditional over CDI runtime (>1 means CDI is faster)."""
        return self.traditional_runtime_s / self.cdi_runtime_s


def project_weak_scaling(
    unit: BasicUnit,
    gpu_counts: Sequence[int] = (1, 4, 16, 64),
    cores_per_node: int = 48,
    gpus_per_node: int = 4,
    fabric_spec: Optional[FabricSpec] = None,
    slack_penalty_per_second: float = 0.0,
    model: Optional[LammpsScalingModel] = None,
) -> List[WeakScalingProjection]:
    """Replicate the basic unit across ``gpu_counts`` GPUs.

    Weak scaling: each GPU carries one ``unit.box_size`` problem, so
    per-GPU runtime stays the unit's runtime plus a replication
    overhead for the cross-GPU halo (modelled with the scaling model's
    communication term at the unit's rank count). Under CDI every GPU
    gets the unit's full core count; under traditional nodes the cores
    per GPU are capped by the node shape. ``slack_penalty_per_second``
    lets callers add the (measured tiny) CDI starvation cost per unit
    of slack; the fabric supplies the slack per deployment size.
    """
    if slack_penalty_per_second < 0:
        raise ValueError("slack_penalty_per_second must be non-negative")
    model = model or LammpsScalingModel()
    params = LJParams(unit.box_size)
    node_ratio = cores_per_node // gpus_per_node if gpus_per_node else cores_per_node

    projections: List[WeakScalingProjection] = []
    for gpus in gpu_counts:
        if gpus <= 0:
            raise ValueError("gpu counts must be positive")
        # CDI: the unit's ideal cores per GPU, composed exactly.
        procs_cdi = max(1, unit.cores // unit.threads)
        t_cdi_unit = model.runtime(params, procs_cdi, unit.threads)
        # Traditional: cores per GPU capped by the node shape.
        trad_cores = min(unit.cores, node_ratio)
        trad_threads = min(unit.threads, trad_cores)
        trad_procs = max(1, trad_cores // trad_threads)
        t_trad_unit = model.runtime(params, trad_procs, trad_threads)
        # Weak-scaling replication overhead: cross-replica halo, one
        # extra comm share per doubling.
        import math

        replication = 1.0 + 0.02 * math.log2(gpus) if gpus > 1 else 1.0

        # CDI slack at the scale this many GPUs requires.
        spec = fabric_spec or _fabric_for(gpus, gpus_per_node)
        fabric = Fabric(spec)
        slack = fabric.worst_case_slack()
        slack_cost = 1.0 + slack_penalty_per_second * slack

        projections.append(
            WeakScalingProjection(
                gpus=gpus,
                total_atoms=params.atoms * gpus,
                cdi_cores=unit.cores * gpus,
                traditional_cores=trad_cores * gpus,
                cdi_runtime_s=t_cdi_unit * replication * slack_cost,
                traditional_runtime_s=t_trad_unit * replication,
                slack_s=slack,
            )
        )
    return projections


def _fabric_for(gpus: int, gpus_per_node: int) -> FabricSpec:
    """A fabric sized for ``gpus`` pooled GPUs."""
    chassis_needed = max(1, (gpus + 15) // 16)
    if chassis_needed <= 1:
        return FabricSpec(scale=Scale.RACK, racks_per_row=1, chassis_racks=(0,))
    racks = max(2, chassis_needed)
    if racks <= 8:
        return FabricSpec(
            scale=Scale.ROW, racks_per_row=racks,
            chassis_racks=tuple(range(chassis_needed)),
        )
    rows = (racks + 7) // 8
    return FabricSpec(
        scale=Scale.CLUSTER, rows=rows, racks_per_row=8,
        chassis_racks=tuple(range(chassis_needed)),
    )
