"""Unit and property-based tests for the device memory allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import DeviceMemory, GiB, MiB, OutOfMemoryError


class TestDeviceMemory:
    def test_basic_alloc_free(self):
        mem = DeviceMemory(GiB)
        a = mem.malloc(MiB, tag="A")
        assert a.nbytes >= MiB
        assert mem.used == a.nbytes
        mem.free_allocation(a)
        assert mem.used == 0
        assert mem.free == GiB

    def test_alignment_rounds_up(self):
        mem = DeviceMemory(GiB, alignment=256)
        a = mem.malloc(100)
        assert a.nbytes == 256

    def test_out_of_memory_raises(self):
        mem = DeviceMemory(MiB)
        with pytest.raises(OutOfMemoryError):
            mem.malloc(2 * MiB)

    def test_exact_fill(self):
        mem = DeviceMemory(MiB)
        a = mem.malloc(MiB)
        assert mem.free == 0
        with pytest.raises(OutOfMemoryError):
            mem.malloc(256)
        mem.free_allocation(a)
        assert mem.free == MiB

    def test_proxy_memory_bound_scenario(self):
        # The paper: 3 matrices of 2^15 floats squared = 3 * 4 GiB per
        # thread; one thread fits a 40 GiB A100, four threads do not.
        mem = DeviceMemory(40 * GiB)
        matrix = (2**15) ** 2 * 4  # 4 GiB
        one_thread = [mem.malloc(matrix) for _ in range(3)]
        assert mem.used == 12 * GiB
        # Three more threads would need 36 GiB more; fails on thread 4.
        allocated = list(one_thread)
        with pytest.raises(OutOfMemoryError):
            for _ in range(9):
                allocated.append(mem.malloc(matrix))

    def test_double_free_rejected(self):
        mem = DeviceMemory(GiB)
        a = mem.malloc(MiB)
        mem.free_allocation(a)
        with pytest.raises(ValueError):
            mem.free_allocation(a)

    def test_coalescing_allows_large_realloc(self):
        mem = DeviceMemory(4 * MiB)
        blocks = [mem.malloc(MiB) for _ in range(4)]
        for b in blocks:
            mem.free_allocation(b)
        # After freeing all, a full-size allocation must succeed.
        big = mem.malloc(4 * MiB)
        assert big.nbytes == 4 * MiB

    def test_fragmentation_visible(self):
        mem = DeviceMemory(4 * MiB)
        blocks = [mem.malloc(MiB) for _ in range(4)]
        # Free alternating blocks: 2 MiB free but fragmented.
        mem.free_allocation(blocks[0])
        mem.free_allocation(blocks[2])
        assert mem.free == 2 * MiB
        assert mem.largest_free_block() == MiB
        assert not mem.would_fit(2 * MiB)
        assert mem.would_fit(MiB)

    def test_peak_tracking(self):
        mem = DeviceMemory(GiB)
        a = mem.malloc(100 * MiB)
        b = mem.malloc(200 * MiB)
        mem.free_allocation(a)
        mem.free_allocation(b)
        assert mem.peak_used == 300 * MiB

    def test_reset(self):
        mem = DeviceMemory(GiB)
        mem.malloc(MiB)
        mem.reset()
        assert mem.used == 0
        assert mem.largest_free_block() == GiB

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)
        with pytest.raises(ValueError):
            DeviceMemory(GiB, alignment=3)
        mem = DeviceMemory(GiB)
        with pytest.raises(ValueError):
            mem.malloc(0)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=64 * MiB)),
        min_size=1,
        max_size=40,
    )
)
def test_allocator_invariants_hold_under_random_workload(ops):
    """Property: used+free==capacity, free list never overlaps live blocks."""
    mem = DeviceMemory(256 * MiB)
    live = []
    for do_alloc, size in ops:
        if do_alloc or not live:
            try:
                live.append(mem.malloc(size))
            except OutOfMemoryError:
                pass
        else:
            mem.free_allocation(live.pop(0))
        # Invariant 1: accounting balances.
        assert mem.used + mem.free == mem.capacity
        # Invariant 2: live allocations never overlap.
        spans = sorted((a.ptr, a.ptr + a.nbytes) for a in mem.allocations)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        # Invariant 3: largest free block is bounded by total free.
        assert mem.largest_free_block() <= mem.free


@settings(max_examples=100, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=MiB), min_size=1, max_size=30))
def test_free_everything_restores_full_capacity(sizes):
    """Property: freeing all allocations coalesces back to one block."""
    mem = DeviceMemory(64 * MiB)
    allocs = []
    for size in sizes:
        try:
            allocs.append(mem.malloc(size))
        except OutOfMemoryError:
            break
    for a in allocs:
        mem.free_allocation(a)
    assert mem.used == 0
    assert mem.largest_free_block() == mem.capacity
