"""Shared experiment context: cached proxy surface and app profiles.

The Table IV / validation experiments all need the proxy's slack
response surface and the two application profiles — the expensive
artifacts of the reproduction. :class:`ExperimentContext` builds them
once per configuration and caches them on disk so repeated benchmark
runs don't re-sweep.

Caching is two-layered. The primary store is the **per-point cache**
(:class:`repro.parallel.PointCache` under ``.cache/points/``): one
content-addressed entry per (ProxyConfig, slack) pair, so partial
grids, grid extensions and interrupted sweeps reuse every point ever
measured. On top of it, the context still materializes the legacy
whole-surface JSON (``surface-<digest>.json``) as a compatibility shim
— existing tooling that reads those files keeps working, and a fully
warm surface file short-circuits even the per-point lookups.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..apps import CosmoFlowProfileConfig, LammpsProfileConfig
from ..apps.base import AppProfile
from ..apps.profilecache import AppProfileCache
from ..apps.registry import app_names, get_app
from ..faults import FaultPlan
from ..obs import publish_trace_store
from ..parallel import PointCache
from ..proxy import (
    PAPER_MATRIX_SIZES,
    PAPER_SLACK_VALUES_S,
    PAPER_THREAD_COUNTS,
    SlackResponseSurface,
    SweepOptions,
    SweepTiming,
    UNSET,
    resolve_options,
    run_slack_sweep,
)

__all__ = ["ExperimentContext", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Where cached surfaces live (repo-local, git-ignorable).

    The ``REPRO_CACHE_DIR`` environment variable overrides the
    location — CI jobs and multi-checkout setups point it at a shared
    (or scratch) directory without threading ``cache_dir`` through
    every entry point. An empty value is ignored.
    """
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    return Path(__file__).resolve().parents[3] / ".cache"


class ExperimentContext:
    """Configuration + lazily built shared artifacts.

    ``quick`` trades fidelity for speed: fixed 25-iteration proxy
    runs and shortened application profiling runs. The full mode uses
    the paper's auto-calibrated iteration counts and run lengths.

    The execution knobs are keyword-only, spelled exactly like
    :func:`repro.proxy.run_slack_sweep`'s (the stable ``repro.api``
    contract): ``workers`` parallelizes the proxy sweep over a process
    pool (``1`` = sequential, ``None`` = ``os.cpu_count()``); parallel
    and sequential surfaces are identical. ``cache`` controls the two
    cache layers: ``True`` (default) uses the repo-local cache dir,
    ``False`` disables caching entirely (every run re-measures), and a
    :class:`~repro.parallel.PointCache` instance substitutes a custom
    per-point store. ``fast_forward`` passes the proxy's steady-state
    fast-forward knob through to the sweep (``None`` = proxy default,
    on; the surface is bit-identical either way). ``faults`` attaches
    a :class:`~repro.faults.FaultPlan` to the proxy sweep, making
    :meth:`surface` a *degraded-mode* response surface (the plan joins
    the surface-cache key, so healthy and degraded surfaces never
    alias). ``adaptive``/``tol`` switch the sweep to error-bounded
    adaptive refinement (measure a seed, predict the rest to within
    ``tol`` — see :func:`repro.model.adaptive.adaptive_slack_sweep`);
    adaptive surfaces get their own surface-cache digests.

    The same six knobs also travel as one
    :class:`~repro.proxy.SweepOptions` via ``options=``; explicit
    keywords win over the bundle knob-by-knob, matching
    :func:`~repro.proxy.run_slack_sweep`. ``use_cache`` is the
    deprecated spelling of ``cache`` and will be removed in a future
    release.
    """

    def __init__(
        self,
        quick: bool = True,
        *,
        cache_dir: Optional[Path] = None,
        options: Optional[SweepOptions] = None,
        workers: Optional[int] = UNSET,
        cache: Union[bool, PointCache] = UNSET,
        fast_forward: Optional[bool] = UNSET,
        faults: Optional[FaultPlan] = UNSET,
        adaptive: bool = UNSET,
        tol: Optional[float] = UNSET,
        shard_workers: int = 0,
        use_cache: Optional[bool] = None,
    ) -> None:
        if use_cache is not None:
            warnings.warn(
                "ExperimentContext(use_cache=...) is deprecated; "
                "use the canonical cache=... keyword instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if cache is UNSET:
                cache = use_cache
        # The context's historical default caches (cache=True), unlike
        # the bare SweepOptions default — an explicit options bundle
        # states its own cache knob and is taken at its word.
        base = options if options is not None else SweepOptions(cache=True)
        opts = resolve_options(
            base,
            {
                "workers": workers,
                "cache": cache,
                "fast_forward": fast_forward,
                "faults": faults,
                "adaptive": adaptive,
                "tol": tol,
            },
        )
        self.quick = quick
        self.cache_dir = cache_dir
        #: The resolved execution-knob bundle (what the sweep receives).
        self.options = opts
        self.workers = opts.workers
        self.cache = opts.cache
        self.fast_forward = opts.fast_forward
        #: Adaptive-refinement knobs, passed straight through to
        #: :func:`repro.proxy.run_slack_sweep` (error-bounded seed +
        #: bisection instead of the dense grid; the surface then
        #: contains predicted points certified to within ``tol``).
        self.adaptive = opts.adaptive
        self.tol = opts.tol
        # Normalize the healthy-fabric spellings (None / empty plan) to
        # None so cache paths and sweep behavior are identical.
        self.faults = (
            opts.faults
            if opts.faults is not None and not opts.faults.is_empty
            else None
        )
        if shard_workers and shard_workers > 1 and self.adaptive:
            from ..proxy import ShardingUnsupportedError

            raise ShardingUnsupportedError(
                "adaptive surfaces cannot be built by shard workers; "
                "drop shard_workers or adaptive"
            )
        #: When > 1, :meth:`surface` executes the sweep as this many
        #: local shard subprocesses through
        #: :class:`~repro.parallel.ShardCoordinator` and merges — the
        #: surface is byte-identical to the in-process sweep.
        self.shard_workers = int(shard_workers or 0)
        self._surface: Optional[SlackResponseSurface] = None
        self._profiles: Dict[str, AppProfile] = {}
        #: Timing of the sweep that built the surface this process
        #: (None if the surface came from the whole-surface shim).
        self.sweep_timing: Optional[SweepTiming] = None

    def __repr__(self) -> str:
        return (
            f"ExperimentContext(quick={self.quick!r}, "
            f"cache_dir={self.cache_dir!r}, workers={self.workers!r}, "
            f"cache={self.cache!r})"
        )

    @property
    def use_cache(self) -> bool:
        """Deprecated alias for ``cache`` (as a plain boolean)."""
        warnings.warn(
            "ExperimentContext.use_cache is deprecated; read .cache",
            DeprecationWarning,
            stacklevel=2,
        )
        return bool(self.cache)

    # -- proxy surface -----------------------------------------------------------
    @property
    def sweep_iterations(self) -> Optional[int]:
        """Fixed iteration count in quick mode, auto-calibrated in full."""
        return 25 if self.quick else None

    def surface(self) -> SlackResponseSurface:
        """The proxy slack response surface (disk-cached)."""
        if self._surface is not None:
            return self._surface
        cache = self._surface_cache_path()
        if cache is not None and cache.exists():
            self._surface = SlackResponseSurface.from_json(cache)
            return self._surface
        if self.shard_workers > 1 and not self.adaptive:
            sweep = self._sharded_sweep()
        else:
            sweep = run_slack_sweep(
                matrix_sizes=PAPER_MATRIX_SIZES,
                slack_values_s=PAPER_SLACK_VALUES_S,
                threads=PAPER_THREAD_COUNTS,
                iterations=self.sweep_iterations,
                workers=self.workers,
                cache=self.point_cache(),
                fast_forward=self.fast_forward,
                faults=self.faults,
                adaptive=self.adaptive,
                tol=self.tol,
            )
        self.sweep_timing = sweep.timing
        self._surface = SlackResponseSurface(sweep)
        if cache is not None:
            cache.parent.mkdir(parents=True, exist_ok=True)
            self._surface.to_json(cache)
        return self._surface

    def _sharded_sweep(self):
        """Build the surface sweep via local shard subprocesses.

        Byte-identical to the in-process sweep by the merge contract
        (see :func:`repro.parallel.merge_shards`); the workers share
        this context's per-point cache through ``REPRO_CACHE_DIR``.
        """
        from ..parallel import GridSpec, ShardCoordinator

        grid = GridSpec(
            matrix_sizes=PAPER_MATRIX_SIZES,
            slack_values_s=PAPER_SLACK_VALUES_S,
            threads=PAPER_THREAD_COUNTS,
            iterations=self.sweep_iterations,
        )
        coordinator = ShardCoordinator(
            grid,
            self.shard_workers,
            options=self.options.replace(
                cache=self.point_cache(),
                faults=self.faults,
                adaptive=False,
                tol=None,
            ),
        )
        return coordinator.run()

    def surrogate(self, *, method: str = "loglinear"):
        """A serving surrogate fitted over this context's surface.

        Convenience for the serving layer: builds (or loads) the
        disk-cached response surface and fits a
        :class:`~repro.serve.SurrogateModel` on its points — what
        ``rowscale-cdi serve``/``predict`` do at startup.
        """
        from ..serve import SurrogateModel

        return SurrogateModel.fit(self.surface(), method=method)

    def point_cache(self) -> Optional[PointCache]:
        """The per-point result store (None when caching is disabled)."""
        if isinstance(self.cache, PointCache):
            return self.cache
        if not self.cache:
            return None
        return PointCache(self._cache_base() / "points")

    def _cache_base(self) -> Path:
        return self.cache_dir if self.cache_dir is not None else default_cache_dir()

    def _surface_cache_path(self) -> Optional[Path]:
        if not self.cache:
            return None
        key_doc = {
            "matrix_sizes": PAPER_MATRIX_SIZES,
            "slacks": PAPER_SLACK_VALUES_S,
            "threads": PAPER_THREAD_COUNTS,
            "iterations": self.sweep_iterations,
            "version": 1,
        }
        if self.faults is not None:
            # Only degraded surfaces extend the key: healthy surface
            # files keep their historical digests (and stay warm).
            key_doc["faults"] = self.faults.to_doc()
        if self.adaptive:
            # Adaptive surfaces contain predicted points — never alias
            # them with a fully measured surface file (dense digests
            # are likewise unchanged when the knob is off).
            key_doc["adaptive"] = True
            key_doc["tol"] = self.tol
        key = json.dumps(key_doc, sort_keys=True)
        digest = hashlib.sha256(key.encode()).hexdigest()[:16]
        return self._cache_base() / f"surface-{digest}.json"

    # -- application profiles ------------------------------------------------------
    def app_config(self, name: str):
        """The registered app's experiment-grade profiling configuration.

        Resolved through :mod:`repro.apps.registry`, honouring this
        context's ``quick`` knob — for ``lammps``/``cosmoflow`` these
        are the historical configurations bit for bit.
        """
        return get_app(name).default_config(self.quick)

    def app_profile(self, name: str) -> AppProfile:
        """Any registered app's traced profile (memoized + disk-cached)."""
        return self._profile(
            name, self.app_config(name), get_app(name).profiler
        )

    def app_profiles(self) -> Dict[str, AppProfile]:
        """Every registered app's profile, keyed by name."""
        return {name: self.app_profile(name) for name in app_names()}

    def lammps_config(self) -> LammpsProfileConfig:
        """The LAMMPS profiling configuration (box 120, 8 ranks)."""
        return self.app_config("lammps")

    def cosmoflow_config(self) -> CosmoFlowProfileConfig:
        """The CosmoFlow profiling configuration (mini dataset, batch 4)."""
        return self.app_config("cosmoflow")

    def profile_cache(self) -> Optional[AppProfileCache]:
        """The traced-profile store (None when caching is disabled).

        Sibling of :meth:`point_cache`: profiles are content-addressed
        on the full profiling config (seed included), so a warm cache
        skips the application DES run and reproduces the figures
        byte-identically (the columnar trace document round-trips
        exactly).
        """
        if not self.cache:
            return None
        return AppProfileCache(self._cache_base() / "profiles")

    def _profile(self, app: str, config, builder) -> AppProfile:
        if app not in self._profiles:
            cache = self.profile_cache()
            profile = cache.get(app, config) if cache is not None else None
            if profile is None:
                profile = builder(config)
                if cache is not None:
                    cache.put(app, config, profile)
            publish_trace_store(profile.trace)
            self._profiles[app] = profile
        return self._profiles[app]

    def lammps_profile(self) -> AppProfile:
        """Traced LAMMPS profile (memoized + disk-cached)."""
        return self.app_profile("lammps")

    def cosmoflow_profile(self) -> AppProfile:
        """Traced CosmoFlow profile (memoized + disk-cached)."""
        return self.app_profile("cosmoflow")

    def inference_profile(self) -> AppProfile:
        """Traced inference-serving profile (memoized + disk-cached)."""
        return self.app_profile("inference")

    def profiles(self) -> Tuple[AppProfile, AppProfile]:
        """The paper's two batch-application profiles."""
        return self.lammps_profile(), self.cosmoflow_profile()
