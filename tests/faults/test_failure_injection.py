"""Failure-injection tests: the system degrades cleanly, not silently.

Injects crashes, interrupts and invalid states into running
simulations and checks errors propagate to the right place (the
failing process or its waiter) while unrelated machinery keeps
functioning.
"""

import pytest

from repro.cdi import Composer, CompositionError, CPUNode, GPUChassis, ResourcePool
from repro.des import Environment, Interrupt, SimulationError
from repro.gpusim import CudaRuntime, KernelSpec
from repro.hw import MiB, OutOfMemoryError
from repro.network import SlackModel
from repro.trace import CopyKind


class TestProcessCrashes:
    def test_worker_crash_propagates_to_waiter_only(self):
        env = Environment()
        rt = CudaRuntime(env)
        outcomes = {}

        def bad_worker():
            yield from rt.memcpy(MiB, CopyKind.H2D)
            raise RuntimeError("worker exploded")

        def good_worker():
            for _ in range(3):
                yield from rt.memcpy(MiB, CopyKind.H2D)
            outcomes["good"] = "finished"

        def supervisor(bad):
            try:
                yield bad
            except RuntimeError as exc:
                outcomes["bad"] = str(exc)

        bad = env.process(bad_worker())
        env.process(good_worker())
        env.process(supervisor(bad))
        env.run()
        assert outcomes == {"bad": "worker exploded", "good": "finished"}

    def test_unwatched_crash_surfaces_at_run(self):
        env = Environment()

        def crasher():
            yield env.timeout(1.0)
            raise ValueError("nobody is watching")

        env.process(crasher())
        with pytest.raises(ValueError, match="nobody is watching"):
            env.run()

    def test_interrupted_host_leaves_runtime_usable(self):
        env = Environment()
        rt = CudaRuntime(env)
        log = []

        def victim():
            try:
                yield from rt.launch(
                    KernelSpec(name="long", duration_s=100.0), blocking=True
                )
            except Interrupt:
                log.append("interrupted")

        def attacker(v):
            yield env.timeout(1.0)
            v.interrupt()

        def late_user():
            yield env.timeout(2.0)
            yield from rt.launch(
                KernelSpec(name="short", duration_s=0.5), blocking=True
            )
            log.append("late-user-done")

        v = env.process(victim())
        env.process(attacker(v))
        env.process(late_user())
        env.run(until=250.0)
        assert "interrupted" in log
        assert "late-user-done" in log


class TestResourceFailureRecovery:
    def test_composition_failure_is_atomic(self):
        pool = ResourcePool(
            nodes=[CPUNode("n0")],
            chassis=[GPUChassis("c0", gpu_count=2)],
        )
        composer = Composer(pool)
        # Request satisfiable cores but unsatisfiable GPUs.
        with pytest.raises(CompositionError):
            composer.compose("job", cores=10, gpus=5)
        # The partial core allocation was rolled back.
        assert pool.free_cores == 24
        assert pool.free_gpus == 2
        # Pool is still fully usable.
        comp = composer.compose("job2", cores=24, gpus=2)
        assert comp.total_cores == 24

    def test_oom_mid_run_leaves_memory_consistent(self):
        env = Environment()
        rt = CudaRuntime(env)
        a = rt.malloc(30 * 1024**3)
        with pytest.raises(OutOfMemoryError):
            rt.malloc(20 * 1024**3)
        rt.free(a)
        b = rt.malloc(39 * 1024**3)  # now fits
        assert b.nbytes >= 39 * 1024**3


class TestInvalidUseSurfacesEarly:
    def test_yielding_garbage_is_reported_in_process(self):
        env = Environment()

        def confused():
            try:
                yield "not an event"
            except SimulationError:
                return "caught"

        proc = env.process(confused())
        env.run()
        assert proc.value == "caught"

    def test_double_release_rejected_without_corruption(self):
        from repro.des import Resource

        env = Environment()
        res = Resource(env, capacity=1)

        def user():
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(SimulationError):
                res.release(req)
            # The resource is still grantable afterwards.
            req2 = res.request()
            yield req2
            res.release(req2)

        env.process(user())
        env.run()
        assert res.count == 0


class TestJitteredSlack:
    def test_jittered_slack_same_mean_similar_total(self):
        """Log-normal jitter keeps the injected total near calls x mean."""
        import numpy as np

        env = Environment()
        rt = CudaRuntime(
            env,
            slack=SlackModel(100e-6, jitter_fraction=0.3,
                             rng=np.random.default_rng(5)),
        )

        def host():
            for _ in range(400):
                yield from rt.memcpy(MiB, CopyKind.H2D)

        env.process(host())
        env.run()
        expected = 400 * 100e-6
        assert rt.injector.total_injected_s == pytest.approx(expected, rel=0.1)

    def test_jitter_does_not_change_penalty_scale(self):
        """The starvation penalty depends on the mean slack, not its
        variance — fixed vs jittered injection land close."""
        import numpy as np

        from repro.proxy import ProxyConfig, run_proxy

        cfg = ProxyConfig(matrix_size=512, iterations=40)
        base = run_proxy(cfg)

        fixed = run_proxy(cfg, SlackModel(1e-3))
        jittered = run_proxy(
            cfg,
            SlackModel(1e-3, jitter_fraction=0.25,
                       rng=np.random.default_rng(9)),
        )
        p_fixed = fixed.corrected_runtime_s / base.loop_runtime_s - 1
        p_jit = jittered.corrected_runtime_s / base.loop_runtime_s - 1
        assert p_jit == pytest.approx(p_fixed, rel=0.2)
