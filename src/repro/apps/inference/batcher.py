"""Dynamic-batching admission queue.

:class:`BatchQueue` is the frontend's FIFO between the arrival process
and the engine loop: arrivals are *admitted* in rid order, the engine
*pops* up to ``max_batch_size`` requests when its batching window
closes. The class is deliberately DES-free (plain deque + counters) so
its invariants — batches never exceed the cap, admission order is
never reordered, served eventually equals admitted — are directly
checkable by the property tests, while the window/deadline policy
lives in the serving loop that owns simulated time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .arrivals import Request

__all__ = ["BatchQueue"]


class BatchQueue:
    """FIFO request queue with admission/served/depth accounting."""

    def __init__(self) -> None:
        self._pending: Deque["Request"] = deque()
        #: Requests admitted by the arrival process so far.
        self.admitted = 0
        #: Requests handed to the engine in popped batches so far.
        self.served = 0
        #: Deepest the queue has ever been (admission high-water mark).
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._pending)

    def admit(self, request: "Request") -> None:
        """Enqueue one arrived request (called in arrival order)."""
        self._pending.append(request)
        self.admitted += 1
        if len(self._pending) > self.high_water:
            self.high_water = len(self._pending)

    def pop_batch(self, max_batch_size: int) -> List["Request"]:
        """Dequeue the next batch: the oldest ≤ ``max_batch_size`` requests."""
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        batch: List["Request"] = []
        while self._pending and len(batch) < max_batch_size:
            batch.append(self._pending.popleft())
        self.served += len(batch)
        return batch

    @property
    def drained(self) -> bool:
        """True once every admitted request has been handed out."""
        return self.served == self.admitted and not self._pending
