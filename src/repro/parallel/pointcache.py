"""Content-addressed per-point result store for proxy sweeps.

The old surface cache was all-or-nothing: one JSON blob keyed on the
whole grid, so adding a single slack value re-swept everything. This
store instead keeps **one entry per (ProxyConfig, slack) pair**, keyed
by a stable hash of the full config dataclass (including the GPU and
PCIe specs it embeds), the slack value, and a code version tag. Partial
grids, grid extensions and interrupted sweeps therefore reuse every
point ever measured, and changing any field that affects the simulation
— or bumping :data:`POINT_CACHE_VERSION` after a behavioral change to
the simulator — automatically misses.

Layout: ``<root>/<first two hash chars>/<hash>.json``, one small JSON
document per point. Delete the directory (or call
:meth:`PointCache.clear`) to drop the cache; entries are never trusted
blindly — unreadable or malformed files count as misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Optional, Union

from ..faults import FaultPlan
from ..obs import get_registry
from ..proxy.matmul import ProxyConfig
from .point import PointMeasurement, PointTask

__all__ = ["POINT_CACHE_VERSION", "PointCache", "point_key"]

#: Bump whenever simulator changes alter what a (config, slack) point
#: measures — stale entries must not survive a behavioral change.
#: 2026.08-4: points are additionally keyed on the fault plan (the
#: degraded-fabric knob); pre-fault entries must not be mistaken for
#: healthy measurements of the new keyspace.
POINT_CACHE_VERSION = "2026.08-4"

#: Per-process temp-name sequence: combined with the pid it makes
#: every writer's temp file unique, so concurrent writers of the same
#: entry (worker pools, shard subprocesses, other hosts on a shared
#: filesystem) never clobber each other's half-written temp.
_TMP_SEQ = itertools.count()


def point_key(
    config: ProxyConfig,
    slack_s: float,
    version: str = POINT_CACHE_VERSION,
    faults: Optional[FaultPlan] = None,
) -> str:
    """Stable content hash identifying one sweep point.

    The key covers every ``ProxyConfig`` field (nested hardware specs
    included, via ``dataclasses.asdict``), the slack value, the fault
    plan (its canonical document form; an empty plan is normalized to
    ``None`` so ``FaultPlan()`` and no-faults share entries, matching
    their bit-identical results), and the cache version tag. JSON with
    sorted keys keeps the digest stable across processes and Python
    versions; floats round-trip exactly through ``repr`` so distinct
    values never collide.
    """
    fault_doc = (
        faults.to_doc() if faults is not None and not faults.is_empty else None
    )
    payload = json.dumps(
        {
            "config": dataclasses.asdict(config),
            "slack_s": slack_s,
            "version": version,
            "faults": fault_doc,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PointCache:
    """Directory-backed store of :class:`PointMeasurement` by content key."""

    def __init__(
        self,
        root: Union[str, Path],
        version: str = POINT_CACHE_VERSION,
    ) -> None:
        self.root = Path(root)
        self.version = version
        #: Lifetime lookup accounting for this cache object. ``corrupt``
        #: counts entries that existed on disk but failed to parse
        #: (counted as misses too — the point gets re-measured).
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        #: Writes lost to a concurrent writer of the same entry (see
        #: :meth:`put`) — harmless by construction, counted so shared
        #: caches under multi-shard load stay observable.
        self.write_races = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 before any get)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def path_for(
        self,
        config: ProxyConfig,
        slack_s: float,
        faults: Optional[FaultPlan] = None,
    ) -> Path:
        """On-disk location of one point's entry."""
        key = point_key(config, slack_s, self.version, faults=faults)
        return self.root / key[:2] / f"{key}.json"

    def get(
        self,
        config: ProxyConfig,
        slack_s: float,
        faults: Optional[FaultPlan] = None,
    ) -> Optional[PointMeasurement]:
        """Cached measurement for a point, or ``None`` on a miss."""
        path = self.path_for(config, slack_s, faults)
        reg = get_registry()
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            reg.counter("cache.misses").inc()
            return None
        try:
            measurement = PointMeasurement.from_doc(json.loads(text))
        except (ValueError, KeyError, TypeError):
            # Torn/stale entry: treat as a miss and re-measure.
            self.corrupt += 1
            self.misses += 1
            reg.counter("cache.invalidated").inc()
            reg.counter("cache.misses").inc()
            return None
        self.hits += 1
        reg.counter("cache.hits").inc()
        return measurement

    def put(
        self,
        config: ProxyConfig,
        slack_s: float,
        measurement: PointMeasurement,
        faults: Optional[FaultPlan] = None,
    ) -> Path:
        """Store one measurement; returns the entry's path.

        Writes via a temporary file + atomic rename so a crashed or
        interrupted sweep never leaves a torn entry behind. The cache
        is shared across processes — and, for sharded sweeps, across
        hosts on a network filesystem — so the write path must survive
        concurrent writers of the *same* entry: the temp name is
        unique per writer, and any race on the mkdir/rename
        (``FileExistsError``, a partial-rename ``OSError`` on
        non-atomic filesystems) is swallowed and counted in
        ``write_races``/``pointcache.write_races``. Losing such a race
        is harmless by construction — the key is content-addressed, so
        the competing writer stored the same measurement.
        """
        path = self.path_for(config, slack_s, faults)
        reg = get_registry()
        tmp: Optional[Path] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}-{next(_TMP_SEQ)}.tmp"
            )
            tmp.write_text(json.dumps(measurement.to_doc()))
            tmp.replace(path)
        except OSError:
            # FileExistsError from a racing mkdir, or a rename/replace
            # refused mid-race (network filesystems): the entry either
            # already holds the identical content or a concurrent
            # writer is about to complete it.
            self.write_races += 1
            reg.counter("pointcache.write_races").inc()
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass
            return path
        self.writes += 1
        reg.counter("cache.writes").inc()
        return path

    def get_task(self, task: PointTask) -> Optional[PointMeasurement]:
        """Cached measurement for one :class:`PointTask`.

        The task *is* the cache key — config, slack and fault plan
        travel together — so every lookup site (dense sweeps, adaptive
        refinement, the serving cold path) keys identically instead of
        re-spelling the field triple.
        """
        return self.get(task.config, task.slack_s, task.faults)

    def put_task(
        self, task: PointTask, measurement: PointMeasurement
    ) -> Path:
        """Store one task's measurement (see :meth:`get_task`)."""
        return self.put(task.config, task.slack_s, measurement, task.faults)

    def __len__(self) -> int:
        """Number of entries currently stored."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deleter
                pass
        for sub in self.root.glob("*"):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed
