"""Retained scalar reference implementations of the model pipeline.

PR 5 vectorized :func:`repro.model.binning.bin_values` and
:meth:`repro.model.predictor.CDIProfiler.predict_sweep`. The originals
live on here, unvectorized, as the ground truth the property tests
(``tests/model/test_binning.py``, ``tests/model/test_predictor.py``)
and the trace benchmark (``benchmarks/bench_trace.py``) compare
against: the vectorized pipeline must reproduce these bit for bit on
arbitrary profiles.

Not part of the public API; these run orders of magnitude slower than
their vectorized twins on real traces.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..apps.base import AppProfile
from .binning import BinnedDistribution

__all__ = ["bin_values_reference", "predict_sweep_reference"]


def bin_values_reference(
    values: np.ndarray | Sequence[float],
    grid_value_per_size: Mapping[int, float],
    rel_tol: float = 1e-6,
) -> BinnedDistribution:
    """Scalar per-value bracketing loop (pre-vectorization semantics).

    Snap candidates are probed in ascending index order (lower grid
    mark first), matching the vectorized assignment.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("no values to bin")
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    if rel_tol < 0:
        raise ValueError("rel_tol must be non-negative")
    sizes = sorted(grid_value_per_size)
    marks = np.array([grid_value_per_size[n] for n in sizes])
    if np.any(np.diff(marks) <= 0):
        raise ValueError("grid metric must be strictly increasing")

    lower_counts = {n: 0 for n in sizes}
    upper_counts = {n: 0 for n in sizes}
    up_idx = np.searchsorted(marks, arr, side="left")
    for v, iu in zip(arr, up_idx):
        i_up = min(int(iu), len(sizes) - 1)
        snapped = None
        for candidate in (max(0, i_up - 1), i_up):
            if abs(v - marks[candidate]) <= rel_tol * marks[candidate]:
                snapped = candidate
                break
        if snapped is not None:
            i_up = i_down = snapped
        elif v >= marks[-1]:
            i_down = len(sizes) - 1
        elif v <= marks[0]:
            i_down = 0
        else:
            i_down = i_up - 1
        lower_counts[sizes[i_up]] += 1
        upper_counts[sizes[i_down]] += 1
    return BinnedDistribution(
        lower_counts=lower_counts,
        upper_counts=upper_counts,
        total=int(arr.size),
        mean_value=float(arr.mean()),
    )


def predict_sweep_reference(
    profiler: "CDIProfiler",
    profile: AppProfile,
    slack_values_s: Sequence[float],
    parallelism: Optional[int] = None,
) -> Dict[float, "SlackPrediction"]:
    """Per-slack prediction loop (pre-vectorization ``predict_sweep``).

    Re-runs the full bin → Equation 3 → Equation 2 pipeline at every
    slack value through :meth:`CDIProfiler.predict`, exactly as the
    original dict comprehension did.
    """
    return {
        s: profiler.predict(profile, s, parallelism) for s in slack_values_s
    }
