"""Benchmark: regenerate Figure 5 (memcpy-size distributions)."""

from repro.experiments import run_experiment


def test_bench_figure5(benchmark, ctx, print_result):
    result = benchmark.pedantic(
        lambda: run_experiment("figure5", ctx), rounds=1, iterations=1
    )
    print_result(result)
    for table in result.tables:
        assert "Total" in table.column("direction")
