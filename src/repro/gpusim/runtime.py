"""The simulated CUDA runtime: the host-facing API of one GPU.

:class:`CudaRuntime` reproduces the host-device contract the paper's
proxy exercises: ``malloc``/``free`` on a 40 GiB device memory,
synchronous and asynchronous ``memcpy`` over a PCIe-modelled link,
kernel ``launch`` with driver overhead, per-stream ordering, and
``synchronize``. Every host-visible API call routes through the
:class:`SlackInjector`, which is the CDI emulation point.

All API methods are generator functions to be driven from a DES
process with ``yield from``::

    def host(env, rt):
        a = rt.malloc(nbytes)
        yield from rt.memcpy(nbytes, CopyKind.H2D)
        yield from rt.launch(matmul_kernel(4096))
        yield from rt.memcpy(nbytes, CopyKind.D2H)
        yield from rt.synchronize()
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, Optional

from ..des import Environment, Event, quantize
from ..hw import (
    A100_SXM4_40GB,
    DeviceAllocation,
    DeviceMemory,
    GPUSpec,
    PCIE_GEN4_X16,
    PCIeSpec,
)
from ..network import SlackModel
from ..trace import CopyKind, EventKind, Tracer
from .engines import ComputeEngine, CopyEngine, DeviceActivity, OccupancyComputeEngine
from .interception import SlackInjector
from .kernels import KernelSpec
from .stream import CopyOp, KernelOp, Stream

__all__ = ["CudaRuntime"]


class CudaRuntime:
    """One simulated GPU and its host-side CUDA-like API.

    Parameters
    ----------
    env:
        The simulation environment.
    gpu:
        Device characteristics (default A100-SXM4-40GB).
    pcie:
        The host link (default PCIe Gen4 x16); its latency and
        bandwidth set memcpy transfer times.
    tracer:
        Destination for kernel/memcpy/slack trace events; a fresh
        tracer is created if omitted.
    slack:
        The CDI slack model; default none (traditional in-node GPU).
    api_overhead_s:
        Host driver cost of a memcpy/sync API call.
    faults:
        Optional compiled :class:`~repro.faults.FaultInjector` (from
        :meth:`repro.faults.FaultPlan.compile` with this runtime's
        ``env``). Wires the degraded fabric into the slack injector
        (per-call downtime/loss/spike effects) and the compute engine
        (GPU stalls). ``None`` (the default, and what an empty plan
        compiles to) keeps every fault check off the hot path.
    """

    def __init__(
        self,
        env: Environment,
        gpu: GPUSpec = A100_SXM4_40GB,
        pcie: PCIeSpec = PCIE_GEN4_X16,
        tracer: Optional[Tracer] = None,
        slack: Optional[SlackModel] = None,
        api_overhead_s: float = 1.5e-6,
        concurrent_kernels: bool = False,
        faults: Optional[Any] = None,
    ) -> None:
        if api_overhead_s < 0:
            raise ValueError("api_overhead_s must be non-negative")
        self.env = env
        self.gpu = gpu
        self.pcie = pcie
        self.tracer = tracer or Tracer(env, name="gpu0")
        self.memory = DeviceMemory(gpu.memory_bytes)
        # All delays this runtime feeds into the DES are snapped to the
        # dyadic tick grid (repro.des.timebase): event timestamps stay
        # exactly representable, which is what lets the steady-state
        # fast-forward engine certify bit-exact periodicity. The memo
        # dicts double as a hot-path win — transfer and kernel times
        # for the proxy's handful of distinct shapes are computed once.
        self.api_overhead_s = quantize(api_overhead_s)
        self._launch_overhead_s = quantize(gpu.launch_overhead_s)
        self._transfer_time_memo: Dict[int, float] = {}
        self._kernel_time_memo: Dict[int, Any] = {}

        self.activity = DeviceActivity()
        # concurrent_kernels switches the compute unit to SM-occupancy
        # co-scheduling: small kernels from different streams share the
        # device (the default serializes, matching one saturating
        # kernel at a time — the proxy's matmul regime).
        self.compute = (
            OccupancyComputeEngine(env, gpu, self.activity)
            if concurrent_kernels
            else ComputeEngine(env, gpu, self.activity)
        )
        self.copy_h2d = CopyEngine(env, "copy-h2d", self.activity)
        self.copy_d2h = CopyEngine(env, "copy-d2h", self.activity)

        self.faults = faults
        if faults is not None:
            self.compute.faults = faults
        self.injector = SlackInjector(env, self.tracer, slack, faults=faults)

        self._stream_ids = itertools.count(0)
        self._streams: Dict[int, Stream] = {}
        self.default_stream = self.create_stream()

        # Always-on lightweight accounting (API-level, not the DES hot
        # loop), pulled by repro.obs.simulation_snapshot after a run.
        self.api_calls = 0
        self.kernel_launches = 0
        self.memcpy_count = 0
        self.memcpy_bytes_h2d = 0
        self.memcpy_bytes_d2h = 0

    # -- configuration -----------------------------------------------------------
    @property
    def slack(self) -> SlackModel:
        """The active slack model."""
        return self.injector.model

    def set_slack(self, model: SlackModel) -> None:
        """Swap the slack model (used by sweeps)."""
        self.injector.model = model

    def create_stream(self) -> Stream:
        """Create a new stream (cudaStreamCreate)."""
        sid = next(self._stream_ids)
        stream = Stream(
            self.env,
            sid,
            self.compute,
            self.copy_h2d,
            self.copy_d2h,
            self.tracer,
            gpu_execution_time=self._kernel_time,
        )
        self._streams[sid] = stream
        return stream

    @property
    def streams(self) -> Dict[int, Stream]:
        """All created streams by id."""
        return dict(self._streams)

    # -- memory management (host-side, no simulated time) --------------------------
    def malloc(self, nbytes: int, tag: str = "") -> DeviceAllocation:
        """Allocate device memory (cudaMalloc)."""
        return self.memory.malloc(nbytes, tag=tag)

    def free(self, alloc: DeviceAllocation) -> None:
        """Free device memory (cudaFree)."""
        self.memory.free_allocation(alloc)

    # -- data movement ---------------------------------------------------------------
    def memcpy_async(
        self,
        nbytes: int,
        kind: CopyKind,
        stream: Optional[Stream] = None,
        thread: int = 0,
    ) -> Generator[Event, Any, CopyOp]:
        """cudaMemcpyAsync: enqueue a transfer, return its op handle.

        The host pays the API overhead and the injected slack, then
        continues; wait on ``op.completion`` for the data.
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if kind is CopyKind.D2D:
            raise ValueError("D2D copies do not cross the host link")
        stream = stream or self.default_stream
        start = self.env.now
        corr = self.tracer.next_correlation_id()
        yield self.env.timeout(self.api_overhead_s)
        op = CopyOp(
            completion=self.env.event(),
            thread=thread,
            correlation_id=corr,
            nbytes=nbytes,
            copy_kind=kind,
            transfer_time=self._transfer_time(nbytes),
        )
        yield stream.submit(op)
        self._account_memcpy(nbytes, kind)
        self._record_api("cudaMemcpyAsync", start, corr, thread)
        yield from self.injector.after_call("cudaMemcpyAsync", thread)
        return op

    def memcpy(
        self,
        nbytes: int,
        kind: CopyKind,
        stream: Optional[Stream] = None,
        thread: int = 0,
    ) -> Generator[Event, Any, CopyOp]:
        """cudaMemcpy: synchronous transfer (blocks the host thread)."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if kind is CopyKind.D2D:
            raise ValueError("D2D copies do not cross the host link")
        stream = stream or self.default_stream
        start = self.env.now
        corr = self.tracer.next_correlation_id()
        yield self.env.timeout(self.api_overhead_s)
        op = CopyOp(
            completion=self.env.event(),
            thread=thread,
            correlation_id=corr,
            nbytes=nbytes,
            copy_kind=kind,
            transfer_time=self._transfer_time(nbytes),
        )
        yield stream.submit(op)
        yield op.completion
        self._account_memcpy(nbytes, kind)
        self._record_api("cudaMemcpy", start, corr, thread)
        yield from self.injector.after_call("cudaMemcpy", thread)
        return op

    # -- kernels -------------------------------------------------------------------
    def launch(
        self,
        kernel: KernelSpec,
        stream: Optional[Stream] = None,
        thread: int = 0,
        blocking: bool = False,
    ) -> Generator[Event, Any, KernelOp]:
        """Launch a kernel.

        The host pays the driver launch overhead plus slack; the
        kernel executes when the stream reaches it. With
        ``blocking=True`` (the ``CUDA_LAUNCH_BLOCKING=1`` behaviour the
        paper's proxy uses as its pessimistic synchronous mode) the
        call returns only after the kernel completes, which keeps the
        injected slack on the critical path so Equation 1's
        ``n_calls * slack`` subtraction is exact.
        """
        stream = stream or self.default_stream
        start = self.env.now
        corr = self.tracer.next_correlation_id()
        yield self.env.timeout(self._launch_overhead_s)
        op = KernelOp(
            completion=self.env.event(),
            thread=thread,
            correlation_id=corr,
            kernel=kernel,
        )
        yield stream.submit(op)
        if blocking:
            yield op.completion
        self.kernel_launches += 1
        self._record_api("cudaLaunchKernel", start, corr, thread)
        yield from self.injector.after_call("cudaLaunchKernel", thread)
        return op

    # -- synchronization ---------------------------------------------------------------
    def synchronize(
        self, stream: Optional[Stream] = None, thread: int = 0
    ) -> Generator[Event, Any, None]:
        """cudaDeviceSynchronize / cudaStreamSynchronize.

        With ``stream`` given, waits for that stream only; otherwise
        for every stream on the device.
        """
        start = self.env.now
        corr = self.tracer.next_correlation_id()
        yield self.env.timeout(self.api_overhead_s)
        if stream is not None:
            yield stream.drained()
            name = "cudaStreamSynchronize"
        else:
            for s in self._streams.values():
                yield s.drained()
            name = "cudaDeviceSynchronize"
        self.api_calls += 1
        self.tracer.record(
            EventKind.SYNC, name, start, self.env.now, correlation_id=corr,
            thread=thread,
        )
        yield from self.injector.after_call(name, thread)

    # -- statistics --------------------------------------------------------------------
    def engine_utilization(self) -> Dict[str, float]:
        """Busy fractions of the three device engines."""
        return {
            "compute": self.compute.utilization(),
            "copy_h2d": self.copy_h2d.utilization(),
            "copy_d2h": self.copy_d2h.utilization(),
        }

    def total_starvation_cost(self) -> float:
        """Accumulated GPU-starvation cost (the paper's residual penalty)."""
        return self.compute.total_starvation_cost

    # -- quantized delay memos -----------------------------------------------------
    def _transfer_time(self, nbytes: int) -> float:
        """PCIe transfer time for ``nbytes``, tick-quantized and memoized."""
        t = self._transfer_time_memo.get(nbytes)
        if t is None:
            t = quantize(self.pcie.transfer_time(nbytes))
            self._transfer_time_memo[nbytes] = t
        return t

    def _kernel_time(self, kernel: KernelSpec) -> float:
        """Kernel execution time on this GPU, tick-quantized and memoized.

        Keyed by identity with the spec kept alive in the entry, so a
        recycled ``id`` can never alias a different kernel.
        """
        hit = self._kernel_time_memo.get(id(kernel))
        if hit is not None and hit[0] is kernel:
            return hit[1]
        t = quantize(kernel.execution_time(self.gpu))
        self._kernel_time_memo[id(kernel)] = (kernel, t)
        return t

    def _record_api(
        self, name: str, start: float, corr: int, thread: int
    ) -> None:
        self.api_calls += 1
        self.tracer.record(
            EventKind.API, name, start, self.env.now, correlation_id=corr,
            thread=thread,
        )

    def _account_memcpy(self, nbytes: int, kind: CopyKind) -> None:
        self.memcpy_count += 1
        if kind is CopyKind.H2D:
            self.memcpy_bytes_h2d += nbytes
        else:
            self.memcpy_bytes_d2h += nbytes
