"""Vectorized binning vs. the retained scalar reference, bit for bit.

Also the regression tests for the grid-ordering fix: ``bin_values``
must sort the grid marks by matrix size exactly once, and reject
grids whose metric is not strictly increasing in size instead of
silently mis-bracketing.
"""

import numpy as np
import pytest

from repro.hw import MiB
from repro.model.binning import (
    bin_kernel_durations,
    bin_transfer_sizes,
    bin_values,
)
from repro.model.reference import bin_values_reference

from .conftest import SYNTHETIC_KERNEL_TIMES

SEEDS = [0, 3, 11, 42, 777, 31337]

GRID = SYNTHETIC_KERNEL_TIMES  # {512: 50e-6, ..., 32768: 3.8}


def assert_same(a, b):
    assert a.lower_counts == b.lower_counts
    assert a.upper_counts == b.upper_counts
    assert a.total == b.total
    assert a.mean_value == b.mean_value


class TestGridOrdering:
    """Satellite regression: unsorted and non-monotonic grids."""

    def test_unsorted_grid_insertion_order_is_harmless(self):
        values = [40e-6, 1.6e-3, 2.0, 5.0]
        shuffled = {8192: 60e-3, 512: 50e-6, 32768: 3.8, 2048: 1.5e-3}
        assert_same(bin_values(values, shuffled), bin_values(values, GRID))

    @pytest.mark.parametrize("fn", [bin_values, bin_values_reference])
    def test_non_monotonic_grid_rejected(self, fn):
        # Metric *decreases* from size 512 to 2048: rounding "up" in
        # size would round down in metric — must be an explicit error.
        bad = {512: 1.0, 2048: 0.5, 8192: 2.0}
        with pytest.raises(ValueError, match="strictly increasing"):
            fn([0.7], bad)

    @pytest.mark.parametrize("fn", [bin_values, bin_values_reference])
    def test_duplicate_metric_rejected(self, fn):
        with pytest.raises(ValueError, match="strictly increasing"):
            fn([0.7], {512: 1.0, 2048: 1.0})

    @pytest.mark.parametrize("fn", [bin_values, bin_values_reference])
    def test_input_validation(self, fn):
        with pytest.raises(ValueError, match="no values"):
            fn([], GRID)
        with pytest.raises(ValueError, match="non-negative"):
            fn([-1.0], GRID)
        with pytest.raises(ValueError, match="rel_tol"):
            fn([1.0], GRID, rel_tol=-1e-9)


class TestReferenceParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_values_match_reference(self, seed):
        rng = np.random.RandomState(seed)
        n = int(rng.randint(1, 500))
        # Log-uniform over well past both ends of the grid.
        values = 10.0 ** rng.uniform(-6, 2, size=n)
        assert_same(bin_values(values, GRID), bin_values_reference(values, GRID))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_snap_tolerance_edges_match_reference(self, seed):
        rng = np.random.RandomState(seed)
        marks = np.array([GRID[n] for n in sorted(GRID)])
        # Values exactly on marks, one-ULP off, and just inside/outside
        # the relative snap window — the cases the snap masks exist for.
        base = marks[rng.randint(0, len(marks), size=64)]
        eps = rng.choice(
            [0.0, 1e-7, -1e-7, 9.9e-7, -9.9e-7, 1.1e-6, -1.1e-6], size=64
        )
        values = np.nextafter(base * (1.0 + eps), np.inf)
        assert_same(bin_values(values, GRID), bin_values_reference(values, GRID))

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_random_grids_match_reference(self, seed):
        rng = np.random.RandomState(seed)
        n_bins = int(rng.randint(2, 7))
        sizes = sorted(rng.choice(range(64, 65536), size=n_bins, replace=False))
        grid = {
            int(s): float(m)
            for s, m in zip(sizes, np.sort(10.0 ** rng.uniform(-5, 1, n_bins)))
        }
        values = 10.0 ** rng.uniform(-6, 2, size=int(rng.randint(1, 300)))
        assert_same(bin_values(values, grid), bin_values_reference(values, grid))

    def test_wrappers_route_through_vectorized_path(self):
        sizes = [0.5 * MiB, 3 * MiB, 700 * MiB, 9000 * MiB]
        grid = [512, 2048, 8192, 32768]
        got = bin_transfer_sizes(sizes, grid)
        ref = bin_values_reference(
            sizes, {n: n * n * 4 for n in grid}
        )
        assert_same(got, ref)
        durs = [40e-6, 1.4e-3, 61e-3, 4.0]
        assert_same(
            bin_kernel_durations(durs, GRID), bin_values_reference(durs, GRID)
        )
