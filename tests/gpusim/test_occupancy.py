"""Tests for SM-occupancy co-scheduling of kernels."""

import pytest

from repro.des import Environment
from repro.gpusim import (
    CudaRuntime,
    KernelSpec,
    matmul_kernel,
    matmul_sm_fraction,
)
from repro.network import SlackModel
from repro.trace import CopyKind


def co_run(concurrent, kernels, streams=None):
    env = Environment()
    rt = CudaRuntime(env, concurrent_kernels=concurrent)
    streams = streams or [rt.create_stream() for _ in kernels]

    def host():
        t0 = env.now
        ops = []
        for k, s in zip(kernels, streams if streams else []):
            op = yield from rt.launch(k, stream=s)
            ops.append(op)
        for op in ops:
            if not op.completion.processed:
                yield op.completion
        return env.now - t0

    proc = env.process(host())
    env.run()
    return proc.value, rt


class TestSmFraction:
    def test_small_matmul_partial_occupancy(self):
        assert matmul_sm_fraction(512) == pytest.approx(16 / 108)

    def test_large_matmul_saturates(self):
        assert matmul_sm_fraction(2048) == 1.0
        assert matmul_sm_fraction(32768) == 1.0

    def test_monotone(self):
        fracs = [matmul_sm_fraction(n) for n in (128, 256, 512, 1024, 2048)]
        assert fracs == sorted(fracs)

    def test_validation(self):
        with pytest.raises(ValueError):
            matmul_sm_fraction(0)
        with pytest.raises(ValueError):
            KernelSpec(name="k", duration_s=1.0, sm_fraction=0.0)
        with pytest.raises(ValueError):
            KernelSpec(name="k", duration_s=1.0, sm_fraction=1.5)


class TestOccupancyEngine:
    def test_small_kernels_co_run(self):
        kernels = [matmul_kernel(512)] * 2  # each 16/108 of the SMs
        serial, _ = co_run(False, kernels)
        concurrent, _ = co_run(True, kernels)
        assert concurrent < 0.7 * serial

    def test_saturating_kernels_still_serialize(self):
        kernels = [matmul_kernel(2048)] * 2  # each fills the device
        serial, _ = co_run(False, kernels)
        concurrent, _ = co_run(True, kernels)
        assert concurrent == pytest.approx(serial, rel=0.02)

    def test_many_small_kernels_bounded_by_sm_pool(self):
        # 16 blocks each: 6 fit in 108 SMs, the 7th waits.
        kernels = [matmul_kernel(512)] * 7
        concurrent, rt = co_run(True, kernels)
        one = matmul_kernel(512).execution_time(rt.gpu)
        # Two waves, not seven serial executions.
        assert concurrent < 3.5 * one
        assert concurrent > 1.5 * one

    def test_resident_counter_returns_to_zero(self):
        _, rt = co_run(True, [matmul_kernel(512)] * 3)
        assert rt.compute.resident_kernels == 0

    def test_starvation_still_charged(self):
        env = Environment()
        rt = CudaRuntime(env, concurrent_kernels=True,
                         slack=SlackModel(1e-3))

        def host():
            yield from rt.memcpy(2**20, CopyKind.H2D)
            yield from rt.launch(matmul_kernel(512), blocking=True)

        env.process(host())
        env.run()
        # The slack after the memcpy starves the device; the kernel
        # pays the ramp exactly as on the serial engine.
        assert rt.total_starvation_cost() == pytest.approx(
            0.9 * 1e-3, rel=0.05
        )

    def test_invalid_sm_fraction_at_execute(self):
        env = Environment()
        rt = CudaRuntime(env, concurrent_kernels=True)

        def host():
            yield from rt.compute.execute_kernel(1e-3, 0.0)

        with pytest.raises(ValueError):
            proc = env.process(host())
            env.run()


class TestOccupancyRaisesSlackTolerance:
    def test_concurrent_kernels_help_multi_thread_proxy(self):
        """With SM co-scheduling, concurrent submitters overlap their
        small kernels and the per-iteration starvation residual of a
        multi-thread loop shrinks."""

        def residual(concurrent):
            def run(slack):
                env = Environment()
                rt = CudaRuntime(env, concurrent_kernels=concurrent,
                                 slack=SlackModel(slack))
                n, iters, threads = 512, 15, 4
                nbytes = n * n * 4
                k = matmul_kernel(n)

                def worker(tid):
                    s = rt.create_stream()
                    for _ in range(iters):
                        yield from rt.memcpy(nbytes, CopyKind.H2D, s, tid)
                        yield from rt.memcpy(nbytes, CopyKind.H2D, s, tid)
                        yield from rt.launch(k, s, tid, blocking=True)
                        yield from rt.memcpy(nbytes, CopyKind.D2H, s, tid)
                        yield from rt.synchronize(stream=s, thread=tid)

                def main():
                    t0 = env.now
                    ws = [env.process(worker(t)) for t in range(threads)]
                    yield env.all_of(ws)
                    return env.now - t0

                proc = env.process(main())
                env.run()
                return proc.value

            return run(2e-4) - run(0.0)

        assert residual(True) <= residual(False) * 1.1
