"""Point-to-point network links and NICs as DES components.

A :class:`Link` is a latency/bandwidth (alpha-beta) channel with a
serialization resource: concurrent messages share the wire. A
:class:`NIC` adds per-message processing latency and an injection-rate
cap. These are the building blocks the row-scale fabric composes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, TYPE_CHECKING

from ..des import Environment, Event, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import FaultInjector

__all__ = ["LinkSpec", "Link", "NICSpec", "NIC"]


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of a network link (alpha-beta model)."""

    latency_s: float = 1.0e-6
    bandwidth_Bps: float = 25e9  # 200 Gb/s class HPC link
    name: str = "link"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth_Bps must be positive")

    def message_time(self, nbytes: float) -> float:
        """Unloaded alpha + nbytes/beta transfer time."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth_Bps


class Link:
    """A shared serial link in the simulation.

    Messages serialize on the wire (one at a time at full bandwidth);
    propagation latency is pipelined, so message N+1 may start
    serializing while message N is still in flight.

    ``faults`` optionally attaches a compiled
    :class:`~repro.faults.FaultInjector` (built with this link's
    ``env``): before a message reaches the wire it waits out any
    link-flap down-window, plays the loss/retry/backoff game (raising
    :class:`~repro.faults.FabricTimeoutError` to the process waiting
    on :meth:`transmit` once the retry budget is spent), and pays any
    active latency-spike extra. ``None`` keeps the healthy fast path.
    """

    def __init__(
        self,
        env: Environment,
        spec: LinkSpec,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.faults = faults
        self._wire = Resource(env, capacity=1)
        self.bytes_carried = 0.0
        self.messages_carried = 0
        #: Accumulated simulated time messages spent queued for the
        #: wire (contention-induced queueing delay; 0 on an idle link).
        self.queue_wait_s = 0.0

    def transmit(self, nbytes: float) -> Event:
        """Process-event that completes when ``nbytes`` have arrived."""
        return self.env.process(
            self._transmit(nbytes), name=f"{self.spec.name}-tx"
        )

    def _transmit(self, nbytes: float) -> Generator[Event, None, None]:
        serialization = nbytes / self.spec.bandwidth_Bps
        if self.faults is not None:
            yield from self.faults.perturb_call(f"{self.spec.name}-tx")
        queued_at = self.env.now
        with self._wire.request() as req:
            yield req
            self.queue_wait_s += self.env.now - queued_at
            yield self.env.timeout(serialization)
        # Propagation happens off the wire.
        yield self.env.timeout(self.spec.latency_s)
        self.bytes_carried += nbytes
        self.messages_carried += 1


@dataclass(frozen=True)
class NICSpec:
    """Static parameters of a network interface card."""

    processing_s: float = 0.5e-6
    injection_rate_Bps: float = 25e9
    name: str = "nic"

    def __post_init__(self) -> None:
        if self.processing_s < 0:
            raise ValueError("processing_s must be non-negative")
        if self.injection_rate_Bps <= 0:
            raise ValueError("injection_rate_Bps must be positive")


class NIC:
    """A NIC: per-message processing plus injection-bandwidth sharing."""

    def __init__(self, env: Environment, spec: NICSpec) -> None:
        self.env = env
        self.spec = spec
        self._engine = Resource(env, capacity=1)
        self.messages_processed = 0
        #: Accumulated simulated time messages waited for the engine.
        self.queue_wait_s = 0.0

    def inject(self, nbytes: float) -> Event:
        """Process-event completing when the NIC has injected the message."""
        return self.env.process(self._inject(nbytes), name=f"{self.spec.name}-inj")

    def _inject(self, nbytes: float) -> Generator[Event, None, None]:
        queued_at = self.env.now
        with self._engine.request() as req:
            yield req
            self.queue_wait_s += self.env.now - queued_at
            yield self.env.timeout(
                self.spec.processing_s + nbytes / self.spec.injection_rate_Bps
            )
        self.messages_processed += 1
