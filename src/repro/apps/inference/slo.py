"""Latency-SLO slack response: measured and predicted.

The paper's penalty metric is *normalized runtime* — right for batch
workloads, blind to what interactive traffic cares about. This module
defines the serving equivalents and routes them through the existing
pipeline **without modifying it**:

* :func:`measure_slo_response` runs the serving DES at a zero-slack
  baseline plus each requested slack and reports TTFT/TPOT *inflation*
  (metric over baseline, minus one) — the latency analogue of
  :attr:`~repro.proxy.SweepPoint.penalty`.
* :meth:`SLOResponse.to_sweep_points` re-expresses those inflations as
  ordinary :class:`~repro.proxy.SweepPoint` series (corrected runtime
  = the latency metric, baseline = its zero-slack value), so
  :func:`repro.model.extract_training_series`,
  :class:`repro.serve.SurrogateModel` and the penalty service consume
  latency SLOs exactly as they consume proxy penalties.
* :func:`phase_profile` slices a serving profile into its prefill /
  decode sub-profiles via the phase tags the DES stamped on every
  event, and :func:`predict_slo_response` feeds those to the
  **unchanged** :class:`~repro.model.CDIProfiler` — per-phase
  Equation 2/3 bounds where TTFT inherits the prefill phase's
  sensitivity and per-token latency the decode phase's. That reuse is
  the method's application-independence claim, exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, TYPE_CHECKING, Tuple

from ...proxy.sweep import SweepPoint
from ...trace import EventKind
from ...trace.store import ColumnarTrace
from ..base import AppProfile
from .serving import (
    InferenceProfileConfig,
    PHASE_DECODE,
    PHASE_PREFILL,
    SLOReport,
    run_inference,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...faults import FaultPlan
    from ...model.predictor import CDIProfiler, SlackPrediction

__all__ = [
    "TTFT_SERIES",
    "TPOT_SERIES",
    "SLOResponse",
    "PredictedSLOResponse",
    "measure_slo_response",
    "phase_profile",
    "predict_slo_response",
]

#: Synthetic series ids under which the two latency metrics travel
#: through :class:`~repro.proxy.SweepPoint`-shaped plumbing (the
#: ``matrix_size`` axis is just a series key to the surrogate).
TTFT_SERIES = 1
TPOT_SERIES = 2


@dataclass(frozen=True)
class SLOResponse:
    """Measured latency-SLO slack response of one serving config."""

    config: InferenceProfileConfig
    slack_values_s: Tuple[float, ...]
    baseline: SLOReport
    reports: Tuple[SLOReport, ...]

    def __post_init__(self) -> None:
        if len(self.reports) != len(self.slack_values_s):
            raise ValueError("one report per slack value required")

    @property
    def ttft_penalty(self) -> Tuple[float, ...]:
        """p99-TTFT inflation over the zero-slack baseline, per slack."""
        return tuple(
            r.ttft_p99_s / self.baseline.ttft_p99_s - 1.0
            for r in self.reports
        )

    @property
    def tpot_penalty(self) -> Tuple[float, ...]:
        """Mean-TPOT inflation over the zero-slack baseline, per slack."""
        return tuple(
            r.tpot_mean_s / self.baseline.tpot_mean_s - 1.0
            for r in self.reports
        )

    def to_sweep_points(self) -> Tuple[SweepPoint, ...]:
        """The response as two :class:`~repro.proxy.SweepPoint` series.

        ``corrected_runtime_s`` carries the latency metric and
        ``baseline_runtime_s`` its zero-slack value, so
        :attr:`SweepPoint.penalty` *is* the SLO inflation — the
        surrogate/serving stack fits it without modification.
        """
        points = []
        for series, metric in (
            (TTFT_SERIES, lambda r: r.ttft_p99_s),
            (TPOT_SERIES, lambda r: r.tpot_mean_s),
        ):
            base = metric(self.baseline)
            for slack_s, report in zip(self.slack_values_s, self.reports):
                points.append(
                    SweepPoint(
                        matrix_size=series,
                        threads=1,
                        slack_s=slack_s,
                        loop_runtime_s=metric(report),
                        corrected_runtime_s=metric(report),
                        baseline_runtime_s=base,
                        iterations=report.requests,
                        kernel_time_s=0.0,
                    )
                )
        return tuple(points)


def measure_slo_response(
    config: Optional[InferenceProfileConfig] = None,
    slack_values_s: Sequence[float] = (1e-5, 1e-4, 1e-3),
    *,
    faults: Optional["FaultPlan"] = None,
) -> SLOResponse:
    """Run the serving DES across a slack grid and report SLO inflation."""
    config = config or InferenceProfileConfig()
    slacks = tuple(float(s) for s in slack_values_s)
    for s in slacks:
        if s <= 0:
            raise ValueError("slack values must be positive")
    from ...network import SlackModel

    baseline = run_inference(config, SlackModel.none(), faults=faults)
    reports = tuple(
        run_inference(config, SlackModel(slack_s=s), faults=faults).slo
        for s in slacks
    )
    return SLOResponse(
        config=config,
        slack_values_s=slacks,
        baseline=baseline.slo,
        reports=reports,
    )


_PHASE_NAMES = {PHASE_PREFILL: "prefill", PHASE_DECODE: "decode"}


def phase_profile(profile: AppProfile, phase: int) -> AppProfile:
    """A serving phase's sub-profile, predictor-consumable.

    Selects the events the DES tagged with ``phase`` (the trace's
    ``thread`` field). The sub-profile's ``runtime_s`` is the phase's
    *busy-time union* — the simulated time the phase actually occupies
    — not the run's wall span: a latency metric inflates relative to
    the phase's own active time, and queue idle between batches would
    otherwise dilute the Equation 2 runtime fractions toward zero.
    The result plugs straight into
    :meth:`repro.model.CDIProfiler.predict_sweep`.
    """
    suffix = _PHASE_NAMES.get(phase, str(phase))
    events = [e for e in profile.trace if e.thread == phase]
    if not events:
        raise ValueError(
            f"profile {profile.name!r} has no events for phase {phase}"
        )
    trace = ColumnarTrace(events, name=f"{profile.name}-{suffix}")
    span = trace.busy_time()
    if span <= 0:
        raise ValueError(f"phase {suffix} spans no simulated time")
    api_calls = trace.count_kind(EventKind.API)
    return AppProfile(
        name=f"{profile.name}-{suffix}",
        trace=trace,
        runtime_s=span,
        queue_parallelism=1,
        cuda_calls_per_second=api_calls / span,
    )


@dataclass(frozen=True)
class PredictedSLOResponse:
    """Per-phase Equation 2/3 bounds for one serving profile.

    The bounds are the paper's *starvation* penalty — its corrected
    runtime subtracts the admissible direct delay (``n_calls x
    slack``) as harmless. A latency SLO cannot make that subtraction
    (the user waits through the direct delay too), so each phase also
    carries the first-order direct-delay inflation
    ``cuda_calls_per_second x slack`` relative to the phase's busy
    time; the measured metric tracks bound + direct. Decode's direct
    term dominates — two API calls per ~2 ms token step — which is
    exactly where the paper's <1%-penalty conclusion breaks for
    interactive traffic.
    """

    #: Prefill-phase predictions (TTFT's sensitivity), keyed by slack.
    prefill: Dict[float, "SlackPrediction"]
    #: Decode-phase predictions (TPOT's sensitivity), keyed by slack.
    decode: Dict[float, "SlackPrediction"]
    #: First-order direct-delay inflation per slack, per phase.
    prefill_direct: Dict[float, float]
    decode_direct: Dict[float, float]


def predict_slo_response(
    profiler: "CDIProfiler",
    profile: AppProfile,
    slack_values_s: Sequence[float],
) -> PredictedSLOResponse:
    """Predict per-phase latency sensitivity through the unchanged model.

    ``profiler`` is an ordinary :class:`~repro.model.CDIProfiler`
    built on the proxy's measured surface; each phase sub-profile is
    binned and weighted by the same Equations 2–3 as any batch app.
    """
    slacks = list(slack_values_s)
    prefill = phase_profile(profile, PHASE_PREFILL)
    decode = phase_profile(profile, PHASE_DECODE)
    return PredictedSLOResponse(
        prefill=profiler.predict_sweep(prefill, slacks),
        decode=profiler.predict_sweep(decode, slacks),
        prefill_direct={
            s: prefill.cuda_calls_per_second * s for s in slacks
        },
        decode_direct={
            s: decode.cuda_calls_per_second * s for s in slacks
        },
    )
