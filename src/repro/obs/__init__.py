"""Observability: unified metrics and run reports for every layer.

The reproduction's argument rests on measuring where time goes when
slack is injected (GPU starvation vs. admissible delay, Equation 1),
and its engineering rests on keeping the DES hot path fast. This
package gives both a first-class, *uniform* measurement surface:

* :mod:`repro.obs.metrics` — counters, gauges, histograms and timers
  behind a :class:`MetricsRegistry`. Disabled by default with a
  near-zero-cost no-op path; enable per scope with :func:`collecting`
  or process-wide with :func:`enable_metrics`.
* :mod:`repro.obs.publish` — pull-style snapshot publication from the
  DES kernel (events dispatched, heap depth, callback free pool), the
  GPU runtime (kernel launches, memcpy bytes by direction, stream
  occupancy), the fabric emulation point (slack calls and injected
  seconds, link bytes and queueing delay), and the parallel sweep
  engine (worker utilization, cache hit/miss split).
* :mod:`repro.obs.report` — :class:`RunReport`, the stable JSON +
  human-table artifact every instrumented sweep/experiment run emits
  (``rowscale-cdi ... --metrics-out report.json``; render one with
  ``rowscale-cdi metrics report.json``).

Metric names are dotted ``section.metric``; the sections are the
publishing layers (``des``, ``gpu``, ``fabric``, ``cache``,
``executor``, ``sweep``, ``experiments``, ``serve`` — the penalty
service publishes its request/batch/cold-path counters through
:func:`publish_service`).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    collecting,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)
from .publish import (
    publish_executor,
    publish_fleet,
    publish_inference,
    publish_link,
    publish_nic,
    publish_service,
    publish_shard,
    publish_shard_merge,
    publish_snapshot,
    publish_trace_store,
    simulation_snapshot,
)
from .report import RUN_REPORT_SCHEMA_VERSION, RunReport

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "collecting",
    "enable_metrics",
    "disable_metrics",
    "get_registry",
    "metrics_enabled",
    "simulation_snapshot",
    "publish_snapshot",
    "publish_executor",
    "publish_fleet",
    "publish_inference",
    "publish_link",
    "publish_nic",
    "publish_service",
    "publish_shard",
    "publish_shard_merge",
    "publish_trace_store",
    "RunReport",
    "RUN_REPORT_SCHEMA_VERSION",
]
