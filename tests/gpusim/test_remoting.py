"""Tests for the rCUDA-style API remoting comparator."""

import pytest

from repro.des import Environment
from repro.gpusim import (
    CudaRuntime,
    KernelSpec,
    RemotingSpec,
    make_remoting_runtime,
)
from repro.hw import GiB, MiB, PCIE_GEN4_X16
from repro.trace import CopyKind


class TestRemotingSpec:
    def test_link_spec_caps_bandwidth(self):
        spec = RemotingSpec(network_bandwidth_Bps=12.5e9)
        link = spec.as_link_spec(PCIE_GEN4_X16)
        assert link.effective_bandwidth_Bps == pytest.approx(12.5e9)

    def test_link_spec_adds_rpc_latency(self):
        spec = RemotingSpec(rpc_latency_s=5e-6)
        link = spec.as_link_spec(PCIE_GEN4_X16)
        assert link.latency_s == pytest.approx(
            PCIE_GEN4_X16.latency_s + 5e-6
        )

    def test_fat_network_keeps_pcie_bandwidth(self):
        spec = RemotingSpec(network_bandwidth_Bps=100e9)
        link = spec.as_link_spec(PCIE_GEN4_X16)
        assert link.effective_bandwidth_Bps == pytest.approx(
            PCIE_GEN4_X16.effective_bandwidth_Bps
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RemotingSpec(rpc_latency_s=-1)
        with pytest.raises(ValueError):
            RemotingSpec(network_bandwidth_Bps=0)


class TestRemotingRuntime:
    def run_loop(self, rt, env, nbytes=256 * MiB, iters=5):
        kernel = KernelSpec(name="k", duration_s=10e-3)

        def host():
            t0 = env.now
            for _ in range(iters):
                yield from rt.memcpy(nbytes, CopyKind.H2D)
                yield from rt.launch(kernel, blocking=True)
                yield from rt.memcpy(nbytes, CopyKind.D2H)
                yield from rt.synchronize()
            return env.now - t0

        proc = env.process(host())
        env.run()
        return proc.value

    def test_remoting_slower_than_native(self):
        env1 = Environment()
        native = CudaRuntime(env1)
        t_native = self.run_loop(native, env1)

        env2 = Environment()
        remoted = make_remoting_runtime(env2)
        t_remoted = self.run_loop(remoted, env2)
        assert t_remoted > t_native

    def test_bandwidth_penalty_dominates_large_transfers(self):
        # CDI (latency only) vs remoting (latency + bandwidth cap):
        # for GiB transfers the bandwidth cap costs far more than the
        # RPC latency.
        from repro.network import SlackModel

        env1 = Environment()
        cdi = CudaRuntime(env1, slack=SlackModel(5e-6))
        t_cdi = self.run_loop(cdi, env1, nbytes=GiB, iters=2)

        env2 = Environment()
        remoted = make_remoting_runtime(env2, RemotingSpec(rpc_latency_s=5e-6))
        t_rem = self.run_loop(remoted, env2, nbytes=GiB, iters=2)
        # PCIe 25.6 GB/s vs network 12.5 GB/s: ~2x on the copy time.
        assert t_rem > 1.5 * t_cdi

    def test_rpc_latency_charged_per_call(self):
        env = Environment()
        rt = make_remoting_runtime(env, RemotingSpec(rpc_latency_s=10e-6))

        def host():
            for _ in range(4):
                yield from rt.memcpy(MiB, CopyKind.H2D)

        env.process(host())
        env.run()
        assert rt.injector.total_injected_s == pytest.approx(4 * 10e-6)
