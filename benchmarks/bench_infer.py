"""Benchmark: the LLM inference-serving DES and its SLO sweep.

Two legs, each asserting correctness before reporting a number:

* **serving** — one paper-scale serving run (128 requests, dynamic
  batching, KV paging). Determinism parity is asserted first — two
  runs must produce byte-identical profile documents — then the DES
  event throughput is recorded against a floor.
* **slo-sweep** — :func:`repro.apps.inference.measure_slo_response`
  across the standard slack grid. The deterministic claims the docs
  make are asserted (per-token inflation grows with slack and
  dominates the direct-delay-blind starvation view at 1 ms) before
  the wall time is recorded.

Results land in ``BENCH_infer.json`` at the repo root, next to
``BENCH_appff.json`` and ``BENCH_sweep.json``.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.apps.inference import (
    InferenceProfileConfig,
    measure_slo_response,
    run_inference,
)
from repro.apps.profilecache import _profile_doc

#: Where the perf artifact lands (repo root, next to BENCH_appff.json).
INFER_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_infer.json"

#: Minimum acceptable simulated-event throughput (events/s of wall
#: time). The serving DES sustains ~50k even on a single shared CPU
#: core; the floor only guards against pathological regressions.
EVENTS_PER_S_FLOOR = 20_000.0

#: Paper-scale serving config: the registry's full (quick=False) run.
SERVING_CONFIG = InferenceProfileConfig(num_requests=128)

#: The SLO sweep measures the quick-scale config across this grid.
SLO_CONFIG = InferenceProfileConfig(num_requests=24)
SLO_SLACKS = (1e-5, 1e-4, 1e-3)

#: Sections accumulated by the tests and flushed at module teardown.
_SECTIONS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_artifact():
    yield
    if not _SECTIONS:
        return
    doc = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    doc.update(_SECTIONS)
    INFER_ARTIFACT.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _best_of(fn, repeats=3):
    """Best wall time of ``repeats`` runs (and the last return value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _doc(profile):
    return json.dumps(_profile_doc(profile), sort_keys=True)


def test_bench_serving_run():
    wall_a, a = _best_of(lambda: run_inference(SERVING_CONFIG), repeats=1)
    wall_b, b = _best_of(lambda: run_inference(SERVING_CONFIG), repeats=2)
    # Parity before timing: the run the benchmark times must be the
    # run the tests certify, bit for bit.
    assert _doc(a.profile) == _doc(b.profile)
    assert a.slo == b.slo
    wall = min(wall_a, wall_b)
    events = len(a.profile.trace)
    events_per_s = events / wall
    _SECTIONS["serving"] = {
        "requests": SERVING_CONFIG.num_requests,
        "batches": len(a.batches),
        "events": events,
        "makespan_s": a.slo.makespan_s,
        "throughput_rps": a.slo.throughput_rps,
        "ttft_p99_s": a.slo.ttft_p99_s,
        "tpot_mean_s": a.slo.tpot_mean_s,
        "wall_s": wall,
        "events_per_s": events_per_s,
        "events_per_s_floor": EVENTS_PER_S_FLOOR,
    }
    assert events_per_s >= EVENTS_PER_S_FLOOR, (
        f"serving DES sustained {events_per_s:,.0f} events/s, below "
        f"the {EVENTS_PER_S_FLOOR:,.0f} floor"
    )


def test_bench_slo_sweep():
    wall, resp = _best_of(
        lambda: measure_slo_response(SLO_CONFIG, SLO_SLACKS), repeats=1
    )
    # The deterministic claims before the timing: per-token inflation
    # grows with slack, and at 1 ms it is dominated by the direct
    # delay the paper's corrected-runtime metric subtracts away.
    tpot = resp.tpot_penalty
    assert tpot[-1] > tpot[-2] >= 0
    assert tpot[-1] > 0.5
    _SECTIONS["slo_sweep"] = {
        "requests": SLO_CONFIG.num_requests,
        "slack_values_s": list(SLO_SLACKS),
        "ttft_penalty": list(resp.ttft_penalty),
        "tpot_penalty": list(tpot),
        "runs": len(SLO_SLACKS) + 1,
        "wall_s": wall,
    }
