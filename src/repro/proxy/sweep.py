"""Slack sweeps over the proxy's parameter grid (paper Section IV-B).

Runs the proxy at every (matrix size, thread count, slack) point of
the paper's grid — matrix sizes 2^9..2^15 in steps of 2^2, slack
1 us..10 ms in decades, threads {1, 2, 4, 8} — applies the Equation 1
correction, and normalizes against the zero-slack baseline of the same
configuration. The result is the slack response surface Figures 3(a-c)
plot and the prediction model (Eq 2-3) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hw import OutOfMemoryError
from ..network import SlackModel
from .matmul import ProxyConfig, run_proxy

__all__ = [
    "PAPER_MATRIX_SIZES",
    "PAPER_SLACK_VALUES_S",
    "PAPER_THREAD_COUNTS",
    "SweepPoint",
    "SweepResult",
    "run_slack_sweep",
]

#: The paper's matrix-size grid: 2^9 to 2^15 in multiples of 2^2.
PAPER_MATRIX_SIZES: Tuple[int, ...] = (2**9, 2**11, 2**13, 2**15)

#: The paper's slack grid: 1 us to 10 ms in decades.
PAPER_SLACK_VALUES_S: Tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)

#: OpenMP thread counts tested (4 collected but unplotted in the paper).
PAPER_THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of the slack response surface."""

    matrix_size: int
    threads: int
    slack_s: float
    loop_runtime_s: float
    corrected_runtime_s: float
    baseline_runtime_s: float
    iterations: int
    kernel_time_s: float

    @property
    def normalized_runtime(self) -> float:
        """Equation-1-corrected runtime over the zero-slack baseline.

        1.0 means slack costs nothing beyond the admissible network
        delay; the paper's Figure 3 y-axis.
        """
        return self.corrected_runtime_s / self.baseline_runtime_s

    @property
    def penalty(self) -> float:
        """Fractional starvation penalty (normalized runtime - 1)."""
        return self.normalized_runtime - 1.0


@dataclass
class SweepResult:
    """All points of a sweep, indexable by configuration."""

    points: List[SweepPoint] = field(default_factory=list)
    skipped: List[Tuple[int, int, str]] = field(default_factory=list)

    def add(self, point: SweepPoint) -> None:
        """Record one measured point."""
        self.points.append(point)

    def get(self, matrix_size: int, threads: int, slack_s: float) -> SweepPoint:
        """Exact lookup of one grid point."""
        for p in self.points:
            if (
                p.matrix_size == matrix_size
                and p.threads == threads
                and abs(p.slack_s - slack_s) <= 1e-12 + 1e-9 * slack_s
            ):
                return p
        raise KeyError((matrix_size, threads, slack_s))

    def series(self, matrix_size: int, threads: int) -> List[SweepPoint]:
        """All slack points of one (matrix size, threads) series."""
        pts = [
            p
            for p in self.points
            if p.matrix_size == matrix_size and p.threads == threads
        ]
        return sorted(pts, key=lambda p: p.slack_s)

    def matrix_sizes(self) -> List[int]:
        """Distinct matrix sizes measured."""
        return sorted({p.matrix_size for p in self.points})

    def thread_counts(self) -> List[int]:
        """Distinct thread counts measured."""
        return sorted({p.threads for p in self.points})


def run_slack_sweep(
    matrix_sizes: Sequence[int] = PAPER_MATRIX_SIZES,
    slack_values_s: Sequence[float] = PAPER_SLACK_VALUES_S,
    threads: Sequence[int] = (1,),
    iterations: Optional[int] = None,
    target_compute_s: float = 30.0,
) -> SweepResult:
    """Measure the slack response surface over a parameter grid.

    Configurations whose matrices exceed device memory are skipped and
    recorded in ``SweepResult.skipped`` (the paper's 2^15 exclusion
    above 2 threads). ``iterations`` overrides auto-calibration (keeps
    tests fast); ``target_compute_s`` shortens the calibration budget.
    """
    result = SweepResult()
    for t in threads:
        for n in matrix_sizes:
            config = ProxyConfig(
                matrix_size=n,
                threads=t,
                iterations=iterations,
                target_compute_s=target_compute_s,
            )
            try:
                baseline = run_proxy(config, SlackModel.none())
            except OutOfMemoryError as exc:
                result.skipped.append((n, t, str(exc)))
                continue
            for slack_s in slack_values_s:
                run = run_proxy(config, SlackModel(slack_s))
                result.add(
                    SweepPoint(
                        matrix_size=n,
                        threads=t,
                        slack_s=slack_s,
                        loop_runtime_s=run.loop_runtime_s,
                        corrected_runtime_s=run.corrected_runtime_s,
                        baseline_runtime_s=baseline.loop_runtime_s,
                        iterations=run.iterations,
                        kernel_time_s=run.kernel_time_s,
                    )
                )
    return result
