"""Unit tests for DES monitoring: time series and utilization tracking."""

import numpy as np
import pytest

from repro.des import Environment, TimeSeriesMonitor, UtilizationTracker


def _advance(env, to):
    def proc(env):
        yield env.timeout(to - env.now)

    env.process(proc(env))
    env.run()


def test_timeseries_records_time_value_pairs():
    env = Environment()
    mon = TimeSeriesMonitor(env, name="queue-depth")
    mon.record(0)
    _advance(env, 5.0)
    mon.record(3)
    assert mon.times == [0.0, 5.0]
    assert mon.values == [0.0, 3.0]
    assert len(mon) == 2


def test_timeseries_value_at_step_lookup():
    env = Environment()
    mon = TimeSeriesMonitor(env)
    mon.record(1)
    _advance(env, 10.0)
    mon.record(7)
    assert mon.value_at(0.0) == 1
    assert mon.value_at(9.999) == 1
    assert mon.value_at(10.0) == 7
    assert mon.value_at(100.0) == 7


def test_timeseries_value_before_first_sample_raises():
    env = Environment(initial_time=5.0)
    mon = TimeSeriesMonitor(env)
    mon.record(1)
    with pytest.raises(ValueError):
        mon.value_at(1.0)


def test_timeseries_empty_queries_raise():
    env = Environment()
    mon = TimeSeriesMonitor(env)
    with pytest.raises(ValueError):
        mon.value_at(0.0)
    with pytest.raises(ValueError):
        mon.time_weighted_mean()


def test_timeseries_time_weighted_mean():
    env = Environment()
    mon = TimeSeriesMonitor(env)
    mon.record(0.0)
    _advance(env, 10.0)
    mon.record(10.0)
    _advance(env, 20.0)
    # value 0 for 10s, value 10 for 10s -> mean 5
    assert mon.time_weighted_mean() == pytest.approx(5.0)


def test_timeseries_mean_with_until():
    env = Environment()
    mon = TimeSeriesMonitor(env)
    mon.record(2.0)
    _advance(env, 4.0)
    mon.record(6.0)
    # to t=8: value 2 for 4s, value 6 for 4s -> mean 4
    assert mon.time_weighted_mean(until=8.0) == pytest.approx(4.0)


def test_timeseries_as_arrays():
    env = Environment()
    mon = TimeSeriesMonitor(env)
    mon.record(1.0)
    times, values = mon.as_arrays()
    assert isinstance(times, np.ndarray)
    assert isinstance(values, np.ndarray)
    assert values[0] == 1.0


def test_utilization_tracker_basic_busy_idle():
    env = Environment()
    tracker = UtilizationTracker(env, name="gpu")
    tracker.set_busy()
    _advance(env, 6.0)
    tracker.set_idle()
    _advance(env, 10.0)
    tracker.finish()
    assert tracker.busy_time == pytest.approx(6.0)
    assert tracker.idle_time == pytest.approx(4.0)
    assert tracker.utilization() == pytest.approx(0.6)


def test_utilization_redundant_transitions_ignored():
    env = Environment()
    tracker = UtilizationTracker(env)
    tracker.set_busy()
    _advance(env, 2.0)
    tracker.set_busy()  # no-op
    _advance(env, 3.0)
    tracker.set_idle()
    tracker.finish()
    assert tracker.busy_time == pytest.approx(3.0)


def test_utilization_empty_is_zero():
    env = Environment()
    tracker = UtilizationTracker(env)
    assert tracker.utilization() == 0.0


def test_idle_gaps_exclude_leading_and_trailing():
    env = Environment()
    tracker = UtilizationTracker(env)
    tracker.set_idle()  # leading idle, excluded
    _advance(env, 2.0)
    tracker.set_busy()
    _advance(env, 4.0)
    tracker.set_idle()  # inner gap of 3
    _advance(env, 7.0)
    tracker.set_busy()
    _advance(env, 9.0)
    tracker.set_idle()  # trailing idle, excluded
    _advance(env, 12.0)
    tracker.finish()
    gaps = tracker.idle_gaps()
    assert list(gaps) == [pytest.approx(3.0)]


def test_idle_gaps_multiple():
    env = Environment()
    tracker = UtilizationTracker(env)
    for busy_len, idle_len in [(1.0, 0.5), (1.0, 2.5), (1.0, 0.0)]:
        tracker.set_busy()
        _advance(env, env.now + busy_len)
        tracker.set_idle()
        if idle_len:
            _advance(env, env.now + idle_len)
    tracker.finish()
    gaps = tracker.idle_gaps()
    assert len(gaps) == 2
    assert gaps[0] == pytest.approx(0.5)
    assert gaps[1] == pytest.approx(2.5)
