"""Micro-benchmark: raw event throughput of the DES kernel.

Every proxy run, sweep point, and application model ultimately grinds
through ``Environment.step``/``Event`` dispatch, so events/sec here is
the floor under everything else in the reproduction. Two scenarios:

* ``timeout_dispatch`` — one process draining a long chain of
  timeouts: the allocation + heap + dispatch fast path;
* ``event_handoff`` — two processes alternating through bare events:
  the park/resume machinery (callbacks, ``Process._loop``).

The measured events/sec land in BENCH_sweep.json via ``bench_extra``
so DES hot-path changes stay visible across PRs.
"""

import time

from repro.des import Environment

TIMEOUT_EVENTS = 100_000
HANDOFF_ROUNDS = 50_000


def _drain_timeouts(n):
    env = Environment()

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    return env.now


def _event_handoff(rounds):
    env = Environment()
    box = {"ev": env.event()}

    def producer(env):
        for i in range(rounds):
            ev = box["ev"]
            ev.succeed(i)
            yield env.timeout(0.0)

    def consumer(env):
        for _ in range(rounds):
            yield box["ev"]
            box["ev"] = env.event()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return env.now


def test_bench_des_timeout_dispatch(benchmark, bench_extra):
    benchmark.pedantic(
        lambda: _drain_timeouts(TIMEOUT_EVENTS), rounds=3, iterations=1
    )
    best_s = benchmark.stats.stats.min
    bench_extra["des_timeout_events_per_sec"] = round(TIMEOUT_EVENTS / best_s)


def test_bench_des_event_handoff(benchmark, bench_extra):
    benchmark.pedantic(
        lambda: _event_handoff(HANDOFF_ROUNDS), rounds=3, iterations=1
    )
    best_s = benchmark.stats.stats.min
    # Each round dispatches the bare event plus the producer's timeout.
    bench_extra["des_handoff_events_per_sec"] = round(
        2 * HANDOFF_ROUNDS / best_s
    )
