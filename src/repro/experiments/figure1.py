"""Figure 1: traditional vs CDI CPU-to-GPU path decomposition.

The paper's Figure 1 is an illustration; we reproduce it as data — the
latency components of one CPU-to-GPU command on a traditional node
versus over a row-scale CDI fabric, at several deployment scales.
"""

from __future__ import annotations

from ..hw import PCIE_GEN4_X16
from ..network import (
    Fabric,
    FabricSpec,
    Scale,
    SlackComponents,
    fibre_distance_for_latency,
)
from .context import ExperimentContext
from .report import ExperimentResult, Table

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Quantify Figure 1's slack annotation per deployment scale."""
    table = Table(
        title="Figure 1: CPU-to-GPU one-way path components [us]",
        headers=["deployment", "PCIe [us]", "NICs [us]", "switches [us]",
                 "fibre [us]", "slack [us]", "cable [m]"],
    )
    pcie_us = PCIE_GEN4_X16.latency_s * 1e6

    table.add_row("traditional node", round(pcie_us, 3), 0, 0, 0, 0, 0)

    scenarios = [
        ("rack-scale CDI", FabricSpec(scale=Scale.RACK, racks_per_row=1,
                                      chassis_racks=(0,))),
        ("row-scale CDI", FabricSpec(scale=Scale.ROW, racks_per_row=8,
                                     chassis_racks=(0,))),
        ("cluster-scale CDI", FabricSpec(scale=Scale.CLUSTER, rows=4,
                                         racks_per_row=8, chassis_racks=(0,))),
    ]
    for name, spec in scenarios:
        fabric = Fabric(spec)
        # Worst-case host for this scale.
        worst = max(
            (fabric.path(h, c) for h in fabric.hosts() for c in fabric.chassis()),
            key=lambda p: p.slack_s,
        )
        nic_us = 2 * spec.nic_latency_s * 1e6
        sw_us = worst.switch_hops * spec.switch_hop_latency_s * 1e6
        fibre_us = (worst.slack_s * 1e6) - nic_us - sw_us
        table.add_row(
            name, round(pcie_us, 3), round(nic_us, 3), round(sw_us, 3),
            round(fibre_us, 4), round(worst.slack_s * 1e6, 3),
            round(worst.cable_m, 1),
        )

    km20 = SlackComponents(cable_m=20_000).total() * 1e6
    table.notes.append(
        f"20 km of fibre alone costs "
        f"{fibre_distance_for_latency(100e-6) / 1e3:.0f} km / 100 us "
        f"(one-way); with NICs and 2 switch hops: {km20:.1f} us"
    )
    return ExperimentResult(experiment_id="figure1", tables=[table])
