"""Compressed trace for fast-forwarded runs: one epoch, repeated.

When the steady-state fast-forward engine (:mod:`repro.proxy.fastforward`)
skips ``S`` bit-identical loop iterations, the full trace it owes the
caller is the truncated run's trace with ``S`` time-shifted copies of
one reference epoch spliced in. :class:`RepeatedEpochTrace` stores
exactly that recipe — the truncated base events, the reference window,
the cycle period and the repeat count — and only materializes the full
event list when an analysis method actually needs it. A sweep that
reads scalar results pays nothing; a caller that profiles the trace
gets every event the full simulation would have recorded, bit for bit.

The decomposition partitions strictly by event *start* time (events are
recorded at completion, so a spanning event belongs to the window its
start falls in):

* base events starting before the certification boundary — unchanged;
* reference-window events, replicated ``j = 1..S`` times at
  ``start + j*period`` (correlation ids advance by the per-cycle
  stride, matching the ids the full run would have issued);
* base events starting at/after the boundary (the truncated run's
  final epochs and teardown) — shifted by ``S*period``.

All shifts are exact because every timestamp sits on the dyadic tick
grid (:mod:`repro.des.timebase`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List

from .container import Trace
from .events import TraceEvent

__all__ = ["RepeatedEpochTrace"]


class RepeatedEpochTrace(Trace):
    """A :class:`Trace` whose middle is one epoch repeated ``S`` times.

    Parameters
    ----------
    base_events:
        The truncated run's recorded events, in append order.
    window_start, window_end:
        The reference epoch ``[window_start, window_end)`` — the last
        certified steady-state cycle of the truncated run.
    period_s:
        The cycle period (``window_end - window_start``).
    repeats:
        How many skipped cycles to splice in.
    correlation_stride:
        Correlation ids issued per cycle; replica ``j`` advances the
        reference events' nonzero ids by ``j * correlation_stride``.
    """

    def __init__(
        self,
        base_events: Iterable[TraceEvent],
        *,
        window_start: float,
        window_end: float,
        period_s: float,
        repeats: int,
        correlation_stride: int,
        name: str = "",
    ) -> None:
        if repeats < 0:
            raise ValueError("repeats must be non-negative")
        super().__init__(None, name=name)
        self._base: List[TraceEvent] = list(base_events)
        self._window_start = window_start
        self._window_end = window_end
        self._period_s = period_s
        self._repeats = int(repeats)
        self._corr_stride = int(correlation_stride)
        self._ref_count = sum(
            1 for e in self._base if window_start <= e.start < window_end
        )
        self._materialized = False

    # -- compression metadata ----------------------------------------------------
    @property
    def repeats(self) -> int:
        """Number of spliced-in cycle copies."""
        return self._repeats

    @property
    def period_s(self) -> float:
        """The steady-state cycle period."""
        return self._period_s

    @property
    def events_per_cycle(self) -> int:
        """Trace events starting inside one reference cycle."""
        return self._ref_count

    @property
    def materialized(self) -> bool:
        """Whether the full event list has been expanded."""
        return self._materialized

    # -- expansion ---------------------------------------------------------------
    def _materialize(self) -> None:
        if self._materialized:
            return
        w0, w1 = self._window_start, self._window_end
        period, stride = self._period_s, self._corr_stride
        events: List[TraceEvent] = []
        ref: List[TraceEvent] = []
        tail: List[TraceEvent] = []
        for e in self._base:
            if e.start < w1:
                events.append(e)
                if e.start >= w0:
                    ref.append(e)
            else:
                tail.append(e)
        for j in range(1, self._repeats + 1):
            off = j * period
            corr_off = j * stride
            for e in ref:
                events.append(
                    replace(
                        e,
                        start=e.start + off,
                        end=e.end + off,
                        correlation_id=(
                            e.correlation_id + corr_off if e.correlation_id else 0
                        ),
                    )
                )
        off = self._repeats * period
        corr_off = self._repeats * stride
        for e in tail:
            events.append(
                replace(
                    e,
                    start=e.start + off,
                    end=e.end + off,
                    correlation_id=(
                        e.correlation_id + corr_off if e.correlation_id else 0
                    ),
                )
            )
        self._events = events
        self._sorted = False
        self._materialized = True

    def _ensure_sorted(self) -> None:
        self._materialize()
        super()._ensure_sorted()

    # -- cheap paths that must not force expansion --------------------------------
    def __len__(self) -> int:
        if self._materialized:
            return len(self._events)
        return len(self._base) + self._repeats * self._ref_count

    def threads(self) -> List[int]:
        if self._materialized:
            return super().threads()
        # Replicas only duplicate base events, so the thread set is
        # exactly the base trace's.
        return sorted({e.thread for e in self._base})

    @property
    def start(self) -> float:
        if self._materialized:
            return Trace.start.fget(self)  # type: ignore[attr-defined]
        # Replicas and the shifted tail start no earlier than the base
        # prefix, so the earliest start is the base minimum.
        if not self._base:
            return 0.0
        return min(e.start for e in self._base)

    # -- methods reading _events directly: expand first ----------------------------
    @property
    def end(self) -> float:
        self._materialize()
        return Trace.end.fget(self)  # type: ignore[attr-defined]

    def total_time(self) -> float:
        self._materialize()
        return super().total_time()

    def busy_time(self) -> float:
        self._materialize()
        return super().busy_time()

    def max_concurrency(self) -> int:
        self._materialize()
        return super().max_concurrency()

    def append(self, event: TraceEvent) -> None:
        self._materialize()
        super().append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self._materialize()
        super().extend(events)

    def __repr__(self) -> str:
        state = "expanded" if self._materialized else "compressed"
        return (
            f"<RepeatedEpochTrace {self.name!r}: {len(self)} events "
            f"({state}, {self._repeats} repeated cycles)>"
        )
