"""Trace persistence: JSON and CSV export/import.

Lets application profiles be captured once and re-analysed offline,
matching the paper's workflow of collecting NSys traces on the
cluster and post-processing them separately.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from .container import Trace
from .events import TraceEvent

__all__ = ["to_json", "from_json", "to_csv", "from_csv"]

_CSV_FIELDS = [
    "kind",
    "name",
    "start",
    "end",
    "stream",
    "nbytes",
    "copy_kind",
    "correlation_id",
    "thread",
]


def to_json(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as a JSON document."""
    doc = {
        "name": trace.name,
        "events": [e.to_dict() for e in trace],
    }
    Path(path).write_text(json.dumps(doc, indent=1))


def from_json(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`to_json`."""
    doc = json.loads(Path(path).read_text())
    trace = Trace(name=doc.get("name", ""))
    for item in doc.get("events", []):
        trace.append(TraceEvent.from_dict(item))
    return trace


def to_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as CSV (meta column JSON-encoded)."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS + ["meta"])
        writer.writeheader()
        for e in trace:
            row = e.to_dict()
            row["meta"] = json.dumps(row["meta"])
            writer.writerow(row)


def from_csv(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`to_csv`."""
    trace = Trace(name=Path(path).stem)
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            data = dict(row)
            data["meta"] = json.loads(data.get("meta") or "{}")
            data["stream"] = int(data["stream"]) if data["stream"] else None
            data["copy_kind"] = data["copy_kind"] or None
            trace.append(TraceEvent.from_dict(data))
    return trace
