"""Binning application characteristics onto the proxy's matrix grid.

The proxy's slack response is measured at discrete matrix sizes; an
application's kernel durations and transfer sizes fall between them.
Following the paper, each observation is bracketed by the two nearest
grid sizes, producing **two** binned distributions:

* rounding **up** to the larger matrix size — whose penalty is
  smaller — yields the **lower** (optimistic) total penalty;
* rounding **down** to the smaller size — larger penalty — yields the
  **upper** (pessimistic) bound, the paper's headline number.

Transfer sizes map to matrix sizes through the proxy's matrix byte
count (``n^2 * 4`` for float32 — so the paper's Table III bin edges
1 / 16 / 256 / 4096 MiB are exactly the byte sizes of matrices
2^9 / 2^11 / 2^13 / 2^15). Kernel durations map through the proxy's
calibrated single-kernel times (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from ..hw import MiB

__all__ = [
    "BinnedDistribution",
    "matrix_bytes",
    "transfer_grid_bytes",
    "bin_values",
    "bin_transfer_sizes",
    "bin_kernel_durations",
    "table3_bins",
    "TABLE3_BIN_EDGES_MIB",
]

#: Table III's transfer-size bin edges in MiB (= proxy matrix bytes).
TABLE3_BIN_EDGES_MIB: Tuple[float, ...] = (1.0, 16.0, 256.0, 4096.0)


def matrix_bytes(matrix_size: int, dtype_bytes: int = 4) -> int:
    """Bytes of one proxy matrix of dimension ``matrix_size``."""
    if matrix_size <= 0:
        raise ValueError("matrix_size must be positive")
    return matrix_size * matrix_size * dtype_bytes


def transfer_grid_bytes(
    grid_sizes: Sequence[int], dtype_bytes: int = 4
) -> Dict[int, int]:
    """Map each grid matrix size to its transfer byte count."""
    return {n: matrix_bytes(n, dtype_bytes) for n in grid_sizes}


@dataclass(frozen=True)
class BinnedDistribution:
    """An application distribution bracketed onto the proxy grid.

    ``lower_counts`` holds the rounded-**up** assignment (used for the
    lower/optimistic penalty); ``upper_counts`` the rounded-**down**
    assignment (upper/pessimistic penalty). Both sum to the number of
    observations.
    """

    lower_counts: Dict[int, int]
    upper_counts: Dict[int, int]
    total: int
    mean_value: float

    def __post_init__(self) -> None:
        if sum(self.lower_counts.values()) != self.total:
            raise ValueError("lower_counts do not sum to total")
        if sum(self.upper_counts.values()) != self.total:
            raise ValueError("upper_counts do not sum to total")


def bin_values(
    values: np.ndarray | Sequence[float],
    grid_value_per_size: Mapping[int, float],
    rel_tol: float = 1e-6,
) -> BinnedDistribution:
    """Bracket observations between grid sizes by a monotone metric.

    ``grid_value_per_size`` maps each matrix size to the metric value
    the proxy exhibits there (bytes for transfers, seconds for kernel
    durations); it must be strictly increasing in matrix size.
    Observations off the ends of the grid clamp to the nearest size on
    both assignments; observations within ``rel_tol`` (relative) of a
    grid mark snap to it exactly, so floating-point noise cannot flip
    an on-grid value into the adjacent (much more slack-sensitive)
    bracket. Snap candidates are probed lower-mark-first.

    Grid marks are sorted by matrix size exactly once and must be
    strictly increasing in size; a non-monotonic grid (where rounding
    "up" in size could round *down* in metric) raises ``ValueError``.

    Vectorized: the whole bracketing — searchsorted round-up, snap
    masks, end clamps, bin counts — runs as column operations with no
    per-value loop, bit-identical to
    :func:`repro.model.reference.bin_values_reference`.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("no values to bin")
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    if rel_tol < 0:
        raise ValueError("rel_tol must be non-negative")
    sizes = sorted(grid_value_per_size)
    marks = np.array([grid_value_per_size[n] for n in sizes])
    if np.any(np.diff(marks) <= 0):
        raise ValueError("grid metric must be strictly increasing")
    last = len(sizes) - 1

    # Index of the first grid mark >= value (round up), clamped.
    i_up = np.minimum(np.searchsorted(marks, arr, side="left"), last)
    lo_cand = np.maximum(i_up - 1, 0)
    # Snap-to-mark masks, lower candidate taking precedence.
    snap_lo = np.abs(arr - marks[lo_cand]) <= rel_tol * marks[lo_cand]
    snap_hi = np.abs(arr - marks[i_up]) <= rel_tol * marks[i_up]
    # Rounded-down index: clamp off-grid ends, else one below i_up.
    i_down = np.where(
        arr >= marks[-1], last, np.where(arr <= marks[0], 0, i_up - 1)
    )
    i_down = np.where(snap_lo, lo_cand, np.where(snap_hi, i_up, i_down))
    i_up = np.where(snap_lo, lo_cand, i_up)

    # Rounded up -> larger matrix -> lower penalty assignment.
    n_bins = len(sizes)
    lower_binned = np.bincount(i_up, minlength=n_bins)
    upper_binned = np.bincount(i_down, minlength=n_bins)
    lower_counts = {n: int(c) for n, c in zip(sizes, lower_binned)}
    upper_counts = {n: int(c) for n, c in zip(sizes, upper_binned)}
    return BinnedDistribution(
        lower_counts=lower_counts,
        upper_counts=upper_counts,
        total=int(arr.size),
        mean_value=float(arr.mean()),
    )


def bin_transfer_sizes(
    sizes_bytes: np.ndarray | Sequence[float],
    grid_sizes: Sequence[int],
    dtype_bytes: int = 4,
) -> BinnedDistribution:
    """Bracket transfer sizes (bytes) onto the proxy matrix grid."""
    return bin_values(sizes_bytes, transfer_grid_bytes(grid_sizes, dtype_bytes))


def bin_kernel_durations(
    durations_s: np.ndarray | Sequence[float],
    kernel_time_per_size: Mapping[int, float],
) -> BinnedDistribution:
    """Bracket kernel durations onto the proxy grid via Table II times."""
    return bin_values(durations_s, kernel_time_per_size)


def table3_bins(
    sizes_bytes: np.ndarray | Sequence[float],
    edges_mib: Sequence[float] = TABLE3_BIN_EDGES_MIB,
) -> Dict[str, int]:
    """Histogram transfer sizes into the paper's Table III columns.

    Returns counts for ``<=1``, ``<=16``, ``<=256``, ``<=4096`` and
    ``>4096`` MiB (with default edges).
    """
    arr = np.asarray(sizes_bytes, dtype=float) / MiB
    if arr.size == 0:
        raise ValueError("no transfer sizes")
    result: Dict[str, int] = {}
    lower = -np.inf
    for edge in edges_mib:
        result[f"<={edge:g}"] = int(((arr > lower) & (arr <= edge)).sum())
        lower = edge
    result[f">{edges_mib[-1]:g}"] = int((arr > edges_mib[-1]).sum())
    return result
