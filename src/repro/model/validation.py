"""Self-validation of the prediction methodology (paper Section IV-D).

The paper validates Equations 2-3 by feeding the *proxy's own* traces
through the prediction pipeline and checking how well it predicts its
own measured penalty: the lower bound landed within 0.005 of the
actual for single-threaded runs, while the upper bound was severely
pessimistic (shrinking as threads were added).

:func:`validate_self_prediction` reproduces that experiment for one
grid point; :func:`validation_report` sweeps a set of points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..apps.base import AppProfile
from ..network import SlackModel
from ..proxy import ProxyConfig, SlackResponseSurface, run_proxy
from .predictor import CDIProfiler

__all__ = ["SelfValidationResult", "validate_self_prediction", "validation_report"]


@dataclass(frozen=True)
class SelfValidationResult:
    """Prediction-vs-actual for one proxy configuration."""

    matrix_size: int
    threads: int
    slack_s: float
    actual_penalty: float
    predicted_lower: float
    predicted_upper: float

    @property
    def lower_error(self) -> float:
        """Signed error of the lower bound (prediction - actual)."""
        return self.predicted_lower - self.actual_penalty

    @property
    def upper_pessimism(self) -> float:
        """How far above the actual the upper bound sits."""
        return self.predicted_upper - self.actual_penalty


def _proxy_profile(
    config: ProxyConfig, duration_jitter: float = 0.0,
    seed: int = 7,
) -> AppProfile:
    """Build an AppProfile from a zero-slack proxy run.

    ``duration_jitter`` optionally perturbs the traced kernel
    durations and transfer sizes the way real measurement noise would,
    which pushes observations off the exact grid points and exercises
    the lower/upper bracketing the way real application traces do.
    """
    result = run_proxy(config, SlackModel.none())
    trace = result.trace
    if duration_jitter > 0:
        from ..trace import Trace, TraceEvent

        rng = np.random.default_rng(seed)
        jittered = Trace(name=trace.name)
        for e in trace:
            factor = float(rng.lognormal(0.0, duration_jitter))
            end = e.start + e.duration * factor
            nbytes = int(e.nbytes * factor) if e.nbytes else 0
            jittered.append(
                TraceEvent(
                    kind=e.kind, name=e.name, start=e.start, end=end,
                    stream=e.stream, nbytes=nbytes, copy_kind=e.copy_kind,
                    correlation_id=e.correlation_id, thread=e.thread,
                    meta=dict(e.meta),
                )
            )
        trace = jittered
    return AppProfile(
        name=f"proxy-n{config.matrix_size}",
        trace=trace,
        runtime_s=result.loop_runtime_s,
        queue_parallelism=config.threads,
        cuda_calls_per_second=(
            result.cuda_calls * config.threads / result.loop_runtime_s
        ),
    )


def validate_self_prediction(
    surface: SlackResponseSurface,
    matrix_size: int,
    slack_s: float,
    threads: int = 1,
    iterations: Optional[int] = None,
    duration_jitter: float = 0.0,
    profiler: Optional[CDIProfiler] = None,
) -> SelfValidationResult:
    """Predict the proxy's own penalty from its trace and compare."""
    config = ProxyConfig(
        matrix_size=matrix_size, threads=threads, iterations=iterations
    )
    baseline = run_proxy(config, SlackModel.none())
    run = run_proxy(config, SlackModel(slack_s))
    actual = max(
        0.0, run.corrected_runtime_s / baseline.loop_runtime_s - 1.0
    )

    profile = _proxy_profile(config, duration_jitter)
    profiler = profiler or CDIProfiler(surface)
    prediction = profiler.predict(profile, slack_s, parallelism=threads)
    return SelfValidationResult(
        matrix_size=matrix_size,
        threads=threads,
        slack_s=slack_s,
        actual_penalty=actual,
        predicted_lower=prediction.lower,
        predicted_upper=prediction.upper,
    )


def validation_report(
    surface: SlackResponseSurface,
    matrix_sizes: Sequence[int],
    slack_values_s: Sequence[float],
    threads: int = 1,
    iterations: Optional[int] = None,
    duration_jitter: float = 0.0,
) -> List[SelfValidationResult]:
    """Self-validate over a grid of proxy configurations."""
    profiler = CDIProfiler(surface)
    return [
        validate_self_prediction(
            surface, n, s, threads, iterations, duration_jitter, profiler
        )
        for n in matrix_sizes
        for s in slack_values_s
    ]
