"""Network congestion model.

The paper's single-node method assumes "added latencies due to network
channel congestion is a non-issue" and studies worst-case fixed slack
instead. This module makes that assumption testable: an M/M/1-style
queueing inflation turns background fabric load into extra latency, so
users can ask how much utilization headroom a slack budget leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CongestionModel", "utilization_for_inflation"]


@dataclass(frozen=True)
class CongestionModel:
    """Latency inflation as a function of background load.

    Uses the M/M/1 waiting-time factor: at utilization ``rho`` the
    expected sojourn time is ``service / (1 - rho)``. ``max_utilization``
    caps the model's valid range (beyond it the queue is unstable).
    """

    service_time_s: float = 1.0e-6
    max_utilization: float = 0.95

    def __post_init__(self) -> None:
        if self.service_time_s <= 0:
            raise ValueError("service_time_s must be positive")
        if not 0 < self.max_utilization < 1:
            raise ValueError("max_utilization must be in (0, 1)")

    def latency_at(self, utilization: float) -> float:
        """Expected per-message latency at the given background load."""
        if utilization < 0:
            raise ValueError("utilization must be non-negative")
        if utilization >= self.max_utilization:
            raise ValueError(
                f"utilization {utilization} beyond stable range "
                f"(< {self.max_utilization})"
            )
        return self.service_time_s / (1.0 - utilization)

    def inflation_at(self, utilization: float) -> float:
        """Multiplicative latency inflation relative to an idle fabric."""
        return self.latency_at(utilization) / self.service_time_s

    def extra_slack_at(self, utilization: float) -> float:
        """Additional slack attributable to congestion alone."""
        return self.latency_at(utilization) - self.service_time_s

    def sample_latencies(
        self, utilization: float, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` exponential sojourn times at ``utilization``."""
        if n <= 0:
            raise ValueError("n must be positive")
        mean = self.latency_at(utilization)
        return rng.exponential(scale=mean, size=n)


def utilization_for_inflation(inflation: float) -> float:
    """Inverse model: the utilization that yields a given inflation.

    >>> utilization_for_inflation(2.0)  # latency doubles at 50% load
    0.5
    """
    if inflation < 1.0:
        raise ValueError("inflation must be >= 1")
    return 1.0 - 1.0 / inflation
