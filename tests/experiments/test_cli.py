"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == experiment_ids()


class TestSlack:
    def test_conversion(self, capsys):
        assert main(["slack", "100e-6"]) == 0
        out = capsys.readouterr().out
        km = float(out.split("=")[1].split("km")[0])
        assert km == pytest.approx(20.0, rel=0.01)

    def test_negative_rejected(self, capsys):
        assert main(["slack", "-1"]) == 2


class TestRun:
    def test_single_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "[table1:" in out

    def test_multiple_experiments(self, capsys):
        assert main(["run", "table1", "discussion"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Section V" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err


class TestProfile:
    def test_profile_lammps(self, capsys):
        assert main(["profile", "lammps", "--slack", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "lammps" in out
        assert "queue parallelism 8" in out
        assert "100.0" in out

    def test_profile_trace_export(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["profile", "cosmoflow", "--slack", "1e-6",
                     "--trace-out", str(path)]) == 0
        assert path.exists()
        from repro.trace import from_json

        trace = from_json(path)
        assert len(trace.kernels()) > 0

    def test_negative_slack_rejected(self, capsys):
        assert main(["profile", "lammps", "--slack", "-1"]) == 2

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "unknown-app"])


class TestSweep:
    def test_custom_grid(self, capsys):
        assert main(["sweep", "--matrix", "512", "--slack", "1e-4",
                     "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "512" in out
        assert "1 thread(s)" in out

    def test_oom_grid_reports_and_fails(self, capsys):
        code = main(["sweep", "--matrix", "32768", "--threads", "8",
                     "--slack", "1e-6", "--iterations", "5"])
        captured = capsys.readouterr()
        assert code == 1
        assert "skipped" in captured.err


class TestParallelFlags:
    def test_sweep_accepts_workers_and_no_cache(self, capsys):
        assert main(["sweep", "--matrix", "512", "--slack", "1e-4",
                     "--iterations", "5", "--workers", "2",
                     "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "512" in captured.out
        assert "grid points" in captured.err  # timing line

    def test_sweep_rejects_negative_workers(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--matrix", "512", "--slack", "1e-4",
                  "--iterations", "5", "--workers", "-1"])

    def test_run_accepts_workers_flag(self, capsys):
        assert main(["run", "table1", "--workers", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_workers_zero_means_all_cores(self):
        args = build_parser().parse_args(["sweep", "--workers", "0"])
        from repro.cli import _resolve_workers
        import os
        assert _resolve_workers(args) == (os.cpu_count() or 1)


class TestShardFlags:
    """sweep --shard / --merge-shards / --shard-workers (scale-out)."""

    WORKER = ["sweep", "--matrix", "512", "--slack", "1e-4",
              "--iterations", "3", "--no-cache"]

    def test_shard_worker_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "shard.npz"
        assert main([*self.WORKER, "--shard", "0/1",
                     "--shard-out", str(out)]) == 0
        err = capsys.readouterr().err
        assert out.exists()
        assert "[shard 0/1: 2 of 2 grid points" in err

    def test_merge_shards_prints_surface(self, tmp_path, capsys):
        out = tmp_path / "shard.npz"
        main([*self.WORKER, "--shard", "0/1", "--shard-out", str(out)])
        capsys.readouterr()
        assert main(["sweep", "--merge-shards", str(out)]) == 0
        captured = capsys.readouterr()
        assert "[merged 1 shard(s): 2 grid points" in captured.err
        assert "512" in captured.out
        assert "1 thread(s)" in captured.out

    def test_merge_rejects_gapped_set(self, tmp_path, capsys):
        # For this grid the hash partition assigns every task to shard
        # 0 of 2, so the shard-1 artifact alone cannot tile the grid.
        out = tmp_path / "shard.npz"
        main([*self.WORKER, "--shard", "1/2", "--shard-out", str(out)])
        capsys.readouterr()
        assert main(["sweep", "--merge-shards", str(out)]) == 2
        assert "cannot merge shards" in capsys.readouterr().err

    def test_adaptive_sharding_refused(self, tmp_path, capsys):
        assert main([*self.WORKER, "--adaptive", "--shard", "0/2",
                     "--shard-out", str(tmp_path / "s.npz")]) == 2
        assert "sharding unsupported" in capsys.readouterr().err

    def test_adaptive_shard_workers_refused(self, capsys):
        assert main([*self.WORKER, "--adaptive",
                     "--shard-workers", "2"]) == 2
        assert "sharding unsupported" in capsys.readouterr().err

    def test_shard_requires_shard_out(self, capsys):
        assert main([*self.WORKER, "--shard", "0/2"]) == 2
        assert "--shard-out" in capsys.readouterr().err

    def test_shard_out_requires_shard(self, tmp_path, capsys):
        assert main([*self.WORKER,
                     "--shard-out", str(tmp_path / "s.npz")]) == 2
        assert "requires --shard" in capsys.readouterr().err

    def test_shard_and_merge_mutually_exclusive(self, tmp_path, capsys):
        assert main([*self.WORKER, "--shard", "0/2",
                     "--shard-out", str(tmp_path / "s.npz"),
                     "--merge-shards", str(tmp_path / "s.npz")]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_malformed_shard_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([*self.WORKER, "--shard", "zero-of-two",
                  "--shard-out", str(tmp_path / "s.npz")])

    def test_invalid_shard_index_rejected(self, tmp_path, capsys):
        assert main([*self.WORKER, "--shard", "5/2",
                     "--shard-out", str(tmp_path / "s.npz")]) == 2
        assert "cannot run shard" in capsys.readouterr().err

    def test_shard_metrics_out_reports_shard_kind(self, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        assert main([*self.WORKER, "--shard", "0/1",
                     "--shard-out", str(tmp_path / "s.npz"),
                     "--metrics-out", str(report)]) == 0
        doc = json.loads(report.read_text())
        assert doc["kind"] == "sweep-shard"
        assert doc["meta"]["shard"] == {"index": 0, "count": 1}

    def test_shard_workers_runs_and_merges(self, capsys):
        assert main([*self.WORKER, "--shard-workers", "2"]) == 0
        captured = capsys.readouterr()
        assert "[2 shard worker(s): coordinator wall" in captured.err
        assert "512" in captured.out


class TestMetrics:
    def test_sweep_metrics_out_writes_runreport(self, tmp_path, capsys):
        import json

        from repro.obs import RunReport, metrics_enabled

        out = tmp_path / "report.json"
        assert main(["sweep", "--matrix", "512", "--slack", "1e-4",
                     "--iterations", "5", "--no-cache",
                     "--metrics-out", str(out)]) == 0
        captured = capsys.readouterr()
        assert f"metrics report written to {out}" in captured.err
        # --metrics-out enables collection only for the invocation.
        assert not metrics_enabled()

        doc = json.loads(out.read_text())
        assert doc["schema"] == 1
        assert doc["kind"] == "sweep"
        for section in ("des", "gpu", "fabric", "executor", "sweep"):
            assert section in doc["metrics"], section
        report = RunReport.from_json(out)
        assert report.value("sweep.points") == 1

    def test_run_metrics_out_writes_runreport(self, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        assert main(["run", "discussion", "--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["kind"] == "run"
        assert doc["meta"]["experiments"] == ["discussion"]

    def test_metrics_renders_report_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["sweep", "--matrix", "512", "--slack", "1e-4",
                     "--iterations", "5", "--no-cache",
                     "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "RunReport kind=sweep" in rendered
        assert "[des]" in rendered

    def test_metrics_rejects_unreadable_file(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        assert main(["metrics", str(bad)]) == 2
        assert "cannot read report" in capsys.readouterr().err


class TestPredictAndServe:
    """The serving subcommands (see docs/serving.md)."""

    def test_predict_on_grid(self, capsys):
        assert main(["predict", "512", "1e-5"]) == 0
        out = capsys.readouterr().out
        assert "penalty" in out and "error bound" in out

    def test_predict_out_of_domain_refuses(self, capsys):
        assert main(["predict", "999", "1e-5"]) == 1
        err = capsys.readouterr().err
        assert "refused (unknown-series)" in err
        assert "--cold" in err  # the hint names the way out

    def test_predict_negative_slack_refuses(self, capsys):
        assert main(["predict", "512", "--", "-1e-5"]) == 1
        assert "negative-slack" in capsys.readouterr().err

    def test_serve_loop(self, tmp_path, capsys, monkeypatch):
        import io
        import json
        import sys as _sys

        report = tmp_path / "serve.json"
        monkeypatch.setattr(
            _sys, "stdin", io.StringIO("512 1e-5\n999 1e-5\nbogus line\n")
        )
        assert main(["serve", "--metrics-out", str(report)]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert any(l.startswith("penalty=") for l in lines)
        assert "refused (unknown-series)" in lines
        assert "cannot parse query" in captured.err
        assert "[served 2 request(s): 1 warm, 0 cold, 1 refused]" in (
            captured.err
        )
        doc = json.loads(report.read_text())
        assert doc["kind"] == "serve"
        assert doc["meta"]["surrogate_method"] == "loglinear"
